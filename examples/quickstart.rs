//! Quickstart: the Fig. 1 model end to end.
//!
//! Builds the paper's running example — `rnn(n) = Emb[word] at leaves,
//! tanh(rnn(left) + rnn(right)) inside` — in the Recursive API, lowers it,
//! prints the generated ILIR (compare with Listing 2 of the paper),
//! linearizes the "It is a dog ." parse tree and runs inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cortex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = 8;
    let vocab = cortex::ds::datasets::VOCAB_SIZE as usize;

    // --- 1. The model computation, as in Listing 1. -------------------
    let mut g = RaGraph::new();
    let emb = g.input("Emb", &[vocab, h]);
    let rnn_ph = g.placeholder("rnn_ph", &[h]);
    let leaf_case = g.compute("leaf_case", &[h], |c| {
        c.read(emb, &[c.node().word(), c.axis(0)])
    });
    let lh = g.compute("lh", &[h], |c| {
        c.read(rnn_ph, &[c.node().child(0), c.axis(0)])
    });
    let rh = g.compute("rh", &[h], |c| {
        c.read(rnn_ph, &[c.node().child(1), c.axis(0)])
    });
    let recursive_case = g.compute("recursive_case", &[h], |c| {
        c.read(lh, &[c.node(), c.axis(0)])
            .add(c.read(rh, &[c.node(), c.axis(0)]))
            .tanh()
    });
    let body = g.if_then_else("body", leaf_case, recursive_case)?;
    let rnn = g.recursion(rnn_ph, body)?;
    g.mark_output(rnn);

    // --- 2. Scheduling primitives + lowering (§3.1, §4). --------------
    let schedule = RaSchedule::default(); // dynamic_batch + specialize + fuse + persist
    let program = lower(&g, &schedule, StructureInfo { max_children: 2 })?;
    println!("=== Generated ILIR (compare with Listing 2) ===\n{program}");

    // --- 3. The input: the parse tree of Fig. 1. ----------------------
    // ((It is) ((a dog) .))
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let it = b.leaf(101);
    let is = b.leaf(102);
    let a = b.leaf(103);
    let dog = b.leaf(104);
    let dot = b.leaf(105);
    let l = b.internal(&[it, is])?;
    let ad = b.internal(&[a, dog])?;
    let r = b.internal(&[ad, dot])?;
    let root = b.internal(&[l, r])?;
    let tree = b.finish()?;

    // --- 4. Runtime: linearize (§4.2) and execute. ---------------------
    let lin = Linearizer::new().linearize(&tree)?;
    println!("=== Linearized (Appendix B numbering) ===");
    println!("batch_begin  = {:?}", lin.batch_begin());
    println!("batch_length = {:?}", lin.batch_length());
    println!("left         = {:?}", lin.child_array(0));
    println!("right        = {:?}\n", lin.child_array(1));

    let mut params = Params::new();
    params.set("Emb", Tensor::random(&[vocab, h], 0.5, 42));
    let device = DeviceSpec::v100();
    let result = cortex::backend::exec::run(&program, &lin, &params, &device)?;

    let out = &result.outputs[&rnn.id()];
    let root_id = lin.from_structure_id(root) as usize;
    println!("=== Inference ===");
    println!(
        "root state   = {:?}",
        &out.as_slice()[root_id * h..(root_id + 1) * h]
    );
    println!("kernels      = {}", result.profile.launches);
    println!("barriers     = {}", result.profile.barriers_global);
    println!(
        "est. latency = {:.3} ms on {}",
        result.latency.total_ms(),
        device.name
    );
    Ok(())
}

//! Scene labeling with DAG-RNN over grid DAGs (Shuai et al. 2015).
//!
//! Images decompose into grids whose nodes depend on their up/left
//! neighbours — a DAG, not a tree: nodes have multiple parents, wavefronts
//! are anti-diagonals, and tree-only optimizations (unrolling, recursive
//! refactoring) are rejected by the compiler. This example shows both the
//! working pipeline across all three paper backends and those guardrails.
//!
//! ```sh
//! cargo run --release --example scene_labeling_dagrnn
//! ```

use cortex::models::dagrnn;
use cortex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = 64;
    let model = dagrnn::dag_rnn(h);
    // A batch of ten 10x10 "images" (Table 2's DAG-RNN workload).
    let grid = cortex::ds::datasets::batch_of(|s| cortex::ds::datasets::grid_dag(10, 10, s), 10, 7);
    println!(
        "DAG-RNN: {} grid nodes, {} anti-diagonal wavefronts, max {} children\n",
        grid.num_nodes(),
        grid.max_height(),
        grid.max_children()
    );

    // The input transform x = W_x·Emb[word] is hoisted into a precompute
    // kernel (one batched call before any wave — §7.1's protocol).
    let program = model.lower(&RaSchedule::default())?;
    println!(
        "kernels: {:?}\n",
        program
            .kernels
            .iter()
            .map(|k| k.name.as_str())
            .collect::<Vec<_>>()
    );

    // Latency on the three Table 3 backends.
    for device in [
        DeviceSpec::v100(),
        DeviceSpec::intel_cascadelake(),
        DeviceSpec::arm_graviton2(),
    ] {
        let (result, _) = model.run(&grid, &RaSchedule::default(), &device)?;
        println!(
            "{:>6}: {:.3} ms ({} wavefronts executed, {:.1}% linearization)",
            device.name,
            result.latency.total_ms(),
            result.profile.barriers_global,
            100.0 * result.profile.linearize_time.as_secs_f64() / result.latency.total_s
        );
    }

    // Tree-only schedules are rejected for DAGs at runtime: nodes with
    // multiple parents would be recomputed (§3.1).
    let unroll = RaSchedule {
        unroll: Some(2),
        ..RaSchedule::default()
    };
    let err = model.run(&grid, &unroll, &DeviceSpec::v100()).unwrap_err();
    println!("\nunrolling a DAG is rejected: {err}");
    Ok(())
}

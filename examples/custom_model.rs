//! Defining a *new* recursive model through the public API.
//!
//! The paper's point is that Cortex is a compiler, not a library of
//! hand-written kernels: models cuDNN never heard of get the same
//! optimizations. Here we invent a "TreeMaxGate" model —
//!
//! ```text
//! h(n) = max(g ∘ tanh(W·h_l), (1-g) ∘ tanh(W·h_r)),   g = σ(U·(h_l+h_r))
//! h(leaf) = Emb[word]
//! ```
//!
//! — express it in the RA, let the compiler fuse/specialize/persist it,
//! and validate against a ten-line reference interpreter.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use cortex::core::expr::{BinOp, ValExpr};
use cortex::prelude::*;
use cortex::tensor::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = 16;
    let vocab = cortex::ds::datasets::VOCAB_SIZE as usize;

    // --- The model in the Recursive API. -------------------------------
    let mut g = RaGraph::new();
    let emb = g.input("Emb", &[vocab, h]);
    let w = g.input("W", &[h, h]);
    let u = g.input("U", &[h, h]);
    let ph = g.placeholder("h_ph", &[h]);
    let gate = g.compute("gate", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        c.sum(h, |c, k| {
            let hsum = c
                .read(ph, &[node.clone().child(0), k.clone()])
                .add(c.read(ph, &[node.clone().child(1), k.clone()]));
            c.read(u, &[i.clone(), k]).mul(hsum)
        })
        .sigmoid()
    });
    let left_mv = g.compute("left_mv", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        c.sum(h, |c, k| {
            c.read(w, &[i.clone(), k.clone()])
                .mul(c.read(ph, &[node.clone().child(0), k]))
        })
        .tanh()
    });
    let right_mv = g.compute("right_mv", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        c.sum(h, |c, k| {
            c.read(w, &[i.clone(), k.clone()])
                .mul(c.read(ph, &[node.clone().child(1), k]))
        })
        .tanh()
    });
    let rec = g.compute("h_rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let gv = c.read(gate, &[node.clone(), i.clone()]);
        let lt = gv.clone().mul(c.read(left_mv, &[node.clone(), i.clone()]));
        let rt = ValExpr::Const(1.0)
            .sub(gv)
            .mul(c.read(right_mv, &[node, i]));
        ValExpr::Bin(BinOp::Max, Box::new(lt), Box::new(rt))
    });
    let leaf = g.compute("h_leaf", &[h], |c| {
        c.read(emb, &[c.node().word(), c.axis(0)])
    });
    let body = g.if_then_else("h_body", leaf, rec)?;
    let out = g.recursion(ph, body)?;
    g.mark_output(out);

    // --- Compile and run. ----------------------------------------------
    let program = lower(
        &g,
        &RaSchedule::default(),
        StructureInfo { max_children: 2 },
    )?;
    println!(
        "compiled TreeMaxGate: {} kernels, sync depth {}",
        program.num_kernels(),
        program.meta.sync_depth
    );

    let tree = cortex::ds::datasets::random_binary_tree(23, 9);
    let lin = Linearizer::new().linearize(&tree)?;
    let mut params = Params::new();
    let emb_t = Tensor::random(&[vocab, h], 0.5, 1);
    let w_t = Tensor::random(&[h, h], 0.3, 2);
    let u_t = Tensor::random(&[h, h], 0.3, 3);
    params
        .set("Emb", emb_t.clone())
        .set("W", w_t.clone())
        .set("U", u_t.clone());
    let result = cortex::backend::exec::run(&program, &lin, &params, &DeviceSpec::v100())?;
    let got = &result.outputs[&out.id()];

    // --- Ten-line reference interpreter. --------------------------------
    let sig = |x: f32| 1.0 / (1.0 + (-x).exp());
    let mut vals = vec![vec![0.0f32; h]; tree.num_nodes()];
    for n in tree.post_order() {
        let kids = tree.children(n);
        vals[n.index()] = if kids.is_empty() {
            emb_t.row(tree.word(n) as usize).to_vec()
        } else {
            let (l, r) = (kids[0].index(), kids[1].index());
            let hsum: Vec<f32> = (0..h).map(|i| vals[l][i] + vals[r][i]).collect();
            (0..h)
                .map(|i| {
                    let gv = sig(kernels::dot(u_t.row(i), &hsum));
                    let lt = gv * kernels::dot(w_t.row(i), &vals[l]).tanh();
                    let rt = (1.0 - gv) * kernels::dot(w_t.row(i), &vals[r]).tanh();
                    lt.max(rt)
                })
                .collect()
        };
    }
    let mut max_err = 0.0f32;
    for n in tree.iter() {
        let id = lin.from_structure_id(n) as usize;
        for i in 0..h {
            max_err = max_err.max((got[[id, i]] - vals[n.index()][i]).abs());
        }
    }
    println!("max |compiled - reference| = {max_err:.2e}");
    assert!(max_err < 1e-4);
    println!("a model no vendor library implements, compiled and verified ✓");
    Ok(())
}

//! Sentiment analysis with TreeLSTM over a (synthetic) sentiment
//! treebank, comparing Cortex schedules with the baseline frameworks.
//!
//! This is the workload the paper's headline numbers come from: child-sum
//! TreeLSTM, batch of 10 parse trees, hidden size 256 (reduced here by
//! `--` argument; defaults to 64 so the example runs quickly in dev mode).
//!
//! ```sh
//! cargo run --release --example sentiment_treelstm [hidden_size]
//! ```

use cortex::baselines::dynet::DynetOptions;
use cortex::models::{treelstm, LeafInit};
use cortex::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let batch = 10;
    println!("TreeLSTM, hidden {h}, batch {batch} (synthetic sentiment treebank)\n");

    // The batch is a forest of parse trees.
    let corpus = cortex::ds::datasets::sentiment_treebank(batch, 2021);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    let forest = RecStructure::merge(&refs);
    println!(
        "input: {} sentences, {} nodes, {} wavefronts",
        batch,
        forest.num_nodes(),
        forest.max_height()
    );

    let model = treelstm::tree_lstm(h, LeafInit::Embedding);
    let device = DeviceSpec::v100();

    // --- Cortex under three schedules (the Fig. 10a story). -----------
    for (name, schedule) in [
        ("unoptimized (no fusion)", RaSchedule::unoptimized()),
        (
            "fused + specialized",
            RaSchedule {
                persist: false,
                ..RaSchedule::default()
            },
        ),
        ("fused + specialized + persistent", RaSchedule::default()),
    ] {
        let (result, _lin) = model.run(&forest, &schedule, &device)?;
        println!(
            "cortex [{name}]: {:.3} ms  ({} kernels, {} barriers)",
            result.latency.total_ms(),
            result.profile.launches,
            result.profile.barriers_global
        );
    }

    // --- The baseline frameworks on identical numerics. ----------------
    let eager = cortex::baselines::eager::run(&model, &forest, &device);
    println!(
        "pytorch-like eager: {:.3} ms  ({} kernel calls)",
        eager.latency.total_ms(),
        eager.profile.launches
    );
    let dynet = cortex::baselines::dynet::run(&model, &forest, &device, DynetOptions::default());
    println!(
        "dynet-like batched: {:.3} ms  ({} kernel calls, {:.3} ms graph+batching)",
        dynet.latency.total_ms(),
        dynet.profile.launches,
        (dynet.profile.graph_construction_time + dynet.profile.dynamic_batching_time).as_secs_f64()
            * 1e3
    );
    let cavs = cortex::baselines::cavs::run(&model, &forest, &device);
    println!(
        "cavs-like vertex:   {:.3} ms  ({} kernel calls)",
        cavs.latency.total_ms(),
        cavs.profile.launches
    );

    // All agree numerically with the reference implementation.
    let want = cortex::models::reference::tree_lstm(&forest, &model.params, h, LeafInit::Embedding);
    for n in forest.iter().take(3) {
        let e: f32 = eager.hidden[n.index()]
            .iter()
            .zip(&want.h[n.index()])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(e < 1e-3, "baseline diverged at {n}");
    }
    println!("\nall frameworks agree with the reference numerics ✓");
    Ok(())
}

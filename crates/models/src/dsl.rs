//! Small helpers for writing model bodies in the Recursive API.

use cortex_core::expr::{BoolExpr, CmpOp, IdxExpr, Ufn, ValExpr};
use cortex_core::ra::{BodyCtx, RaTensor};

use cortex_ds::datasets::VOCAB_SIZE;

/// Vocabulary size used for all word-embedding tables.
pub const VOCAB: usize = VOCAB_SIZE as usize;

/// Reads one element of the child-sum `Σ_c state[child_c(n), k]`.
///
/// With `exact` arity (parse trees have exactly two children per internal
/// node; sequences exactly one) the sum reads every slot unconditionally.
/// Otherwise (DAGs) each slot is guarded by the child count, which the
/// executor evaluates lazily.
pub fn child_sum(c: &BodyCtx, state: RaTensor, k: &IdxExpr, slots: usize, exact: bool) -> ValExpr {
    let mut acc: Option<ValExpr> = None;
    for s in 0..slots {
        let child = IdxExpr::Ufn(Ufn::Child(s as u8), vec![c.node()]);
        let read = c.read(state, &[child, k.clone()]);
        let term = if exact {
            read
        } else {
            ValExpr::Select {
                cond: BoolExpr::Cmp(
                    CmpOp::Lt,
                    IdxExpr::Const(s as i64),
                    IdxExpr::Ufn(Ufn::NumChildren, vec![c.node()]),
                ),
                then: Box::new(read),
                otherwise: Box::new(ValExpr::Const(0.0)),
            }
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => prev.add(term),
        });
    }
    acc.expect("at least one child slot")
}

/// An embedding lookup `emb[words[n] % mod, i]` (with `mod = 0` meaning no
/// reduction — the full vocabulary).
pub fn embed(c: &BodyCtx, emb: RaTensor, modulus: usize) -> ValExpr {
    let word = c.node().word();
    let row = if modulus == 0 {
        word
    } else {
        IdxExpr::Bin(
            cortex_core::expr::IdxBinOp::Rem,
            Box::new(word),
            Box::new(IdxExpr::Const(modulus as i64)),
        )
    };
    c.read(emb, &[row, c.axis(0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_core::ra::RaGraph;

    #[test]
    fn child_sum_builds_exact_and_guarded_forms() {
        let mut g = RaGraph::new();
        let ph = g.placeholder("h", &[4]);
        let _exact = g.compute("sum2", &[4], |c| {
            let k = c.axis(0);
            child_sum(c, ph, &k, 2, true)
        });
        let guarded = g.compute("sumg", &[4], |c| {
            let k = c.axis(0);
            child_sum(c, ph, &k, 2, false)
        });
        // The guarded form contains Selects; the exact form does not.
        match &g.ops()[guarded.id().0 as usize].kind {
            cortex_core::ra::RaOpKind::Compute { body, .. } => {
                fn has_select(e: &ValExpr) -> bool {
                    match e {
                        ValExpr::Select { .. } => true,
                        ValExpr::Bin(_, a, b) => has_select(a) || has_select(b),
                        ValExpr::Unary(_, a) => has_select(a),
                        _ => false,
                    }
                }
                assert!(has_select(body));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn embed_applies_modulus() {
        let mut g = RaGraph::new();
        let emb = g.input("E", &[16, 4]);
        let t = g.compute("e", &[4], |c| embed(c, emb, 16));
        match &g.ops()[t.id().0 as usize].kind {
            cortex_core::ra::RaOpKind::Compute { body, .. } => {
                let s = format!("{body}");
                assert!(s.contains('%'), "{s}");
            }
            _ => unreachable!(),
        }
    }
}

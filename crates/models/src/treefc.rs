//! TreeFC: the fully-connected-layer benchmark model from TensorFlow Fold
//! (Looks et al. 2017), run on perfect binary trees of height 7 (Table 2):
//! `h(n) = tanh(W_l · h_l + W_r · h_r + b)` — a fully connected layer over
//! the concatenation of the children states.

use cortex_core::expr::ValExpr;
use cortex_core::ra::RaGraph;

use cortex_backend::params::Params;

use crate::dsl::{embed, VOCAB};
use crate::model::{init_param, LeafInit, Model};

/// Builds the TreeFC model at hidden size `h`.
pub fn tree_fc(h: usize, leaf: LeafInit) -> Model {
    let mut g = RaGraph::new();
    // W (H, 2H) split into the left and right halves of the concat.
    let wl = g.input("W_l", &[h, h]);
    let wr = g.input("W_r", &[h, h]);
    let b = g.input("b", &[h]);
    let emb = g.input("Emb", &[VOCAB, h]);
    let ph = g.placeholder("h_ph", &[h]);
    let rec = g.compute("h_rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mvl = c.sum(h, |c, k| {
            c.read(wl, &[i.clone(), k.clone()])
                .mul(c.read(ph, &[node.clone().child(0), k]))
        });
        let mvr = c.sum(h, |c, k| {
            c.read(wr, &[i.clone(), k.clone()])
                .mul(c.read(ph, &[node.clone().child(1), k]))
        });
        mvl.add(mvr).add(c.read(b, &[i])).tanh()
    });
    let leaf_op = match leaf {
        LeafInit::Zero => g.compute("h_leaf", &[h], |_| ValExpr::Const(0.0)),
        LeafInit::Embedding => g.compute("h_leaf", &[h], |c| embed(c, emb, 0)),
    };
    let body = g.if_then_else("h_body", leaf_op, rec).expect("same shapes");
    let out = g.recursion(ph, body).expect("placeholder recursion");
    g.mark_output(out);

    let mut params = Params::new();
    params.set("W_l", init_param("W_l", &[h, h]));
    params.set("W_r", init_param("W_r", &[h, h]));
    params.set("b", init_param("b", &[h]));
    params.set("Emb", init_param("Emb", &[VOCAB, h]));

    Model {
        name: "TreeFC".to_string(),
        graph: g,
        hidden: h,
        max_children: 2,
        params,
        output: out.id(),
        aux_outputs: Vec::new(),
        refactor_split: None,
        leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::{FusionMode, RaSchedule};
    use cortex_ds::datasets;

    #[test]
    fn matches_reference_on_perfect_trees() {
        let m = tree_fc(8, LeafInit::Embedding);
        let t = datasets::perfect_binary_tree(4, 0);
        let want = reference::tree_fc(&t, &m.params, 8, LeafInit::Embedding);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-5);
    }

    #[test]
    fn unfused_and_unspecialized_match_reference() {
        let m = tree_fc(6, LeafInit::Embedding);
        let t = datasets::perfect_binary_tree(3, 1);
        let want = reference::tree_fc(&t, &m.params, 6, LeafInit::Embedding);
        verify::assert_matches(&m, &t, &RaSchedule::unoptimized(), &want, 1e-5);
        verify::assert_matches(
            &m,
            &t,
            &RaSchedule {
                fusion: FusionMode::Maximal,
                specialize: false,
                ..RaSchedule::default()
            },
            &want,
            1e-5,
        );
    }

    #[test]
    fn batched_forest_matches_reference() {
        let m = tree_fc(4, LeafInit::Embedding);
        let f = datasets::batch_of(|s| datasets::perfect_binary_tree(3, s), 4, 9);
        let want = reference::tree_fc(&f, &m.params, 4, LeafInit::Embedding);
        verify::assert_matches(&m, &f, &RaSchedule::default(), &want, 1e-5);
    }

    #[test]
    fn sync_depth_is_one() {
        let m = tree_fc(8, LeafInit::Embedding);
        assert_eq!(cortex_core::ra::analyze(&m.graph).sync_depth, 1);
    }
}

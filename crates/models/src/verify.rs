//! Output verification: compare an executed program's node-major outputs
//! against reference values computed on the original structure.

use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::Linearized;
use cortex_ds::RecStructure;
use cortex_tensor::Tensor;

use crate::model::Model;

/// Compares a node-major output tensor (in linearized numbering) against
/// per-structure-node reference rows.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn compare_output(
    output: &Tensor,
    lin: &Linearized,
    structure: &RecStructure,
    want: &[Vec<f32>],
    tol: f32,
) -> Result<(), String> {
    let row_len: usize = output.shape().dims().iter().skip(1).product();
    for node in structure.iter() {
        let id = lin.from_structure_id(node) as usize;
        let expect = &want[node.index()];
        if expect.len() != row_len {
            return Err(format!(
                "node {node}: reference row has {} elements, output rows have {row_len}",
                expect.len()
            ));
        }
        let got = &output.as_slice()[id * row_len..(id + 1) * row_len];
        for (i, (&g, &w)) in got.iter().zip(expect).enumerate() {
            if (g - w).abs() > tol {
                return Err(format!(
                    "node {node} (linearized id {id}) element {i}: got {g}, want {w} \
                     (|Δ| = {} > {tol})",
                    (g - w).abs()
                ));
            }
        }
    }
    Ok(())
}

/// Runs `model` under `schedule` and asserts the primary output matches
/// the reference.
///
/// # Panics
///
/// Panics with a diagnostic message on any mismatch or execution error.
pub fn assert_matches(
    model: &Model,
    structure: &RecStructure,
    schedule: &RaSchedule,
    want: &[Vec<f32>],
    tol: f32,
) {
    let (out, lin) = model
        .infer(structure, schedule)
        .unwrap_or_else(|e| panic!("{}: execution failed: {e}", model.name));
    compare_output(&out, &lin, structure, want, tol)
        .unwrap_or_else(|msg| panic!("{}: {msg}", model.name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_ds::linearizer::Linearizer;
    use cortex_ds::{datasets, StructureBuilder, StructureKind};

    #[test]
    fn compare_detects_mismatch() {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        let l = b.leaf(0);
        let r = b.leaf(1);
        b.internal(&[l, r]).unwrap();
        let t = b.finish().unwrap();
        let lin = Linearizer::new().linearize(&t).unwrap();
        let out = Tensor::zeros(&[3, 2]);
        let good = vec![vec![0.0, 0.0]; 3];
        assert!(compare_output(&out, &lin, &t, &good, 1e-6).is_ok());
        let mut bad = good.clone();
        bad[0][1] = 1.0;
        let err = compare_output(&out, &lin, &t, &bad, 1e-6).unwrap_err();
        assert!(err.contains("element 1"), "{err}");
    }

    #[test]
    fn compare_handles_matrix_outputs() {
        let t = datasets::random_binary_tree(2, 0);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let out = Tensor::zeros(&[3, 2, 2]);
        let want = vec![vec![0.0; 4]; 3];
        assert!(compare_output(&out, &lin, &t, &want, 1e-6).is_ok());
    }
}

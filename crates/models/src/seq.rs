//! Sequential LSTM and GRU (Fig. 9): the models GRNN hand-optimizes,
//! expressed as the degenerate single-child case of the tree cells.
//!
//! A sequence is a chain structure (`cortex_ds::datasets::sequence`), so
//! the child-sum reduces to "the previous step's state" and every
//! wavefront holds one node per sequence in the batch — exactly the
//! step-wise parallelism a persistent RNN kernel exploits.

use crate::model::{LeafInit, Model};
use crate::treegru::build_gru;
use crate::treelstm::build_lstm;

/// Sequential LSTM at hidden size `h` (Fig. 9 left).
pub fn seq_lstm(h: usize) -> Model {
    build_lstm("LSTM", h, LeafInit::Embedding, 1)
}

/// Sequential GRU at hidden size `h` (Fig. 9 right). Recursive refactoring
/// applies to it exactly as to TreeGRU (§7.4: "We also use recursive
/// refactoring in the sequential GRU model implementation").
pub fn seq_gru(h: usize) -> Model {
    build_gru("GRU", h, LeafInit::Embedding, 1, true, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::RaSchedule;
    use cortex_ds::datasets;

    #[test]
    fn seq_lstm_matches_reference() {
        let m = seq_lstm(8);
        let s = datasets::sequence(20, 40);
        let want = reference::tree_lstm(&s, &m.params, 8, LeafInit::Embedding);
        verify::assert_matches(&m, &s, &RaSchedule::default(), &want.h, 1e-4);
    }

    #[test]
    fn seq_gru_matches_reference() {
        let m = seq_gru(8);
        let s = datasets::sequence(20, 41);
        let want = reference::tree_gru(&s, &m.params, 8, LeafInit::Embedding, false);
        verify::assert_matches(&m, &s, &RaSchedule::default(), &want, 1e-4);
    }

    #[test]
    fn refactored_seq_gru_matches_reference() {
        let m = seq_gru(6);
        let s = datasets::sequence(15, 42);
        let want = reference::tree_gru(&s, &m.params, 6, LeafInit::Embedding, false);
        verify::assert_matches(&m, &s, &m.refactored_schedule(), &want, 1e-4);
    }

    #[test]
    fn batched_sequences_give_wide_waves() {
        let m = seq_lstm(4);
        let batch = datasets::batch_of(|s| datasets::sequence(10, s), 8, 43);
        let want = reference::tree_lstm(&batch, &m.params, 4, LeafInit::Embedding);
        verify::assert_matches(&m, &batch, &RaSchedule::default(), &want.h, 1e-4);
    }
}

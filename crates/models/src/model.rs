//! The [`Model`] wrapper: an RA graph bundled with its parameters and the
//! metadata the benchmark harness needs.

use std::error::Error;
use std::fmt;

use cortex_backend::device::DeviceSpec;
use cortex_backend::exec::{self, ExecError, RunResult};
use cortex_backend::params::Params;
use cortex_core::expr::TensorId;
use cortex_core::ilir::IlirProgram;
use cortex_core::lower::{lower, LowerError, StructureInfo};
use cortex_core::ra::{RaGraph, RaSchedule};
use cortex_ds::linearizer::{LinearizeError, Linearized, Linearizer};
use cortex_ds::RecStructure;
use cortex_tensor::Tensor;

/// How a model initializes its recursion at the leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafInit {
    /// The zero tensor — constant-propagated away entirely (§4.3).
    Zero,
    /// An embedding lookup per leaf word.
    Embedding,
}

/// Errors from building or running a model.
#[derive(Debug)]
pub enum ModelError {
    /// Lowering failed.
    Lower(LowerError),
    /// Execution failed.
    Exec(ExecError),
    /// Linearization failed.
    Linearize(LinearizeError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Lower(e) => write!(f, "lowering: {e}"),
            ModelError::Exec(e) => write!(f, "execution: {e}"),
            ModelError::Linearize(e) => write!(f, "linearization: {e}"),
        }
    }
}

impl Error for ModelError {}

impl From<LowerError> for ModelError {
    fn from(e: LowerError) -> Self {
        ModelError::Lower(e)
    }
}

impl From<ExecError> for ModelError {
    fn from(e: ExecError) -> Self {
        ModelError::Exec(e)
    }
}

impl From<LinearizeError> for ModelError {
    fn from(e: LinearizeError) -> Self {
        ModelError::Linearize(e)
    }
}

/// A recursive model: RA graph, deterministic parameters and harness
/// metadata.
#[derive(Debug, Clone)]
pub struct Model {
    /// Model name (Table 2 short name).
    pub name: String,
    /// The RA computation.
    pub graph: RaGraph,
    /// Hidden size `H`.
    pub hidden: usize,
    /// Maximum children per node of the structures this model consumes.
    pub max_children: usize,
    /// Deterministically initialized parameters.
    pub params: Params,
    /// The primary (hidden-state) recursion output.
    pub output: TensorId,
    /// Additional outputs (e.g. the TreeLSTM cell state).
    pub aux_outputs: Vec<TensorId>,
    /// The op at which recursive refactoring splits this model (Fig. 4),
    /// when the experiment calls for it.
    pub refactor_split: Option<TensorId>,
    /// Leaf initialization.
    pub leaf: LeafInit,
}

impl Model {
    /// Lowers the model under a schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`LowerError`] for invalid schedule combinations.
    pub fn lower(&self, schedule: &RaSchedule) -> Result<IlirProgram, ModelError> {
        Ok(lower(
            &self.graph,
            schedule,
            StructureInfo {
                max_children: self.max_children,
            },
        )?)
    }

    /// The default schedule with this model's refactor split applied.
    pub fn refactored_schedule(&self) -> RaSchedule {
        RaSchedule {
            refactor_split: self.refactor_split,
            ..RaSchedule::default()
        }
    }

    /// Linearizes `structure` and runs the model end to end on `device`,
    /// filling the linearization time into the profile (§7.5).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for lowering, linearization or execution
    /// failures.
    pub fn run(
        &self,
        structure: &RecStructure,
        schedule: &RaSchedule,
        device: &DeviceSpec,
    ) -> Result<(RunResult, Linearized), ModelError> {
        let program = self.lower(schedule)?;
        let (lin, lin_time) = Linearizer::new().linearize_timed(structure)?;
        let mut result = exec::run(&program, &lin, &self.params, device)?;
        result.profile.linearize_time = lin_time;
        result.latency = device.latency(&result.profile);
        Ok((result, lin))
    }

    /// Runs and returns just the primary output tensor (node-major hidden
    /// states in linearized numbering).
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn infer(
        &self,
        structure: &RecStructure,
        schedule: &RaSchedule,
    ) -> Result<(Tensor, Linearized), ModelError> {
        let (mut result, lin) = self.run(structure, schedule, &DeviceSpec::v100())?;
        let out = result
            .outputs
            .remove(&self.output)
            .expect("primary output produced by execution");
        Ok((out, lin))
    }
}

/// Deterministic parameter initialization: uniform in `[-1/sqrt(fan_in),
/// 1/sqrt(fan_in))`, seeded from the parameter name so every run of every
/// experiment sees identical weights.
pub fn init_param(name: &str, dims: &[usize]) -> Tensor {
    let fan_in = dims.last().copied().unwrap_or(1).max(1);
    let bound = 1.0 / (fan_in as f32).sqrt();
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    Tensor::random(dims, bound, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_param_is_deterministic_and_scaled() {
        let a = init_param("U_r", &[8, 8]);
        let b = init_param("U_r", &[8, 8]);
        let c = init_param("U_z", &[8, 8]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let bound = 1.0 / (8f32).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
    }
}

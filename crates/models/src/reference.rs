//! Pure-Rust reference implementations of every model, computed by direct
//! recursion over the pointer-linked structure with exact nonlinearities.
//!
//! These are the ground truth for all schedule-equivalence tests: whatever
//! combination of fusion, specialization, batching, unrolling, refactoring
//! or peeling the compiler applies, the executed program must reproduce
//! these values.
//!
//! Results are indexed by the *structure's* node ids (builder order);
//! [`crate::verify`] translates through the linearizer's renumbering when
//! comparing.

use cortex_backend::params::Params;
use cortex_ds::{RecStructure, StructureKind};
use cortex_tensor::{kernels, Tensor};

use crate::model::LeafInit;

fn p<'a>(params: &'a Params, name: &str) -> &'a Tensor {
    params
        .get(name)
        .unwrap_or_else(|| panic!("reference: missing parameter '{name}'"))
}

/// `W · x` accumulated in the same order as the executor's fast path
/// (slice dot per output row).
fn mv(w: &Tensor, x: &[f32]) -> Vec<f32> {
    let h_out = w.shape().dim(0);
    (0..h_out).map(|i| kernels::dot(w.row(i), x)).collect()
}

fn add3(a: &[f32], b: &[f32], c: &[f32]) -> Vec<f32> {
    a.iter()
        .zip(b)
        .zip(c)
        .map(|((x, y), z)| x + y + z)
        .collect()
}

fn child_sum(vals: &[Vec<f32>], children: &[usize], h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; h];
    // Match the inlined `h[c0] + h[c1] + …` association (left to right,
    // elementwise).
    for i in 0..h {
        let mut acc = vals[children[0]][i];
        for &c in &children[1..] {
            acc += vals[c][i];
        }
        out[i] = acc;
    }
    out
}

fn leaf_vec(leaf: LeafInit, emb: &Tensor, word: u32, h: usize) -> Vec<f32> {
    match leaf {
        LeafInit::Zero => vec![0.0; h],
        LeafInit::Embedding => emb.row(word as usize).to_vec(),
    }
}

/// TreeRNN: `h(n) = tanh(W · (Σ_c h_c) + b)`.
pub fn tree_rnn(s: &RecStructure, params: &Params, h: usize, leaf: LeafInit) -> Vec<Vec<f32>> {
    let w = p(params, "W");
    let b = p(params, "b");
    let emb = p(params, "Emb");
    let mut vals = vec![Vec::new(); s.num_nodes()];
    for n in s.post_order() {
        let kids: Vec<usize> = s.children(n).iter().map(|c| c.index()).collect();
        vals[n.index()] = if kids.is_empty() {
            leaf_vec(leaf, emb, s.word(n), h)
        } else {
            let hs = child_sum(&vals, &kids, h);
            mv(w, &hs)
                .iter()
                .zip(b.as_slice())
                .map(|(x, bias)| (x + bias).tanh())
                .collect()
        };
    }
    vals
}

/// TreeFC: `h(n) = tanh(W_l · h_l + W_r · h_r + b)`.
pub fn tree_fc(s: &RecStructure, params: &Params, h: usize, leaf: LeafInit) -> Vec<Vec<f32>> {
    let wl = p(params, "W_l");
    let wr = p(params, "W_r");
    let b = p(params, "b");
    let emb = p(params, "Emb");
    let mut vals = vec![Vec::new(); s.num_nodes()];
    for n in s.post_order() {
        let kids = s.children(n);
        vals[n.index()] = if kids.is_empty() {
            leaf_vec(leaf, emb, s.word(n), h)
        } else {
            let l = mv(wl, &vals[kids[0].index()]);
            let r = mv(wr, &vals[kids[1].index()]);
            add3(&l, &r, b.as_slice())
                .iter()
                .map(|x| x.tanh())
                .collect()
        };
    }
    vals
}

/// TreeGRU / SimpleTreeGRU (also the sequential GRU via single children).
pub fn tree_gru(
    s: &RecStructure,
    params: &Params,
    h: usize,
    leaf: LeafInit,
    simple: bool,
) -> Vec<Vec<f32>> {
    let ur = p(params, "U_r");
    let uz = p(params, "U_z");
    let uh = p(params, "U_h");
    let br = p(params, "b_r");
    let bz = p(params, "b_z");
    let bh = p(params, "b_h");
    let emb = p(params, "Emb");
    let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
    let mut vals = vec![Vec::new(); s.num_nodes()];
    for n in s.post_order() {
        let kids: Vec<usize> = s.children(n).iter().map(|c| c.index()).collect();
        vals[n.index()] = if kids.is_empty() {
            leaf_vec(leaf, emb, s.word(n), h)
        } else {
            let hs = child_sum(&vals, &kids, h);
            let r: Vec<f32> = mv(ur, &hs)
                .iter()
                .zip(br.as_slice())
                .map(|(x, b)| sigmoid(x + b))
                .collect();
            let z: Vec<f32> = mv(uz, &hs)
                .iter()
                .zip(bz.as_slice())
                .map(|(x, b)| sigmoid(x + b))
                .collect();
            let gated: Vec<f32> = r.iter().zip(&hs).map(|(rv, hv)| rv * hv).collect();
            let hp: Vec<f32> = mv(uh, &gated)
                .iter()
                .zip(bh.as_slice())
                .map(|(x, b)| (x + b).tanh())
                .collect();
            (0..h)
                .map(|i| {
                    let keep = (1.0 - z[i]) * hp[i];
                    if simple {
                        keep
                    } else {
                        z[i] * hs[i] + keep
                    }
                })
                .collect()
        };
    }
    vals
}

/// TreeLSTM reference values: both hidden and cell states.
#[derive(Debug, Clone)]
pub struct LstmRef {
    /// Hidden states per structure node.
    pub h: Vec<Vec<f32>>,
    /// Cell states per structure node.
    pub c: Vec<Vec<f32>>,
}

/// Child-sum TreeLSTM (also the sequential LSTM via single children).
pub fn tree_lstm(s: &RecStructure, params: &Params, h: usize, leaf: LeafInit) -> LstmRef {
    let ui = p(params, "U_i");
    let uo = p(params, "U_o");
    let uu = p(params, "U_u");
    let uf = p(params, "U_f");
    let bi = p(params, "b_i");
    let bo = p(params, "b_o");
    let bu = p(params, "b_u");
    let bf = p(params, "b_f");
    let emb_c = p(params, "Emb_c");
    let emb_h = p(params, "Emb_h");
    let sigmoid = |x: f32| 1.0 / (1.0 + (-x).exp());
    let mut hv = vec![Vec::new(); s.num_nodes()];
    let mut cv = vec![Vec::new(); s.num_nodes()];
    for n in s.post_order() {
        let kids: Vec<usize> = s.children(n).iter().map(|c| c.index()).collect();
        if kids.is_empty() {
            cv[n.index()] = leaf_vec(leaf, emb_c, s.word(n), h);
            hv[n.index()] = leaf_vec(leaf, emb_h, s.word(n), h);
        } else {
            let hs = child_sum(&hv, &kids, h);
            let ig: Vec<f32> = mv(ui, &hs)
                .iter()
                .zip(bi.as_slice())
                .map(|(x, b)| sigmoid(x + b))
                .collect();
            let og: Vec<f32> = mv(uo, &hs)
                .iter()
                .zip(bo.as_slice())
                .map(|(x, b)| sigmoid(x + b))
                .collect();
            let ug: Vec<f32> = mv(uu, &hs)
                .iter()
                .zip(bu.as_slice())
                .map(|(x, b)| (x + b).tanh())
                .collect();
            let fgs: Vec<Vec<f32>> = kids
                .iter()
                .map(|&c| {
                    mv(uf, &hv[c])
                        .iter()
                        .zip(bf.as_slice())
                        .map(|(x, b)| sigmoid(x + b))
                        .collect()
                })
                .collect();
            let c_new: Vec<f32> = (0..h)
                .map(|i| {
                    let mut acc = ig[i] * ug[i];
                    for (f, &cid) in fgs.iter().zip(&kids) {
                        acc += f[i] * cv[cid][i];
                    }
                    acc
                })
                .collect();
            let h_new: Vec<f32> = (0..h).map(|i| og[i] * c_new[i].tanh()).collect();
            cv[n.index()] = c_new;
            hv[n.index()] = h_new;
        }
    }
    LstmRef { h: hv, c: cv }
}

/// MV-RNN reference values: vectors and (row-major flattened) matrices.
#[derive(Debug, Clone)]
pub struct MvRef {
    /// Composition vectors per node.
    pub a: Vec<Vec<f32>>,
    /// Composition matrices per node, row-major `h*h`.
    pub mats: Vec<Vec<f32>>,
}

/// MV-RNN (Socher et al. 2012).
pub fn mv_rnn(s: &RecStructure, params: &Params, h: usize) -> MvRef {
    let w1 = p(params, "W_1");
    let w2 = p(params, "W_2");
    let b = p(params, "b");
    let wm1 = p(params, "W_M1");
    let wm2 = p(params, "W_M2");
    let emb = p(params, "Emb");
    let emb_m = p(params, "Emb_M");
    let mat_vocab = emb_m.shape().dim(0);
    let mut av = vec![Vec::new(); s.num_nodes()];
    let mut mats = vec![Vec::new(); s.num_nodes()];
    // Matrix × vector with the matrix stored row-major in a flat slice,
    // accumulated sequentially (matching the executor's strided loop).
    let mat_mv = |m: &[f32], x: &[f32]| -> Vec<f32> {
        (0..h)
            .map(|i| {
                let mut acc = 0.0f32;
                for k in 0..h {
                    acc += m[i * h + k] * x[k];
                }
                acc
            })
            .collect()
    };
    for n in s.post_order() {
        let kids = s.children(n);
        if kids.is_empty() {
            av[n.index()] = emb.row(s.word(n) as usize).to_vec();
            let row = (s.word(n) as usize) % mat_vocab;
            mats[n.index()] = emb_m.as_slice()[row * h * h..(row + 1) * h * h].to_vec();
        } else {
            let (l, r) = (kids[0].index(), kids[1].index());
            let ba = mat_mv(&mats[r], &av[l]);
            let ab = mat_mv(&mats[l], &av[r]);
            let p1 = mv(w1, &ba);
            let p2 = mv(w2, &ab);
            av[n.index()] = add3(&p1, &p2, b.as_slice())
                .iter()
                .map(|x| x.tanh())
                .collect();
            // A(n)[i][j] = Σ_k WM1[i,k] A_l[k,j] + Σ_k WM2[i,k] A_r[k,j]
            let mut m_new = vec![0.0f32; h * h];
            for i in 0..h {
                for j in 0..h {
                    let mut acc1 = 0.0f32;
                    for k in 0..h {
                        acc1 += wm1[[i, k]] * mats[l][k * h + j];
                    }
                    let mut acc2 = 0.0f32;
                    for k in 0..h {
                        acc2 += wm2[[i, k]] * mats[r][k * h + j];
                    }
                    m_new[i * h + j] = acc1 + acc2;
                }
            }
            mats[n.index()] = m_new;
        }
    }
    MvRef { a: av, mats }
}

/// DAG-RNN (recursive portion): `h(n) = tanh(x(n) + Σ_d U_d · h(child_d))`.
pub fn dag_rnn(s: &RecStructure, params: &Params, h: usize) -> Vec<Vec<f32>> {
    assert_eq!(s.kind(), StructureKind::Dag, "DAG-RNN expects DAG inputs");
    let wx = p(params, "W_x");
    let bx = p(params, "b_x");
    let us = [p(params, "U_0"), p(params, "U_1")];
    let emb = p(params, "Emb");
    let mut vals = vec![Vec::new(); s.num_nodes()];
    for n in s.post_order() {
        let x: Vec<f32> = mv(wx, emb.row(s.word(n) as usize))
            .iter()
            .zip(bx.as_slice())
            .map(|(v, b)| v + b)
            .collect();
        let kids = s.children(n);
        vals[n.index()] = (0..h)
            .map(|i| {
                let mut acc = x[i];
                for (d, c) in kids.iter().enumerate() {
                    acc += kernels::dot(us[d].row(i), &vals[c.index()]);
                }
                acc.tanh()
            })
            .collect();
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::init_param;
    use cortex_ds::datasets;

    #[test]
    fn tree_rnn_leaf_values_pass_through() {
        let mut params = Params::new();
        params.set("W", init_param("W", &[4, 4]));
        params.set("b", init_param("b", &[4]));
        params.set("Emb", init_param("Emb", &[crate::dsl::VOCAB, 4]));
        let t = datasets::random_binary_tree(3, 0);
        let vals = tree_rnn(&t, &params, 4, LeafInit::Embedding);
        for n in t.iter().filter(|&n| t.is_leaf(n)) {
            let emb = params.get("Emb").unwrap();
            assert_eq!(vals[n.index()], emb.row(t.word(n) as usize));
        }
    }

    #[test]
    fn gru_outputs_bounded() {
        let m = crate::treegru::tree_gru(4, LeafInit::Zero);
        let t = datasets::random_binary_tree(10, 1);
        let vals = tree_gru(&t, &m.params, 4, LeafInit::Zero, false);
        // GRU states are convex-ish combinations of tanh values: bounded.
        for v in vals.iter().flat_map(|v| v.iter()) {
            assert!(v.abs() <= 2.0, "unexpected magnitude {v}");
        }
    }

    #[test]
    fn lstm_cell_and_hidden_have_consistent_shapes() {
        let m = crate::treelstm::tree_lstm(4, LeafInit::Zero);
        let t = datasets::random_binary_tree(5, 2);
        let r = tree_lstm(&t, &m.params, 4, LeafInit::Zero);
        assert_eq!(r.h.len(), t.num_nodes());
        assert_eq!(r.c.len(), t.num_nodes());
        assert!(r.h.iter().all(|v| v.len() == 4));
    }

    #[test]
    fn dag_rnn_rejects_trees() {
        let m = crate::dagrnn::dag_rnn(4);
        let t = datasets::random_binary_tree(4, 3);
        let result = std::panic::catch_unwind(|| dag_rnn(&t, &m.params, 4));
        assert!(result.is_err());
    }
}

//! MV-RNN (Socher et al. 2012): matrix–vector recursive network.
//!
//! Every node carries a vector `a ∈ R^H` and a matrix `A ∈ R^{H×H}`:
//!
//! ```text
//! p(n) = tanh(W_1 · (A_r · a_l) + W_2 · (A_l · a_r) + b)
//! A(n) = W_M1 · A_l + W_M2 · A_r
//! ```
//!
//! Leaves take `a` from a word-embedding table and `A` from a (reduced)
//! word-matrix table. The chained reductions (`W · (A · a)`) give MV-RNN a
//! sync depth of 2 and make it by far the heaviest model per node, which
//! is why the paper evaluates it at hidden sizes 64/128 instead of
//! 256/512.

use cortex_core::expr::{IdxBinOp, IdxExpr};
use cortex_core::ra::RaGraph;

use cortex_backend::params::Params;

use crate::dsl::{embed, VOCAB};
use crate::model::{init_param, LeafInit, Model};

/// Size of the word-matrix table (`A` embeddings are indexed by
/// `word % MAT_VOCAB` to keep the table within laptop memory; the
/// experiments only consume topology and arithmetic shape).
pub const MAT_VOCAB: usize = 64;

/// Builds the MV-RNN model at hidden size `h`. Leaves always use
/// embeddings (a zero leaf matrix would collapse the recursion).
pub fn mv_rnn(h: usize) -> Model {
    let mut g = RaGraph::new();
    let w1 = g.input("W_1", &[h, h]);
    let w2 = g.input("W_2", &[h, h]);
    let b = g.input("b", &[h]);
    let wm1 = g.input("W_M1", &[h, h]);
    let wm2 = g.input("W_M2", &[h, h]);
    let emb = g.input("Emb", &[VOCAB, h]);
    let emb_m = g.input("Emb_M", &[MAT_VOCAB, h, h]);
    let a_ph = g.placeholder("a_ph", &[h]);
    let m_ph = g.placeholder("A_ph", &[h, h]);

    // Ba: the right child's matrix applied to the left child's vector.
    let mva = g.compute("mva", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        c.sum(h, |c, k| {
            c.read(m_ph, &[node.clone().child(1), i.clone(), k.clone()])
                .mul(c.read(a_ph, &[node.clone().child(0), k]))
        })
    });
    // Ab: the left child's matrix applied to the right child's vector.
    let mvb = g.compute("mvb", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        c.sum(h, |c, k| {
            c.read(m_ph, &[node.clone().child(0), i.clone(), k.clone()])
                .mul(c.read(a_ph, &[node.clone().child(1), k]))
        })
    });
    let a_rec = g.compute("a_rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let p1 = c.sum(h, |c, k| {
            c.read(w1, &[i.clone(), k.clone()])
                .mul(c.read(mva, &[node.clone(), k]))
        });
        let p2 = c.sum(h, |c, k| {
            c.read(w2, &[i.clone(), k.clone()])
                .mul(c.read(mvb, &[node.clone(), k]))
        });
        p1.add(p2).add(c.read(b, &[i])).tanh()
    });
    let m_rec = g.compute("A_rec", &[h, h], |c| {
        let i = c.axis(0);
        let j = c.axis(1);
        let node = c.node();
        let p1 = c.sum(h, |c, k| {
            c.read(wm1, &[i.clone(), k.clone()])
                .mul(c.read(m_ph, &[node.clone().child(0), k, j.clone()]))
        });
        let p2 = c.sum(h, |c, k| {
            c.read(wm2, &[i.clone(), k.clone()])
                .mul(c.read(m_ph, &[node.clone().child(1), k, j.clone()]))
        });
        p1.add(p2)
    });
    let a_leaf = g.compute("a_leaf", &[h], |c| embed(c, emb, 0));
    let m_leaf = g.compute("A_leaf", &[h, h], |c| {
        let row = IdxExpr::Bin(
            IdxBinOp::Rem,
            Box::new(c.node().word()),
            Box::new(IdxExpr::Const(MAT_VOCAB as i64)),
        );
        c.read(emb_m, &[row, c.axis(0), c.axis(1)])
    });
    let a_body = g
        .if_then_else("a_body", a_leaf, a_rec)
        .expect("same shapes");
    let m_body = g
        .if_then_else("A_body", m_leaf, m_rec)
        .expect("same shapes");
    let a_out = g.recursion(a_ph, a_body).expect("vector recursion");
    let m_out = g.recursion(m_ph, m_body).expect("matrix recursion");
    g.mark_output(a_out);
    g.mark_output(m_out);

    let mut params = Params::new();
    for (n, dims) in [
        ("W_1", vec![h, h]),
        ("W_2", vec![h, h]),
        ("b", vec![h]),
        ("W_M1", vec![h, h]),
        ("W_M2", vec![h, h]),
        ("Emb", vec![VOCAB, h]),
        ("Emb_M", vec![MAT_VOCAB, h, h]),
    ] {
        params.set(n, init_param(n, &dims));
    }
    Model {
        name: "MV-RNN".to_string(),
        graph: g,
        hidden: h,
        max_children: 2,
        params,
        output: a_out.id(),
        aux_outputs: vec![m_out.id()],
        refactor_split: None,
        leaf: LeafInit::Embedding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::{analyze, RaSchedule};
    use cortex_ds::datasets;

    #[test]
    fn matches_reference_on_sst_trees() {
        let m = mv_rnn(6);
        let t = datasets::random_binary_tree(7, 20);
        let want = reference::mv_rnn(&t, &m.params, 6);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want.a, 1e-4);
    }

    #[test]
    fn matrix_recursion_matches_reference() {
        let m = mv_rnn(5);
        let t = datasets::random_binary_tree(6, 21);
        let want = reference::mv_rnn(&t, &m.params, 5);
        let (result, lin) = m
            .run(
                &t,
                &RaSchedule::default(),
                &cortex_backend::DeviceSpec::v100(),
            )
            .unwrap();
        let mats = &result.outputs[&m.aux_outputs[0]];
        // Flatten the H×H matrices row-major for comparison.
        let flat: Vec<Vec<f32>> = want.mats;
        let h = 5;
        for node in t.iter() {
            let id = lin.from_structure_id(node) as usize;
            for i in 0..h {
                for j in 0..h {
                    let got = mats[[id, i, j]];
                    let exp = flat[node.index()][i * h + j];
                    assert!(
                        (got - exp).abs() < 1e-4,
                        "A mismatch at node {node} ({i},{j}): {got} vs {exp}"
                    );
                }
            }
        }
    }

    #[test]
    fn mv_rnn_sync_depth_is_two() {
        let m = mv_rnn(4);
        assert_eq!(analyze(&m.graph).sync_depth, 2);
    }

    #[test]
    fn unfused_matches_reference() {
        let m = mv_rnn(4);
        let t = datasets::random_binary_tree(5, 22);
        let want = reference::mv_rnn(&t, &m.params, 4);
        verify::assert_matches(&m, &t, &RaSchedule::unoptimized(), &want.a, 1e-4);
    }
}

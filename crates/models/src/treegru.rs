//! Child-sum TreeGRU and the SimpleTreeGRU variant of §7.4.
//!
//! ```text
//! hsum = Σ_c h(c)
//! r    = σ(U_r · hsum + b_r)
//! z    = σ(U_z · hsum + b_z)
//! h'   = tanh(U_h · (r ∘ hsum) + b_h)
//! h    = z ∘ hsum + (1 − z) ∘ h'      (TreeGRU)
//! h    = (1 − z) ∘ h'                 (SimpleTreeGRU, footnote 4)
//! ```
//!
//! The chained reductions (`h'` reduces over the same-wave tensor
//! `r ∘ hsum`) give the GRU cell a sync depth of 2 — two barrier-separated
//! segments per wavefront — which is what recursive refactoring targets
//! (Fig. 10c): the refactor split is at the `h'` operator.

use cortex_core::expr::{TensorId, ValExpr};
use cortex_core::ra::RaGraph;

use cortex_backend::params::Params;

use crate::dsl::{child_sum, embed, VOCAB};
use crate::model::{init_param, LeafInit, Model};

/// Builds the child-sum TreeGRU.
pub fn tree_gru(h: usize, leaf: LeafInit) -> Model {
    build_gru("TreeGRU", h, leaf, 2, true, false)
}

/// Builds SimpleTreeGRU (`h = (1 − z) ∘ h'`).
pub fn simple_tree_gru(h: usize, leaf: LeafInit) -> Model {
    build_gru("SimpleTreeGRU", h, leaf, 2, true, true)
}

/// Shared GRU-cell builder; also used for the sequential GRU (Fig. 9) via
/// `slots = 1`.
pub(crate) fn build_gru(
    name: &str,
    h: usize,
    leaf: LeafInit,
    slots: usize,
    exact: bool,
    simple: bool,
) -> Model {
    let mut g = RaGraph::new();
    let ur = g.input("U_r", &[h, h]);
    let uz = g.input("U_z", &[h, h]);
    let uh = g.input("U_h", &[h, h]);
    let br = g.input("b_r", &[h]);
    let bz = g.input("b_z", &[h]);
    let bh = g.input("b_h", &[h]);
    let emb = g.input("Emb", &[VOCAB, h]);
    let ph = g.placeholder("h_ph", &[h]);

    let hsum = g.compute("hsum", &[h], |c| {
        let k = c.axis(0);
        child_sum(c, ph, &k, slots, exact)
    });
    let r = g.compute("r", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mv = c.sum(h, |c, k| {
            c.read(ur, &[i.clone(), k.clone()])
                .mul(c.read(hsum, &[node.clone(), k]))
        });
        mv.add(c.read(br, &[i])).sigmoid()
    });
    let z = g.compute("z", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mv = c.sum(h, |c, k| {
            c.read(uz, &[i.clone(), k.clone()])
                .mul(c.read(hsum, &[node.clone(), k]))
        });
        mv.add(c.read(bz, &[i])).sigmoid()
    });
    let hp = g.compute("hp", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mv = c.sum(h, |c, k| {
            let gated = c
                .read(r, &[node.clone(), k.clone()])
                .mul(c.read(hsum, &[node.clone(), k.clone()]));
            c.read(uh, &[i.clone(), k]).mul(gated)
        });
        mv.add(c.read(bh, &[i])).tanh()
    });
    let rec = g.compute("h_rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let zv = c.read(z, &[node.clone(), i.clone()]);
        let hpv = c.read(hp, &[node.clone(), i.clone()]);
        let keep = ValExpr::Const(1.0).sub(zv.clone()).mul(hpv);
        if simple {
            keep
        } else {
            zv.mul(c.read(hsum, &[node, i])).add(keep)
        }
    });
    let leaf_op = match leaf {
        LeafInit::Zero => g.compute("h_leaf", &[h], |_| ValExpr::Const(0.0)),
        LeafInit::Embedding => g.compute("h_leaf", &[h], |c| embed(c, emb, 0)),
    };
    let body = g.if_then_else("h_body", leaf_op, rec).expect("same shapes");
    let out = g.recursion(ph, body).expect("placeholder recursion");
    g.mark_output(out);

    let mut params = Params::new();
    for (n, dims) in [
        ("U_r", vec![h, h]),
        ("U_z", vec![h, h]),
        ("U_h", vec![h, h]),
        ("b_r", vec![h]),
        ("b_z", vec![h]),
        ("b_h", vec![h]),
        ("Emb", vec![VOCAB, h]),
    ] {
        params.set(n, init_param(n, &dims));
    }

    Model {
        name: name.to_string(),
        graph: g,
        hidden: h,
        max_children: slots,
        params,
        output: out.id(),
        aux_outputs: Vec::new(),
        refactor_split: Some(TensorId(hp.id().0)),
        leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::{analyze, analyze_refactor, RaSchedule};
    use cortex_ds::datasets;

    #[test]
    fn tree_gru_matches_reference() {
        let m = tree_gru(8, LeafInit::Embedding);
        let t = datasets::random_binary_tree(10, 2);
        let want = reference::tree_gru(&t, &m.params, 8, LeafInit::Embedding, false);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-4);
    }

    #[test]
    fn simple_tree_gru_matches_reference() {
        let m = simple_tree_gru(8, LeafInit::Embedding);
        let t = datasets::random_binary_tree(10, 3);
        let want = reference::tree_gru(&t, &m.params, 8, LeafInit::Embedding, true);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-4);
    }

    #[test]
    fn gru_has_sync_depth_two() {
        let m = tree_gru(8, LeafInit::Zero);
        assert_eq!(
            analyze(&m.graph).sync_depth,
            2,
            "chained matvecs need two segments"
        );
    }

    #[test]
    fn refactoring_reduces_depth_and_crosses_tensors() {
        // Both variants materialize {hsum, r, z} across the moved boundary;
        // the full TreeGRU additionally re-reads hsum elementwise in its
        // h-gate, which shows up as extra traffic at runtime (the reason
        // Fig. 10c reports little benefit for TreeGRU).
        for m in [
            tree_gru(8, LeafInit::Zero),
            simple_tree_gru(8, LeafInit::Zero),
        ] {
            let info = analyze_refactor(&m.graph, m.refactor_split.unwrap()).unwrap();
            assert_eq!(info.depth_before, 2, "{}", m.name);
            assert_eq!(info.depth_after, 1, "{}", m.name);
            assert_eq!(info.crossing_tensors.len(), 3, "{}", m.name);
        }
    }

    #[test]
    fn refactored_schedule_matches_reference() {
        let m = simple_tree_gru(6, LeafInit::Embedding);
        let t = datasets::random_binary_tree(12, 4);
        let want = reference::tree_gru(&t, &m.params, 6, LeafInit::Embedding, true);
        verify::assert_matches(&m, &t, &m.refactored_schedule(), &want, 1e-4);
    }

    #[test]
    fn refactored_tree_gru_matches_reference() {
        let m = tree_gru(6, LeafInit::Embedding);
        let t = datasets::random_binary_tree(9, 8);
        let want = reference::tree_gru(&t, &m.params, 6, LeafInit::Embedding, false);
        verify::assert_matches(&m, &t, &m.refactored_schedule(), &want, 1e-4);
    }
}

//! TreeRNN: the simple recursive model of §7.4, an extension of the
//! sequential RNN to trees: `h(n) = tanh(W · (h_l + h_r) + b)`.

use cortex_core::expr::ValExpr;
use cortex_core::ra::RaGraph;

use crate::dsl::{child_sum, embed, VOCAB};
use crate::model::{init_param, LeafInit, Model};

use cortex_backend::params::Params;

/// Builds the TreeRNN model at hidden size `h`.
pub fn tree_rnn(h: usize, leaf: LeafInit) -> Model {
    let mut g = RaGraph::new();
    let w = g.input("W", &[h, h]);
    let b = g.input("b", &[h]);
    let emb = g.input("Emb", &[VOCAB, h]);
    let ph = g.placeholder("h_ph", &[h]);
    let rec = g.compute("h_rec", &[h], |c| {
        let i = c.axis(0);
        let mv = c.sum(h, |c, k| {
            c.read(w, &[i.clone(), k.clone()])
                .mul(child_sum(c, ph, &k, 2, true))
        });
        mv.add(c.read(b, &[i])).tanh()
    });
    let leaf_op = match leaf {
        LeafInit::Zero => g.compute("h_leaf", &[h], |_| ValExpr::Const(0.0)),
        LeafInit::Embedding => g.compute("h_leaf", &[h], |c| embed(c, emb, 0)),
    };
    let body = g.if_then_else("h_body", leaf_op, rec).expect("same shapes");
    let out = g.recursion(ph, body).expect("placeholder recursion");
    g.mark_output(out);

    let mut params = Params::new();
    params.set("W", init_param("W", &[h, h]));
    params.set("b", init_param("b", &[h]));
    params.set("Emb", init_param("Emb", &[VOCAB, h]));

    Model {
        name: "TreeRNN".to_string(),
        graph: g,
        hidden: h,
        max_children: 2,
        params,
        output: out.id(),
        aux_outputs: Vec::new(),
        refactor_split: None,
        leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::RaSchedule;
    use cortex_ds::datasets;

    #[test]
    fn matches_reference_on_sst_trees() {
        let m = tree_rnn(8, LeafInit::Embedding);
        let t = datasets::random_binary_tree(11, 5);
        let want = reference::tree_rnn(&t, &m.params, 8, LeafInit::Embedding);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-5);
    }

    #[test]
    fn zero_leaves_match_reference_and_hoist() {
        let m = tree_rnn(8, LeafInit::Zero);
        let t = datasets::random_binary_tree(9, 6);
        let want = reference::tree_rnn(&t, &m.params, 8, LeafInit::Zero);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want, 1e-5);
        let p = m.lower(&RaSchedule::default()).unwrap();
        assert!(
            p.meta.leaf_zero,
            "zero leaf case should be constant-propagated"
        );
    }

    #[test]
    fn unrolled_schedule_matches_reference() {
        let m = tree_rnn(4, LeafInit::Embedding);
        let t = datasets::random_binary_tree(17, 7);
        let want = reference::tree_rnn(&t, &m.params, 4, LeafInit::Embedding);
        let s = RaSchedule {
            unroll: Some(2),
            unroll_block_local: true,
            ..RaSchedule::default()
        };
        verify::assert_matches(&m, &t, &s, &want, 1e-5);
    }

    #[test]
    fn sync_depth_is_one() {
        let m = tree_rnn(8, LeafInit::Embedding);
        assert_eq!(cortex_core::ra::analyze(&m.graph).sync_depth, 1);
    }
}

//! DAG-RNN (Shuai et al. 2015): the recursive portion of the
//! scene-labeling network, evaluated on synthetic 10×10 grid DAGs
//! (Table 2).
//!
//! ```text
//! x(n) = W_x · Emb[word(n)] + b_x        (input transform, hoisted to the
//!                                          precompute kernel — §7.1)
//! h(n) = tanh(x(n) + Σ_d U_d · h(child_d(n)))
//! ```
//!
//! Grid nodes have up to two predecessors (`up` and `left`), each with its
//! own weight matrix; border nodes have fewer, guarded by the child count.
//! Nodes have multiple parents, so this is a proper DAG: specialization
//! yields no hoisting benefit here (Fig. 10a shows DAG-RNN flat under
//! +Specialization) and unrolling/refactoring are rejected.

use cortex_core::expr::{BoolExpr, CmpOp, IdxExpr, Ufn, ValExpr};
use cortex_core::ra::{BodyCtx, RaGraph, RaTensor};

/// One guarded direction of the DAG child sum:
/// `Σ_k U[i,k] · (slot < num_children(n) ? h[child_slot(n), k] : 0)`.
fn guarded_mv(c: &mut BodyCtx, ph: RaTensor, u: RaTensor, slot: u8, h: usize) -> ValExpr {
    let i = c.axis(0);
    let node = c.node();
    c.sum(h, |c, k| {
        let child = IdxExpr::Ufn(Ufn::Child(slot), vec![node.clone()]);
        let guarded = ValExpr::Select {
            cond: BoolExpr::Cmp(
                CmpOp::Lt,
                IdxExpr::Const(slot as i64),
                IdxExpr::Ufn(Ufn::NumChildren, vec![node.clone()]),
            ),
            then: Box::new(c.read(ph, &[child, k.clone()])),
            otherwise: Box::new(ValExpr::Const(0.0)),
        };
        c.read(u, &[i.clone(), k]).mul(guarded)
    })
}

use cortex_backend::params::Params;

use crate::dsl::VOCAB;
use crate::model::{init_param, LeafInit, Model};

/// Builds the DAG-RNN model at hidden size `h`.
pub fn dag_rnn(h: usize) -> Model {
    let mut g = RaGraph::new();
    let wx = g.input("W_x", &[h, h]);
    let bx = g.input("b_x", &[h]);
    let u0 = g.input("U_0", &[h, h]);
    let u1 = g.input("U_1", &[h, h]);
    let emb = g.input("Emb", &[VOCAB, h]);
    let ph = g.placeholder("h_ph", &[h]);

    // Input transform: depends only on the node's word — Cortex hoists it
    // into the precompute kernel, the paper's "input matrix-vector
    // multiplications performed at the beginning of the execution".
    let x = g.compute("x", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mv = c.sum(h, |c, k| {
            c.read(wx, &[i.clone(), k.clone()])
                .mul(c.read(emb, &[node.clone().word(), k]))
        });
        mv.add(c.read(bx, &[i]))
    });

    let rec = g.compute("h_rec", &[h], move |c| {
        let i = c.axis(0);
        let mv0 = guarded_mv(c, ph, u0, 0, h);
        let mv1 = guarded_mv(c, ph, u1, 1, h);
        c.read(x, &[c.node(), i]).add(mv0).add(mv1).tanh()
    });
    // The leaf (grid origin) has no predecessors: h = tanh(x).
    let leaf_op = g.compute("h_leaf", &[h], |c| c.read(x, &[c.node(), c.axis(0)]).tanh());
    let body = g.if_then_else("h_body", leaf_op, rec).expect("same shapes");
    let out = g.recursion(ph, body).expect("placeholder recursion");
    g.mark_output(out);

    let mut params = Params::new();
    for (n, dims) in [
        ("W_x", vec![h, h]),
        ("b_x", vec![h]),
        ("U_0", vec![h, h]),
        ("U_1", vec![h, h]),
        ("Emb", vec![VOCAB, h]),
    ] {
        params.set(n, init_param(n, &dims));
    }

    Model {
        name: "DAG-RNN".to_string(),
        graph: g,
        hidden: h,
        max_children: 2,
        params,
        output: out.id(),
        aux_outputs: Vec::new(),
        refactor_split: None,
        leaf: LeafInit::Embedding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::RaSchedule;
    use cortex_ds::datasets;

    #[test]
    fn matches_reference_on_grid() {
        let m = dag_rnn(6);
        let d = datasets::grid_dag(4, 5, 30);
        let want = reference::dag_rnn(&d, &m.params, 6);
        verify::assert_matches(&m, &d, &RaSchedule::default(), &want, 1e-4);
    }

    #[test]
    fn input_transform_is_precomputed() {
        let m = dag_rnn(4);
        let p = m.lower(&RaSchedule::default()).unwrap();
        assert!(
            p.kernels.iter().any(|k| k.name == "precompute"),
            "x must be hoisted to a precompute kernel: {p}"
        );
    }

    #[test]
    fn unfused_matches_reference() {
        let m = dag_rnn(4);
        let d = datasets::grid_dag(3, 4, 31);
        let want = reference::dag_rnn(&d, &m.params, 4);
        verify::assert_matches(&m, &d, &RaSchedule::unoptimized(), &want, 1e-4);
    }

    #[test]
    fn wavefronts_are_antidiagonals() {
        let d = datasets::grid_dag(5, 5, 0);
        let lin = cortex_ds::linearizer::Linearizer::new()
            .linearize(&d)
            .unwrap();
        // 5x5 grid: heights 0..8, so 8 internal wavefronts + the leaf.
        assert_eq!(lin.internal_batches().len(), 8);
    }
}

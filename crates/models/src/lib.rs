//! The recursive deep learning models of the Cortex paper (Table 2),
//! expressed in the Recursive API, plus pure-Rust reference
//! implementations used to validate every schedule's output.
//!
//! | Constructor | Paper model | Dataset |
//! | --- | --- | --- |
//! | [`tree_fc`](treefc::tree_fc) | TreeFC (TensorFlow Fold benchmark) | perfect binary trees, height 7 |
//! | [`tree_rnn`](treernn::tree_rnn) | TreeRNN (§7.4) | SST-like trees |
//! | [`tree_gru`](treegru::tree_gru) | Child-sum TreeGRU | SST-like trees |
//! | [`simple_tree_gru`](treegru::simple_tree_gru) | SimpleTreeGRU (§7.4 footnote) | SST-like trees |
//! | [`tree_lstm`](treelstm::tree_lstm) | Child-sum TreeLSTM | SST-like trees |
//! | [`mv_rnn`](mvrnn::mv_rnn) | MV-RNN | SST-like trees |
//! | [`dag_rnn`](dagrnn::dag_rnn) | DAG-RNN (recursive portion) | 10×10 grid DAGs |
//! | [`seq_lstm`](seq::seq_lstm) / [`seq_gru`](seq::seq_gru) | sequential LSTM/GRU (Fig. 9) | length-100 sequences |
//!
//! Following the paper's protocol (§7.1), the models cover the *recursive*
//! portion: input matrix–vector products are independent operators that
//! Cortex hoists into a precompute kernel, and leaf states are either zero
//! (hoisted away, §4.3) or embedding lookups, selected by [`LeafInit`].

pub mod dagrnn;
pub mod dsl;
pub mod model;
pub mod mvrnn;
pub mod reference;
pub mod seq;
pub mod treefc;
pub mod treegru;
pub mod treelstm;
pub mod treernn;
pub mod verify;

pub use model::{LeafInit, Model, ModelError};

//! Child-sum TreeLSTM (Tai et al. 2015) — the paper's flagship model.
//!
//! ```text
//! hsum = Σ_c h(c)
//! i    = σ(U_i · hsum + b_i)
//! o    = σ(U_o · hsum + b_o)
//! u    = tanh(U_u · hsum + b_u)
//! f_c  = σ(U_f · h(c) + b_f)        (one forget gate per child)
//! c'   = i ∘ u + Σ_c f_c ∘ c(c)
//! h    = o ∘ tanh(c')
//! ```
//!
//! Two recursions are tied jointly (cell state `c` and hidden state `h`);
//! the `c` recursion is declared first so its stores precede the `h`
//! stores that read it within the same wave. All reductions read only
//! previous-wave data, so the cell's sync depth is 1 — a single barrier
//! per wavefront, matching GRNN's persistent LSTM.

use cortex_core::expr::ValExpr;
use cortex_core::ra::RaGraph;

use cortex_backend::params::Params;

use crate::dsl::{child_sum, embed, VOCAB};
use crate::model::{init_param, LeafInit, Model};

/// Builds the child-sum TreeLSTM.
pub fn tree_lstm(h: usize, leaf: LeafInit) -> Model {
    build_lstm("TreeLSTM", h, leaf, 2)
}

/// Shared LSTM-cell builder; `slots = 1` yields the sequential LSTM.
pub(crate) fn build_lstm(name: &str, h: usize, leaf: LeafInit, slots: usize) -> Model {
    let mut g = RaGraph::new();
    let ui = g.input("U_i", &[h, h]);
    let uo = g.input("U_o", &[h, h]);
    let uu = g.input("U_u", &[h, h]);
    let uf = g.input("U_f", &[h, h]);
    let bi = g.input("b_i", &[h]);
    let bo = g.input("b_o", &[h]);
    let bu = g.input("b_u", &[h]);
    let bf = g.input("b_f", &[h]);
    let emb_c = g.input("Emb_c", &[VOCAB, h]);
    let emb_h = g.input("Emb_h", &[VOCAB, h]);
    let c_ph = g.placeholder("c_ph", &[h]);
    let h_ph = g.placeholder("h_ph", &[h]);

    let gate = |g: &mut RaGraph, name: &str, w, b, sig: bool| {
        g.compute(name, &[h], |c| {
            let i = c.axis(0);
            let mv = c.sum(h, |c, k| {
                c.read(w, &[i.clone(), k.clone()])
                    .mul(child_sum(c, h_ph, &k, slots, true))
            });
            let pre = mv.add(c.read(b, &[i]));
            if sig {
                pre.sigmoid()
            } else {
                pre.tanh()
            }
        })
    };
    let i_g = gate(&mut g, "i", ui, bi, true);
    let o_g = gate(&mut g, "o", uo, bo, true);
    let u_g = gate(&mut g, "u", uu, bu, false);
    // Per-child forget gates.
    let f_gs: Vec<_> = (0..slots)
        .map(|s| {
            g.compute(&format!("f{s}"), &[h], |c| {
                let i = c.axis(0);
                let node = c.node();
                let mv = c.sum(h, |c, k| {
                    c.read(uf, &[i.clone(), k.clone()])
                        .mul(c.read(h_ph, &[node.clone().child(s as u8), k]))
                });
                mv.add(c.read(bf, &[i])).sigmoid()
            })
        })
        .collect();

    let c_rec_body = g.compute("c_rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let mut acc = c
            .read(i_g, &[node.clone(), i.clone()])
            .mul(c.read(u_g, &[node.clone(), i.clone()]));
        for (s, f_g) in f_gs.iter().enumerate() {
            let forget = c.read(*f_g, &[node.clone(), i.clone()]);
            let child_c = c.read(c_ph, &[node.clone().child(s as u8), i.clone()]);
            acc = acc.add(forget.mul(child_c));
        }
        acc
    });
    let c_leaf = match leaf {
        LeafInit::Zero => g.compute("c_leaf", &[h], |_| ValExpr::Const(0.0)),
        LeafInit::Embedding => g.compute("c_leaf", &[h], |c| embed(c, emb_c, 0)),
    };
    let c_body = g
        .if_then_else("c_body", c_leaf, c_rec_body)
        .expect("same shapes");
    let c_out = g.recursion(c_ph, c_body).expect("cell recursion");

    let h_rec_body = g.compute("h_rec", &[h], |c| {
        let i = c.axis(0);
        let node = c.node();
        let cell = c.read(c_out, &[node.clone(), i.clone()]);
        c.read(o_g, &[node, i]).mul(cell.tanh())
    });
    let h_leaf = match leaf {
        LeafInit::Zero => g.compute("h_leaf", &[h], |_| ValExpr::Const(0.0)),
        LeafInit::Embedding => g.compute("h_leaf", &[h], |c| embed(c, emb_h, 0)),
    };
    let h_body = g
        .if_then_else("h_body", h_leaf, h_rec_body)
        .expect("same shapes");
    let h_out = g.recursion(h_ph, h_body).expect("hidden recursion");
    g.mark_output(c_out);
    g.mark_output(h_out);

    let mut params = Params::new();
    for (n, dims) in [
        ("U_i", vec![h, h]),
        ("U_o", vec![h, h]),
        ("U_u", vec![h, h]),
        ("U_f", vec![h, h]),
        ("b_i", vec![h]),
        ("b_o", vec![h]),
        ("b_u", vec![h]),
        ("b_f", vec![h]),
        ("Emb_c", vec![VOCAB, h]),
        ("Emb_h", vec![VOCAB, h]),
    ] {
        params.set(n, init_param(n, &dims));
    }

    Model {
        name: name.to_string(),
        graph: g,
        hidden: h,
        max_children: slots,
        params,
        output: h_out.id(),
        aux_outputs: vec![c_out.id()],
        refactor_split: None,
        leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::verify;
    use cortex_core::ra::{analyze, RaSchedule};
    use cortex_ds::datasets;

    #[test]
    fn matches_reference_on_sst_trees() {
        let m = tree_lstm(8, LeafInit::Embedding);
        let t = datasets::random_binary_tree(9, 11);
        let want = reference::tree_lstm(&t, &m.params, 8, LeafInit::Embedding);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want.h, 1e-4);
    }

    #[test]
    fn cell_state_also_matches() {
        let m = tree_lstm(6, LeafInit::Embedding);
        let t = datasets::random_binary_tree(7, 12);
        let want = reference::tree_lstm(&t, &m.params, 6, LeafInit::Embedding);
        let (result, lin) = m
            .run(
                &t,
                &RaSchedule::default(),
                &cortex_backend::DeviceSpec::v100(),
            )
            .unwrap();
        let c = &result.outputs[&m.aux_outputs[0]];
        verify::compare_output(c, &lin, &t, &want.c, 1e-4).unwrap();
    }

    #[test]
    fn zero_leaves_hoist_and_match() {
        let m = tree_lstm(8, LeafInit::Zero);
        let t = datasets::random_binary_tree(13, 13);
        let want = reference::tree_lstm(&t, &m.params, 8, LeafInit::Zero);
        verify::assert_matches(&m, &t, &RaSchedule::default(), &want.h, 1e-4);
        let p = m.lower(&RaSchedule::default()).unwrap();
        assert!(p.meta.leaf_zero);
    }

    #[test]
    fn lstm_sync_depth_is_one() {
        // All reductions read previous-wave data: one barrier per wave,
        // the property GRNN's persistent LSTM exploits (§7.2, Fig. 9).
        let m = tree_lstm(8, LeafInit::Zero);
        assert_eq!(analyze(&m.graph).sync_depth, 1);
    }

    #[test]
    fn unoptimized_schedule_matches_reference() {
        let m = tree_lstm(4, LeafInit::Embedding);
        let t = datasets::random_binary_tree(6, 14);
        let want = reference::tree_lstm(&t, &m.params, 4, LeafInit::Embedding);
        verify::assert_matches(&m, &t, &RaSchedule::unoptimized(), &want.h, 1e-4);
    }
}

//! Strided data layouts and the split / reorder / fuse layout primitives.
//!
//! §5.1 of the Cortex paper: *"the ILIR exposes data layout primitives,
//! which allow tensor dimensions to be split, reordered and fused, similar
//! to the corresponding loop transformations."* A [`Layout`] maps a logical
//! tensor index to a physical storage offset; the transformations below
//! change the physical order without touching the logical shape seen by the
//! computation.

use crate::shape::Shape;

/// A physical data layout for a logical [`Shape`].
///
/// The layout is represented as a chain applied to a logical index:
/// the logical dimensions are (possibly) split into sub-dimensions, the
/// sub-dimensions are permuted, and the result is stored row-major.
///
/// # Example
///
/// Splitting the hidden dimension of an `[N, H]` tensor by 8 and moving the
/// inner sub-dimension innermost gives the `[N, H/8, 8]` "banked" layout
/// used for vectorized scratchpad accesses:
///
/// ```
/// use cortex_tensor::{Layout, Shape};
///
/// let layout = Layout::row_major(Shape::new(&[4, 16]))
///     .split(1, 8)      // [4, 2, 8]
///     .reorder(&[1, 0, 2]); // physical order [2, 4, 8]
/// assert_eq!(layout.physical_dims(), &[2, 4, 8]);
/// // logical element (3, 9) = sub-index (3, 1, 1) -> physical (1, 3, 1)
/// assert_eq!(layout.offset(&[3, 9]), (1 * 4 + 3) * 8 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    logical: Shape,
    /// For each physical dimension: (logical dim it came from, stride within
    /// that logical dim, extent of this physical dim).
    pieces: Vec<Piece>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Piece {
    logical_dim: usize,
    /// Stride in logical-coordinate units: the piece's value is
    /// `(logical_coord / stride) % extent`.
    stride: usize,
    extent: usize,
}

impl Layout {
    /// The identity row-major layout for a logical shape.
    pub fn row_major(logical: Shape) -> Self {
        let pieces = logical
            .dims()
            .iter()
            .enumerate()
            .map(|(d, &extent)| Piece {
                logical_dim: d,
                stride: 1,
                extent,
            })
            .collect();
        Layout { logical, pieces }
    }

    /// The logical shape this layout stores.
    pub fn logical_shape(&self) -> &Shape {
        &self.logical
    }

    /// Extents of the physical dimensions, outermost first.
    pub fn physical_dims(&self) -> Vec<usize> {
        self.pieces.iter().map(|p| p.extent).collect()
    }

    /// Total storage size in elements.
    ///
    /// Splits round the split dimension up, so this may exceed
    /// `logical_shape().len()` (padding), mirroring how tensor compilers pad
    /// storage for split layouts.
    pub fn storage_len(&self) -> usize {
        self.pieces
            .iter()
            .map(|p| p.extent)
            .product::<usize>()
            .max(1)
    }

    /// Splits physical dimension `dim` by `factor`.
    ///
    /// The dimension becomes an outer part of extent `ceil(extent/factor)`
    /// followed by an inner part of extent `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0` or `dim` is out of range.
    #[must_use]
    pub fn split(mut self, dim: usize, factor: usize) -> Self {
        assert!(factor > 0, "split factor must be positive");
        let piece = self.pieces.remove(dim);
        let outer_extent = piece.extent.div_ceil(factor);
        let outer = Piece {
            logical_dim: piece.logical_dim,
            stride: piece.stride * factor,
            extent: outer_extent,
        };
        let inner = Piece {
            logical_dim: piece.logical_dim,
            stride: piece.stride,
            extent: factor,
        };
        self.pieces.insert(dim, inner);
        self.pieces.insert(dim, outer);
        self
    }

    /// Reorders the physical dimensions according to `perm`, where
    /// `perm[i]` names the current physical dimension that should move to
    /// position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..physical rank`.
    #[must_use]
    pub fn reorder(mut self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.pieces.len(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        self.pieces = perm.iter().map(|&p| self.pieces[p].clone()).collect();
        self
    }

    /// Fuses adjacent physical dimensions `dim` and `dim + 1` into one.
    ///
    /// The two dimensions must derive from the same logical dimension with
    /// compatible strides (i.e. they were produced by a previous
    /// [`split`](Self::split) and are still adjacent); this restriction
    /// mirrors the legality condition of loop fusion after splitting.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions cannot be fused.
    #[must_use]
    pub fn fuse(mut self, dim: usize) -> Self {
        assert!(dim + 1 < self.pieces.len(), "fuse dimension out of range");
        let outer = self.pieces[dim].clone();
        let inner = self.pieces[dim + 1].clone();
        assert_eq!(
            outer.logical_dim, inner.logical_dim,
            "can only fuse pieces of the same logical dimension"
        );
        assert_eq!(
            outer.stride,
            inner.stride * inner.extent,
            "pieces are not contiguous parts of one logical dimension"
        );
        let fused = Piece {
            logical_dim: outer.logical_dim,
            stride: inner.stride,
            extent: outer.extent * inner.extent,
        };
        self.pieces.remove(dim + 1);
        self.pieces[dim] = fused;
        self
    }

    /// Maps a logical index to a physical storage offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank does not match the logical shape.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.logical.rank(),
            "layout index rank mismatch"
        );
        let mut flat = 0usize;
        for piece in &self.pieces {
            let coord = (index[piece.logical_dim] / piece.stride) % piece.extent;
            flat = flat * piece.extent + coord;
        }
        flat
    }

    /// Whether this layout is the plain row-major identity for its shape.
    pub fn is_row_major(&self) -> bool {
        self.pieces.len() == self.logical.rank()
            && self.pieces.iter().enumerate().all(|(d, p)| {
                p.logical_dim == d && p.stride == 1 && p.extent == self.logical.dim(d)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_identity() {
        let s = Shape::new(&[3, 5]);
        let l = Layout::row_major(s.clone());
        assert!(l.is_row_major());
        for flat in 0..s.len() {
            let ix = s.delinearize(flat);
            assert_eq!(l.offset(&ix), flat);
        }
    }

    #[test]
    fn split_preserves_bijectivity_when_divisible() {
        let s = Shape::new(&[4, 16]);
        let l = Layout::row_major(s.clone()).split(1, 4);
        assert_eq!(l.physical_dims(), &[4, 4, 4]);
        let mut seen = vec![false; l.storage_len()];
        for flat in 0..s.len() {
            let ix = s.delinearize(flat);
            let off = l.offset(&ix);
            assert!(!seen[off], "offset collision at {ix:?}");
            seen[off] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn split_pads_when_not_divisible() {
        let s = Shape::new(&[10]);
        let l = Layout::row_major(s).split(0, 4);
        assert_eq!(l.physical_dims(), &[3, 4]);
        assert_eq!(l.storage_len(), 12);
        assert_eq!(l.offset(&[9]), 2 * 4 + 1);
    }

    #[test]
    fn reorder_transposes() {
        let s = Shape::new(&[2, 3]);
        let l = Layout::row_major(s).reorder(&[1, 0]);
        // (i, j) stored at j * 2 + i (column-major).
        assert_eq!(l.offset(&[1, 2]), 2 * 2 + 1);
    }

    #[test]
    fn split_then_fuse_is_identity() {
        let s = Shape::new(&[4, 16]);
        let l = Layout::row_major(s.clone()).split(1, 4).fuse(1);
        assert!(l.is_row_major());
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn bad_permutation_panics() {
        let _ = Layout::row_major(Shape::new(&[2, 2])).reorder(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "same logical dimension")]
    fn fusing_unrelated_dims_panics() {
        let _ = Layout::row_major(Shape::new(&[2, 2])).fuse(0);
    }
}

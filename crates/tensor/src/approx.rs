//! Nonlinearities, exact and approximated.
//!
//! Appendix A.5 of the Cortex paper: *"We use rational approximations for
//! the `tanh` and `sigmoid` functions, which makes exploiting SIMD
//! instructions on CPUs easier."* This module provides both the exact
//! functions (used by reference implementations) and branch-free rational
//! approximations (used by Cortex-generated CPU kernels), so tests can
//! quantify and bound the substitution error.

/// Exact hyperbolic tangent.
pub fn tanh_exact(x: f32) -> f32 {
    x.tanh()
}

/// Exact logistic sigmoid.
pub fn sigmoid_exact(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerator coefficients of the rational `tanh` (odd powers x¹..x¹³),
/// shared with the vectorized kernels in [`crate::simd`].
#[allow(clippy::excessive_precision)]
pub(crate) const TANH_ALPHA: [f32; 7] = [
    4.893_524_6e-3,   // x^1
    6.372_619_3e-4,   // x^3
    1.485_722_4e-5,   // x^5
    5.122_297_1e-8,   // x^7
    -8.604_671_5e-11, // x^9
    2.000_187_9e-13,  // x^11
    -2.760_768_5e-16, // x^13
];

/// Denominator coefficients of the rational `tanh` (even powers x⁰..x⁶),
/// shared with the vectorized kernels in [`crate::simd`].
#[allow(clippy::excessive_precision)]
pub(crate) const TANH_BETA: [f32; 4] = [
    4.893_525_2e-3, // x^0
    2.268_434_6e-3, // x^2
    1.185_347_1e-4, // x^4
    1.198_258_4e-6, // x^6
];

/// Rational approximation of `tanh`: a degree-13 odd polynomial over a
/// degree-6 even polynomial, clamped to the saturation region at |x| = 9.
///
/// These are the classic single-precision coefficients used by SIMD math
/// libraries (Eigen's `ptanh`, among others). The body is straight-line
/// arithmetic plus one clamp, so a vectorizing compiler keeps it branch-free.
///
/// Maximum absolute error against `tanh` is below `1e-4` on all of ℝ
/// (asserted by tests).
pub fn tanh_rational(x: f32) -> f32 {
    const ALPHA: [f32; 7] = TANH_ALPHA;
    const BETA: [f32; 4] = TANH_BETA;
    let x = x.clamp(-9.0, 9.0);
    let x2 = x * x;
    let mut p = ALPHA[6];
    for a in ALPHA[..6].iter().rev() {
        p = p * x2 + a;
    }
    let p = p * x;
    let mut q = BETA[3];
    for b in BETA[..3].iter().rev() {
        q = q * x2 + b;
    }
    p / q
}

/// Rational approximation of the logistic sigmoid via [`tanh_rational`],
/// using `σ(x) = (1 + tanh(x/2)) / 2`.
///
/// Maximum absolute error is below `2e-3` (asserted by tests).
pub fn sigmoid_rational(x: f32) -> f32 {
    0.5 * (1.0 + tanh_rational(0.5 * x))
}

/// Which implementation of the nonlinearities a backend should use.
///
/// Cortex CPU kernels pick [`Rational`](NonlinearityMode::Rational) (App.
/// A.5); reference implementations and the "vendor library" kernels use
/// [`Exact`](NonlinearityMode::Exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NonlinearityMode {
    /// `libm`-exact `tanh`/`sigmoid`.
    #[default]
    Exact,
    /// Rational approximations (SIMD-friendly).
    Rational,
}

impl NonlinearityMode {
    /// Applies `tanh` in this mode.
    pub fn tanh(self, x: f32) -> f32 {
        match self {
            NonlinearityMode::Exact => tanh_exact(x),
            NonlinearityMode::Rational => tanh_rational(x),
        }
    }

    /// Applies the sigmoid in this mode.
    pub fn sigmoid(self, x: f32) -> f32 {
        match self {
            NonlinearityMode::Exact => sigmoid_exact(x),
            NonlinearityMode::Rational => sigmoid_rational(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(f: impl Fn(f32) -> f32, g: impl Fn(f32) -> f32) -> f32 {
        let mut max_err = 0.0f32;
        let mut x = -10.0f32;
        while x <= 10.0 {
            max_err = max_err.max((f(x) - g(x)).abs());
            x += 0.001;
        }
        max_err
    }

    #[test]
    fn tanh_rational_error_bound() {
        let err = sweep(tanh_exact, tanh_rational);
        assert!(err < 1e-4, "tanh approximation error {err} too large");
    }

    #[test]
    fn sigmoid_rational_error_bound() {
        let err = sweep(sigmoid_exact, sigmoid_rational);
        assert!(err < 1e-4, "sigmoid approximation error {err} too large");
    }

    #[test]
    fn tanh_rational_saturates_and_is_odd() {
        assert!((tanh_rational(100.0) - 1.0).abs() < 1e-4);
        assert!((tanh_rational(-100.0) + 1.0).abs() < 1e-4);
        for &x in &[0.1f32, 0.7, 1.9, 3.0] {
            assert!((tanh_rational(x) + tanh_rational(-x)).abs() < 1e-6);
        }
        assert_eq!(tanh_rational(0.0), 0.0);
    }

    #[test]
    fn sigmoid_rational_bounds_and_midpoint() {
        assert!((sigmoid_rational(0.0) - 0.5).abs() < 1e-6);
        assert!((sigmoid_rational(100.0) - 1.0).abs() < 1e-4);
        assert!(sigmoid_rational(-100.0).abs() < 1e-4);
    }

    #[test]
    fn mode_dispatch() {
        assert_eq!(NonlinearityMode::Exact.tanh(0.5), tanh_exact(0.5));
        assert_eq!(
            NonlinearityMode::Rational.sigmoid(0.5),
            sigmoid_rational(0.5)
        );
        assert_eq!(NonlinearityMode::default(), NonlinearityMode::Exact);
    }

    #[test]
    fn rational_tanh_monotone_on_grid() {
        let mut prev = tanh_rational(-5.0);
        let mut x = -5.0f32;
        while x <= 5.0 {
            let y = tanh_rational(x);
            assert!(y >= prev - 1e-6, "not monotone at {x}");
            prev = y;
            x += 0.01;
        }
    }
}

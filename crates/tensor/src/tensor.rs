//! Owned dense `f32` tensors.

use std::error::Error;
use std::fmt;

use cortex_rng::Rng;

use crate::shape::Shape;

/// Error type for fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that had to agree did not.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it was given.
        found: String,
    },
    /// A data buffer's length did not match the shape.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements provided.
        found: usize,
    },
    /// An axis argument was out of range.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            TensorError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "buffer length {found} does not match shape ({expected} elements)"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
        }
    }
}

impl Error for TensorError {}

/// An owned, row-major dense tensor of `f32` values.
///
/// This is deliberately simple: all the clever layout work in Cortex happens
/// in the compiler ([`crate::Layout`] + the ILIR), while runtime storage is a
/// flat buffer.
///
/// # Example
///
/// ```
/// use cortex_tensor::Tensor;
///
/// let t = Tensor::from_fn(&[2, 2], |ix| (ix[0] + ix[1]) as f32);
/// assert_eq!(t[[0, 1]], 1.0);
/// assert_eq!(t[[1, 1]], 2.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor by evaluating `f` at every index (row-major order).
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::new(dims);
        let mut data = Vec::with_capacity(shape.len());
        if shape.rank() == 0 {
            data.push(f(&[]));
        } else {
            for ix in shape.indices() {
                data.push(f(&ix));
            }
        }
        Tensor { shape, data }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> crate::Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                found: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with uniform values in `[-bound, bound)`, seeded
    /// deterministically so experiments are reproducible.
    pub fn random(dims: &[usize], bound: f32, seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.uniform_f32(bound)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's rank.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.linearize(index)]
    }

    /// Writes the element at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.shape.linearize(index);
        self.data[flat] = value;
    }

    /// Borrows row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let w = self.shape.dim(1);
        &self.data[i * w..(i + 1) * w]
    }

    /// Mutably borrows row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let w = self.shape.dim(1);
        &mut self.data[i * w..(i + 1) * w]
    }

    /// Reshapes the tensor without moving data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> crate::Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                found: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> crate::Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{}", self.shape),
                found: format!("{}", other.shape),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Maximum absolute difference against another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> crate::Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{}", self.shape),
                found: format!("{}", other.shape),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Whether all elements are within `tol` of the other tensor's.
    ///
    /// Intended for tests; shape mismatch counts as "not close".
    pub fn all_close(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:?}, {:?}, … ; {} elems]",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl<const N: usize> std::ops::Index<[usize; N]> for Tensor {
    type Output = f32;

    fn index(&self, index: [usize; N]) -> &f32 {
        &self.data[self.shape.linearize(&index)]
    }
}

impl<const N: usize> std::ops::IndexMut<[usize; N]> for Tensor {
    fn index_mut(&mut self, index: [usize; N]) -> &mut f32 {
        let flat = self.shape.linearize(&index);
        &mut self.data[flat]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |ix| (ix[0] * 10 + ix[1]) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_and_set() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[2, 1], 7.0);
        assert_eq!(t[[2, 1]], 7.0);
        t[[0, 0]] = 1.5;
        assert_eq!(t.at(&[0, 0]), 1.5);
    }

    #[test]
    fn rows_are_contiguous() {
        let t = Tensor::from_fn(&[2, 4], |ix| ix[1] as f32 + 10.0 * ix[0] as f32);
        assert_eq!(t.row(1), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Tensor::random(&[16], 0.5, 42);
        let b = Tensor::random(&[16], 0.5, 42);
        let c = Tensor::random(&[16], 0.5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn zip_shape_mismatch_errors() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(
            a.zip(&b, |x, y| x + y),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 3], |ix| (ix[0] * 3 + ix[1]) as f32);
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.at(&[]), 3.5);
    }

    #[test]
    fn all_close_tolerance() {
        let a = Tensor::full(&[4], 1.0);
        let b = Tensor::full(&[4], 1.0 + 1e-6);
        assert!(a.all_close(&b, 1e-5));
        assert!(!a.all_close(&b, 1e-7));
    }

    #[test]
    fn error_display_messages() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            found: 5,
        };
        assert_eq!(
            err.to_string(),
            "buffer length 5 does not match shape (6 elements)"
        );
    }
}

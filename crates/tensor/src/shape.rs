//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The extents of a tensor, e.g. `[N, H]` for a per-node hidden-state table.
///
/// Shapes are small (models in the paper use rank ≤ 4), so they are stored
/// inline in a `Vec` and cloned freely.
///
/// # Example
///
/// ```
/// use cortex_tensor::Shape;
///
/// let s = Shape::new(&[4, 256]);
/// assert_eq!(s.rank(), 2);
/// assert_eq!(s.len(), 1024);
/// assert_eq!(s.linearize(&[1, 3]), 259);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its extents.
    ///
    /// A rank-0 (scalar) shape is allowed and has `len() == 1`.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// All extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements (product of extents; 1 for scalars).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// ```
    /// # use cortex_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).row_major_strides(), vec![12, 4, 1]);
    /// ```
    pub fn row_major_strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.dims[d + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank does not match or any coordinate is out of
    /// bounds (debug builds assert per-coordinate bounds).
    pub fn linearize(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut flat = 0usize;
        for (d, (&i, &extent)) in index.iter().zip(&self.dims).enumerate() {
            debug_assert!(
                i < extent,
                "index {i} out of bounds for dim {d} (extent {extent})"
            );
            flat = flat * extent + i;
        }
        flat
    }

    /// Converts a flat row-major offset back to a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= len()`.
    pub fn delinearize(&self, mut flat: usize) -> Vec<usize> {
        assert!(
            flat < self.len().max(1),
            "flat index {flat} out of bounds for {self:?}"
        );
        let mut index = vec![0usize; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            index[d] = flat % self.dims[d];
            flat /= self.dims[d];
        }
        index
    }

    /// Iterator over all multi-dimensional indices in row-major order.
    pub fn indices(&self) -> Indices {
        Indices {
            shape: self.clone(),
            next: 0,
            total: self.len(),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

/// Iterator over all indices of a [`Shape`] in row-major order.
///
/// Produced by [`Shape::indices`].
#[derive(Debug, Clone)]
pub struct Indices {
    shape: Shape,
    next: usize,
    total: usize,
}

impl Iterator for Indices {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next >= self.total || self.shape.rank() == 0 && self.next > 0 {
            return None;
        }
        let ix = self.shape.delinearize(self.next);
        self.next += 1;
        Some(ix)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Indices {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_round_trips() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.len() {
            let ix = s.delinearize(flat);
            assert_eq!(s.linearize(&ix), flat);
        }
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.linearize(&[]), 0);
    }

    #[test]
    fn row_major_strides_match_linearize() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.row_major_strides();
        let ix = [1, 2, 3];
        let via_strides: usize = ix.iter().zip(&strides).map(|(i, s)| i * s).sum();
        assert_eq!(via_strides, s.linearize(&ix));
    }

    #[test]
    fn indices_cover_whole_space_in_order() {
        let s = Shape::new(&[2, 3]);
        let all: Vec<_> = s.indices().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn empty_extent_shape() {
        let s = Shape::new(&[0, 4]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.indices().count(), 0);
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn linearize_rank_mismatch_panics() {
        Shape::new(&[2, 2]).linearize(&[1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[4, 256]).to_string(), "(4×256)");
    }
}

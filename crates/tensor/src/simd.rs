//! Explicit SIMD micro-kernels with runtime feature dispatch.
//!
//! The NT micro-kernel, GEMV, and the row-gather/pack loops all bottom
//! out in three primitives — [`dot`], [`dot4`] (four dots sharing one
//! pass over `a`), and [`axpy`] — which this module provides in three
//! implementations:
//!
//! * **Scalar** — the unrolled loops the autovectorizer handles; this is
//!   the always-correct fallback and the reference the wide paths are
//!   tested against.
//! * **AVX2+FMA** — 8-lane `f32` with fused multiply-add, two
//!   accumulator chains per output to hide FMA latency.
//! * **AVX-512F** — 16-lane `f32` with masked tail loads (no scalar
//!   remainder loop at all).
//!
//! The active level is detected once per process with
//! `is_x86_feature_detected!` and cached ([`level`]); the
//! `CORTEX_SIMD` environment variable (`scalar` / `avx2` / `avx512`)
//! clamps it for benchmarking and tests. Every entry point also exists
//! in a `*_with` form taking an explicit [`Level`] so tests can compare
//! the wide paths against the scalar path on the same inputs.
//!
//! Numerics: the wide paths reassociate the reduction (lane-striped
//! partial sums) and contract `a*b+c` into FMAs, so results may differ
//! from the scalar path by normal rounding — but IEEE special values
//! flow through unchanged (`0·∞ → NaN` is preserved; FMA propagates
//! NaN/∞ exactly like mul+add does).

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set level of the dispatched kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Unrolled scalar loops (autovectorizer-friendly); always available.
    Scalar,
    /// 8-lane AVX2 with FMA.
    Avx2,
    /// 16-lane AVX-512F with masked tails.
    Avx512,
}

const LEVEL_UNKNOWN: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
const LEVEL_AVX2: u8 = 2;
const LEVEL_AVX512: u8 = 3;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNKNOWN);

/// Detects the best supported level (respecting `CORTEX_SIMD`), cached
/// after the first call.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_SCALAR => Level::Scalar,
        LEVEL_AVX2 => Level::Avx2,
        LEVEL_AVX512 => Level::Avx512,
        _ => {
            let l = detect();
            LEVEL.store(
                match l {
                    Level::Scalar => LEVEL_SCALAR,
                    Level::Avx2 => LEVEL_AVX2,
                    Level::Avx512 => LEVEL_AVX512,
                },
                Ordering::Relaxed,
            );
            l
        }
    }
}

/// Uncached detection: hardware capability clamped by `CORTEX_SIMD`.
pub fn detect() -> Level {
    clamp_level(
        detect_hardware(),
        std::env::var("CORTEX_SIMD").ok().as_deref(),
    )
}

/// Applies a `CORTEX_SIMD`-style override to a detected hardware level
/// (the override can only lower the level, never exceed the hardware).
fn clamp_level(hw: Level, env: Option<&str>) -> Level {
    match env {
        Some("scalar") => Level::Scalar,
        Some("avx2") if hw != Level::Scalar => Level::Avx2,
        Some("avx512") => hw, // cannot exceed the hardware
        _ => hw,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_hardware() -> Level {
    if is_x86_feature_detected!("avx512f") {
        Level::Avx512
    } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Level::Avx2
    } else {
        Level::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_hardware() -> Level {
    Level::Scalar
}

/// Levels the current process can actually execute (for tests).
pub fn available_levels() -> Vec<Level> {
    let mut out = vec![Level::Scalar];
    match detect_hardware() {
        Level::Avx512 => {
            out.push(Level::Avx2);
            out.push(Level::Avx512);
        }
        Level::Avx2 => out.push(Level::Avx2),
        Level::Scalar => {}
    }
    out
}

/// Whether this process can execute kernels at `l`. The `*_with` entry
/// points are safe because they check this (falling back to scalar on
/// an unsupported level) — `is_x86_feature_detected!` caches, so the
/// check is an atomic load, negligible against any kernel body.
#[inline]
pub fn level_supported(l: Level) -> bool {
    match l {
        Level::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => is_x86_feature_detected!("avx512f"),
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

// ---------------------------------------------------------------------
// dot
// ---------------------------------------------------------------------

/// Dot product of two equal-length slices at the detected level.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(level(), a, b)
}

/// [`dot`] at an explicit level; an unsupported level falls back to the
/// scalar kernel (see [`level_supported`]), keeping this safe to call
/// with any `Level`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_with(l: Level, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU, and the slices
        // are equal-length (asserted above).
        Level::Avx2 if level_supported(l) => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 if level_supported(l) => unsafe { dot_avx512(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// Scalar `dot`: eight partial accumulators, pairwise-combined.
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let i = c * 8;
        for (u, av) in acc.iter_mut().enumerate() {
            *av += a[i + u] * b[i + u];
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for i in chunks * 8..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

// ---------------------------------------------------------------------
// dot4
// ---------------------------------------------------------------------

/// Four simultaneous dot products sharing one pass over `a`, at the
/// detected level. This is the inner kernel of both the NT GEMM and
/// GEMV.
///
/// # Panics
///
/// Panics (in debug builds) if any `b` row is shorter than `a`.
#[inline]
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    dot4_with(level(), a, b0, b1, b2, b3)
}

/// [`dot4`] at an explicit level; an unsupported level falls back to
/// the scalar kernel.
///
/// # Panics
///
/// Panics if any `b` row is shorter than `a` (a real assert, not a
/// debug one: the wide paths do unchecked unaligned loads up to
/// `a.len()` and must not be reachable out of bounds from safe code).
#[inline]
pub fn dot4_with(l: Level, a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let n = a.len();
    assert!(
        b0.len() >= n && b1.len() >= n && b2.len() >= n && b3.len() >= n,
        "dot4: b rows shorter than a"
    );
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU, and every row is
        // at least `a.len()` long (asserted above).
        Level::Avx2 if level_supported(l) => unsafe { dot4_avx2(a, b0, b1, b2, b3) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 if level_supported(l) => unsafe { dot4_avx512(a, b0, b1, b2, b3) },
        _ => dot4_scalar(a, b0, b1, b2, b3),
    }
}

/// Scalar `dot4`: 4×4 accumulator grid, one pass over `a`.
pub fn dot4_scalar(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let n = a.len();
    let mut acc = [[0.0f32; 4]; 4];
    let chunks = n / 4;
    for cidx in 0..chunks {
        let i = cidx * 4;
        for u in 0..4 {
            let av = a[i + u];
            acc[u][0] += av * b0[i + u];
            acc[u][1] += av * b1[i + u];
            acc[u][2] += av * b2[i + u];
            acc[u][3] += av * b3[i + u];
        }
    }
    let mut out = [0.0f32; 4];
    for (j, o) in out.iter_mut().enumerate() {
        *o = acc[0][j] + acc[1][j] + acc[2][j] + acc[3][j];
    }
    for i in chunks * 4..n {
        let av = a[i];
        out[0] += av * b0[i];
        out[1] += av * b1[i];
        out[2] += av * b2[i];
        out[3] += av * b3[i];
    }
    out
}

// ---------------------------------------------------------------------
// dot8
// ---------------------------------------------------------------------

/// Eight simultaneous dot products sharing one pass over `a` — the
/// widest accumulator shape of the NT micro-kernel (eight independent
/// FMA chains amortize each `a` load and hide FMA latency).
///
/// # Panics
///
/// Panics (in debug builds) if any `b` row is shorter than `a`.
#[inline]
pub fn dot8(a: &[f32], b: &[&[f32]; 8]) -> [f32; 8] {
    dot8_with(level(), a, b)
}

/// [`dot8`] at an explicit level; an unsupported level falls back to
/// the scalar kernel.
///
/// # Panics
///
/// Panics if any `b` row is shorter than `a` (a real assert — see
/// [`dot4_with`]).
#[inline]
pub fn dot8_with(l: Level, a: &[f32], b: &[&[f32]; 8]) -> [f32; 8] {
    assert!(
        b.iter().all(|r| r.len() >= a.len()),
        "dot8: b rows shorter than a"
    );
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU, and every row is
        // at least `a.len()` long (asserted above).
        Level::Avx2 if level_supported(l) => unsafe { dot8_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 if level_supported(l) => unsafe { dot8_avx512(a, b) },
        _ => dot8_scalar(a, b),
    }
}

/// Scalar `dot8`: one pass over `a`, eight running sums.
pub fn dot8_scalar(a: &[f32], b: &[&[f32]; 8]) -> [f32; 8] {
    let mut out = [0.0f32; 8];
    for (i, &av) in a.iter().enumerate() {
        for (j, o) in out.iter_mut().enumerate() {
            *o += av * b[j][i];
        }
    }
    out
}

// ---------------------------------------------------------------------
// dot8x2
// ---------------------------------------------------------------------

/// Two `a` rows against the same eight `b` rows: sixteen simultaneous
/// dot products where each `b` load feeds **two** FMA chains. This is
/// the row-pair register blocking of the NT micro-kernel for multi-row
/// (super-wave) GEMMs — the b-panel traffic per row halves, which is
/// what bounds the 16-accumulator AVX-512 shape. Results are
/// **bit-identical** to two independent [`dot8`] calls (each row's
/// chains accumulate in the same order).
///
/// # Panics
///
/// Panics if `a1` is shorter than `a0` or any `b` row is shorter than
/// `a0`.
#[inline]
pub fn dot8x2(a0: &[f32], a1: &[f32], b: &[&[f32]; 8]) -> [[f32; 8]; 2] {
    dot8x2_with(level(), a0, a1, b)
}

/// [`dot8x2`] at an explicit level; an unsupported level falls back to
/// the scalar kernel. AVX2 has too few vector registers for sixteen
/// accumulators and runs the two rows as consecutive [`dot8`]s.
///
/// # Panics
///
/// See [`dot8x2`].
#[inline]
pub fn dot8x2_with(l: Level, a0: &[f32], a1: &[f32], b: &[&[f32]; 8]) -> [[f32; 8]; 2] {
    assert!(a1.len() >= a0.len(), "dot8x2: a1 shorter than a0");
    assert!(
        b.iter().all(|r| r.len() >= a0.len()),
        "dot8x2: b rows shorter than a0"
    );
    let a1 = &a1[..a0.len()];
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU, and every row is
        // at least `a0.len()` long (asserted above).
        Level::Avx512 if level_supported(l) => unsafe { dot8x2_avx512(a0, a1, b) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 if level_supported(l) => unsafe { [dot8_avx2(a0, b), dot8_avx2(a1, b)] },
        _ => dot8x2_scalar(a0, a1, b),
    }
}

/// Scalar `dot8x2`: two independent [`dot8_scalar`] passes.
pub fn dot8x2_scalar(a0: &[f32], a1: &[f32], b: &[&[f32]; 8]) -> [[f32; 8]; 2] {
    [dot8_scalar(a0, b), dot8_scalar(a1, b)]
}

// ---------------------------------------------------------------------
// axpy
// ---------------------------------------------------------------------

/// `y += x` over slices at the detected level (the child-sum
/// accumulation of the wave packer's gather loop).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(y: &mut [f32], x: &[f32]) {
    axpy_with(level(), y, x);
}

/// [`axpy`] at an explicit level; an unsupported level falls back to
/// the scalar kernel.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy_with(l: Level, y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy of unequal lengths");
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU, and the slices
        // are equal-length (asserted above).
        Level::Avx2 if level_supported(l) => unsafe { axpy_avx2(y, x) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 if level_supported(l) => unsafe { axpy_avx512(y, x) },
        _ => axpy_scalar(y, x),
    }
}

/// Scalar `axpy`.
pub fn axpy_scalar(y: &mut [f32], x: &[f32]) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

// ---------------------------------------------------------------------
// Rational nonlinearities (the Cortex App. A.5 epilogue kernels)
// ---------------------------------------------------------------------

/// In-place rational `tanh` over a slice at the detected level (the
/// vectorized elementwise epilogue of the wave executor's
/// `Rational` nonlinearity mode). The scalar fallback applies
/// [`crate::approx::tanh_rational`] per element; the wide paths evaluate
/// the same polynomial with FMA contraction, so lanes may differ from
/// the scalar path by normal rounding while staying within the `1e-4`
/// bound against exact `tanh` (asserted by tests).
#[inline]
pub fn tanh_rational_slice(xs: &mut [f32]) {
    tanh_rational_slice_with(level(), xs);
}

/// [`tanh_rational_slice`] at an explicit level; an unsupported level
/// falls back to the scalar kernel.
#[inline]
pub fn tanh_rational_slice_with(l: Level, xs: &mut [f32]) {
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU.
        Level::Avx2 if level_supported(l) => unsafe { tanh_rational_avx2(xs) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 if level_supported(l) => unsafe { tanh_rational_avx512(xs) },
        _ => xs
            .iter_mut()
            .for_each(|x| *x = crate::approx::tanh_rational(*x)),
    }
}

/// In-place rational sigmoid over a slice at the detected level, via
/// `σ(x) = (1 + tanh(x/2)) / 2` like [`crate::approx::sigmoid_rational`].
#[inline]
pub fn sigmoid_rational_slice(xs: &mut [f32]) {
    sigmoid_rational_slice_with(level(), xs);
}

/// [`sigmoid_rational_slice`] at an explicit level; an unsupported level
/// falls back to the scalar kernel.
#[inline]
pub fn sigmoid_rational_slice_with(l: Level, xs: &mut [f32]) {
    match l {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the feature is verified on this CPU.
        Level::Avx2 if level_supported(l) => unsafe { sigmoid_rational_avx2(xs) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 if level_supported(l) => unsafe { sigmoid_rational_avx512(xs) },
        _ => xs
            .iter_mut()
            .for_each(|x| *x = crate::approx::sigmoid_rational(*x)),
    }
}

// ---------------------------------------------------------------------
// AVX2 + FMA (8-lane)
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn hsum256(v: __m256) -> f32 {
        // SAFETY: caller guarantees AVX is available.
        unsafe {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps(v, 1);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
            _mm_cvtss_f32(s)
        }
    }

    /// 8-lane dot with two accumulator chains (hides FMA latency).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY (all pointer arithmetic below): `i + 16 <= n` /
        // `i + 8 <= n` bounds every unaligned load to the slices.
        unsafe {
            let n = a.len();
            let (ap, bp) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(ap.add(i + 8)),
                    _mm256_loadu_ps(bp.add(i + 8)),
                    acc1,
                );
                i += 16;
            }
            if i + 8 <= n {
                acc0 =
                    _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
                i += 8;
            }
            let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
            while i < n {
                sum = a[i].mul_add(b[i], sum);
                i += 1;
            }
            sum
        }
    }

    /// Four dots sharing one pass over `a`, 8-lane FMA per row.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot4_avx2(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        // SAFETY: the caller checks every row is at least `a.len()`
        // long; loads stay inside `i + 8 <= n`.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bps = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
            let mut acc = [_mm256_setzero_ps(); 4];
            let mut i = 0usize;
            while i + 8 <= n {
                let va = _mm256_loadu_ps(ap.add(i));
                for j in 0..4 {
                    acc[j] = _mm256_fmadd_ps(va, _mm256_loadu_ps(bps[j].add(i)), acc[j]);
                }
                i += 8;
            }
            let mut out = [
                hsum256(acc[0]),
                hsum256(acc[1]),
                hsum256(acc[2]),
                hsum256(acc[3]),
            ];
            while i < n {
                let av = a[i];
                out[0] = av.mul_add(b0[i], out[0]);
                out[1] = av.mul_add(b1[i], out[1]);
                out[2] = av.mul_add(b2[i], out[2]);
                out[3] = av.mul_add(b3[i], out[3]);
                i += 1;
            }
            out
        }
    }

    /// Eight dots sharing one pass over `a`: eight 8-lane FMA chains.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot8_avx2(a: &[f32], b: &[&[f32]; 8]) -> [f32; 8] {
        // SAFETY: rows are at least `a.len()` long (caller-checked);
        // loads stay inside `i + 8 <= n`.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let mut acc = [_mm256_setzero_ps(); 8];
            let mut i = 0usize;
            while i + 8 <= n {
                let va = _mm256_loadu_ps(ap.add(i));
                for j in 0..8 {
                    acc[j] = _mm256_fmadd_ps(va, _mm256_loadu_ps(b[j].as_ptr().add(i)), acc[j]);
                }
                i += 8;
            }
            let mut out = [0.0f32; 8];
            for (j, o) in out.iter_mut().enumerate() {
                *o = hsum256(acc[j]);
            }
            while i < n {
                let av = a[i];
                for (j, o) in out.iter_mut().enumerate() {
                    *o = av.mul_add(b[j][i], *o);
                }
                i += 1;
            }
            out
        }
    }

    /// 8-lane rational `tanh` (clamp + odd/even Horner + divide); the
    /// remainder lanes use the scalar rational kernel, so every element
    /// evaluates the same polynomial.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tanh_rational_avx2(xs: &mut [f32]) {
        use crate::approx::{tanh_rational, TANH_ALPHA, TANH_BETA};
        // SAFETY: `i + 8 <= n` bounds every load/store to the slice.
        unsafe {
            let n = xs.len();
            let p = xs.as_mut_ptr();
            let lo = _mm256_set1_ps(-9.0);
            let hi = _mm256_set1_ps(9.0);
            let mut i = 0usize;
            while i + 8 <= n {
                let x = _mm256_max_ps(lo, _mm256_min_ps(hi, _mm256_loadu_ps(p.add(i))));
                let x2 = _mm256_mul_ps(x, x);
                let mut num = _mm256_set1_ps(TANH_ALPHA[6]);
                for a in TANH_ALPHA[..6].iter().rev() {
                    num = _mm256_fmadd_ps(num, x2, _mm256_set1_ps(*a));
                }
                let num = _mm256_mul_ps(num, x);
                let mut den = _mm256_set1_ps(TANH_BETA[3]);
                for b in TANH_BETA[..3].iter().rev() {
                    den = _mm256_fmadd_ps(den, x2, _mm256_set1_ps(*b));
                }
                _mm256_storeu_ps(p.add(i), _mm256_div_ps(num, den));
                i += 8;
            }
            while i < n {
                xs[i] = tanh_rational(xs[i]);
                i += 1;
            }
        }
    }

    /// 8-lane rational sigmoid: `0.5 · (1 + tanh(x/2))` with the tanh
    /// polynomial inlined, one pass per vector.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sigmoid_rational_avx2(xs: &mut [f32]) {
        use crate::approx::{sigmoid_rational, TANH_ALPHA, TANH_BETA};
        // SAFETY: `i + 8 <= n` bounds every load/store to the slice.
        unsafe {
            let n = xs.len();
            let p = xs.as_mut_ptr();
            let half = _mm256_set1_ps(0.5);
            let one = _mm256_set1_ps(1.0);
            let lo = _mm256_set1_ps(-9.0);
            let hi = _mm256_set1_ps(9.0);
            let mut i = 0usize;
            while i + 8 <= n {
                let x = _mm256_mul_ps(half, _mm256_loadu_ps(p.add(i)));
                let x = _mm256_max_ps(lo, _mm256_min_ps(hi, x));
                let x2 = _mm256_mul_ps(x, x);
                let mut num = _mm256_set1_ps(TANH_ALPHA[6]);
                for a in TANH_ALPHA[..6].iter().rev() {
                    num = _mm256_fmadd_ps(num, x2, _mm256_set1_ps(*a));
                }
                let num = _mm256_mul_ps(num, x);
                let mut den = _mm256_set1_ps(TANH_BETA[3]);
                for b in TANH_BETA[..3].iter().rev() {
                    den = _mm256_fmadd_ps(den, x2, _mm256_set1_ps(*b));
                }
                let t = _mm256_div_ps(num, den);
                _mm256_storeu_ps(p.add(i), _mm256_mul_ps(half, _mm256_add_ps(one, t)));
                i += 8;
            }
            while i < n {
                xs[i] = sigmoid_rational(xs[i]);
                i += 1;
            }
        }
    }

    /// 8-lane `y += x`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_avx2(y: &mut [f32], x: &[f32]) {
        // SAFETY: `i + 8 <= n` bounds every load/store; lengths are
        // checked equal by the caller.
        unsafe {
            let n = y.len();
            let yp = y.as_mut_ptr();
            let xp = x.as_ptr();
            let mut i = 0usize;
            while i + 8 <= n {
                let v = _mm256_add_ps(_mm256_loadu_ps(yp.add(i)), _mm256_loadu_ps(xp.add(i)));
                _mm256_storeu_ps(yp.add(i), v);
                i += 8;
            }
            while i < n {
                y[i] += x[i];
                i += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{axpy_avx2, dot4_avx2, dot8_avx2, dot_avx2, sigmoid_rational_avx2, tanh_rational_avx2};

// ---------------------------------------------------------------------
// AVX-512F (16-lane, masked tails)
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// 16-lane dot with two accumulator chains and a masked tail.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot_avx512(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: full loads are bounded by `i + 16/32 <= n`; the tail
        // load is masked to the remaining `n - i` lanes.
        unsafe {
            let n = a.len();
            let (ap, bp) = (a.as_ptr(), b.as_ptr());
            let mut acc0 = _mm512_setzero_ps();
            let mut acc1 = _mm512_setzero_ps();
            let mut i = 0usize;
            while i + 32 <= n {
                acc0 =
                    _mm512_fmadd_ps(_mm512_loadu_ps(ap.add(i)), _mm512_loadu_ps(bp.add(i)), acc0);
                acc1 = _mm512_fmadd_ps(
                    _mm512_loadu_ps(ap.add(i + 16)),
                    _mm512_loadu_ps(bp.add(i + 16)),
                    acc1,
                );
                i += 32;
            }
            if i + 16 <= n {
                acc0 =
                    _mm512_fmadd_ps(_mm512_loadu_ps(ap.add(i)), _mm512_loadu_ps(bp.add(i)), acc0);
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                acc1 = _mm512_fmadd_ps(
                    _mm512_maskz_loadu_ps(m, ap.add(i)),
                    _mm512_maskz_loadu_ps(m, bp.add(i)),
                    acc1,
                );
            }
            _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1))
        }
    }

    /// Four dots sharing one pass over `a`, 16-lane FMA per row.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot4_avx512(
        a: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        // SAFETY: rows are at least `a.len()` long (caller-checked);
        // the tail is masked.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bps = [b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr()];
            let mut acc = [_mm512_setzero_ps(); 4];
            let mut i = 0usize;
            while i + 16 <= n {
                let va = _mm512_loadu_ps(ap.add(i));
                for j in 0..4 {
                    acc[j] = _mm512_fmadd_ps(va, _mm512_loadu_ps(bps[j].add(i)), acc[j]);
                }
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                let va = _mm512_maskz_loadu_ps(m, ap.add(i));
                for j in 0..4 {
                    acc[j] = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, bps[j].add(i)), acc[j]);
                }
            }
            [
                _mm512_reduce_add_ps(acc[0]),
                _mm512_reduce_add_ps(acc[1]),
                _mm512_reduce_add_ps(acc[2]),
                _mm512_reduce_add_ps(acc[3]),
            ]
        }
    }

    /// Eight dots sharing one pass over `a`: eight 16-lane FMA chains.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot8_avx512(a: &[f32], b: &[&[f32]; 8]) -> [f32; 8] {
        // SAFETY: rows are at least `a.len()` long (caller-checked);
        // the tail is masked.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let mut acc = [_mm512_setzero_ps(); 8];
            let mut i = 0usize;
            while i + 16 <= n {
                let va = _mm512_loadu_ps(ap.add(i));
                for j in 0..8 {
                    acc[j] = _mm512_fmadd_ps(va, _mm512_loadu_ps(b[j].as_ptr().add(i)), acc[j]);
                }
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                let va = _mm512_maskz_loadu_ps(m, ap.add(i));
                for j in 0..8 {
                    acc[j] =
                        _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, b[j].as_ptr().add(i)), acc[j]);
                }
            }
            let mut out = [0.0f32; 8];
            for (j, o) in out.iter_mut().enumerate() {
                *o = _mm512_reduce_add_ps(acc[j]);
            }
            out
        }
    }

    /// Sixteen dots as an 2×8 register block: each 16-lane `b` load
    /// feeds two FMA chains (one per `a` row). Per-row accumulation
    /// order is identical to [`dot8_avx512`], so results are
    /// bit-identical to two independent calls.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot8x2_avx512(a0: &[f32], a1: &[f32], b: &[&[f32]; 8]) -> [[f32; 8]; 2] {
        // SAFETY: rows are at least `a0.len()` long (caller-checked);
        // the tail is masked.
        unsafe {
            let n = a0.len();
            let (ap0, ap1) = (a0.as_ptr(), a1.as_ptr());
            let mut acc0 = [_mm512_setzero_ps(); 8];
            let mut acc1 = [_mm512_setzero_ps(); 8];
            let mut i = 0usize;
            while i + 16 <= n {
                let va0 = _mm512_loadu_ps(ap0.add(i));
                let va1 = _mm512_loadu_ps(ap1.add(i));
                for j in 0..8 {
                    let vb = _mm512_loadu_ps(b[j].as_ptr().add(i));
                    acc0[j] = _mm512_fmadd_ps(va0, vb, acc0[j]);
                    acc1[j] = _mm512_fmadd_ps(va1, vb, acc1[j]);
                }
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                let va0 = _mm512_maskz_loadu_ps(m, ap0.add(i));
                let va1 = _mm512_maskz_loadu_ps(m, ap1.add(i));
                for j in 0..8 {
                    let vb = _mm512_maskz_loadu_ps(m, b[j].as_ptr().add(i));
                    acc0[j] = _mm512_fmadd_ps(va0, vb, acc0[j]);
                    acc1[j] = _mm512_fmadd_ps(va1, vb, acc1[j]);
                }
            }
            let mut out = [[0.0f32; 8]; 2];
            for j in 0..8 {
                out[0][j] = _mm512_reduce_add_ps(acc0[j]);
                out[1][j] = _mm512_reduce_add_ps(acc1[j]);
            }
            out
        }
    }

    /// 16-lane rational `tanh` (clamp + odd/even Horner + divide) with a
    /// masked tail — no scalar remainder at all.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tanh_rational_avx512(xs: &mut [f32]) {
        use crate::approx::{TANH_ALPHA, TANH_BETA};
        // SAFETY: full ops bounded by `i + 16 <= n`; the tail is masked.
        unsafe {
            let n = xs.len();
            let p = xs.as_mut_ptr();
            let lo = _mm512_set1_ps(-9.0);
            let hi = _mm512_set1_ps(9.0);
            let body = |x: __m512| {
                let x = _mm512_max_ps(lo, _mm512_min_ps(hi, x));
                let x2 = _mm512_mul_ps(x, x);
                let mut num = _mm512_set1_ps(TANH_ALPHA[6]);
                for a in TANH_ALPHA[..6].iter().rev() {
                    num = _mm512_fmadd_ps(num, x2, _mm512_set1_ps(*a));
                }
                let num = _mm512_mul_ps(num, x);
                let mut den = _mm512_set1_ps(TANH_BETA[3]);
                for b in TANH_BETA[..3].iter().rev() {
                    den = _mm512_fmadd_ps(den, x2, _mm512_set1_ps(*b));
                }
                _mm512_div_ps(num, den)
            };
            let mut i = 0usize;
            while i + 16 <= n {
                _mm512_storeu_ps(p.add(i), body(_mm512_loadu_ps(p.add(i))));
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                let v = body(_mm512_maskz_loadu_ps(m, p.add(i)));
                _mm512_mask_storeu_ps(p.add(i), m, v);
            }
        }
    }

    /// 16-lane rational sigmoid `0.5 · (1 + tanh(x/2))` with a masked
    /// tail.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn sigmoid_rational_avx512(xs: &mut [f32]) {
        use crate::approx::{TANH_ALPHA, TANH_BETA};
        // SAFETY: full ops bounded by `i + 16 <= n`; the tail is masked.
        unsafe {
            let n = xs.len();
            let p = xs.as_mut_ptr();
            let half = _mm512_set1_ps(0.5);
            let one = _mm512_set1_ps(1.0);
            let lo = _mm512_set1_ps(-9.0);
            let hi = _mm512_set1_ps(9.0);
            let body = |x: __m512| {
                let x = _mm512_max_ps(lo, _mm512_min_ps(hi, _mm512_mul_ps(half, x)));
                let x2 = _mm512_mul_ps(x, x);
                let mut num = _mm512_set1_ps(TANH_ALPHA[6]);
                for a in TANH_ALPHA[..6].iter().rev() {
                    num = _mm512_fmadd_ps(num, x2, _mm512_set1_ps(*a));
                }
                let num = _mm512_mul_ps(num, x);
                let mut den = _mm512_set1_ps(TANH_BETA[3]);
                for b in TANH_BETA[..3].iter().rev() {
                    den = _mm512_fmadd_ps(den, x2, _mm512_set1_ps(*b));
                }
                _mm512_mul_ps(half, _mm512_add_ps(one, _mm512_div_ps(num, den)))
            };
            let mut i = 0usize;
            while i + 16 <= n {
                _mm512_storeu_ps(p.add(i), body(_mm512_loadu_ps(p.add(i))));
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                let v = body(_mm512_maskz_loadu_ps(m, p.add(i)));
                _mm512_mask_storeu_ps(p.add(i), m, v);
            }
        }
    }

    /// 16-lane `y += x` with a masked tail.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy_avx512(y: &mut [f32], x: &[f32]) {
        // SAFETY: full ops bounded by `i + 16 <= n`; tail masked.
        unsafe {
            let n = y.len();
            let yp = y.as_mut_ptr();
            let xp = x.as_ptr();
            let mut i = 0usize;
            while i + 16 <= n {
                let v = _mm512_add_ps(_mm512_loadu_ps(yp.add(i)), _mm512_loadu_ps(xp.add(i)));
                _mm512_storeu_ps(yp.add(i), v);
                i += 16;
            }
            if i < n {
                let m: __mmask16 = (1u16 << (n - i)) - 1;
                let v = _mm512_add_ps(
                    _mm512_maskz_loadu_ps(m, yp.add(i)),
                    _mm512_maskz_loadu_ps(m, xp.add(i)),
                );
                _mm512_mask_storeu_ps(yp.add(i), m, v);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx512::{
    axpy_avx512, dot4_avx512, dot8_avx512, dot8x2_avx512, dot_avx512, sigmoid_rational_avx512,
    tanh_rational_avx512,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Relative-ish tolerance for reassociated/FMA-contracted sums.
    fn close(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn detection_is_cached_and_consistent() {
        assert_eq!(level(), level());
        assert!(available_levels().contains(&Level::Scalar));
    }

    #[test]
    fn wide_dot_matches_scalar_on_all_tail_lengths() {
        for l in available_levels() {
            for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 130, 257] {
                let a = Tensor::random(&[n.max(1)], 1.0, n as u64 + 1);
                let b = Tensor::random(&[n.max(1)], 1.0, n as u64 + 1000);
                let (a, b) = (&a.as_slice()[..n], &b.as_slice()[..n]);
                let want = dot_scalar(a, b);
                let got = dot_with(l, a, b);
                assert!(close(got, want, 1e-5), "{l:?} n={n}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn wide_dot4_matches_scalar_on_edge_shapes() {
        for l in available_levels() {
            for n in [0usize, 1, 2, 5, 8, 15, 16, 17, 40, 129] {
                let a = Tensor::random(&[n.max(1)], 1.0, 7);
                let rows = Tensor::random(&[4, n.max(1)], 1.0, 8);
                let a = &a.as_slice()[..n];
                let r = |j: usize| &rows.row(j)[..n];
                let want = dot4_scalar(a, r(0), r(1), r(2), r(3));
                let got = dot4_with(l, a, r(0), r(1), r(2), r(3));
                for j in 0..4 {
                    assert!(
                        close(got[j], want[j], 1e-5),
                        "{l:?} n={n} j={j}: {} vs {}",
                        got[j],
                        want[j]
                    );
                }
            }
        }
    }

    #[test]
    fn wide_dot8_matches_scalar_on_edge_shapes() {
        for l in available_levels() {
            for n in [0usize, 1, 7, 8, 15, 16, 17, 31, 33, 100] {
                let a = Tensor::random(&[n.max(1)], 1.0, 9);
                let rows = Tensor::random(&[8, n.max(1)], 1.0, 10);
                let a = &a.as_slice()[..n];
                let b: [&[f32]; 8] = std::array::from_fn(|j| &rows.row(j)[..n]);
                let want = dot8_scalar(a, &b);
                let got = dot8_with(l, a, &b);
                for j in 0..8 {
                    assert!(
                        close(got[j], want[j], 1e-5),
                        "{l:?} n={n} j={j}: {} vs {}",
                        got[j],
                        want[j]
                    );
                }
            }
        }
    }

    #[test]
    fn dot8x2_is_bit_identical_to_two_dot8s() {
        // The row-pair block must not change a single bit vs per-row
        // execution — the super-wave executor's equivalence contract
        // (merged GEMMs ≡ solo GEMMs) rests on this.
        for l in available_levels() {
            for n in [0usize, 1, 7, 15, 16, 17, 31, 33, 100, 256] {
                let a = Tensor::random(&[2, n.max(1)], 1.0, 21);
                let rows = Tensor::random(&[8, n.max(1)], 1.0, 22);
                let (a0, a1) = (&a.row(0)[..n], &a.row(1)[..n]);
                let b: [&[f32]; 8] = std::array::from_fn(|j| &rows.row(j)[..n]);
                let got = dot8x2_with(l, a0, a1, &b);
                assert_eq!(got[0], dot8_with(l, a0, &b), "{l:?} n={n} row 0");
                assert_eq!(got[1], dot8_with(l, a1, &b), "{l:?} n={n} row 1");
            }
        }
    }

    #[test]
    fn wide_axpy_matches_scalar() {
        for l in available_levels() {
            for n in [0usize, 1, 7, 8, 9, 16, 17, 50, 255] {
                let x = Tensor::random(&[n.max(1)], 1.0, 3);
                let x = &x.as_slice()[..n];
                let mut want: Vec<f32> = (0..n).map(|i| i as f32).collect();
                let mut got = want.clone();
                axpy_scalar(&mut want, x);
                axpy_with(l, &mut got, x);
                assert_eq!(got, want, "{l:?} n={n}: axpy is exact, no reassociation");
            }
        }
    }

    #[test]
    fn all_levels_propagate_nan_and_inf() {
        // 0·∞ → NaN must survive in every lane position, including the
        // masked/scalar tails.
        for l in available_levels() {
            for n in [1usize, 8, 16, 17, 33] {
                for pos in [0, n / 2, n - 1] {
                    let mut a = vec![1.0f32; n];
                    let mut b = vec![1.0f32; n];
                    a[pos] = 0.0;
                    b[pos] = f32::INFINITY;
                    assert!(
                        dot_with(l, &a, &b).is_nan(),
                        "{l:?} n={n} pos={pos}: 0·∞ must poison the dot"
                    );
                    b[pos] = f32::NAN;
                    assert!(dot_with(l, &a, &b).is_nan());
                    let got = dot4_with(l, &a, &b, &b, &b, &b);
                    assert!(got.iter().all(|v| v.is_nan()), "{l:?} dot4 tail");
                }
            }
        }
    }

    #[test]
    fn zero_extent_reductions_are_exactly_zero() {
        for l in available_levels() {
            assert_eq!(dot_with(l, &[], &[]), 0.0, "{l:?}: K=0 dot");
            let z = dot4_with(l, &[], &[], &[], &[], &[]);
            assert_eq!(z, [0.0; 4], "{l:?}: K=0 dot4");
            let mut y: [f32; 0] = [];
            axpy_with(l, &mut y, &[]);
        }
    }

    #[test]
    fn vector_rational_nonlinearities_match_scalar_rational_and_bound_exact() {
        use crate::approx::{sigmoid_exact, sigmoid_rational, tanh_exact, tanh_rational};
        for l in available_levels() {
            for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 33, 100, 257] {
                let base: Vec<f32> = (0..n).map(|i| (i as f32) * 0.173 - 8.0).collect();
                // tanh: every lane within rounding of the scalar rational
                // kernel and within 1e-4 of exact tanh.
                let mut got = base.clone();
                tanh_rational_slice_with(l, &mut got);
                for (i, (&g, &x)) in got.iter().zip(&base).enumerate() {
                    let scalar = tanh_rational(x);
                    assert!(
                        (g - scalar).abs() <= 2e-6,
                        "{l:?} tanh n={n} lane {i}: {g} vs scalar rational {scalar}"
                    );
                    assert!(
                        (g - tanh_exact(x)).abs() < 1e-4,
                        "{l:?} tanh n={n} lane {i}: error vs exact too large"
                    );
                }
                // sigmoid likewise.
                let mut got = base.clone();
                sigmoid_rational_slice_with(l, &mut got);
                for (i, (&g, &x)) in got.iter().zip(&base).enumerate() {
                    let scalar = sigmoid_rational(x);
                    assert!(
                        (g - scalar).abs() <= 2e-6,
                        "{l:?} sigmoid n={n} lane {i}: {g} vs scalar rational {scalar}"
                    );
                    assert!(
                        (g - sigmoid_exact(x)).abs() < 1e-4,
                        "{l:?} sigmoid n={n} lane {i}: error vs exact too large"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_rational_tanh_saturates_at_extremes() {
        for l in available_levels() {
            let mut xs = vec![-100.0f32, -9.5, 0.0, 9.5, 100.0];
            tanh_rational_slice_with(l, &mut xs);
            assert!((xs[0] + 1.0).abs() < 1e-4, "{l:?}");
            assert!((xs[4] - 1.0).abs() < 1e-4, "{l:?}");
            assert_eq!(xs[2], 0.0, "{l:?}: tanh(0) is exactly zero");
        }
    }

    #[test]
    fn override_clamps_but_never_exceeds_hardware() {
        // Tested through the pure clamp (no process-global env mutation,
        // which would race sibling tests against the `level()` cache).
        for hw in available_levels() {
            assert_eq!(clamp_level(hw, Some("scalar")), Level::Scalar);
            assert_eq!(clamp_level(hw, None), hw);
            assert_eq!(clamp_level(hw, Some("avx512")), hw, "cannot exceed hw");
        }
        assert_eq!(clamp_level(Level::Avx512, Some("avx2")), Level::Avx2);
        assert_eq!(clamp_level(Level::Scalar, Some("avx2")), Level::Scalar);
    }
}

//! Numeric kernels: matrix products, elementwise operators, concatenation.
//!
//! These kernels play two roles in the reproduction:
//!
//! 1. They are the *vendor library* that the baseline frameworks (PyTorch-,
//!    DyNet- and Cavs-like) call as black boxes, one call per operator.
//! 2. They are the native inner loops that Cortex-generated fused kernels
//!    bottom out in (standing in for the LLVM/CUDA code TVM would emit).
//!
//! All kernels are straightforward, cache-blocked where it matters, and
//! validated against naive implementations by unit and property tests.

use crate::tensor::{Tensor, TensorError};

/// Block size for the cache-blocked GEMM micro-kernel.
const GEMM_BLOCK: usize = 32;

/// Dense matrix–matrix product: `C[m,n] = sum_k A[m,k] * B[k,n]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[M,K]`, `b` is
/// `[K,N]`.
pub fn gemm(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.shape().dim(1) != b.shape().dim(0) {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,K] x [K,N]".to_string(),
            found: format!("{} x {}", a.shape(), b.shape()),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    let mut c = Tensor::zeros(&[m, n]);
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let c_s = c.as_mut_slice();
    for i0 in (0..m).step_by(GEMM_BLOCK) {
        for k0 in (0..k).step_by(GEMM_BLOCK) {
            for j0 in (0..n).step_by(GEMM_BLOCK) {
                let i_end = (i0 + GEMM_BLOCK).min(m);
                let k_end = (k0 + GEMM_BLOCK).min(k);
                let j_end = (j0 + GEMM_BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aval = a_s[i * k + kk];
                        if aval == 0.0 {
                            continue;
                        }
                        let brow = &b_s[kk * n + j0..kk * n + j_end];
                        let crow = &mut c_s[i * n + j0..i * n + j_end];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    }
    Ok(c)
}

/// Dense matrix–vector product: `y[m] = sum_k A[m,k] * x[k]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[M,K]` and `x` is
/// `[K]`.
pub fn gemv(a: &Tensor, x: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 || x.rank() != 1 || a.shape().dim(1) != x.shape().dim(0) {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,K] x [K]".to_string(),
            found: format!("{} x {}", a.shape(), x.shape()),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let a_s = a.as_slice();
    let x_s = x.as_slice();
    let mut y = vec![0.0f32; m];
    for (i, yv) in y.iter_mut().enumerate() {
        let row = &a_s[i * k..(i + 1) * k];
        *yv = dot(row, x_s);
    }
    Tensor::from_vec(y, &[m])
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    // Unrolled by four; the autovectorizer handles the rest.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// `y += x` over slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy of unequal lengths");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

/// Elementwise addition.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    a.zip(b, |x, y| x + y)
}

/// Elementwise multiplication (Hadamard product).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    a.zip(b, |x, y| x * y)
}

/// Concatenates rank-1 tensors end to end.
///
/// Used for the gate-input `concat` in LSTM/GRU cells.
pub fn concat(parts: &[&Tensor]) -> Tensor {
    let total: usize = parts.iter().map(|t| t.len()).sum();
    let mut data = Vec::with_capacity(total);
    for part in parts {
        data.extend_from_slice(part.as_slice());
    }
    Tensor::from_vec(data, &[total]).expect("concat length computed from parts")
}

/// Sums a list of same-shaped tensors (child-sum aggregation).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if any shape differs from the
/// first; returns a zero scalar tensor shape error if `parts` is empty.
pub fn sum_all(parts: &[&Tensor]) -> crate::Result<Tensor> {
    let first = parts.first().ok_or_else(|| TensorError::ShapeMismatch {
        expected: "at least one tensor".to_string(),
        found: "empty list".to_string(),
    })?;
    let mut out = (*first).clone();
    for part in &parts[1..] {
        out = add(&out, part)?;
    }
    Ok(out)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,N]".to_string(),
            found: format!("{}", a.shape()),
        });
    }
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    Ok(Tensor::from_fn(&[n, m], |ix| a[[ix[1], ix[0]]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        Tensor::from_fn(&[m, n], |ix| {
            (0..k).map(|kk| a[[ix[0], kk]] * b[[kk, ix[1]]]).sum()
        })
    }

    #[test]
    fn gemm_matches_naive_on_odd_sizes() {
        // Sizes straddle the block boundary on purpose.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (33, 31, 65), (64, 64, 64)] {
            let a = Tensor::random(&[m, k], 1.0, 1);
            let b = Tensor::random(&[k, n], 1.0, 2);
            let fast = gemm(&a, &b).unwrap();
            let slow = naive_gemm(&a, &b);
            assert!(fast.all_close(&slow, 1e-4), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn gemv_matches_gemm_column() {
        let a = Tensor::random(&[17, 9], 1.0, 3);
        let x = Tensor::random(&[9], 1.0, 4);
        let as_mat = x.clone().reshape(&[9, 1]).unwrap();
        let via_gemm = gemm(&a, &as_mat).unwrap().reshape(&[17]).unwrap();
        let via_gemv = gemv(&a, &x).unwrap();
        assert!(via_gemv.all_close(&via_gemm, 1e-5));
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(gemm(&a, &b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b = vec![1.0f32; 7];
        assert_eq!(dot(&a, &b), 21.0);
    }

    #[test]
    fn concat_orders_parts() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        assert_eq!(concat(&[&a, &b]).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_all_is_child_sum() {
        let a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[3], 2.0);
        let c = Tensor::full(&[3], 3.0);
        let s = sum_all(&[&a, &b, &c]).unwrap();
        assert_eq!(s.as_slice(), &[6.0, 6.0, 6.0]);
        assert!(sum_all(&[]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::random(&[4, 7], 1.0, 5);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(a, tt);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0f32, 1.0];
        axpy(&mut y, &[2.0, 3.0]);
        assert_eq!(y, vec![3.0, 4.0]);
    }
}

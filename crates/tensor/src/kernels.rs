//! Numeric kernels: matrix products, elementwise operators, concatenation.
//!
//! These kernels play two roles in the reproduction:
//!
//! 1. They are the *vendor library* that the baseline frameworks (PyTorch-,
//!    DyNet- and Cavs-like) call as black boxes, one call per operator.
//! 2. They are the native inner loops that Cortex-generated fused kernels
//!    bottom out in (standing in for the LLVM/CUDA code TVM would emit) —
//!    in particular the batched wavefront executor runs one [`gemm_nt`]
//!    per reduction site per wave.
//!
//! The matrix products share one cache-blocked **NT micro-kernel**
//! ([`gemm_nt_into`]): `C[i,j] = Σ_k A[i,k]·B[j,k]` with both operands
//! row-major, so every inner loop is a contiguous dual-stream dot
//! product. Those inner loops ([`dot`], `dot4`, [`axpy`]) dispatch at
//! runtime to explicit AVX2/FMA or AVX-512 kernels when the CPU supports
//! them, with the unrolled scalar loop as the always-correct fallback —
//! see the [`crate::simd`] module. `gemm` (the NN layout) packs
//! transposed panels of `B` and calls the same kernel. There is **no**
//! zero-skipping: a branch on `a == 0.0` both blocks vectorization and
//! silently changes IEEE semantics (`0 · ∞` must be `NaN`, not skipped) —
//! see `gemm_propagates_nan_and_inf`.
//!
//! With the `parallel` feature, large products are row-partitioned across
//! a scoped thread pool with chunked work stealing (`par_rows`); each
//! row's reduction order is unchanged, so results are identical to the
//! sequential path.

use crate::tensor::{Tensor, TensorError};

/// Rows of `B` (= columns of the output) packed per panel: eight
/// independent accumulator chains per pass over an `a` row (`dot8`).
const NT_JB: usize = 8;
/// K-extent of a packed panel: 8 rows × 512 × 4 B = 16 KiB, L1-resident.
const NT_KB: usize = 512;
/// Minimum `m·n·k` before threading is worth the fork (≈0.25 Mflop).
#[cfg(feature = "parallel")]
const PAR_MIN_WORK: usize = 1 << 18;
/// Rows handed out per steal; keeps the atomic cold.
#[cfg(feature = "parallel")]
const PAR_CHUNK: usize = 8;

/// Dense matrix–matrix product: `C[m,n] = sum_k A[m,k] * B[k,n]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[M,K]`, `b` is
/// `[K,N]`.
pub fn gemm(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.shape().dim(1) != b.shape().dim(0) {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,K] x [K,N]".to_string(),
            found: format!("{} x {}", a.shape(), b.shape()),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    let mut c = Tensor::zeros(&[m, n]);
    gemm_into(c.as_mut_slice(), a.as_slice(), b.as_slice(), m, n, k);
    Ok(c)
}

/// Slice-level NN product: `c[i·n+j] = Σ_k a[i·k+k']·b[k'·n+j]`.
///
/// Packs transposed panels of `b` and runs the NT micro-kernel, so the
/// inner loops are contiguous regardless of `n`.
///
/// # Panics
///
/// Panics (in debug builds) if the slices are shorter than the shapes
/// imply.
pub fn gemm_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, n: usize, k: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    // Pack Bᵀ panel by panel and reduce through the NT kernel. Panels are
    // [NT_JB][kb]: column j of B becomes a contiguous row.
    let mut panel = [0.0f32; NT_JB * NT_KB];
    for j0 in (0..n).step_by(NT_JB) {
        let jb = NT_JB.min(n - j0);
        for k0 in (0..k).step_by(NT_KB) {
            let kb = NT_KB.min(k - k0);
            for jj in 0..jb {
                for kk in 0..kb {
                    panel[jj * kb + kk] = b[(k0 + kk) * n + j0 + jj];
                }
            }
            let first = k0 == 0;
            for i in 0..m {
                let a_row = &a[i * k + k0..i * k + k0 + kb];
                let c_row = &mut c[i * n + j0..i * n + j0 + jb];
                nt_microkernel(c_row, a_row, &panel, jb, kb, first);
            }
        }
    }
}

/// Transposed-B product into a [`Tensor`]: `C[m,n] = Σ_k A[m,k]·B[n,k]`.
///
/// This is the layout the batched wavefront executor produces (packed
/// operand rows × packed weight rows); both operands stream contiguously.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[M,K]` and `b` is
/// `[N,K]`.
pub fn gemm_nt(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.shape().dim(1) != b.shape().dim(1) {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,K] x [N,K]".to_string(),
            found: format!("{} x {}", a.shape(), b.shape()),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(0);
    let mut c = Tensor::zeros(&[m, n]);
    gemm_nt_into(c.as_mut_slice(), a.as_slice(), b.as_slice(), m, n, k);
    Ok(c)
}

/// Slice-level NT product: `c[i·n+j] = Σ_k a[i·k+k']·b[j·k+k']`.
///
/// `a` is `[m][k]` row-major, `b` is `[n][k]` row-major. With the
/// `parallel` feature and enough work, rows of `c` are computed by a
/// scoped thread pool; the per-row reduction order is identical either
/// way.
///
/// # Panics
///
/// Panics (in debug builds) if the slices are shorter than the shapes
/// imply.
pub fn gemm_nt_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, n: usize, k: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= n * k && c.len() >= m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c[..m * n].fill(0.0);
        return;
    }
    #[cfg(feature = "parallel")]
    if m * n * k >= PAR_MIN_WORK && m >= 2 * PAR_CHUNK {
        par_rows(m, |rows, c_rows: &mut [f32]| {
            gemm_nt_rows(c_rows, &a[rows.start * k..], b, rows.len(), n, k);
        })(c, n);
        return;
    }
    gemm_nt_rows(c, a, b, m, n, k);
}

/// Sequential NT product over a row range (the per-thread body).
///
/// Full 8-column panels process `a` rows in pairs ([`crate::simd::dot8x2`]):
/// each `b` panel load feeds two rows' FMA chains, which is what makes
/// multi-row (super-wave) GEMMs faster *per row* than the one-row GEMV
/// shape. Per-row results are bit-identical to single-row execution.
pub(crate) fn gemm_nt_rows(c: &mut [f32], a: &[f32], b: &[f32], m: usize, n: usize, k: usize) {
    for j0 in (0..n).step_by(NT_JB) {
        let jb = NT_JB.min(n - j0);
        for k0 in (0..k).step_by(NT_KB) {
            let kb = NT_KB.min(k - k0);
            // B rows are already contiguous in the NT layout: "packing" is
            // just the 4-row window starting at j0 (no copy when kb == k).
            let first = k0 == 0;
            let mut i = 0usize;
            if jb == 8 {
                let row = |j: usize| &b[(j0 + j) * k + k0..(j0 + j) * k + k0 + kb];
                let bp: [&[f32]; 8] = std::array::from_fn(row);
                while i + 2 <= m {
                    let a0 = &a[i * k + k0..i * k + k0 + kb];
                    let a1 = &a[(i + 1) * k + k0..(i + 1) * k + k0 + kb];
                    let d = crate::simd::dot8x2(a0, a1, &bp);
                    for (r, dr) in d.iter().enumerate() {
                        let c_row = &mut c[(i + r) * n + j0..(i + r) * n + j0 + 8];
                        if first {
                            c_row.copy_from_slice(dr);
                        } else {
                            for (cv, dv) in c_row.iter_mut().zip(dr) {
                                *cv += dv;
                            }
                        }
                    }
                    i += 2;
                }
            }
            for i in i..m {
                let a_row = &a[i * k + k0..i * k + k0 + kb];
                let c_row = &mut c[i * n + j0..i * n + j0 + jb];
                nt_microkernel_strided(c_row, a_row, b, (j0, k, k0), jb, kb, first);
            }
        }
    }
}

/// The NT micro-kernel: `jb ≤ 8` output elements from one `a` row and a
/// row accessor over `B`. One pass over `a_row` feeds all accumulator
/// chains (`dot8`/`dot4`, SIMD-dispatched). Both the packed-panel and
/// the in-place layouts dispatch here via their accessor.
#[inline]
fn nt_microkernel_rows<'b>(
    c_row: &mut [f32],
    a_row: &[f32],
    row: impl Fn(usize) -> &'b [f32],
    jb: usize,
    first: bool,
) {
    match jb {
        8 => {
            let b: [&[f32]; 8] = std::array::from_fn(&row);
            let d = crate::simd::dot8(a_row, &b);
            if first {
                c_row[..8].copy_from_slice(&d);
            } else {
                for (cv, dv) in c_row.iter_mut().zip(d) {
                    *cv += dv;
                }
            }
        }
        4..=7 => {
            // Tail panels of 4-7 columns: a dot4 covers the first four
            // (one shared pass over `a_row`), leaving at most three
            // single-dot columns — the slow per-column path never runs
            // more than 3 wide.
            let d = dot4(a_row, row(0), row(1), row(2), row(3));
            if first {
                c_row[..4].copy_from_slice(&d);
            } else {
                for (cv, dv) in c_row.iter_mut().zip(d) {
                    *cv += dv;
                }
            }
            for (jj, cv) in c_row.iter_mut().enumerate().skip(4) {
                let d = dot(a_row, row(jj));
                if first {
                    *cv = d;
                } else {
                    *cv += d;
                }
            }
        }
        _ => {
            for (jj, cv) in c_row.iter_mut().enumerate() {
                let d = dot(a_row, row(jj));
                if first {
                    *cv = d;
                } else {
                    *cv += d;
                }
            }
        }
    }
}

/// Micro-kernel over a `[jb][kb]` contiguous packed panel.
#[inline]
fn nt_microkernel(
    c_row: &mut [f32],
    a_row: &[f32],
    panel: &[f32],
    jb: usize,
    kb: usize,
    first: bool,
) {
    nt_microkernel_rows(c_row, a_row, |j| &panel[j * kb..j * kb + kb], jb, first);
}

/// Micro-kernel reading `b` in place (row stride `k`, offset `k0`),
/// avoiding the pack copy when `B` is already `[n][k]` row-major.
#[inline]
fn nt_microkernel_strided(
    c_row: &mut [f32],
    a_row: &[f32],
    b: &[f32],
    (j0, k, k0): (usize, usize, usize),
    jb: usize,
    kb: usize,
    first: bool,
) {
    nt_microkernel_rows(
        c_row,
        a_row,
        |j| &b[(j0 + j) * k + k0..(j0 + j) * k + k0 + kb],
        jb,
        first,
    );
}

/// Four simultaneous dot products sharing one pass over `a`, dispatched
/// to the widest available SIMD level ([`crate::simd::dot4`]).
#[inline]
fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    crate::simd::dot4(a, b0, b1, b2, b3)
}

/// Dense matrix–vector product: `y[m] = sum_k A[m,k] * x[k]`.
///
/// Processes four rows per pass over `x` (the same accumulator shape as
/// the NT micro-kernel).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless `a` is `[M,K]` and `x` is
/// `[K]`.
pub fn gemv(a: &Tensor, x: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 || x.rank() != 1 || a.shape().dim(1) != x.shape().dim(0) {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,K] x [K]".to_string(),
            found: format!("{} x {}", a.shape(), x.shape()),
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let a_s = a.as_slice();
    let x_s = x.as_slice();
    let mut y = vec![0.0f32; m];
    let mut i = 0;
    while i + 4 <= m {
        let r = |d: usize| &a_s[(i + d) * k..(i + d + 1) * k];
        let d = dot4(x_s, r(0), r(1), r(2), r(3));
        y[i..i + 4].copy_from_slice(&d);
        i += 4;
    }
    for (ii, yv) in y.iter_mut().enumerate().skip(i) {
        *yv = dot(&a_s[ii * k..(ii + 1) * k], x_s);
    }
    Tensor::from_vec(y, &[m])
}

/// Dot product of two equal-length slices, dispatched to the widest
/// available SIMD level ([`crate::simd::dot`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::simd::dot(a, b)
}

// ---------------------------------------------------------------------
// Scoped-thread row partitioning (the `parallel` feature)
// ---------------------------------------------------------------------

/// Returns a closure that runs `work(row_range, c_rows)` over disjoint
/// row chunks of an `[m][row_len]` output, stolen from a shared atomic
/// counter by a scoped thread pool.
///
/// Chunked work stealing (rather than static striping) keeps threads busy
/// when early waves of a recursion are much wider than late ones.
#[cfg(feature = "parallel")]
fn par_rows<'a, F>(m: usize, work: F) -> impl FnOnce(&mut [f32], usize) + 'a
where
    F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync + 'a,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    move |c: &mut [f32], row_len: usize| {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1)
            .min(m.div_ceil(PAR_CHUNK));
        if threads <= 1 {
            work(0..m, &mut c[..m * row_len]);
            return;
        }
        let next = AtomicUsize::new(0);
        let c_ptr = SendPtr(c.as_mut_ptr());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let work = &work;
                let next = &next;
                let c_ptr = &c_ptr;
                scope.spawn(move || loop {
                    let start = next.fetch_add(PAR_CHUNK, Ordering::Relaxed);
                    if start >= m {
                        break;
                    }
                    let end = (start + PAR_CHUNK).min(m);
                    // SAFETY: chunks [start, end) are claimed exactly once
                    // via the atomic counter, so the row slices handed to
                    // each thread are disjoint.
                    let rows = unsafe {
                        std::slice::from_raw_parts_mut(
                            c_ptr.0.add(start * row_len),
                            (end - start) * row_len,
                        )
                    };
                    work(start..end, rows);
                });
            }
        });
    }
}

/// A raw pointer that may cross scoped-thread boundaries; all uses derive
/// disjoint slices (see `par_rows`).
#[cfg(feature = "parallel")]
struct SendPtr(*mut f32);
#[cfg(feature = "parallel")]
unsafe impl Sync for SendPtr {}

/// `y += x` over slices, dispatched to the widest available SIMD level
/// ([`crate::simd::axpy`]).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(y: &mut [f32], x: &[f32]) {
    crate::simd::axpy(y, x);
}

/// Elementwise addition.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    a.zip(b, |x, y| x + y)
}

/// Elementwise multiplication (Hadamard product).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    a.zip(b, |x, y| x * y)
}

/// Concatenates rank-1 tensors end to end.
///
/// Used for the gate-input `concat` in LSTM/GRU cells.
pub fn concat(parts: &[&Tensor]) -> Tensor {
    let total: usize = parts.iter().map(|t| t.len()).sum();
    let mut data = Vec::with_capacity(total);
    for part in parts {
        data.extend_from_slice(part.as_slice());
    }
    Tensor::from_vec(data, &[total]).expect("concat length computed from parts")
}

/// Sums a list of same-shaped tensors (child-sum aggregation).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if any shape differs from the
/// first; returns a zero scalar tensor shape error if `parts` is empty.
pub fn sum_all(parts: &[&Tensor]) -> crate::Result<Tensor> {
    let first = parts.first().ok_or_else(|| TensorError::ShapeMismatch {
        expected: "at least one tensor".to_string(),
        found: "empty list".to_string(),
    })?;
    let mut out = (*first).clone();
    for part in &parts[1..] {
        out = add(&out, part)?;
    }
    Ok(out)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            expected: "[M,N]".to_string(),
            found: format!("{}", a.shape()),
        });
    }
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    Ok(Tensor::from_fn(&[n, m], |ix| a[[ix[1], ix[0]]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        Tensor::from_fn(&[m, n], |ix| {
            (0..k).map(|kk| a[[ix[0], kk]] * b[[kk, ix[1]]]).sum()
        })
    }

    #[test]
    fn gemm_matches_naive_on_odd_sizes() {
        // Sizes straddle the panel boundaries on purpose.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (33, 31, 65),
            (64, 64, 64),
            (5, 1030, 3),
            (2, 17, 9),
        ] {
            let a = Tensor::random(&[m, k], 1.0, 1);
            let b = Tensor::random(&[k, n], 1.0, 2);
            let fast = gemm(&a, &b).unwrap();
            let slow = naive_gemm(&a, &b);
            assert!(fast.all_close(&slow, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_nt_matches_gemm_of_transpose() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 33, 4), (40, 1030, 12)] {
            let a = Tensor::random(&[m, k], 1.0, 3);
            let bt = Tensor::random(&[n, k], 1.0, 4);
            let via_nt = gemm_nt(&a, &bt).unwrap();
            let via_nn = gemm(&a, &transpose(&bt).unwrap()).unwrap();
            assert!(via_nt.all_close(&via_nn, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_propagates_nan_and_inf() {
        // 0 · ∞ = NaN: zero-skipping would silently return 0 here.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::INFINITY, 0.0], &[2, 1]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert!(
            c[[0, 0]].is_nan(),
            "0 * inf must poison the sum, got {}",
            c[[0, 0]]
        );

        let bn = Tensor::from_vec(vec![f32::NAN, 0.0], &[2, 1]).unwrap();
        let cn = gemm(&a, &bn).unwrap();
        assert!(cn[[0, 0]].is_nan());

        // Plain zeros (no non-finite values) still give exact zeros.
        let z = gemm(&Tensor::zeros(&[2, 3]), &Tensor::random(&[3, 2], 1.0, 9)).unwrap();
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemv_matches_gemm_column() {
        for &(m, k) in &[(17, 9), (4, 8), (3, 3), (9, 130)] {
            let a = Tensor::random(&[m, k], 1.0, 3);
            let x = Tensor::random(&[k], 1.0, 4);
            let as_mat = x.clone().reshape(&[k, 1]).unwrap();
            let via_gemm = gemm(&a, &as_mat).unwrap().reshape(&[m]).unwrap();
            let via_gemv = gemv(&a, &x).unwrap();
            assert!(via_gemv.all_close(&via_gemm, 1e-4));
        }
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            gemm(&a, &b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(gemm_nt(&a, &Tensor::zeros(&[4, 4])).is_err());
    }

    #[test]
    fn dot_handles_remainders() {
        for len in [0usize, 1, 7, 8, 9, 31] {
            let a: Vec<f32> = (0..len).map(|i| i as f32).collect();
            let b = vec![1.0f32; len];
            let want: f32 = (0..len).map(|i| i as f32).sum();
            assert_eq!(dot(&a, &b), want, "len {len}");
        }
    }

    #[test]
    fn dot4_matches_four_dots() {
        let a = Tensor::random(&[37], 1.0, 5);
        let rows = Tensor::random(&[4, 37], 1.0, 6);
        let got = dot4(
            a.as_slice(),
            rows.row(0),
            rows.row(1),
            rows.row(2),
            rows.row(3),
        );
        for (j, g) in got.iter().enumerate() {
            let want = dot(a.as_slice(), rows.row(j));
            assert!((g - want).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_orders_parts() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0], &[1]).unwrap();
        assert_eq!(concat(&[&a, &b]).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_all_is_child_sum() {
        let a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[3], 2.0);
        let c = Tensor::full(&[3], 3.0);
        let s = sum_all(&[&a, &b, &c]).unwrap();
        assert_eq!(s.as_slice(), &[6.0, 6.0, 6.0]);
        assert!(sum_all(&[]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::random(&[4, 7], 1.0, 5);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(a, tt);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0f32, 1.0];
        axpy(&mut y, &[2.0, 3.0]);
        assert_eq!(y, vec![3.0, 4.0]);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_nt_product_is_bitwise_identical_to_sequential() {
        // Row partitioning must not change any row's reduction order: the
        // threaded product is bit-identical to the serial body.
        let (m, k, n) = (96, 128, 64); // m·n·k ≥ PAR_MIN_WORK → threads engage
        let a = Tensor::random(&[m, k], 1.0, 21);
        let b = Tensor::random(&[n, k], 1.0, 22);
        let mut threaded = vec![0.0f32; m * n];
        gemm_nt_into(&mut threaded, a.as_slice(), b.as_slice(), m, n, k);
        let mut serial = vec![0.0f32; m * n];
        gemm_nt_rows(&mut serial, a.as_slice(), b.as_slice(), m, n, k);
        assert_eq!(threaded, serial);
    }

    #[test]
    fn large_nt_product_is_consistent_with_small_blocks() {
        // Exercises the parallel row partition when the feature is on and
        // the panel loops when it is off; either way the result must
        // match the naive reference.
        let (m, k, n) = (130, 96, 50);
        let a = Tensor::random(&[m, k], 1.0, 7);
        let bt = Tensor::random(&[n, k], 1.0, 8);
        let got = gemm_nt(&a, &bt).unwrap();
        let want = naive_gemm(&a, &transpose(&bt).unwrap());
        assert!(got.all_close(&want, 1e-3));
    }
}

//! Dense tensor substrate for the Cortex recursive-model compiler.
//!
//! The Cortex paper (MLSys 2021) extends a tensor compiler; this crate is the
//! from-scratch tensor layer that the rest of the reproduction builds on. It
//! provides:
//!
//! * [`Shape`] — tensor extents with row-major index arithmetic,
//! * [`Layout`] — strided layouts supporting the split / reorder / fuse
//!   dimension transformations that the ILIR exposes as data-layout
//!   scheduling primitives (§5.1 of the paper),
//! * [`Tensor`] — an owned dense `f32` tensor,
//! * [`kernels`] — the numeric kernels (gemm, gemv, elementwise, concat)
//!   used both by Cortex-generated code and by the baseline frameworks'
//!   "vendor library" calls,
//! * [`simd`] — explicit AVX2/AVX-512 micro-kernels with runtime feature
//!   dispatch (and the always-correct scalar fallback) that the matrix
//!   kernels bottom out in,
//! * [`approx`] — rational approximations of `tanh`/`sigmoid` (App. A.5).
//!
//! # Example
//!
//! ```
//! use cortex_tensor::{Tensor, kernels};
//!
//! let w = Tensor::from_fn(&[2, 3], |ix| (ix[0] * 3 + ix[1]) as f32);
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
//! let y = kernels::gemv(&w, &x).unwrap();
//! assert_eq!(y.as_slice(), &[8.0, 26.0]);
//! ```

pub mod approx;
pub mod kernels;
pub mod layout;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use layout::Layout;
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

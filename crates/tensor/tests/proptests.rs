//! Randomized property tests for the tensor substrate.
//!
//! Driven by the workspace's deterministic [`cortex_rng::Rng`] instead of
//! an external property-testing framework: each test samples a few hundred
//! random cases from a fixed seed, so failures are reproducible and the
//! build has no registry dependencies.

use cortex_rng::Rng;
use cortex_tensor::{kernels, Layout, Shape, Tensor};

const CASES: usize = 200;

fn small_dims(rng: &mut Rng) -> Vec<usize> {
    let rank = rng.range_usize(1, 4);
    (0..rank).map(|_| rng.range_usize(1, 6)).collect()
}

#[test]
fn linearize_delinearize_roundtrip() {
    let mut rng = Rng::new(0x11);
    for _ in 0..CASES {
        let shape = Shape::new(&small_dims(&mut rng));
        let flat = rng.below_usize(shape.len());
        let ix = shape.delinearize(flat);
        assert_eq!(shape.linearize(&ix), flat);
    }
}

#[test]
fn layout_split_is_injective() {
    let mut rng = Rng::new(0x12);
    for _ in 0..CASES {
        let extent = rng.range_usize(1, 40);
        let factor = rng.range_usize(1, 9);
        let shape = Shape::new(&[extent]);
        let layout = Layout::row_major(shape.clone()).split(0, factor);
        let mut seen = std::collections::HashSet::new();
        for i in 0..extent {
            assert!(seen.insert(layout.offset(&[i])), "collision at {i}");
        }
    }
}

#[test]
fn layout_reorder_is_bijective() {
    let mut rng = Rng::new(0x13);
    for _ in 0..CASES {
        let (a, b, c) = (
            rng.range_usize(1, 6),
            rng.range_usize(1, 6),
            rng.range_usize(1, 6),
        );
        let shape = Shape::new(&[a, b, c]);
        let layout = Layout::row_major(shape.clone()).reorder(&[2, 0, 1]);
        let mut seen = std::collections::HashSet::new();
        for ix in shape.indices() {
            assert!(seen.insert(layout.offset(&ix)));
        }
        assert_eq!(seen.len(), shape.len());
    }
}

#[test]
fn gemm_is_linear_in_first_argument() {
    let mut rng = Rng::new(0x14);
    for _ in 0..CASES {
        let (m, k, n) = (
            rng.range_usize(1, 8),
            rng.range_usize(1, 8),
            rng.range_usize(1, 8),
        );
        let alpha = rng.range_f32(-3.0, 3.0);
        let a = Tensor::random(&[m, k], 1.0, 7);
        let b = Tensor::random(&[k, n], 1.0, 8);
        let scaled_a = a.map(|x| alpha * x);
        let lhs = kernels::gemm(&scaled_a, &b).unwrap();
        let rhs = kernels::gemm(&a, &b).unwrap().map(|x| alpha * x);
        assert!(lhs.all_close(&rhs, 1e-3));
    }
}

#[test]
fn add_commutes() {
    let mut rng = Rng::new(0x15);
    for _ in 0..CASES {
        let dims = small_dims(&mut rng);
        let (s1, s2) = (rng.below_u64(100), rng.below_u64(100));
        let a = Tensor::random(&dims, 1.0, s1);
        let b = Tensor::random(&dims, 1.0, s2);
        let ab = kernels::add(&a, &b).unwrap();
        let ba = kernels::add(&b, &a).unwrap();
        assert_eq!(ab, ba);
    }
}

#[test]
fn transpose_gemm_identity() {
    let mut rng = Rng::new(0x16);
    for _ in 0..CASES {
        // (A B)^T == B^T A^T
        let (m, k, n) = (
            rng.range_usize(1, 6),
            rng.range_usize(1, 6),
            rng.range_usize(1, 6),
        );
        let a = Tensor::random(&[m, k], 1.0, 11);
        let b = Tensor::random(&[k, n], 1.0, 12);
        let lhs = kernels::transpose(&kernels::gemm(&a, &b).unwrap()).unwrap();
        let rhs = kernels::gemm(
            &kernels::transpose(&b).unwrap(),
            &kernels::transpose(&a).unwrap(),
        )
        .unwrap();
        assert!(lhs.all_close(&rhs, 1e-4));
    }
}

#[test]
fn tensor_map_then_zip_agree() {
    let mut rng = Rng::new(0x17);
    for _ in 0..CASES {
        let dims = small_dims(&mut rng);
        let s = rng.below_u64(50);
        let a = Tensor::random(&dims, 2.0, s);
        let doubled = a.map(|x| 2.0 * x);
        let summed = kernels::add(&a, &a).unwrap();
        assert!(doubled.all_close(&summed, 1e-6));
    }
}

#[test]
fn concat_length_and_content() {
    let mut rng = Rng::new(0x18);
    for _ in 0..CASES {
        let (na, nb) = (rng.below_usize(6), rng.below_usize(6));
        let a = Tensor::from_fn(&[na], |ix| ix[0] as f32);
        let b = Tensor::from_fn(&[nb], |ix| 100.0 + ix[0] as f32);
        let c = kernels::concat(&[&a, &b]);
        assert_eq!(c.len(), na + nb);
        for i in 0..na {
            assert_eq!(c.as_slice()[i], i as f32);
        }
        for i in 0..nb {
            assert_eq!(c.as_slice()[na + i], 100.0 + i as f32);
        }
    }
}

//! Property-based tests for the tensor substrate.

use cortex_tensor::{kernels, Layout, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

proptest! {
    #[test]
    fn linearize_delinearize_roundtrip(dims in small_dims(), seed in 0usize..1000) {
        let shape = Shape::new(&dims);
        let flat = seed % shape.len();
        let ix = shape.delinearize(flat);
        prop_assert_eq!(shape.linearize(&ix), flat);
    }

    #[test]
    fn layout_split_is_injective(extent in 1usize..40, factor in 1usize..9) {
        let shape = Shape::new(&[extent]);
        let layout = Layout::row_major(shape.clone()).split(0, factor);
        let mut seen = std::collections::HashSet::new();
        for i in 0..extent {
            prop_assert!(seen.insert(layout.offset(&[i])), "collision at {}", i);
        }
    }

    #[test]
    fn layout_reorder_is_bijective(a in 1usize..6, b in 1usize..6, c in 1usize..6) {
        let shape = Shape::new(&[a, b, c]);
        let layout = Layout::row_major(shape.clone()).reorder(&[2, 0, 1]);
        let mut seen = std::collections::HashSet::new();
        for ix in shape.indices() {
            prop_assert!(seen.insert(layout.offset(&ix)));
        }
        prop_assert_eq!(seen.len(), shape.len());
    }

    #[test]
    fn gemm_is_linear_in_first_argument(
        m in 1usize..8, k in 1usize..8, n in 1usize..8,
        alpha in -3.0f32..3.0,
    ) {
        let a = Tensor::random(&[m, k], 1.0, 7);
        let b = Tensor::random(&[k, n], 1.0, 8);
        let scaled_a = a.map(|x| alpha * x);
        let lhs = kernels::gemm(&scaled_a, &b).unwrap();
        let rhs = kernels::gemm(&a, &b).unwrap().map(|x| alpha * x);
        prop_assert!(lhs.all_close(&rhs, 1e-3));
    }

    #[test]
    fn add_commutes(dims in small_dims(), s1 in 0u64..100, s2 in 0u64..100) {
        let a = Tensor::random(&dims, 1.0, s1);
        let b = Tensor::random(&dims, 1.0, s2);
        let ab = kernels::add(&a, &b).unwrap();
        let ba = kernels::add(&b, &a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn transpose_gemm_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        // (A B)^T == B^T A^T
        let a = Tensor::random(&[m, k], 1.0, 11);
        let b = Tensor::random(&[k, n], 1.0, 12);
        let lhs = kernels::transpose(&kernels::gemm(&a, &b).unwrap()).unwrap();
        let rhs = kernels::gemm(
            &kernels::transpose(&b).unwrap(),
            &kernels::transpose(&a).unwrap(),
        ).unwrap();
        prop_assert!(lhs.all_close(&rhs, 1e-4));
    }

    #[test]
    fn tensor_map_then_zip_agree(dims in small_dims(), s in 0u64..50) {
        let a = Tensor::random(&dims, 2.0, s);
        let doubled = a.map(|x| 2.0 * x);
        let summed = kernels::add(&a, &a).unwrap();
        prop_assert!(doubled.all_close(&summed, 1e-6));
    }

    #[test]
    fn concat_length_and_content(na in 0usize..6, nb in 0usize..6) {
        let a = Tensor::from_fn(&[na], |ix| ix[0] as f32);
        let b = Tensor::from_fn(&[nb], |ix| 100.0 + ix[0] as f32);
        let c = kernels::concat(&[&a, &b]);
        prop_assert_eq!(c.len(), na + nb);
        for i in 0..na { prop_assert_eq!(c.as_slice()[i], i as f32); }
        for i in 0..nb { prop_assert_eq!(c.as_slice()[na + i], 100.0 + i as f32); }
    }
}

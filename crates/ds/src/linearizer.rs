//! The data-structure linearizer (§4.2 and Appendix B of the paper).
//!
//! At runtime, Cortex lowers pointer-linked recursive structures to flat
//! arrays that the generated loop-based code iterates over. Because all
//! control flow depends only on connectivity (property P.1), linearization
//! involves **no tensor computation** and runs on the host CPU.
//!
//! The linearizer implements:
//!
//! * **dynamic batching** — grouping nodes into height wavefronts that can
//!   be processed in parallel (property P.3),
//! * **specialization partitions** — separating leaves from internal nodes
//!   so the generated code can have distinct loop nests per branch,
//! * the **Appendix-B numbering scheme** — nodes in a batch are numbered
//!   consecutively and higher than their parents, and all leaves are
//!   numbered after all internal nodes, so batches lower to
//!   `batch_begin`/`batch_length` arrays and a leaf check is one integer
//!   comparison instead of a memory load,
//! * **unrolled schedules** — the alternative execution orders produced by
//!   the `unroll` scheduling primitive (§3.1, Figs. 3 and 11).

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use crate::node::NodeId;
use crate::structure::{RecStructure, StructureKind};

/// Sentinel stored in child slot arrays for absent children.
pub const NO_CHILD: u32 = u32::MAX;

/// A contiguous run of node ids forming one dynamic batch.
///
/// Thanks to the Appendix-B numbering, a batch is fully described by its
/// first node id and length — these are exactly the `batch_begin` and
/// `batch_length` arrays of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    begin: u32,
    len: u32,
}

impl Batch {
    /// First node id in the batch.
    pub fn begin(&self) -> u32 {
        self.begin
    }

    /// Number of nodes in the batch.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over the node ids in the batch.
    pub fn iter(&self) -> std::ops::Range<u32> {
        self.begin..self.begin + self.len
    }

    /// Whether `node` belongs to this batch (the Appendix-B membership
    /// test: `begin <= n < begin + len`).
    pub fn contains(&self, node: u32) -> bool {
        (self.begin..self.begin + self.len).contains(&node)
    }
}

/// Errors from linearization-adjacent scheduling requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearizeError {
    /// Unrolling (and recursive refactoring) are only supported for trees
    /// and sequences: on DAGs they would duplicate work (§3.1).
    UnrollOnDag,
    /// Unroll depth must be at least 2 to change anything.
    UnrollDepthTooSmall(usize),
}

impl fmt::Display for LinearizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizeError::UnrollOnDag => {
                write!(
                    f,
                    "unrolling is only supported for trees and sequences, not DAGs"
                )
            }
            LinearizeError::UnrollDepthTooSmall(d) => {
                write!(f, "unroll depth must be >= 2, got {d}")
            }
        }
    }
}

impl Error for LinearizeError {}

/// Configures and runs linearization.
///
/// The default configuration performs dynamic batching; schedules that
/// process nodes one at a time are modeled on the executor side (see
/// `RaSchedule::dynamic_batch`).
#[derive(Debug, Clone, Default)]
pub struct Linearizer {
    _private: (),
}

impl Linearizer {
    /// Creates a linearizer with the default configuration.
    pub fn new() -> Self {
        Linearizer::default()
    }

    /// Linearizes a structure: renumbers nodes per Appendix B, builds the
    /// child-slot arrays and the batch tables.
    ///
    /// # Errors
    ///
    /// Infallible today (returns `Result` for future-proofing against
    /// structures the generated code cannot consume); the error type is
    /// [`LinearizeError`].
    pub fn linearize(&self, s: &RecStructure) -> Result<Linearized, LinearizeError> {
        let n = s.num_nodes();
        let num_internal = s.num_internal();
        let max_h = s.max_height();

        // --- Appendix-B numbering -------------------------------------
        // Internal nodes first, by *decreasing* height (so parents get
        // lower ids than their children), then all leaves. Nodes of equal
        // height stay in original order, keeping batches deterministic.
        // One O(N) bucketing pass, matching the paper's linearizer
        // pseudocode (`internal_batches[node.height].append(node)`).
        let mut height_counts = vec![0u32; max_h as usize + 1];
        for node in s.iter() {
            if !s.is_leaf(node) {
                height_counts[s.height(node) as usize] += 1;
            }
        }
        // Id offsets per height bucket, highest height first.
        let mut offsets = vec![0u32; max_h as usize + 1];
        let mut next = 0u32;
        let mut internal_batches: Vec<Batch> = vec![Batch { begin: 0, len: 0 }; max_h as usize];
        for h in (1..=max_h).rev() {
            offsets[h as usize] = next;
            internal_batches[h as usize - 1] = Batch {
                begin: next,
                len: height_counts[h as usize],
            };
            next += height_counts[h as usize];
        }
        let mut new_to_old = vec![0u32; n];
        let mut old_to_new = vec![0u32; n];
        let leaf_begin = next;
        debug_assert_eq!(leaf_begin as usize, num_internal);
        for node in s.iter() {
            let slot = if s.is_leaf(node) {
                let v = next;
                next += 1;
                v
            } else {
                let h = s.height(node) as usize;
                let v = offsets[h];
                offsets[h] += 1;
                v
            };
            new_to_old[slot as usize] = node.index() as u32;
            old_to_new[node.index()] = slot;
        }
        let leaf_batch = Batch {
            begin: leaf_begin,
            len: next - leaf_begin,
        };

        // --- Child-slot arrays (the `left`/`right` arrays of Fig. 2) ---
        let slots = s.max_children();
        let mut child = vec![vec![NO_CHILD; n]; slots];
        let mut num_children = vec![0u32; n];
        let mut words = vec![0u32; n];
        for node in s.iter() {
            let id = old_to_new[node.index()] as usize;
            words[id] = s.word(node);
            let kids = s.children(node);
            num_children[id] = kids.len() as u32;
            for (slot, &kid) in kids.iter().enumerate() {
                child[slot][id] = old_to_new[kid.index()];
            }
        }

        let roots: Vec<u32> = s.roots().iter().map(|r| old_to_new[r.index()]).collect();
        let post_order: Vec<u32> = s
            .post_order()
            .iter()
            .map(|o| old_to_new[o.index()])
            .collect();

        Ok(Linearized {
            kind: s.kind(),
            num_nodes: n,
            num_internal,
            max_children: slots,
            new_to_old,
            old_to_new,
            child,
            no_child_row: vec![NO_CHILD; n],
            num_children,
            words,
            leaf_batch,
            internal_batches,
            roots,
            post_order,
        })
    }

    /// Linearizes and reports the wall-clock time spent doing so, for the
    /// §7.5 linearization-overhead experiment.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`linearize`](Self::linearize).
    pub fn linearize_timed(
        &self,
        s: &RecStructure,
    ) -> Result<(Linearized, Duration), LinearizeError> {
        let start = Instant::now();
        let lin = self.linearize(s)?;
        Ok((lin, start.elapsed()))
    }
}

/// The output of linearization: the flat arrays the generated loop-based
/// code iterates over (item 6 in Fig. 2 of the paper).
#[derive(Debug, Clone)]
pub struct Linearized {
    kind: StructureKind,
    num_nodes: usize,
    num_internal: usize,
    max_children: usize,
    new_to_old: Vec<u32>,
    old_to_new: Vec<u32>,
    /// `child[slot][id]` = the id of `id`'s `slot`-th child or [`NO_CHILD`].
    child: Vec<Vec<u32>>,
    /// All-[`NO_CHILD`] row returned for slots beyond [`max_children`]
    /// (a plan lowered for wider structures resolves them to "no child"
    /// instead of indexing out of bounds).
    no_child_row: Vec<u32>,
    num_children: Vec<u32>,
    words: Vec<u32>,
    leaf_batch: Batch,
    /// Execution order: height-1 wavefront first, roots last.
    internal_batches: Vec<Batch>,
    roots: Vec<u32>,
    post_order: Vec<u32>,
}

impl Linearized {
    /// The structure kind this linearization came from.
    pub fn kind(&self) -> StructureKind {
        self.kind
    }

    /// Total node count (N in Listing 1).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of internal nodes; also the id of the first leaf.
    pub fn num_internal(&self) -> usize {
        self.num_internal
    }

    /// Maximum children per node (declared data-structure info, §3).
    pub fn max_children(&self) -> usize {
        self.max_children
    }

    /// The batch containing every leaf.
    pub fn leaf_batch(&self) -> Batch {
        self.leaf_batch
    }

    /// Internal-node batches in execution order (lowest wavefront first).
    pub fn internal_batches(&self) -> &[Batch] {
        &self.internal_batches
    }

    /// All batches in execution order: leaves first, then each internal
    /// wavefront. This is what the generated ILIR iterates over when
    /// dynamic batching is enabled.
    pub fn batches(&self) -> Vec<Batch> {
        let mut v = Vec::with_capacity(1 + self.internal_batches.len());
        v.push(self.leaf_batch);
        v.extend_from_slice(&self.internal_batches);
        v
    }

    /// The `batch_begin` array of Appendix B (execution order).
    pub fn batch_begin(&self) -> Vec<u32> {
        self.batches().iter().map(|b| b.begin()).collect()
    }

    /// The `batch_length` array of Appendix B (execution order).
    pub fn batch_length(&self) -> Vec<u32> {
        self.batches().iter().map(|b| b.len() as u32).collect()
    }

    /// Node ids in dependence-respecting one-at-a-time order (children
    /// before parents) — the execution order without dynamic batching.
    pub fn post_order(&self) -> &[u32] {
        &self.post_order
    }

    /// Root node ids (new numbering).
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// The `slot`-th child of `node`, if any.
    ///
    /// Total over `slot`: slots beyond [`max_children`](Self::max_children)
    /// resolve to `None`, exactly as an in-range slot the node does not
    /// fill — so a plan lowered for a wider structure degrades to "no
    /// child" instead of panicking.
    pub fn child(&self, slot: usize, node: u32) -> Option<u32> {
        match self.child_array(slot)[node as usize] {
            NO_CHILD => None,
            c => Some(c),
        }
    }

    /// Raw child-slot array (the `left`/`right` arrays in Fig. 2);
    /// entries are [`NO_CHILD`] where absent. Total over `slot`: slots
    /// beyond [`max_children`](Self::max_children) return an
    /// all-[`NO_CHILD`] row of the same length.
    pub fn child_array(&self, slot: usize) -> &[u32] {
        self.child.get(slot).unwrap_or(&self.no_child_row)
    }

    /// Number of children of `node`.
    pub fn num_children_of(&self, node: u32) -> usize {
        self.num_children[node as usize] as usize
    }

    /// Children of `node` as an iterator over present slots.
    pub fn children_of(&self, node: u32) -> impl Iterator<Item = u32> + '_ {
        let n = self.num_children[node as usize] as usize;
        (0..n).map(move |s| self.child[s][node as usize])
    }

    /// Word (input feature) id of `node`.
    pub fn word(&self, node: u32) -> u32 {
        self.words[node as usize]
    }

    /// Leaf check via the Appendix-B numbering: one integer comparison.
    pub fn is_leaf(&self, node: u32) -> bool {
        node as usize >= self.num_internal
    }

    /// Leaf check via a memory load of the child count — the scheme the
    /// Appendix-B numbering replaces; kept for the ablation micro-bench.
    pub fn is_leaf_by_load(&self, node: u32) -> bool {
        self.num_children[node as usize] == 0
    }

    /// Translates a new id back to the original structure's node id.
    pub fn to_structure_id(&self, node: u32) -> NodeId {
        NodeId::new(self.new_to_old[node as usize])
    }

    /// Translates a structure node id to the linearized numbering.
    pub fn from_structure_id(&self, node: NodeId) -> u32 {
        self.old_to_new[node.index()]
    }

    /// Builds the unrolled schedule for the `unroll` scheduling primitive.
    ///
    /// Internal nodes are greedily grouped with their descendants within
    /// `depth` levels, starting from the roots (Fig. 3). Each *super wave*
    /// holds groups with no dependencies among them; its `stages` execute
    /// in order with a synchronization barrier between consecutive stages.
    ///
    /// # Errors
    ///
    /// Returns [`LinearizeError::UnrollOnDag`] for DAGs (nodes with
    /// multiple parents would be recomputed) and
    /// [`LinearizeError::UnrollDepthTooSmall`] for `depth < 2`.
    pub fn unrolled(&self, depth: usize) -> Result<UnrolledSchedule, LinearizeError> {
        if self.kind == StructureKind::Dag {
            return Err(LinearizeError::UnrollOnDag);
        }
        if depth < 2 {
            return Err(LinearizeError::UnrollDepthTooSmall(depth));
        }
        let n = self.num_nodes;
        let mut group_of = vec![usize::MAX; n];
        let mut groups: Vec<Vec<(u32, usize)>> = Vec::new(); // (node, dist from group root)

        // Internal ids are 0..num_internal with parents before children,
        // so a forward scan visits parents first — exactly the greedy
        // root-down grouping.
        for id in 0..self.num_internal as u32 {
            if group_of[id as usize] != usize::MAX {
                continue;
            }
            let g = groups.len();
            let mut members = vec![(id, 0usize)];
            group_of[id as usize] = g;
            let mut frontier = vec![(id, 0usize)];
            while let Some((node, dist)) = frontier.pop() {
                if dist + 1 >= depth {
                    continue;
                }
                for c in self.children_of(node) {
                    if !self.is_leaf(c) && group_of[c as usize] == usize::MAX {
                        group_of[c as usize] = g;
                        members.push((c, dist + 1));
                        frontier.push((c, dist + 1));
                    }
                }
            }
            groups.push(members);
        }

        // Group dependency: g needs g' if a member's child lies in g'.
        // Waves via longest-path layering. Group ids increase root-down,
        // meaning dependencies point to *larger* group ids; process groups
        // in reverse id order so dependencies are final first.
        let num_groups = groups.len();
        let mut wave = vec![0usize; num_groups];
        for g in (0..num_groups).rev() {
            let mut w = 0usize;
            for &(node, _) in &groups[g] {
                for c in self.children_of(node) {
                    if !self.is_leaf(c) {
                        let dg = group_of[c as usize];
                        if dg != g {
                            w = w.max(wave[dg] + 1);
                        }
                    }
                }
            }
            wave[g] = w;
        }
        let max_wave = wave.iter().copied().max().map_or(0, |w| w + 1);
        let mut super_waves: Vec<SuperWave> = (0..max_wave)
            .map(|_| SuperWave { stages: Vec::new() })
            .collect();
        // First pass: size each wave's stage list to its deepest group, so
        // groups can be right-aligned (group roots in the final stage).
        for g in 0..num_groups {
            let depth_g = groups[g].iter().map(|&(_, d)| d).max().unwrap_or(0);
            let sw = &mut super_waves[wave[g]];
            if sw.stages.len() < depth_g + 1 {
                sw.stages.resize(depth_g + 1, Vec::new());
            }
        }
        // Second pass: place members; children (larger dist) land in
        // earlier stages than their in-group parents.
        for g in 0..num_groups {
            let sw = &mut super_waves[wave[g]];
            let align = sw.stages.len();
            for &(node, dist) in &groups[g] {
                sw.stages[align - 1 - dist].push(node);
            }
        }
        for sw in &mut super_waves {
            for stage in &mut sw.stages {
                stage.sort_unstable();
            }
        }
        let group_stage_total = groups
            .iter()
            .map(|g| g.iter().map(|&(_, d)| d).max().unwrap_or(0) + 1)
            .sum();
        Ok(UnrolledSchedule {
            super_waves,
            intra_group_edges: self.count_intra_group_edges(&group_of),
            group_stage_total,
        })
    }

    fn count_intra_group_edges(&self, group_of: &[usize]) -> usize {
        let mut count = 0;
        for id in 0..self.num_internal as u32 {
            for c in self.children_of(id) {
                if !self.is_leaf(c) && group_of[c as usize] == group_of[id as usize] {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Execution schedule produced by recursion unrolling (Fig. 3).
///
/// Leaves are always computed first (they belong to the hoisted leaf batch);
/// then super waves execute in order, with a global barrier between the
/// `stages` inside each wave and between waves.
#[derive(Debug, Clone)]
pub struct UnrolledSchedule {
    /// Super waves in execution order.
    pub super_waves: Vec<SuperWave>,
    /// Number of parent→child edges kept inside a group — each is a reuse
    /// opportunity through fast on-chip memory (the yellow boxes in Fig. 3).
    pub intra_group_edges: usize,
    /// Sum over groups of their stage counts: the barrier count when each
    /// unrolled call synchronizes independently.
    pub group_stage_total: usize,
}

impl UnrolledSchedule {
    /// Number of barrier-separated stages across the whole schedule
    /// (the quantity Fig. 11 illustrates growing under unrolling).
    pub fn total_stages(&self) -> usize {
        self.super_waves.iter().map(|w| w.stages.len()).sum()
    }

    /// Barrier count when barriers cannot be amortized across the groups
    /// of a super wave (Fig. 11: each unrolled call region synchronizes
    /// its own stages). This is what a global-barrier schedule pays after
    /// unrolling; a per-node thread-block schedule pays
    /// [`num_super_waves`](Self::num_super_waves) instead.
    pub fn unamortized_barriers(&self) -> usize {
        self.group_stage_total
    }

    /// Number of super waves (the barrier count when a per-node
    /// thread-block schedule needs no intra-wave barriers — the TreeRNN
    /// case in §7.4).
    pub fn num_super_waves(&self) -> usize {
        self.super_waves.len()
    }

    /// Every node mentioned by the schedule, for invariant checks.
    pub fn all_nodes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .super_waves
            .iter()
            .flat_map(|w| w.stages.iter().flatten().copied())
            .collect();
        v.sort_unstable();
        v
    }
}

/// One dependency level of an [`UnrolledSchedule`].
#[derive(Debug, Clone)]
pub struct SuperWave {
    /// Stages execute in order; all nodes within a stage are independent.
    pub stages: Vec<Vec<u32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::structure::{StructureBuilder, StructureKind};

    fn fig1_tree() -> RecStructure {
        // ((It is) ((a dog) .))
        let mut b = StructureBuilder::new(StructureKind::Tree);
        let it = b.leaf(10);
        let is = b.leaf(11);
        let a = b.leaf(12);
        let dog = b.leaf(13);
        let dot = b.leaf(14);
        let l = b.internal(&[it, is]).unwrap();
        let ad = b.internal(&[a, dog]).unwrap();
        let r = b.internal(&[ad, dot]).unwrap();
        let _root = b.internal(&[l, r]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn numbering_parents_before_children() {
        let t = fig1_tree();
        let lin = Linearizer::new().linearize(&t).unwrap();
        for id in 0..lin.num_internal() as u32 {
            for c in lin.children_of(id) {
                assert!(c > id, "child {c} not numbered higher than parent {id}");
            }
        }
    }

    #[test]
    fn leaves_numbered_last() {
        let t = fig1_tree();
        let lin = Linearizer::new().linearize(&t).unwrap();
        assert_eq!(lin.num_internal(), 4);
        for id in 0..lin.num_nodes() as u32 {
            assert_eq!(lin.is_leaf(id), lin.is_leaf_by_load(id));
            assert_eq!(lin.is_leaf(id), id >= 4);
        }
    }

    #[test]
    fn batches_are_height_wavefronts() {
        let t = fig1_tree();
        let lin = Linearizer::new().linearize(&t).unwrap();
        let batches = lin.batches();
        // leaves, height-1 (2 nodes: (It is), (a dog)), height-2 ((..).),
        // height-3 (root).
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].len(), 5);
        assert_eq!(batches[1].len(), 2);
        assert_eq!(batches[2].len(), 1);
        assert_eq!(batches[3].len(), 1);
    }

    #[test]
    fn batch_membership_by_range() {
        let t = datasets::perfect_binary_tree(4, 0);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let begin = lin.batch_begin();
        let length = lin.batch_length();
        for (i, b) in lin.batches().iter().enumerate() {
            for n in b.iter() {
                assert!(begin[i] <= n && n < begin[i] + length[i]);
                assert!(b.contains(n));
            }
        }
    }

    #[test]
    fn every_node_in_exactly_one_batch() {
        let t = datasets::random_binary_tree(23, 3);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let mut seen = vec![false; lin.num_nodes()];
        for b in lin.batches() {
            for n in b.iter() {
                assert!(!seen[n as usize], "node {n} in two batches");
                seen[n as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn children_in_earlier_batches() {
        let d = datasets::grid_dag(6, 7, 1);
        let lin = Linearizer::new().linearize(&d).unwrap();
        let batches = lin.batches();
        let mut batch_of = vec![0usize; lin.num_nodes()];
        for (i, b) in batches.iter().enumerate() {
            for n in b.iter() {
                batch_of[n as usize] = i;
            }
        }
        for id in 0..lin.num_nodes() as u32 {
            for c in lin.children_of(id) {
                assert!(
                    batch_of[c as usize] < batch_of[id as usize],
                    "child {c} not in earlier batch than {id}"
                );
            }
        }
    }

    #[test]
    fn child_accessors_total_over_slot() {
        let t = fig1_tree();
        let lin = Linearizer::new().linearize(&t).unwrap();
        assert_eq!(lin.max_children(), 2);
        // A slot the structure never fills behaves like an absent child,
        // not an out-of-bounds index.
        let row = lin.child_array(5);
        assert_eq!(row.len(), lin.num_nodes());
        assert!(row.iter().all(|&c| c == NO_CHILD));
        for n in 0..lin.num_nodes() as u32 {
            assert_eq!(lin.child(5, n), None);
        }
    }

    #[test]
    fn words_preserved_through_renumbering() {
        let t = fig1_tree();
        let lin = Linearizer::new().linearize(&t).unwrap();
        let mut leaf_words: Vec<u32> = lin.leaf_batch().iter().map(|n| lin.word(n)).collect();
        leaf_words.sort_unstable();
        assert_eq!(leaf_words, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn round_trip_ids() {
        let t = datasets::random_binary_tree(12, 9);
        let lin = Linearizer::new().linearize(&t).unwrap();
        for node in t.iter() {
            assert_eq!(lin.to_structure_id(lin.from_structure_id(node)), node);
        }
    }

    #[test]
    fn post_order_respects_dependences() {
        let d = datasets::grid_dag(5, 5, 2);
        let lin = Linearizer::new().linearize(&d).unwrap();
        let pos: std::collections::HashMap<u32, usize> = lin
            .post_order()
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        for id in 0..lin.num_nodes() as u32 {
            for c in lin.children_of(id) {
                assert!(pos[&c] < pos[&id]);
            }
        }
    }

    #[test]
    fn sequence_batches_are_singletons() {
        let s = datasets::sequence(10, 0);
        let lin = Linearizer::new().linearize(&s).unwrap();
        assert_eq!(lin.internal_batches().len(), 9);
        assert!(lin.internal_batches().iter().all(|b| b.len() == 1));
    }

    #[test]
    fn batched_sequences_have_wide_wavefronts() {
        let f = datasets::batch_of(|s| datasets::sequence(10, s), 4, 0);
        let lin = Linearizer::new().linearize(&f).unwrap();
        assert_eq!(lin.internal_batches().len(), 9);
        assert!(lin.internal_batches().iter().all(|b| b.len() == 4));
    }

    #[test]
    fn unrolled_covers_all_internal_nodes() {
        let t = datasets::perfect_binary_tree(5, 0);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let sched = lin.unrolled(2).unwrap();
        let nodes = sched.all_nodes();
        assert_eq!(nodes.len(), lin.num_internal());
        assert_eq!(nodes, (0..lin.num_internal() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn unrolled_stage_order_respects_dependences() {
        let t = datasets::random_binary_tree(30, 4);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let sched = lin.unrolled(3).unwrap();
        // Global stage index for every node.
        let mut stage_of = std::collections::HashMap::new();
        let mut idx = 0usize;
        for w in &sched.super_waves {
            for stage in &w.stages {
                for &n in stage {
                    stage_of.insert(n, idx);
                }
                idx += 1;
            }
        }
        for id in 0..lin.num_internal() as u32 {
            for c in lin.children_of(id) {
                if !lin.is_leaf(c) {
                    assert!(
                        stage_of[&c] < stage_of[&id],
                        "internal child {c} must be staged before parent {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn unrolling_creates_reuse_edges_on_perfect_tree() {
        let t = datasets::perfect_binary_tree(6, 0);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let sched = lin.unrolled(2).unwrap();
        assert!(sched.intra_group_edges > 0);
    }

    #[test]
    fn unrolling_increases_stages_on_imbalanced_trees() {
        // Imbalanced SST-like trees fragment wavefronts (Fig. 11).
        let f = datasets::batch_of(|s| datasets::random_binary_tree(20, s), 10, 1);
        let lin = Linearizer::new().linearize(&f).unwrap();
        let plain_barriers = lin.internal_batches().len();
        let sched = lin.unrolled(2).unwrap();
        assert!(
            sched.total_stages() >= plain_barriers,
            "expected unrolling to add barrier stages: {} vs {}",
            sched.total_stages(),
            plain_barriers
        );
        // ... while reducing the number of super waves (fewer kernel
        // regions), which is what per-node-block schedules exploit.
        assert!(sched.num_super_waves() <= plain_barriers);
    }

    #[test]
    fn unroll_rejects_dags_and_depth_one() {
        let d = datasets::grid_dag(3, 3, 0);
        let lin = Linearizer::new().linearize(&d).unwrap();
        assert_eq!(lin.unrolled(2).unwrap_err(), LinearizeError::UnrollOnDag);
        let t = datasets::perfect_binary_tree(3, 0);
        let lin = Linearizer::new().linearize(&t).unwrap();
        assert_eq!(
            lin.unrolled(1).unwrap_err(),
            LinearizeError::UnrollDepthTooSmall(1)
        );
    }

    #[test]
    fn linearize_timed_reports_duration() {
        let t = datasets::perfect_binary_tree(7, 0);
        let (lin, dur) = Linearizer::new().linearize_timed(&t).unwrap();
        assert_eq!(lin.num_nodes(), 255);
        assert!(dur.as_nanos() > 0);
    }
}

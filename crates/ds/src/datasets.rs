//! Workload generators matching Table 2 of the paper.
//!
//! | Model | Dataset used |
//! | --- | --- |
//! | TreeFC | Perfect binary trees (height 7) |
//! | DAG-RNN | Synthetic DAGs (size 10×10) |
//! | TreeGRU / TreeLSTM / MV-RNN | Stanford sentiment treebank |
//! | Sequential LSTM/GRU (Fig. 9) | Sequences of length 100 |
//!
//! The Stanford Sentiment Treebank itself is not redistributable here, so
//! [`sentiment_treebank`] generates a deterministic synthetic corpus of
//! binary parse trees whose sentence-length distribution matches the SST
//! dev-set statistics (lengths 2–55, mean ≈ 19.3 tokens). Only topology and
//! leaf word ids are consumed by any experiment, so this preserves the
//! batching/wavefront behaviour the measurements depend on (see DESIGN.md).

use cortex_rng::Rng;

use crate::structure::{RecStructure, StructureBuilder, StructureKind};

/// Vocabulary size used for generated word ids (V in Listing 1).
pub const VOCAB_SIZE: u32 = 10_000;

/// A perfect binary tree of the given height (height 0 = a single leaf).
///
/// Table 2: the TreeFC benchmarking model from TensorFlow Fold (Looks et
/// al. 2017) runs on perfect binary trees of height 7 (128 leaves, 255
/// nodes).
///
/// # Example
///
/// ```
/// let t = cortex_ds::datasets::perfect_binary_tree(7, 0);
/// assert_eq!(t.num_nodes(), 255);
/// assert_eq!(t.num_leaves(), 128);
/// assert_eq!(t.max_height(), 7);
/// ```
pub fn perfect_binary_tree(height: u32, seed: u64) -> RecStructure {
    let mut rng = Rng::new(seed ^ 0x7e2f);
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let mut level: Vec<_> = (0..1u32 << height)
        .map(|_| b.leaf(rng.below_u32(VOCAB_SIZE)))
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| b.internal(&[pair[0], pair[1]]).expect("fresh children"))
            .collect();
    }
    b.finish().expect("non-empty tree")
}

/// A random binary parse tree over `num_leaves` tokens.
///
/// Built by repeatedly merging a random adjacent pair, which yields the
/// variety of skewed/balanced shapes seen in constituency parses.
///
/// # Panics
///
/// Panics if `num_leaves == 0`.
pub fn random_binary_tree(num_leaves: usize, seed: u64) -> RecStructure {
    assert!(num_leaves > 0, "a parse tree needs at least one token");
    let mut rng = Rng::new(seed ^ 0x51ab);
    let mut b = StructureBuilder::new(StructureKind::Tree);
    let mut frontier: Vec<_> = (0..num_leaves)
        .map(|_| b.leaf(rng.below_u32(VOCAB_SIZE)))
        .collect();
    while frontier.len() > 1 {
        let i = rng.below_usize(frontier.len() - 1);
        let merged = b
            .internal(&[frontier[i], frontier[i + 1]])
            .expect("fresh children");
        frontier[i] = merged;
        frontier.remove(i + 1);
    }
    b.finish().expect("non-empty tree")
}

/// Samples a sentence length following the SST dev-set distribution
/// (min 2, max 55, mean ≈ 19.3): a clamped log-normal.
fn sst_sentence_length(rng: &mut Rng) -> usize {
    // ln-normal with mu, sigma chosen so the clamped mean lands near 19.3.
    let mu = 2.85f64;
    let sigma = 0.55f64;
    // Box-Muller from two uniforms.
    let u1: f64 = rng.f64().max(1e-9);
    let u2: f64 = rng.f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let len = (mu + sigma * z).exp().round() as i64;
    len.clamp(2, 55) as usize
}

/// A synthetic Stanford-Sentiment-Treebank stand-in: `count` binary parse
/// trees with SST-like sentence lengths.
///
/// Deterministic in `seed`, so every experiment sees the same corpus.
pub fn sentiment_treebank(count: usize, seed: u64) -> Vec<RecStructure> {
    let mut rng = Rng::new(seed ^ 0x557);
    (0..count)
        .map(|i| {
            let len = sst_sentence_length(&mut rng);
            random_binary_tree(len, seed.wrapping_mul(31).wrapping_add(i as u64))
        })
        .collect()
}

/// The synthetic DAG workload for DAG-RNN: a `rows × cols` grid where node
/// `(i, j)` depends on its up and left neighbours `(i-1, j)` and `(i, j-1)`.
///
/// This is the standard scene-labeling decomposition from Shuai et al.
/// (2015): wavefronts are the anti-diagonals, interior nodes have two
/// parents (so the structure is a proper DAG, not a tree), and every node
/// carries an input feature id.
///
/// # Example
///
/// ```
/// let d = cortex_ds::datasets::grid_dag(10, 10, 0);
/// assert_eq!(d.num_nodes(), 100);
/// assert_eq!(d.max_height(), 18); // longest path: 9 + 9
/// assert_eq!(d.roots().len(), 1); // bottom-right corner
/// ```
pub fn grid_dag(rows: usize, cols: usize, seed: u64) -> RecStructure {
    assert!(rows > 0 && cols > 0, "grid must be non-empty");
    let mut rng = Rng::new(seed ^ 0xda6);
    let mut b = StructureBuilder::new(StructureKind::Dag);
    let mut ids = vec![vec![None; cols]; rows];
    // Anti-diagonal order guarantees children exist before parents.
    for diag in 0..rows + cols - 1 {
        for i in 0..rows {
            let Some(j) = diag.checked_sub(i) else {
                continue;
            };
            if j >= cols {
                continue;
            }
            let word = rng.below_u32(VOCAB_SIZE);
            let mut kids = Vec::new();
            if i > 0 {
                kids.push(ids[i - 1][j].expect("upper neighbour exists"));
            }
            if j > 0 {
                kids.push(ids[i][j - 1].expect("left neighbour exists"));
            }
            let id = if kids.is_empty() {
                b.leaf(word)
            } else {
                b.internal_with_word(&kids, word).expect("fresh children")
            };
            ids[i][j] = Some(id);
        }
    }
    b.finish().expect("non-empty grid")
}

/// A sequence (chain) of the given length, as used by the sequential
/// LSTM/GRU comparison against GRNN (Fig. 9, sequence length 100).
///
/// Node 0 is the first token (the lone leaf); each later token is an
/// internal node whose single child is the previous one.
///
/// # Panics
///
/// Panics if `length == 0`.
pub fn sequence(length: usize, seed: u64) -> RecStructure {
    assert!(length > 0, "sequence must be non-empty");
    let mut rng = Rng::new(seed ^ 0x5e9);
    let mut b = StructureBuilder::new(StructureKind::Sequence);
    let mut prev = b.leaf(rng.below_u32(VOCAB_SIZE));
    for _ in 1..length {
        prev = b
            .internal_with_word(&[prev], rng.below_u32(VOCAB_SIZE))
            .expect("fresh child");
    }
    b.finish().expect("non-empty sequence")
}

/// A batch of `batch_size` inputs merged into one forest, matching how the
/// paper's "batch size" parameter presents work to the runtime.
pub fn batch_of(f: impl Fn(u64) -> RecStructure, batch_size: usize, seed: u64) -> RecStructure {
    let parts: Vec<_> = (0..batch_size)
        .map(|i| f(seed.wrapping_add(i as u64 * 7919)))
        .collect();
    let refs: Vec<&RecStructure> = parts.iter().collect();
    RecStructure::merge(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tree_counts() {
        for h in 0..8 {
            let t = perfect_binary_tree(h, 1);
            assert_eq!(t.num_nodes(), (1 << (h + 1)) - 1);
            assert_eq!(t.num_leaves(), 1 << h);
            assert_eq!(t.max_height(), h);
        }
    }

    #[test]
    fn random_tree_is_binary_parse() {
        let t = random_binary_tree(19, 3);
        assert_eq!(t.num_leaves(), 19);
        assert_eq!(t.num_internal(), 18);
        for n in t.iter() {
            let c = t.children(n).len();
            assert!(c == 0 || c == 2, "parse tree must be binary");
        }
    }

    #[test]
    fn treebank_length_statistics() {
        let corpus = sentiment_treebank(500, 7);
        let lens: Vec<usize> = corpus.iter().map(|t| t.num_leaves()).collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(lens.iter().all(|&l| (2..=55).contains(&l)));
        assert!(
            (14.0..25.0).contains(&mean),
            "mean sentence length {mean} far from SST's 19.3"
        );
    }

    #[test]
    fn treebank_is_deterministic() {
        let a = sentiment_treebank(10, 42);
        let b = sentiment_treebank(10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn grid_dag_shape() {
        let d = grid_dag(10, 10, 0);
        assert_eq!(d.num_nodes(), 100);
        assert_eq!(d.num_leaves(), 1);
        assert_eq!(d.max_children(), 2);
        // Interior nodes have 2 children; border (non-corner) have 1.
        let two_children = d.iter().filter(|&n| d.children(n).len() == 2).count();
        assert_eq!(two_children, 81);
    }

    #[test]
    fn sequence_is_chain() {
        let s = sequence(100, 0);
        assert_eq!(s.num_nodes(), 100);
        assert_eq!(s.max_height(), 99);
        assert_eq!(s.roots().len(), 1);
        assert_eq!(s.num_leaves(), 1);
    }

    #[test]
    fn batch_of_merges() {
        let f = batch_of(|s| perfect_binary_tree(3, s), 10, 5);
        assert_eq!(f.num_nodes(), 150);
        assert_eq!(f.roots().len(), 10);
    }

    #[test]
    fn words_in_vocab() {
        let t = perfect_binary_tree(4, 9);
        for n in t.iter() {
            assert!(t.word(n) < VOCAB_SIZE);
        }
    }
}

//! Cross-request wave composition for serving batches.
//!
//! A serving queue pushes several independently linearized inputs through
//! one merged wave schedule (the backend's super-wave executor). This
//! module provides the request-side bookkeeping for that: globally
//! unique **request-tagged node ids** ([`TaggedId`]) and the
//! **cross-forest depth map** ([`DepthMap`]) describing, per wave depth,
//! which requests contribute nodes and how wide the merged super-wave
//! is. The depth map is what a batcher consults to predict merge quality
//! (`Σ bs` super-wave width vs. per-request `bs`) and what the serving
//! benchmark reports as `superwave_width`.

use crate::linearizer::Linearized;

/// A node id qualified by the request it belongs to: the merged
/// schedule interleaves many requests' waves, so a bare node id is
/// ambiguous the moment two inputs sit in one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaggedId {
    /// Index of the request within its batch.
    pub request: u32,
    /// Node id in that request's linearized numbering.
    pub node: u32,
}

impl TaggedId {
    /// Packs the tag into one `u64` (`request` in the high half), the
    /// form scope arrays and profile attribution tables key on.
    pub fn pack(self) -> u64 {
        (u64::from(self.request) << 32) | u64::from(self.node)
    }

    /// Inverse of [`TaggedId::pack`].
    pub fn unpack(packed: u64) -> Self {
        TaggedId {
            request: (packed >> 32) as u32,
            node: packed as u32,
        }
    }
}

/// One request's contribution to one wave depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSlice {
    /// Index of the request within the batch.
    pub request: u32,
    /// Width (node count) of the request's batch at this depth.
    pub width: u32,
}

/// Per-depth composition of a batch of linearized inputs: depth `d`
/// holds one [`DepthSlice`] per request whose height-`d+1` internal
/// wavefront is non-empty. Requests shallower than the deepest one
/// simply stop appearing — exactly the waves they skip in the merged
/// schedule.
#[derive(Debug, Clone, Default)]
pub struct DepthMap {
    depths: Vec<Vec<DepthSlice>>,
    leaf_widths: Vec<u32>,
}

impl DepthMap {
    /// Builds the depth map for a batch of linearized inputs (ordered as
    /// submitted — the index in `lins` is the request tag).
    pub fn build(lins: &[&Linearized]) -> Self {
        let max_depth = lins
            .iter()
            .map(|l| l.internal_batches().len())
            .max()
            .unwrap_or(0);
        let mut depths = vec![Vec::new(); max_depth];
        for (r, lin) in lins.iter().enumerate() {
            for (d, batch) in lin.internal_batches().iter().enumerate() {
                if !batch.is_empty() {
                    depths[d].push(DepthSlice {
                        request: r as u32,
                        width: batch.len() as u32,
                    });
                }
            }
        }
        let leaf_widths = lins.iter().map(|l| l.leaf_batch().len() as u32).collect();
        DepthMap {
            depths,
            leaf_widths,
        }
    }

    /// Number of internal wave depths of the merged schedule (the
    /// deepest request's).
    pub fn num_depths(&self) -> usize {
        self.depths.len()
    }

    /// The requests contributing at depth `d`, with their widths.
    pub fn slices(&self, d: usize) -> &[DepthSlice] {
        &self.depths[d]
    }

    /// Width of the merged super-wave at depth `d`: `Σ` of every
    /// contributing request's wavefront width.
    pub fn super_width(&self, d: usize) -> usize {
        self.depths[d].iter().map(|s| s.width as usize).sum()
    }

    /// The widest merged super-wave.
    pub fn max_super_width(&self) -> usize {
        (0..self.num_depths())
            .map(|d| self.super_width(d))
            .max()
            .unwrap_or(0)
    }

    /// Mean merged super-wave width over all depths (0 when empty).
    pub fn mean_super_width(&self) -> f64 {
        if self.depths.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.num_depths()).map(|d| self.super_width(d)).sum();
        total as f64 / self.depths.len() as f64
    }

    /// Number of requests contributing at depth `d`.
    pub fn requests_at(&self, d: usize) -> usize {
        self.depths[d].len()
    }

    /// Width of the merged leaf wave (`Σ` leaf-batch lengths).
    pub fn leaf_super_width(&self) -> usize {
        self.leaf_widths.iter().map(|&w| w as usize).sum()
    }

    /// Request-tagged node ids composing the merged wave at depth `d`,
    /// in request-major order — the row order the super-wave executor
    /// concatenates gathered rows in.
    pub fn tagged_wave(&self, d: usize, lins: &[&Linearized]) -> Vec<TaggedId> {
        let mut out = Vec::with_capacity(self.super_width(d));
        for s in &self.depths[d] {
            let batch = lins[s.request as usize].internal_batches()[d];
            out.extend(batch.iter().map(|node| TaggedId {
                request: s.request,
                node,
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::linearizer::Linearizer;

    #[test]
    fn tagged_id_roundtrips() {
        let t = TaggedId {
            request: 7,
            node: 0xDEAD_BEEF,
        };
        assert_eq!(TaggedId::unpack(t.pack()), t);
        assert_eq!(TaggedId::unpack(0).request, 0);
    }

    #[test]
    fn depth_map_merges_mixed_depth_requests() {
        let deep = datasets::perfect_binary_tree(4, 0); // depths 1..=4
        let shallow = datasets::perfect_binary_tree(2, 1); // depths 1..=2
        let l1 = Linearizer::new().linearize(&deep).unwrap();
        let l2 = Linearizer::new().linearize(&shallow).unwrap();
        let map = DepthMap::build(&[&l1, &l2]);
        assert_eq!(map.num_depths(), 4);
        // Depth 0 (height-1 wavefront): both contribute.
        assert_eq!(map.requests_at(0), 2);
        assert_eq!(map.super_width(0), 8 + 2);
        // Depth 2: only the deep request remains.
        assert_eq!(map.requests_at(2), 1);
        assert_eq!(map.super_width(2), 2);
        assert_eq!(map.max_super_width(), 10);
        assert_eq!(map.leaf_super_width(), 16 + 4);
    }

    #[test]
    fn tagged_wave_is_request_major_and_complete() {
        let a = datasets::random_binary_tree(9, 3);
        let b = datasets::random_binary_tree(9, 4);
        let la = Linearizer::new().linearize(&a).unwrap();
        let lb = Linearizer::new().linearize(&b).unwrap();
        let lins = [&la, &lb];
        let map = DepthMap::build(&lins);
        for d in 0..map.num_depths() {
            let wave = map.tagged_wave(d, &lins);
            assert_eq!(wave.len(), map.super_width(d));
            // Request-major: tags are non-decreasing.
            assert!(wave.windows(2).all(|w| w[0].request <= w[1].request));
            for t in &wave {
                let lin = lins[t.request as usize];
                assert!(lin.internal_batches()[d].contains(t.node));
            }
        }
    }

    #[test]
    fn sequences_merge_into_wide_super_waves() {
        // The SeqLSTM serving case: 4 queued length-10 sequences have
        // width-1 waves alone but width-4 super-waves merged.
        let lins: Vec<_> = (0..4u64)
            .map(|s| {
                Linearizer::new()
                    .linearize(&datasets::sequence(10, s))
                    .unwrap()
            })
            .collect();
        let refs: Vec<&Linearized> = lins.iter().collect();
        let map = DepthMap::build(&refs);
        assert_eq!(map.num_depths(), 9);
        for d in 0..9 {
            assert_eq!(map.super_width(d), 4);
            assert_eq!(map.requests_at(d), 4);
        }
        assert!((map.mean_super_width() - 4.0).abs() < 1e-9);
    }
}

//! Recursive data structures and the data-structure linearizer for Cortex.
//!
//! Recursive deep learning models traverse pointer-linked structures —
//! sequences, trees and DAGs — while performing tensor computation at every
//! node. Cortex (MLSys 2021) observes that when all control flow depends
//! only on the *connectivity* of the structure (property P.1 in the paper),
//! the structure can be *linearized* to flat arrays on the host CPU before
//! any tensor computation runs, enabling loop-based generated code.
//!
//! This crate provides:
//!
//! * [`RecStructure`] — validated pointer-linked recursive structures
//!   (sequences, trees/forests, DAGs) built through [`StructureBuilder`],
//! * [`datasets`] — the workload generators used by the paper's evaluation
//!   (perfect binary trees, a synthetic Stanford-Sentiment-Treebank stand-in,
//!   grid DAGs for DAG-RNN, plain sequences),
//! * [`linearizer`] — the runtime component of Fig. 2: dynamic batching into
//!   height wavefronts, leaf/internal specialization partitions, the
//!   Appendix-B node numbering scheme (consecutive batches, leaves numbered
//!   after all internal nodes), and unrolled schedules for the recursion
//!   unrolling primitive.
//!
//! # Example
//!
//! ```
//! use cortex_ds::{StructureBuilder, StructureKind};
//! use cortex_ds::linearizer::Linearizer;
//!
//! // The parse tree of Fig. 1: ((It is) ((a dog) .))
//! let mut b = StructureBuilder::new(StructureKind::Tree);
//! let it = b.leaf(10);
//! let is = b.leaf(11);
//! let a = b.leaf(12);
//! let dog = b.leaf(13);
//! let dot = b.leaf(14);
//! let l = b.internal(&[it, is]).unwrap();
//! let ad = b.internal(&[a, dog]).unwrap();
//! let r = b.internal(&[ad, dot]).unwrap();
//! let _root = b.internal(&[l, r]).unwrap();
//! let tree = b.finish().unwrap();
//!
//! let lin = Linearizer::new().linearize(&tree).unwrap();
//! assert_eq!(lin.num_nodes(), 9);
//! assert_eq!(lin.leaf_batch().len(), 5);
//! assert_eq!(lin.internal_batches().len(), 3); // heights 1, 2, 3
//! ```

pub mod datasets;
pub mod linearizer;
pub mod merge;
pub mod node;
pub mod structure;

pub use merge::{DepthMap, TaggedId};
pub use node::NodeId;
pub use structure::{RecStructure, StructureBuilder, StructureError, StructureKind};

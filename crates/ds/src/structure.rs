//! Pointer-linked recursive structures: sequences, trees, DAGs.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// The connectivity class of a recursive structure.
///
/// The user declares the kind up front (§3 of the paper: "the user also
/// needs to provide basic information about the input data structure such
/// as the maximum number of children per node, and the kind"); the builder
/// verifies the declared kind at construction time, mirroring the paper's
/// "can be easily verified at runtime".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// A chain: every node has at most one child and at most one parent.
    Sequence,
    /// A tree or forest: every node has at most one parent.
    Tree,
    /// A directed acyclic graph: nodes may have multiple parents.
    Dag,
}

impl fmt::Display for StructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StructureKind::Sequence => "sequence",
            StructureKind::Tree => "tree",
            StructureKind::Dag => "dag",
        };
        f.write_str(s)
    }
}

/// Errors produced while building or validating a structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A child id referred to a node that does not exist yet.
    UnknownChild(NodeId),
    /// A node would gain a second parent in a `Sequence`/`Tree` structure.
    MultipleParents {
        /// The child that already had a parent.
        child: NodeId,
        /// The kind that forbids this.
        kind: StructureKind,
    },
    /// A sequence node would gain a second child.
    SequenceFanOut(NodeId),
    /// The structure has no nodes.
    Empty,
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::UnknownChild(id) => write!(f, "unknown child node {id}"),
            StructureError::MultipleParents { child, kind } => {
                write!(f, "node {child} would have multiple parents in a {kind}")
            }
            StructureError::SequenceFanOut(id) => {
                write!(f, "sequence node {id} would have more than one child")
            }
            StructureError::Empty => write!(f, "structure has no nodes"),
        }
    }
}

impl Error for StructureError {}

/// Incrementally builds a [`RecStructure`].
///
/// Children must be created before their parents, which makes cycles
/// impossible by construction. Kind constraints (single parent for trees,
/// single child+parent for sequences) are enforced eagerly.
///
/// # Example
///
/// ```
/// use cortex_ds::{StructureBuilder, StructureKind};
///
/// let mut b = StructureBuilder::new(StructureKind::Tree);
/// let l = b.leaf(0);
/// let r = b.leaf(1);
/// let root = b.internal(&[l, r]).unwrap();
/// let tree = b.finish().unwrap();
/// assert_eq!(tree.roots(), &[root]);
/// assert_eq!(tree.num_leaves(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    kind: StructureKind,
    children: Vec<Vec<NodeId>>,
    words: Vec<u32>,
    parent_count: Vec<u32>,
}

impl StructureBuilder {
    /// Creates an empty builder for the declared structure kind.
    pub fn new(kind: StructureKind) -> Self {
        StructureBuilder {
            kind,
            children: Vec::new(),
            words: Vec::new(),
            parent_count: Vec::new(),
        }
    }

    /// Adds a leaf node carrying a word (input feature) id.
    pub fn leaf(&mut self, word: u32) -> NodeId {
        let id = NodeId(self.children.len() as u32);
        self.children.push(Vec::new());
        self.words.push(word);
        self.parent_count.push(0);
        id
    }

    /// Adds an internal node with the given children and word id 0.
    ///
    /// # Errors
    ///
    /// Returns an error if a child is unknown, or if connecting the children
    /// would violate the declared [`StructureKind`].
    pub fn internal(&mut self, children: &[NodeId]) -> Result<NodeId, StructureError> {
        self.internal_with_word(children, 0)
    }

    /// Adds an internal node with the given children and word id.
    ///
    /// DAG models (e.g. DAG-RNN) attach input features to every node, not
    /// just leaves, hence the explicit word parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if a child is unknown, or if connecting the children
    /// would violate the declared [`StructureKind`].
    pub fn internal_with_word(
        &mut self,
        children: &[NodeId],
        word: u32,
    ) -> Result<NodeId, StructureError> {
        for &c in children {
            if c.index() >= self.children.len() {
                return Err(StructureError::UnknownChild(c));
            }
            if self.kind != StructureKind::Dag && self.parent_count[c.index()] > 0 {
                return Err(StructureError::MultipleParents {
                    child: c,
                    kind: self.kind,
                });
            }
        }
        if self.kind == StructureKind::Sequence && children.len() > 1 {
            return Err(StructureError::SequenceFanOut(NodeId(
                self.children.len() as u32
            )));
        }
        for &c in children {
            self.parent_count[c.index()] += 1;
        }
        let id = NodeId(self.children.len() as u32);
        self.children.push(children.to_vec());
        self.words.push(word);
        self.parent_count.push(0);
        Ok(id)
    }

    /// Finalizes the structure, computing roots, heights and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::Empty`] if no nodes were added.
    pub fn finish(self) -> Result<RecStructure, StructureError> {
        if self.children.is_empty() {
            return Err(StructureError::Empty);
        }
        let n = self.children.len();
        let roots: Vec<NodeId> = (0..n)
            .filter(|&i| self.parent_count[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        // Children precede parents in id order, so one forward pass
        // computes heights bottom-up.
        let mut heights = vec![0u32; n];
        let mut max_children = 0usize;
        for i in 0..n {
            max_children = max_children.max(self.children[i].len());
            for &c in &self.children[i] {
                heights[i] = heights[i].max(heights[c.index()] + 1);
            }
        }
        Ok(RecStructure {
            kind: self.kind,
            children: self.children,
            words: self.words,
            heights,
            roots,
            max_children,
        })
    }
}

/// A validated, immutable recursive structure.
///
/// Nodes are stored in builder order (children before parents). The
/// structure may be a forest: the evaluation batches multiple inputs by
/// merging their structures (see [`RecStructure::merge`]), exactly how
/// dynamic batching treats a batch as one big forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecStructure {
    kind: StructureKind,
    children: Vec<Vec<NodeId>>,
    words: Vec<u32>,
    heights: Vec<u32>,
    roots: Vec<NodeId>,
    max_children: usize,
}

impl RecStructure {
    /// The declared (and verified) structure kind.
    pub fn kind(&self) -> StructureKind {
        self.kind
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// Number of leaves (nodes without children).
    pub fn num_leaves(&self) -> usize {
        self.children.iter().filter(|c| c.is_empty()).count()
    }

    /// Number of internal nodes.
    pub fn num_internal(&self) -> usize {
        self.num_nodes() - self.num_leaves()
    }

    /// Maximum number of children over all nodes.
    pub fn max_children(&self) -> usize {
        self.max_children
    }

    /// Root nodes (no parents), in id order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Whether `node` is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// The word (input feature) id of `node`.
    pub fn word(&self, node: NodeId) -> u32 {
        self.words[node.index()]
    }

    /// Height of `node`: 0 for leaves, `1 + max(child heights)` otherwise.
    pub fn height(&self, node: NodeId) -> u32 {
        self.heights[node.index()]
    }

    /// Maximum node height in the structure.
    pub fn max_height(&self) -> u32 {
        self.heights.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over all node ids in builder (children-first) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.children.len() as u32).map(NodeId)
    }

    /// Merges several structures into one forest, renumbering nodes.
    ///
    /// This is how a batch of inputs is presented to the linearizer: batch
    /// size 10 in the paper's tables means a forest of 10 trees.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the kinds disagree.
    pub fn merge(parts: &[&RecStructure]) -> RecStructure {
        let first = parts.first().expect("merge of at least one structure");
        let kind = first.kind;
        assert!(
            parts.iter().all(|p| p.kind == kind),
            "cannot merge structures of mixed kinds"
        );
        let mut children = Vec::new();
        let mut words = Vec::new();
        let mut heights = Vec::new();
        let mut roots = Vec::new();
        let mut max_children = 0;
        let mut base = 0u32;
        for part in parts {
            for node in part.iter() {
                children.push(
                    part.children(node)
                        .iter()
                        .map(|c| NodeId(c.0 + base))
                        .collect::<Vec<_>>(),
                );
                words.push(part.word(node));
                heights.push(part.height(node));
            }
            roots.extend(part.roots().iter().map(|r| NodeId(r.0 + base)));
            max_children = max_children.max(part.max_children);
            base += part.num_nodes() as u32;
        }
        RecStructure {
            kind,
            children,
            words,
            heights,
            roots,
            max_children,
        }
    }

    /// Post-order traversal from the roots (children before parents).
    ///
    /// For DAGs each node appears exactly once (first visit wins). This is
    /// the execution order a non-batched (purely recursive) evaluation uses.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.num_nodes()];
        let mut order = Vec::with_capacity(self.num_nodes());
        // Iterative DFS with an explicit stack to survive deep sequences.
        for &root in &self.roots {
            if visited[root.index()] {
                continue;
            }
            let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
            visited[root.index()] = true;
            while let Some(&(node, next_child)) = stack.last() {
                let kids = &self.children[node.index()];
                if next_child < kids.len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let c = kids[next_child];
                    if !visited[c.index()] {
                        visited[c.index()] = true;
                        stack.push((c, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> RecStructure {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        let l0 = b.leaf(5);
        let l1 = b.leaf(6);
        let l2 = b.leaf(7);
        let i0 = b.internal(&[l0, l1]).unwrap();
        let _root = b.internal(&[i0, l2]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn tree_metadata() {
        let t = small_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.num_internal(), 2);
        assert_eq!(t.max_children(), 2);
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.max_height(), 2);
        assert_eq!(t.word(NodeId::new(2)), 7);
    }

    #[test]
    fn heights_bottom_up() {
        let t = small_tree();
        assert_eq!(t.height(NodeId::new(0)), 0);
        assert_eq!(t.height(NodeId::new(3)), 1);
        assert_eq!(t.height(NodeId::new(4)), 2);
    }

    #[test]
    fn tree_rejects_second_parent() {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        let l = b.leaf(0);
        let l2 = b.leaf(1);
        b.internal(&[l, l2]).unwrap();
        assert!(matches!(
            b.internal(&[l]),
            Err(StructureError::MultipleParents { .. })
        ));
    }

    #[test]
    fn dag_allows_shared_children() {
        let mut b = StructureBuilder::new(StructureKind::Dag);
        let l = b.leaf(0);
        let p1 = b.internal(&[l]).unwrap();
        let p2 = b.internal(&[l]).unwrap();
        let _r = b.internal(&[p1, p2]).unwrap();
        let d = b.finish().unwrap();
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.num_nodes(), 4);
    }

    #[test]
    fn sequence_rejects_fan_out() {
        let mut b = StructureBuilder::new(StructureKind::Sequence);
        let a = b.leaf(0);
        let c = b.leaf(1);
        assert!(matches!(
            b.internal(&[a, c]),
            Err(StructureError::SequenceFanOut(_))
        ));
    }

    #[test]
    fn unknown_child_rejected() {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        assert!(matches!(
            b.internal(&[NodeId::new(9)]),
            Err(StructureError::UnknownChild(_))
        ));
    }

    #[test]
    fn empty_structure_rejected() {
        let b = StructureBuilder::new(StructureKind::Tree);
        assert_eq!(b.finish().unwrap_err(), StructureError::Empty);
    }

    #[test]
    fn post_order_children_first() {
        let t = small_tree();
        let order = t.post_order();
        assert_eq!(order.len(), t.num_nodes());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in t.iter() {
            for &c in t.children(n) {
                assert!(pos[&c] < pos[&n], "child {c} after parent {n}");
            }
        }
    }

    #[test]
    fn post_order_visits_dag_nodes_once() {
        let mut b = StructureBuilder::new(StructureKind::Dag);
        let l = b.leaf(0);
        let p1 = b.internal(&[l]).unwrap();
        let p2 = b.internal(&[l]).unwrap();
        b.internal(&[p1, p2]).unwrap();
        let d = b.finish().unwrap();
        let order = d.post_order();
        assert_eq!(order.len(), 4);
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn merge_forms_forest() {
        let a = small_tree();
        let b = small_tree();
        let f = RecStructure::merge(&[&a, &b]);
        assert_eq!(f.num_nodes(), 10);
        assert_eq!(f.roots().len(), 2);
        assert_eq!(f.num_leaves(), 6);
        // Second copy's children offsets are shifted.
        let order = f.post_order();
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn deep_sequence_post_order_does_not_overflow() {
        let mut b = StructureBuilder::new(StructureKind::Sequence);
        let mut prev = b.leaf(0);
        for i in 0..100_000 {
            prev = b.internal_with_word(&[prev], i % 100).unwrap();
        }
        let s = b.finish().unwrap();
        let order = s.post_order();
        assert_eq!(order.len(), 100_001);
        assert_eq!(order[0], NodeId::new(0));
    }
}

//! Pointer-linked recursive structures: sequences, trees, DAGs.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// The connectivity class of a recursive structure.
///
/// The user declares the kind up front (§3 of the paper: "the user also
/// needs to provide basic information about the input data structure such
/// as the maximum number of children per node, and the kind"); the builder
/// verifies the declared kind at construction time, mirroring the paper's
/// "can be easily verified at runtime".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// A chain: every node has at most one child and at most one parent.
    Sequence,
    /// A tree or forest: every node has at most one parent.
    Tree,
    /// A directed acyclic graph: nodes may have multiple parents.
    Dag,
}

impl fmt::Display for StructureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StructureKind::Sequence => "sequence",
            StructureKind::Tree => "tree",
            StructureKind::Dag => "dag",
        };
        f.write_str(s)
    }
}

/// Errors produced while building or validating a structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// A child id referred to a node that does not exist yet.
    UnknownChild(NodeId),
    /// A node would gain a second parent in a `Sequence`/`Tree` structure.
    MultipleParents {
        /// The child that already had a parent.
        child: NodeId,
        /// The kind that forbids this.
        kind: StructureKind,
    },
    /// A sequence node would gain a second child.
    SequenceFanOut(NodeId),
    /// The structure has no nodes.
    Empty,
    /// A node lists itself as its own child
    /// ([`RecStructure::from_parts`] only — the builder cannot express
    /// this).
    SelfLoop(NodeId),
    /// The child edges contain a cycle through this node
    /// ([`RecStructure::from_parts`] only).
    Cycle(NodeId),
    /// The per-node arrays have different lengths
    /// ([`RecStructure::from_parts`] only).
    LengthMismatch {
        /// Entries in the children table.
        children: usize,
        /// Entries in the words table.
        words: usize,
    },
    /// [`RecStructure::try_merge`] was given parts of different kinds.
    MixedKinds {
        /// Kind of the first part.
        first: StructureKind,
        /// The first disagreeing kind.
        other: StructureKind,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::UnknownChild(id) => write!(f, "unknown child node {id}"),
            StructureError::MultipleParents { child, kind } => {
                write!(f, "node {child} would have multiple parents in a {kind}")
            }
            StructureError::SequenceFanOut(id) => {
                write!(f, "sequence node {id} would have more than one child")
            }
            StructureError::Empty => write!(f, "structure has no nodes"),
            StructureError::SelfLoop(id) => write!(f, "node {id} lists itself as a child"),
            StructureError::Cycle(id) => {
                write!(f, "child edges form a cycle through node {id}")
            }
            StructureError::LengthMismatch { children, words } => {
                write!(
                    f,
                    "children table has {children} entries but words table has {words}"
                )
            }
            StructureError::MixedKinds { first, other } => {
                write!(f, "cannot merge a {other} into a batch of {first}s")
            }
        }
    }
}

impl Error for StructureError {}

/// Incrementally builds a [`RecStructure`].
///
/// Children must be created before their parents, which makes cycles
/// impossible by construction. Kind constraints (single parent for trees,
/// single child+parent for sequences) are enforced eagerly.
///
/// # Example
///
/// ```
/// use cortex_ds::{StructureBuilder, StructureKind};
///
/// let mut b = StructureBuilder::new(StructureKind::Tree);
/// let l = b.leaf(0);
/// let r = b.leaf(1);
/// let root = b.internal(&[l, r]).unwrap();
/// let tree = b.finish().unwrap();
/// assert_eq!(tree.roots(), &[root]);
/// assert_eq!(tree.num_leaves(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    kind: StructureKind,
    children: Vec<Vec<NodeId>>,
    words: Vec<u32>,
    parent_count: Vec<u32>,
}

impl StructureBuilder {
    /// Creates an empty builder for the declared structure kind.
    pub fn new(kind: StructureKind) -> Self {
        StructureBuilder {
            kind,
            children: Vec::new(),
            words: Vec::new(),
            parent_count: Vec::new(),
        }
    }

    /// Adds a leaf node carrying a word (input feature) id.
    pub fn leaf(&mut self, word: u32) -> NodeId {
        let id = NodeId(self.children.len() as u32);
        self.children.push(Vec::new());
        self.words.push(word);
        self.parent_count.push(0);
        id
    }

    /// Adds an internal node with the given children and word id 0.
    ///
    /// # Errors
    ///
    /// Returns an error if a child is unknown, or if connecting the children
    /// would violate the declared [`StructureKind`].
    pub fn internal(&mut self, children: &[NodeId]) -> Result<NodeId, StructureError> {
        self.internal_with_word(children, 0)
    }

    /// Adds an internal node with the given children and word id.
    ///
    /// DAG models (e.g. DAG-RNN) attach input features to every node, not
    /// just leaves, hence the explicit word parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if a child is unknown, or if connecting the children
    /// would violate the declared [`StructureKind`].
    pub fn internal_with_word(
        &mut self,
        children: &[NodeId],
        word: u32,
    ) -> Result<NodeId, StructureError> {
        for &c in children {
            if c.index() >= self.children.len() {
                return Err(StructureError::UnknownChild(c));
            }
            if self.kind != StructureKind::Dag && self.parent_count[c.index()] > 0 {
                return Err(StructureError::MultipleParents {
                    child: c,
                    kind: self.kind,
                });
            }
        }
        if self.kind == StructureKind::Sequence && children.len() > 1 {
            return Err(StructureError::SequenceFanOut(NodeId(
                self.children.len() as u32
            )));
        }
        for &c in children {
            self.parent_count[c.index()] += 1;
        }
        let id = NodeId(self.children.len() as u32);
        self.children.push(children.to_vec());
        self.words.push(word);
        self.parent_count.push(0);
        Ok(id)
    }

    /// Finalizes the structure, computing roots, heights and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::Empty`] if no nodes were added.
    pub fn finish(self) -> Result<RecStructure, StructureError> {
        if self.children.is_empty() {
            return Err(StructureError::Empty);
        }
        let n = self.children.len();
        let roots: Vec<NodeId> = (0..n)
            .filter(|&i| self.parent_count[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        // Children precede parents in id order, so one forward pass
        // computes heights bottom-up.
        let mut heights = vec![0u32; n];
        let mut max_children = 0usize;
        for i in 0..n {
            max_children = max_children.max(self.children[i].len());
            for &c in &self.children[i] {
                heights[i] = heights[i].max(heights[c.index()] + 1);
            }
        }
        Ok(RecStructure {
            kind: self.kind,
            children: self.children,
            words: self.words,
            heights,
            roots,
            max_children,
        })
    }
}

/// A validated, immutable recursive structure.
///
/// Nodes are stored in builder order (children before parents). The
/// structure may be a forest: the evaluation batches multiple inputs by
/// merging their structures (see [`RecStructure::merge`]), exactly how
/// dynamic batching treats a batch as one big forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecStructure {
    kind: StructureKind,
    children: Vec<Vec<NodeId>>,
    words: Vec<u32>,
    heights: Vec<u32>,
    roots: Vec<NodeId>,
    max_children: usize,
}

impl RecStructure {
    /// Builds a structure from **untrusted** raw parts — the wire shape a
    /// serving front receives — validating everything the builder
    /// enforces by construction plus the hazards only a raw encoding can
    /// express: out-of-range child ids, self-loops, and cycles.
    ///
    /// Nodes whose children all precede them keep their ids; otherwise
    /// the nodes are renumbered into a children-before-parents order (a
    /// deterministic smallest-id-first topological order), which is the
    /// invariant every consumer of a [`RecStructure`] relies on.
    ///
    /// # Errors
    ///
    /// [`StructureError::Empty`] for zero nodes,
    /// [`StructureError::LengthMismatch`] when the tables disagree,
    /// [`StructureError::UnknownChild`] for a child id `>= n`,
    /// [`StructureError::SelfLoop`] / [`StructureError::Cycle`] for
    /// cyclic child edges, and the builder's kind errors
    /// ([`StructureError::MultipleParents`],
    /// [`StructureError::SequenceFanOut`]).
    pub fn from_parts(
        kind: StructureKind,
        children: Vec<Vec<NodeId>>,
        words: Vec<u32>,
    ) -> Result<RecStructure, StructureError> {
        let n = children.len();
        if n == 0 {
            return Err(StructureError::Empty);
        }
        if words.len() != n {
            return Err(StructureError::LengthMismatch {
                children: n,
                words: words.len(),
            });
        }
        let mut parent_count = vec![0u32; n];
        for (i, kids) in children.iter().enumerate() {
            if kind == StructureKind::Sequence && kids.len() > 1 {
                return Err(StructureError::SequenceFanOut(NodeId(i as u32)));
            }
            for &c in kids {
                if c.index() >= n {
                    return Err(StructureError::UnknownChild(c));
                }
                if c.index() == i {
                    return Err(StructureError::SelfLoop(NodeId(i as u32)));
                }
                parent_count[c.index()] += 1;
                if kind != StructureKind::Dag && parent_count[c.index()] > 1 {
                    return Err(StructureError::MultipleParents { child: c, kind });
                }
            }
        }
        // Kahn's toposort over child→parent edges, draining ready nodes
        // smallest-id-first: deterministic, and a no-op renumbering when
        // the input already orders children before parents.
        let mut pending: Vec<u32> = children.iter().map(|k| k.len() as u32).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| pending[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, kids) in children.iter().enumerate() {
            for &c in kids {
                parents[c.index()].push(i);
            }
        }
        let mut old_to_new = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            old_to_new[i] = order.len() as u32;
            order.push(i);
            for &p in &parents[i] {
                pending[p] -= 1;
                if pending[p] == 0 {
                    ready.push(std::cmp::Reverse(p));
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| pending[i] > 0).unwrap_or(0);
            return Err(StructureError::Cycle(NodeId(stuck as u32)));
        }
        let mut b = StructureBuilder::new(kind);
        for &old in &order {
            let kids: Vec<NodeId> = children[old]
                .iter()
                .map(|c| NodeId(old_to_new[c.index()]))
                .collect();
            if kids.is_empty() {
                b.leaf(words[old]);
            } else {
                b.internal_with_word(&kids, words[old])?;
            }
        }
        b.finish()
    }

    /// The declared (and verified) structure kind.
    pub fn kind(&self) -> StructureKind {
        self.kind
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// Number of leaves (nodes without children).
    pub fn num_leaves(&self) -> usize {
        self.children.iter().filter(|c| c.is_empty()).count()
    }

    /// Number of internal nodes.
    pub fn num_internal(&self) -> usize {
        self.num_nodes() - self.num_leaves()
    }

    /// Maximum number of children over all nodes.
    pub fn max_children(&self) -> usize {
        self.max_children
    }

    /// Root nodes (no parents), in id order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Whether `node` is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// The word (input feature) id of `node`.
    pub fn word(&self, node: NodeId) -> u32 {
        self.words[node.index()]
    }

    /// Height of `node`: 0 for leaves, `1 + max(child heights)` otherwise.
    pub fn height(&self, node: NodeId) -> u32 {
        self.heights[node.index()]
    }

    /// Maximum node height in the structure.
    pub fn max_height(&self) -> u32 {
        self.heights.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over all node ids in builder (children-first) order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.children.len() as u32).map(NodeId)
    }

    /// Merges several structures into one forest, renumbering nodes.
    ///
    /// This is how a batch of inputs is presented to the linearizer: batch
    /// size 10 in the paper's tables means a forest of 10 trees.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the kinds disagree. Serving fronts
    /// merging co-batched *requests* should use [`RecStructure::try_merge`],
    /// which refuses instead.
    pub fn merge(parts: &[&RecStructure]) -> RecStructure {
        match Self::try_merge(parts) {
            Ok(s) => s,
            Err(e) => panic!("merge: {e}"),
        }
    }

    /// Fallible [`merge`](RecStructure::merge): one request with a
    /// mismatched kind must not bring down the whole batch.
    ///
    /// # Errors
    ///
    /// [`StructureError::Empty`] if `parts` is empty,
    /// [`StructureError::MixedKinds`] if the kinds disagree.
    pub fn try_merge(parts: &[&RecStructure]) -> Result<RecStructure, StructureError> {
        let first = match parts.first() {
            Some(f) => f,
            None => return Err(StructureError::Empty),
        };
        let kind = first.kind;
        if let Some(odd) = parts.iter().find(|p| p.kind != kind) {
            return Err(StructureError::MixedKinds {
                first: kind,
                other: odd.kind,
            });
        }
        let mut children = Vec::new();
        let mut words = Vec::new();
        let mut heights = Vec::new();
        let mut roots = Vec::new();
        let mut max_children = 0;
        let mut base = 0u32;
        for part in parts {
            for node in part.iter() {
                children.push(
                    part.children(node)
                        .iter()
                        .map(|c| NodeId(c.0 + base))
                        .collect::<Vec<_>>(),
                );
                words.push(part.word(node));
                heights.push(part.height(node));
            }
            roots.extend(part.roots().iter().map(|r| NodeId(r.0 + base)));
            max_children = max_children.max(part.max_children);
            base += part.num_nodes() as u32;
        }
        Ok(RecStructure {
            kind,
            children,
            words,
            heights,
            roots,
            max_children,
        })
    }

    /// Post-order traversal from the roots (children before parents).
    ///
    /// For DAGs each node appears exactly once (first visit wins). This is
    /// the execution order a non-batched (purely recursive) evaluation uses.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.num_nodes()];
        let mut order = Vec::with_capacity(self.num_nodes());
        // Iterative DFS with an explicit stack to survive deep sequences.
        for &root in &self.roots {
            if visited[root.index()] {
                continue;
            }
            let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
            visited[root.index()] = true;
            while let Some(&(node, next_child)) = stack.last() {
                let kids = &self.children[node.index()];
                if next_child < kids.len() {
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    let c = kids[next_child];
                    if !visited[c.index()] {
                        visited[c.index()] = true;
                        stack.push((c, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> RecStructure {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        let l0 = b.leaf(5);
        let l1 = b.leaf(6);
        let l2 = b.leaf(7);
        let i0 = b.internal(&[l0, l1]).unwrap();
        let _root = b.internal(&[i0, l2]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn tree_metadata() {
        let t = small_tree();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.num_internal(), 2);
        assert_eq!(t.max_children(), 2);
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.max_height(), 2);
        assert_eq!(t.word(NodeId::new(2)), 7);
    }

    #[test]
    fn heights_bottom_up() {
        let t = small_tree();
        assert_eq!(t.height(NodeId::new(0)), 0);
        assert_eq!(t.height(NodeId::new(3)), 1);
        assert_eq!(t.height(NodeId::new(4)), 2);
    }

    #[test]
    fn tree_rejects_second_parent() {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        let l = b.leaf(0);
        let l2 = b.leaf(1);
        b.internal(&[l, l2]).unwrap();
        assert!(matches!(
            b.internal(&[l]),
            Err(StructureError::MultipleParents { .. })
        ));
    }

    #[test]
    fn dag_allows_shared_children() {
        let mut b = StructureBuilder::new(StructureKind::Dag);
        let l = b.leaf(0);
        let p1 = b.internal(&[l]).unwrap();
        let p2 = b.internal(&[l]).unwrap();
        let _r = b.internal(&[p1, p2]).unwrap();
        let d = b.finish().unwrap();
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.num_nodes(), 4);
    }

    #[test]
    fn sequence_rejects_fan_out() {
        let mut b = StructureBuilder::new(StructureKind::Sequence);
        let a = b.leaf(0);
        let c = b.leaf(1);
        assert!(matches!(
            b.internal(&[a, c]),
            Err(StructureError::SequenceFanOut(_))
        ));
    }

    #[test]
    fn unknown_child_rejected() {
        let mut b = StructureBuilder::new(StructureKind::Tree);
        assert!(matches!(
            b.internal(&[NodeId::new(9)]),
            Err(StructureError::UnknownChild(_))
        ));
    }

    #[test]
    fn empty_structure_rejected() {
        let b = StructureBuilder::new(StructureKind::Tree);
        assert_eq!(b.finish().unwrap_err(), StructureError::Empty);
    }

    #[test]
    fn post_order_children_first() {
        let t = small_tree();
        let order = t.post_order();
        assert_eq!(order.len(), t.num_nodes());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in t.iter() {
            for &c in t.children(n) {
                assert!(pos[&c] < pos[&n], "child {c} after parent {n}");
            }
        }
    }

    #[test]
    fn post_order_visits_dag_nodes_once() {
        let mut b = StructureBuilder::new(StructureKind::Dag);
        let l = b.leaf(0);
        let p1 = b.internal(&[l]).unwrap();
        let p2 = b.internal(&[l]).unwrap();
        b.internal(&[p1, p2]).unwrap();
        let d = b.finish().unwrap();
        let order = d.post_order();
        assert_eq!(order.len(), 4);
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn merge_forms_forest() {
        let a = small_tree();
        let b = small_tree();
        let f = RecStructure::merge(&[&a, &b]);
        assert_eq!(f.num_nodes(), 10);
        assert_eq!(f.roots().len(), 2);
        assert_eq!(f.num_leaves(), 6);
        // Second copy's children offsets are shifted.
        let order = f.post_order();
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn from_parts_accepts_topological_input_unchanged() {
        let t = small_tree();
        let children: Vec<Vec<NodeId>> = t.iter().map(|n| t.children(n).to_vec()).collect();
        let words: Vec<u32> = t.iter().map(|n| t.word(n)).collect();
        let rebuilt = RecStructure::from_parts(StructureKind::Tree, children, words).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn from_parts_renumbers_parent_first_input() {
        // Root listed first: node 0 = root(1, 2), nodes 1 and 2 leaves.
        let children = vec![vec![NodeId::new(1), NodeId::new(2)], vec![], vec![]];
        let words = vec![9, 5, 6];
        let t = RecStructure::from_parts(StructureKind::Tree, children, words).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.roots().len(), 1);
        assert_eq!(t.max_height(), 1);
        // Root must now come after its children and keep its word.
        let root = t.roots()[0];
        assert_eq!(t.word(root), 9);
        for &c in t.children(root) {
            assert!(c.index() < root.index());
        }
    }

    #[test]
    fn from_parts_rejects_self_loop() {
        let children = vec![vec![NodeId::new(0)]];
        let err = RecStructure::from_parts(StructureKind::Dag, children, vec![0]).unwrap_err();
        assert_eq!(err, StructureError::SelfLoop(NodeId::new(0)));
    }

    #[test]
    fn from_parts_rejects_cycle() {
        // 0 -> 1 -> 2 -> 0
        let children = vec![
            vec![NodeId::new(1)],
            vec![NodeId::new(2)],
            vec![NodeId::new(0)],
        ];
        let err =
            RecStructure::from_parts(StructureKind::Dag, children, vec![0, 0, 0]).unwrap_err();
        assert!(matches!(err, StructureError::Cycle(_)));
    }

    #[test]
    fn from_parts_rejects_out_of_range_child() {
        let children = vec![vec![NodeId::new(7)]];
        let err = RecStructure::from_parts(StructureKind::Tree, children, vec![0]).unwrap_err();
        assert_eq!(err, StructureError::UnknownChild(NodeId::new(7)));
    }

    #[test]
    fn from_parts_rejects_length_mismatch() {
        let children = vec![vec![], vec![]];
        let err = RecStructure::from_parts(StructureKind::Tree, children, vec![0]).unwrap_err();
        assert_eq!(
            err,
            StructureError::LengthMismatch {
                children: 2,
                words: 1
            }
        );
    }

    #[test]
    fn from_parts_rejects_empty() {
        let err = RecStructure::from_parts(StructureKind::Tree, vec![], vec![]).unwrap_err();
        assert_eq!(err, StructureError::Empty);
    }

    #[test]
    fn from_parts_enforces_kind_constraints() {
        // Shared child in a Tree.
        let children = vec![vec![], vec![NodeId::new(0)], vec![NodeId::new(0)]];
        let err = RecStructure::from_parts(StructureKind::Tree, children.clone(), vec![0, 0, 0])
            .unwrap_err();
        assert!(matches!(err, StructureError::MultipleParents { .. }));
        // Same shape is a valid DAG.
        RecStructure::from_parts(StructureKind::Dag, children, vec![0, 0, 0]).unwrap();
        // Fan-out in a Sequence.
        let children = vec![vec![], vec![], vec![NodeId::new(0), NodeId::new(1)]];
        let err =
            RecStructure::from_parts(StructureKind::Sequence, children, vec![0, 0, 0]).unwrap_err();
        assert!(matches!(err, StructureError::SequenceFanOut(_)));
    }

    #[test]
    fn try_merge_rejects_empty_and_mixed_kinds() {
        assert_eq!(
            RecStructure::try_merge(&[]).unwrap_err(),
            StructureError::Empty
        );
        let t = small_tree();
        let mut b = StructureBuilder::new(StructureKind::Sequence);
        let a = b.leaf(0);
        b.internal(&[a]).unwrap();
        let s = b.finish().unwrap();
        assert_eq!(
            RecStructure::try_merge(&[&t, &s]).unwrap_err(),
            StructureError::MixedKinds {
                first: StructureKind::Tree,
                other: StructureKind::Sequence
            }
        );
        // Agreement still merges.
        let f = RecStructure::try_merge(&[&t, &t]).unwrap();
        assert_eq!(f.num_nodes(), 10);
    }

    #[test]
    fn deep_sequence_post_order_does_not_overflow() {
        let mut b = StructureBuilder::new(StructureKind::Sequence);
        let mut prev = b.leaf(0);
        for i in 0..100_000 {
            prev = b.internal_with_word(&[prev], i % 100).unwrap();
        }
        let s = b.finish().unwrap();
        let order = s.post_order();
        assert_eq!(order.len(), 100_001);
        assert_eq!(order[0], NodeId::new(0));
    }
}

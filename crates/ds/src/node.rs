//! Node identifiers.

use std::fmt;

/// Identifier of a node within a [`RecStructure`](crate::RecStructure).
///
/// Ids are dense indices assigned by the [`crate::StructureBuilder`]
/// (crate::StructureBuilder) in creation order; the
/// [`linearizer`](crate::linearizer) later *renumbers* nodes following the
/// Appendix-B scheme of the paper, so a `NodeId` is only meaningful relative
/// to the structure (or linearization) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip_and_order() {
        let a = NodeId::new(3);
        let b = NodeId::new(7);
        assert_eq!(a.index(), 3);
        assert!(a < b);
        assert_eq!(a.to_string(), "n3");
        assert_eq!(usize::from(b), 7);
    }
}

//! Randomized property tests for structures and the linearizer.
//!
//! These check the invariants §4.2 and Appendix B of the paper rely on:
//! the numbering scheme, batch consistency, and dependence preservation,
//! over randomly generated trees, forests, DAGs and sequences. Cases are
//! sampled with the workspace's deterministic [`cortex_rng::Rng`], so
//! failures are reproducible without an external framework.

use cortex_ds::datasets;
use cortex_ds::linearizer::{Linearizer, NO_CHILD};
use cortex_ds::RecStructure;
use cortex_rng::Rng;

const CASES: usize = 120;

/// Samples one of the five structure families.
fn any_structure(rng: &mut Rng) -> RecStructure {
    let seed = rng.next_u64();
    match rng.below_usize(5) {
        0 => datasets::perfect_binary_tree(rng.range_usize(1, 6) as u32, seed),
        1 => datasets::random_binary_tree(rng.range_usize(1, 40), seed),
        2 => datasets::grid_dag(rng.range_usize(1, 8), rng.range_usize(1, 8), seed),
        3 => datasets::sequence(rng.range_usize(1, 50), seed),
        _ => datasets::batch_of(
            |x| datasets::random_binary_tree(8, x),
            rng.range_usize(1, 5),
            seed,
        ),
    }
}

#[test]
fn linearizer_is_a_bijection() {
    let mut rng = Rng::new(0x21);
    for _ in 0..CASES {
        let s = any_structure(&mut rng);
        let lin = Linearizer::new().linearize(&s).unwrap();
        assert_eq!(lin.num_nodes(), s.num_nodes());
        let mut seen = vec![false; s.num_nodes()];
        for node in s.iter() {
            let new = lin.from_structure_id(node);
            assert!(!seen[new as usize]);
            seen[new as usize] = true;
            assert_eq!(lin.to_structure_id(new), node);
        }
    }
}

#[test]
fn appendix_b_numbering_invariants() {
    let mut rng = Rng::new(0x22);
    for _ in 0..CASES {
        let s = any_structure(&mut rng);
        let lin = Linearizer::new().linearize(&s).unwrap();
        // (1) Children numbered higher than parents.
        for id in 0..lin.num_nodes() as u32 {
            for c in lin.children_of(id) {
                assert!(c > id);
            }
        }
        // (2) Leaves numbered after all internal nodes, so the one-compare
        // leaf check agrees with the memory-load leaf check everywhere.
        for id in 0..lin.num_nodes() as u32 {
            assert_eq!(lin.is_leaf(id), lin.is_leaf_by_load(id));
        }
        // (3) Batches partition the nodes.
        let covered: usize = lin.batches().iter().map(|b| b.len()).sum();
        assert_eq!(covered, lin.num_nodes());
    }
}

#[test]
fn batches_satisfy_dependences() {
    let mut rng = Rng::new(0x23);
    for _ in 0..CASES {
        let s = any_structure(&mut rng);
        let lin = Linearizer::new().linearize(&s).unwrap();
        let batches = lin.batches();
        let mut step_of = vec![usize::MAX; lin.num_nodes()];
        for (i, b) in batches.iter().enumerate() {
            for n in b.iter() {
                assert_eq!(step_of[n as usize], usize::MAX, "node in two batches");
                step_of[n as usize] = i;
            }
        }
        for id in 0..lin.num_nodes() as u32 {
            for c in lin.children_of(id) {
                assert!(step_of[c as usize] < step_of[id as usize]);
            }
        }
    }
}

#[test]
fn no_node_is_its_own_descendant() {
    let mut rng = Rng::new(0x24);
    for _ in 0..CASES / 2 {
        // Builder construction should make cycles impossible; verify by
        // walking down from every node.
        let s = any_structure(&mut rng);
        let lin = Linearizer::new().linearize(&s).unwrap();
        for start in 0..lin.num_nodes() as u32 {
            let mut frontier = vec![start];
            let mut steps = 0usize;
            while let Some(n) = frontier.pop() {
                steps += 1;
                assert!(
                    steps <= 10 * lin.num_nodes() * lin.num_nodes().max(4),
                    "walk too long"
                );
                for c in lin.children_of(n) {
                    assert!(c != start, "cycle through {start}");
                    frontier.push(c);
                }
            }
        }
    }
}

#[test]
fn child_slots_consistent() {
    let mut rng = Rng::new(0x25);
    for _ in 0..CASES {
        let s = any_structure(&mut rng);
        let lin = Linearizer::new().linearize(&s).unwrap();
        for id in 0..lin.num_nodes() as u32 {
            let n = lin.num_children_of(id);
            for slot in 0..lin.max_children() {
                let raw = lin.child_array(slot)[id as usize];
                if slot < n {
                    assert!(raw != NO_CHILD);
                    assert_eq!(lin.child(slot, id), Some(raw));
                } else {
                    assert_eq!(raw, NO_CHILD);
                    assert_eq!(lin.child(slot, id), None);
                }
            }
        }
    }
}

#[test]
fn post_order_is_complete_permutation() {
    let mut rng = Rng::new(0x26);
    for _ in 0..CASES {
        let s = any_structure(&mut rng);
        let lin = Linearizer::new().linearize(&s).unwrap();
        let mut order = lin.post_order().to_vec();
        order.sort_unstable();
        let expect: Vec<u32> = (0..lin.num_nodes() as u32).collect();
        assert_eq!(order, expect);
    }
}

#[test]
fn unrolled_schedule_is_complete_and_ordered() {
    let mut rng = Rng::new(0x27);
    for _ in 0..CASES {
        let n = rng.range_usize(2, 40);
        let seed = rng.next_u64();
        let depth = rng.range_usize(2, 5);
        let t = datasets::random_binary_tree(n, seed);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let sched = lin.unrolled(depth).unwrap();
        let nodes = sched.all_nodes();
        assert_eq!(nodes.len(), lin.num_internal());
        // Dependence: internal children execute in a strictly earlier
        // global stage than their parents.
        let mut stage_of = std::collections::HashMap::new();
        let mut idx = 0usize;
        for w in &sched.super_waves {
            for stage in &w.stages {
                for &node in stage {
                    stage_of.insert(node, idx);
                }
                idx += 1;
            }
        }
        for id in 0..lin.num_internal() as u32 {
            for c in lin.children_of(id) {
                if !lin.is_leaf(c) {
                    assert!(stage_of[&c] < stage_of[&id]);
                }
            }
        }
    }
}

#[test]
fn merge_preserves_node_and_leaf_counts() {
    let mut rng = Rng::new(0x28);
    for _ in 0..CASES {
        let k = rng.range_usize(1, 6);
        let n = rng.range_usize(1, 15);
        let seed = rng.next_u64();
        let parts: Vec<_> = (0..k)
            .map(|i| datasets::random_binary_tree(n, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&RecStructure> = parts.iter().collect();
        let forest = RecStructure::merge(&refs);
        assert_eq!(
            forest.num_nodes(),
            parts.iter().map(|p| p.num_nodes()).sum::<usize>()
        );
        assert_eq!(
            forest.num_leaves(),
            parts.iter().map(|p| p.num_leaves()).sum::<usize>()
        );
        assert_eq!(forest.roots().len(), k);
    }
}

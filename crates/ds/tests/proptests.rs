//! Property-based tests for structures and the linearizer.
//!
//! These check the invariants §4.2 and Appendix B of the paper rely on:
//! the numbering scheme, batch consistency, and dependence preservation,
//! over randomly generated trees, forests, DAGs and sequences.

use cortex_ds::datasets;
use cortex_ds::linearizer::{Linearizer, NO_CHILD};
use cortex_ds::RecStructure;
use proptest::prelude::*;

/// Strategy producing a variety of recursive structures.
fn any_structure() -> impl Strategy<Value = RecStructure> {
    prop_oneof![
        (1u32..6, any::<u64>()).prop_map(|(h, s)| datasets::perfect_binary_tree(h, s)),
        (1usize..40, any::<u64>()).prop_map(|(n, s)| datasets::random_binary_tree(n, s)),
        (1usize..8, 1usize..8, any::<u64>()).prop_map(|(r, c, s)| datasets::grid_dag(r, c, s)),
        (1usize..50, any::<u64>()).prop_map(|(n, s)| datasets::sequence(n, s)),
        (1usize..5, any::<u64>())
            .prop_map(|(b, s)| datasets::batch_of(|x| datasets::random_binary_tree(8, x), b, s)),
    ]
}

proptest! {
    #[test]
    fn linearizer_is_a_bijection(s in any_structure()) {
        let lin = Linearizer::new().linearize(&s).unwrap();
        prop_assert_eq!(lin.num_nodes(), s.num_nodes());
        let mut seen = vec![false; s.num_nodes()];
        for node in s.iter() {
            let new = lin.from_structure_id(node);
            prop_assert!(!seen[new as usize]);
            seen[new as usize] = true;
            prop_assert_eq!(lin.to_structure_id(new), node);
        }
    }

    #[test]
    fn appendix_b_numbering_invariants(s in any_structure()) {
        let lin = Linearizer::new().linearize(&s).unwrap();
        // (1) Children numbered higher than parents.
        for id in 0..lin.num_nodes() as u32 {
            for c in lin.children_of(id) {
                prop_assert!(c > id);
            }
        }
        // (2) Leaves numbered after all internal nodes, so the one-compare
        // leaf check agrees with the memory-load leaf check everywhere.
        for id in 0..lin.num_nodes() as u32 {
            prop_assert_eq!(lin.is_leaf(id), lin.is_leaf_by_load(id));
        }
        // (3) Batches are consecutive and partition the nodes.
        let mut covered = 0usize;
        let mut expected_begin = None;
        for b in lin.batches() {
            if let Some(eb) = expected_begin {
                // Leaf batch comes first in execution order but holds the
                // highest ids; internal batches run root-batch-last.
                let _ = eb; // consecutive-ness checked structurally below
            }
            covered += b.len();
            expected_begin = Some(b.begin() + b.len() as u32);
        }
        prop_assert_eq!(covered, lin.num_nodes());
    }

    #[test]
    fn batches_satisfy_dependences(s in any_structure()) {
        let lin = Linearizer::new().linearize(&s).unwrap();
        let batches = lin.batches();
        let mut step_of = vec![usize::MAX; lin.num_nodes()];
        for (i, b) in batches.iter().enumerate() {
            for n in b.iter() {
                prop_assert_eq!(step_of[n as usize], usize::MAX, "node in two batches");
                step_of[n as usize] = i;
            }
        }
        for id in 0..lin.num_nodes() as u32 {
            for c in lin.children_of(id) {
                prop_assert!(step_of[c as usize] < step_of[id as usize]);
            }
        }
    }

    #[test]
    fn no_node_is_its_own_descendant(s in any_structure()) {
        // Builder construction should make cycles impossible; verify by
        // walking down from every node.
        let lin = Linearizer::new().linearize(&s).unwrap();
        for start in 0..lin.num_nodes() as u32 {
            let mut frontier = vec![start];
            let mut steps = 0;
            while let Some(n) = frontier.pop() {
                steps += 1;
                prop_assert!(steps <= 10 * lin.num_nodes() * lin.num_nodes().max(4), "walk too long");
                for c in lin.children_of(n) {
                    prop_assert!(c != start, "cycle through {start}");
                    frontier.push(c);
                }
            }
        }
    }

    #[test]
    fn child_slots_consistent(s in any_structure()) {
        let lin = Linearizer::new().linearize(&s).unwrap();
        for id in 0..lin.num_nodes() as u32 {
            let n = lin.num_children_of(id);
            for slot in 0..lin.max_children() {
                let raw = lin.child_array(slot)[id as usize];
                if slot < n {
                    prop_assert!(raw != NO_CHILD);
                    prop_assert_eq!(lin.child(slot, id), Some(raw));
                } else {
                    prop_assert_eq!(raw, NO_CHILD);
                    prop_assert_eq!(lin.child(slot, id), None);
                }
            }
        }
    }

    #[test]
    fn post_order_is_complete_permutation(s in any_structure()) {
        let lin = Linearizer::new().linearize(&s).unwrap();
        let mut order = lin.post_order().to_vec();
        order.sort_unstable();
        let expect: Vec<u32> = (0..lin.num_nodes() as u32).collect();
        prop_assert_eq!(order, expect);
    }

    #[test]
    fn unrolled_schedule_is_complete_and_ordered(
        n in 2usize..40, seed in any::<u64>(), depth in 2usize..5,
    ) {
        let t = datasets::random_binary_tree(n, seed);
        let lin = Linearizer::new().linearize(&t).unwrap();
        let sched = lin.unrolled(depth).unwrap();
        let nodes = sched.all_nodes();
        prop_assert_eq!(nodes.len(), lin.num_internal());
        // Dependence: internal children execute in a strictly earlier
        // global stage than their parents.
        let mut stage_of = std::collections::HashMap::new();
        let mut idx = 0usize;
        for w in &sched.super_waves {
            for stage in &w.stages {
                for &node in stage {
                    stage_of.insert(node, idx);
                }
                idx += 1;
            }
        }
        for id in 0..lin.num_internal() as u32 {
            for c in lin.children_of(id) {
                if !lin.is_leaf(c) {
                    prop_assert!(stage_of[&c] < stage_of[&id]);
                }
            }
        }
    }

    #[test]
    fn merge_preserves_node_and_leaf_counts(
        k in 1usize..6, n in 1usize..15, seed in any::<u64>(),
    ) {
        let parts: Vec<_> = (0..k)
            .map(|i| datasets::random_binary_tree(n, seed.wrapping_add(i as u64)))
            .collect();
        let refs: Vec<&RecStructure> = parts.iter().collect();
        let forest = RecStructure::merge(&refs);
        prop_assert_eq!(forest.num_nodes(), parts.iter().map(|p| p.num_nodes()).sum::<usize>());
        prop_assert_eq!(forest.num_leaves(), parts.iter().map(|p| p.num_leaves()).sum::<usize>());
        prop_assert_eq!(forest.roots().len(), k);
    }
}

//! A small decision procedure for bound checks (the Z3 stand-in).
//!
//! Appendix A.1 of the paper: *"In order to perform simplification over
//! such expressions, for purposes such as proving if certain bound checks
//! are redundant, we use the Z3 SMT solver."* The queries Cortex's lowering
//! actually generates are interval facts over loop variables and the
//! linearizer's uninterpreted functions — e.g. that the main part of a
//! peeled loop never exceeds the loop bound, or that
//! `batch_begin[b] + n_idx` stays below `num_nodes`. A full SMT solver is
//! unnecessary: an interval analysis with knowledge of the uninterpreted
//! functions' ranges decides all of them (see DESIGN.md, substitutions).

use std::collections::HashMap;

use crate::expr::{BoolExpr, CmpOp, IdxBinOp, IdxExpr, RtScalar, Ufn, Var};

/// An inclusive integer interval; `lo > hi` encodes "no information"
/// is avoided by construction (use [`Interval::top`] for unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// The unbounded interval.
    pub fn top() -> Self {
        Interval {
            lo: i64::MIN / 4,
            hi: i64::MAX / 4,
        }
    }

    /// A single point.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, both inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(o.lo),
            hi: self.hi.saturating_add(o.hi),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(o.hi),
            hi: self.hi.saturating_sub(o.lo),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        let candidates = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval {
            lo: *candidates.iter().min().expect("non-empty"),
            hi: *candidates.iter().max().expect("non-empty"),
        }
    }

    fn min(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.min(o.hi),
        }
    }

    fn max(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.max(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

/// Verdicts from the prover. `Unknown` is always sound to return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The fact holds in every environment consistent with the context.
    Proven,
    /// The fact fails in every such environment.
    Disproven,
    /// The procedure cannot decide (treat as "might not hold").
    Unknown,
}

/// Facts the prover may assume about the program environment.
///
/// Variable ranges come from loop bounds; the ranges of the uninterpreted
/// functions follow from the linearizer's construction (Appendix B): node
/// ids lie in `[0, num_nodes)`, `batch_begin[b] + batch_length[b] <=
/// num_nodes`, and so on.
#[derive(Debug, Clone, Default)]
pub struct ProofContext {
    vars: HashMap<Var, Interval>,
    rt: HashMap<RtScalar, Interval>,
}

impl ProofContext {
    /// An empty context (everything unknown).
    pub fn new() -> Self {
        ProofContext::default()
    }

    /// Bounds a variable: `lo <= v <= hi`.
    pub fn assume_var(&mut self, v: Var, lo: i64, hi: i64) -> &mut Self {
        self.vars.insert(v, Interval::new(lo, hi));
        self
    }

    /// Bounds a runtime scalar.
    pub fn assume_rt(&mut self, r: RtScalar, lo: i64, hi: i64) -> &mut Self {
        self.rt.insert(r, Interval::new(lo, hi));
        self
    }

    /// Installs the standard facts implied by a linearized structure with
    /// `num_nodes` total and `num_internal` internal nodes.
    pub fn with_structure_facts(mut self, num_nodes: i64, num_internal: i64) -> Self {
        self.rt
            .insert(RtScalar::NumNodes, Interval::point(num_nodes));
        self.rt
            .insert(RtScalar::NumInternal, Interval::point(num_internal));
        self.rt.insert(
            RtScalar::NumLeaves,
            Interval::point(num_nodes - num_internal),
        );
        self.rt
            .insert(RtScalar::LeafBegin, Interval::point(num_internal));
        self.rt
            .insert(RtScalar::MaxBatchLen, Interval::new(0, num_nodes.max(0)));
        self.rt.insert(
            RtScalar::NumInternalBatches,
            Interval::new(0, num_internal.max(0)),
        );
        self
    }

    /// Interval of an expression under this context.
    pub fn eval(&self, e: &IdxExpr) -> Interval {
        match e {
            IdxExpr::Const(c) => Interval::point(*c),
            IdxExpr::Var(v) => self.vars.get(v).copied().unwrap_or_else(Interval::top),
            IdxExpr::Rt(r) => self.rt.get(r).copied().unwrap_or_else(Interval::top),
            IdxExpr::Ufn(f, _args) => {
                // Ranges implied by the linearizer's construction.
                let nodes = self
                    .rt
                    .get(&RtScalar::NumNodes)
                    .copied()
                    .unwrap_or_else(Interval::top);
                match f {
                    // Child ids are node ids (Appendix B: strictly greater
                    // than the parent's, but at minimum valid node ids).
                    Ufn::Child(_) | Ufn::NodeAt | Ufn::RootAt | Ufn::StageNodeAt => Interval {
                        lo: 0,
                        hi: (nodes.hi - 1).max(0),
                    },
                    Ufn::Word => Interval {
                        lo: 0,
                        hi: i64::MAX / 4,
                    },
                    Ufn::NumChildren => Interval { lo: 0, hi: 64 },
                    Ufn::BatchBegin => Interval {
                        lo: 0,
                        hi: nodes.hi.max(0),
                    },
                    Ufn::BatchLength | Ufn::StageLength => Interval {
                        lo: 0,
                        hi: nodes.hi.max(0),
                    },
                }
            }
            IdxExpr::Bin(op, a, b) => {
                let ia = self.eval(a);
                let ib = self.eval(b);
                match op {
                    IdxBinOp::Add => ia.add(ib),
                    IdxBinOp::Sub => ia.sub(ib),
                    IdxBinOp::Mul => ia.mul(ib),
                    IdxBinOp::Div => {
                        if ib.lo > 0 {
                            Interval {
                                lo: ia.lo.div_euclid(ib.lo.max(1)),
                                hi: ia.hi.div_euclid(1),
                            }
                        } else {
                            Interval::top()
                        }
                    }
                    IdxBinOp::Rem => {
                        if ib.lo > 0 {
                            Interval {
                                lo: 0,
                                hi: ib.hi - 1,
                            }
                        } else {
                            Interval::top()
                        }
                    }
                    IdxBinOp::Min => ia.min(ib),
                    IdxBinOp::Max => ia.max(ib),
                }
            }
        }
    }

    /// Tries to prove `a op b`.
    pub fn prove_cmp(&self, op: CmpOp, a: &IdxExpr, b: &IdxExpr) -> Verdict {
        // First try the difference (catches shared terms like
        // `x + 1 <= x + 2` when x's interval is wide, via syntactic
        // cancellation in the simplifier).
        let diff = crate::simplify::simplify_idx(&a.clone().sub(b.clone()));
        let id = self.eval(&diff);
        let (ia, ib) = (self.eval(a), self.eval(b));
        match op {
            CmpOp::Lt => {
                if id.hi < 0 || ia.hi < ib.lo {
                    Verdict::Proven
                } else if id.lo >= 0 || ia.lo >= ib.hi {
                    Verdict::Disproven
                } else {
                    Verdict::Unknown
                }
            }
            CmpOp::Le => {
                if id.hi <= 0 || ia.hi <= ib.lo {
                    Verdict::Proven
                } else if id.lo > 0 || ia.lo > ib.hi {
                    Verdict::Disproven
                } else {
                    Verdict::Unknown
                }
            }
            CmpOp::Gt => self.prove_cmp(CmpOp::Lt, b, a),
            CmpOp::Ge => self.prove_cmp(CmpOp::Le, b, a),
            CmpOp::Eq => {
                if id.lo == 0 && id.hi == 0 {
                    Verdict::Proven
                } else if id.hi < 0 || id.lo > 0 {
                    Verdict::Disproven
                } else {
                    Verdict::Unknown
                }
            }
            CmpOp::Ne => match self.prove_cmp(CmpOp::Eq, a, b) {
                Verdict::Proven => Verdict::Disproven,
                Verdict::Disproven => Verdict::Proven,
                Verdict::Unknown => Verdict::Unknown,
            },
        }
    }

    /// Tries to prove a boolean expression.
    pub fn prove(&self, e: &BoolExpr) -> Verdict {
        match e {
            BoolExpr::Cmp(op, a, b) => self.prove_cmp(*op, a, b),
            BoolExpr::IsLeaf(_) => Verdict::Unknown,
            BoolExpr::And(a, b) => match (self.prove(a), self.prove(b)) {
                (Verdict::Proven, Verdict::Proven) => Verdict::Proven,
                (Verdict::Disproven, _) | (_, Verdict::Disproven) => Verdict::Disproven,
                _ => Verdict::Unknown,
            },
            BoolExpr::Or(a, b) => match (self.prove(a), self.prove(b)) {
                (Verdict::Proven, _) | (_, Verdict::Proven) => Verdict::Proven,
                (Verdict::Disproven, Verdict::Disproven) => Verdict::Disproven,
                _ => Verdict::Unknown,
            },
            BoolExpr::Not(a) => match self.prove(a) {
                Verdict::Proven => Verdict::Disproven,
                Verdict::Disproven => Verdict::Proven,
                Verdict::Unknown => Verdict::Unknown,
            },
        }
    }

    /// Whether a bound check `index < extent && index >= 0` is redundant —
    /// the query loop peeling issues for the main (non-remainder) part of a
    /// split variable-bound loop (Appendix A.5).
    pub fn bound_check_redundant(&self, index: &IdxExpr, extent: &IdxExpr) -> bool {
        self.prove_cmp(CmpOp::Lt, index, extent) == Verdict::Proven
            && self.prove_cmp(CmpOp::Ge, index, &IdxExpr::Const(0)) == Verdict::Proven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(1, 3);
        let b = Interval::new(-2, 2);
        assert_eq!(a.add(b), Interval::new(-1, 5));
        assert_eq!(a.sub(b), Interval::new(-1, 5));
        assert_eq!(a.mul(b), Interval::new(-6, 6));
    }

    #[test]
    fn proves_simple_loop_bound() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let mut ctx = ProofContext::new();
        ctx.assume_var(i, 0, 255);
        assert_eq!(
            ctx.prove_cmp(CmpOp::Lt, &IdxExpr::var(i), &IdxExpr::Const(256)),
            Verdict::Proven
        );
        assert_eq!(
            ctx.prove_cmp(CmpOp::Lt, &IdxExpr::var(i), &IdxExpr::Const(255)),
            Verdict::Unknown
        );
        assert_eq!(
            ctx.prove_cmp(CmpOp::Ge, &IdxExpr::var(i), &IdxExpr::Const(0)),
            Verdict::Proven
        );
    }

    #[test]
    fn difference_reasoning_cancels_shared_terms() {
        // x + 1 <= x + 2 holds even though x is unbounded.
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let ctx = ProofContext::new();
        let a = IdxExpr::var(x).add(IdxExpr::Const(1));
        let b = IdxExpr::var(x).add(IdxExpr::Const(2));
        // a - b simplifies... our simplifier doesn't reassociate, so rely on
        // intervals where it can't; the point of this test is soundness:
        // never Disproven.
        assert_ne!(ctx.prove_cmp(CmpOp::Le, &a, &b), Verdict::Disproven);
        // x - x cancels syntactically.
        assert_eq!(
            ctx.prove_cmp(CmpOp::Le, &IdxExpr::var(x), &IdxExpr::var(x)),
            Verdict::Proven
        );
    }

    #[test]
    fn peeled_main_loop_check_is_redundant() {
        // Appendix A.5: loop over n_idx in 0..batch_length[b], peeled by 4.
        // Main part: n_idx = 4*q + r with q < batch_length[b]/4, r < 4
        // => n_idx < batch_length[b]. Our lowering emits the main extent
        // as (len/4)*4 and asks whether idx < len.
        let mut g = VarGen::new();
        let q = g.fresh("q");
        let r = g.fresh("r");
        let len = 37i64; // a concrete batch length the runtime would bind
        let mut ctx = ProofContext::new();
        ctx.assume_var(q, 0, len / 4 - 1);
        ctx.assume_var(r, 0, 3);
        let idx = IdxExpr::var(q).mul(IdxExpr::Const(4)).add(IdxExpr::var(r));
        assert!(ctx.bound_check_redundant(&idx, &IdxExpr::Const(len)));
        // The remainder part is *not* redundant.
        let mut ctx2 = ProofContext::new();
        ctx2.assume_var(q, 0, len / 4);
        ctx2.assume_var(r, 0, 3);
        assert!(!ctx2.bound_check_redundant(&idx, &IdxExpr::Const(len)));
    }

    #[test]
    fn ufn_ranges_from_structure_facts() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let mut ctx = ProofContext::new().with_structure_facts(255, 127);
        ctx.assume_var(n, 0, 254);
        // child ids are valid node indices.
        let c = IdxExpr::var(n).child(0);
        assert_eq!(
            ctx.prove_cmp(CmpOp::Lt, &c, &IdxExpr::Rt(RtScalar::NumNodes)),
            Verdict::Proven
        );
        assert_eq!(
            ctx.prove_cmp(CmpOp::Ge, &c, &IdxExpr::Const(0)),
            Verdict::Proven
        );
    }

    #[test]
    fn equality_and_negation() {
        let ctx = ProofContext::new();
        assert_eq!(
            ctx.prove_cmp(CmpOp::Eq, &IdxExpr::Const(3), &IdxExpr::Const(3)),
            Verdict::Proven
        );
        assert_eq!(
            ctx.prove_cmp(CmpOp::Ne, &IdxExpr::Const(3), &IdxExpr::Const(3)),
            Verdict::Disproven
        );
        let e = BoolExpr::Not(Box::new(BoolExpr::lt(IdxExpr::Const(5), IdxExpr::Const(1))));
        assert_eq!(ctx.prove(&e), Verdict::Proven);
    }

    #[test]
    fn isleaf_is_never_decided_without_structure() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let ctx = ProofContext::new();
        assert_eq!(
            ctx.prove(&BoolExpr::IsLeaf(IdxExpr::var(n))),
            Verdict::Unknown
        );
    }

    #[test]
    fn conjunction_and_disjunction() {
        let ctx = ProofContext::new();
        let t = BoolExpr::lt(IdxExpr::Const(0), IdxExpr::Const(1));
        let f = BoolExpr::lt(IdxExpr::Const(1), IdxExpr::Const(0));
        assert_eq!(
            ctx.prove(&BoolExpr::And(Box::new(t.clone()), Box::new(f.clone()))),
            Verdict::Disproven
        );
        assert_eq!(
            ctx.prove(&BoolExpr::Or(Box::new(t.clone()), Box::new(f.clone()))),
            Verdict::Proven
        );
        assert_eq!(
            ctx.prove(&BoolExpr::And(Box::new(t.clone()), Box::new(t))),
            Verdict::Proven
        );
    }
}

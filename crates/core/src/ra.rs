//! The Recursive API (§3 of the paper).
//!
//! The RA models a recursive model as a DAG of tensor operators, each
//! specified as a loop nest over a per-node iteration space, plus a
//! *recursion operator* that ties a placeholder (the results of recursive
//! calls) to the operator producing those results. Listing 1 of the paper
//! maps to this module as:
//!
//! ```
//! use cortex_core::ra::RaGraph;
//!
//! let mut g = RaGraph::new();
//! const H: usize = 256;
//! const V: usize = 1000;
//! let emb = g.input("Emb", &[V, H]);
//! let rnn_ph = g.placeholder("rnn_ph", &[H]);
//! // Base case: Emb[words[n], i]
//! let leaf_case = g.compute("leaf_case", &[H], |c| {
//!     c.read(emb, &[c.node().word(), c.axis(0)])
//! });
//! // lh = rnn_ph[n.left, i]; rh = rnn_ph[n.right, i]
//! let lh = g.compute("lh", &[H], |c| c.read(rnn_ph, &[c.node().child(0), c.axis(0)]));
//! let rh = g.compute("rh", &[H], |c| c.read(rnn_ph, &[c.node().child(1), c.axis(0)]));
//! let recursive_case = g.compute("rec_case", &[H], |c| {
//!     c.read(lh, &[c.node(), c.axis(0)]).add(c.read(rh, &[c.node(), c.axis(0)])).tanh()
//! });
//! let body = g.if_then_else("body", leaf_case, recursive_case).unwrap();
//! let rnn = g.recursion(rnn_ph, body).unwrap();
//! g.mark_output(rnn);
//! assert!(g.validate().is_ok());
//! ```
//!
//! Scheduling primitives (§3.1) are carried by [`RaSchedule`] and consumed
//! by [`lower`](mod@crate::lower).

use std::error::Error;
use std::fmt;

use cortex_tensor::approx::NonlinearityMode;

use crate::expr::{BoolExpr, IdxExpr, TensorId, ValExpr, Var, VarGen};

/// A handle to a tensor in an [`RaGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RaTensor {
    pub(crate) id: TensorId,
}

impl RaTensor {
    /// The underlying tensor id (shared with the lowered ILIR).
    pub fn id(self) -> TensorId {
        self.id
    }
}

/// The kind of an RA operator.
#[derive(Debug, Clone)]
pub enum RaOpKind {
    /// A model parameter or input table (e.g. embedding matrix, weights).
    Input,
    /// A placeholder standing for the results of recursive calls
    /// (`rnn_ph` in Listing 1).
    Placeholder,
    /// A per-node loop-nest computation.
    Compute {
        /// The node iteration variable used by `body`.
        node_var: Var,
        /// Per-feature-dimension iteration variables.
        axes: Vec<Var>,
        /// The value computed at `[node, axes...]`.
        body: ValExpr,
    },
    /// The conditional operator over the leaf check (§5.2); selects between
    /// two same-shaped per-node tensors.
    IfThenElse {
        /// Value for leaves.
        then: TensorId,
        /// Value for internal nodes.
        otherwise: TensorId,
    },
    /// The recursion operator: declares that `body`'s values are what the
    /// placeholder's recursive reads observe.
    Recursion {
        /// The placeholder being tied.
        placeholder: TensorId,
        /// The operator producing each node's result.
        body: TensorId,
    },
}

/// One operator in the RA graph.
#[derive(Debug, Clone)]
pub struct RaOp {
    /// Diagnostic name.
    pub name: String,
    /// Operator kind.
    pub kind: RaOpKind,
    /// Shape of the non-node ("feature") dimensions. For [`RaOpKind::Input`]
    /// this is the full shape; every other op additionally has an implicit
    /// leading node dimension of runtime extent `N`.
    pub feature_shape: Vec<usize>,
}

impl RaOp {
    /// Whether this op's tensor has the implicit leading node dimension.
    pub fn is_node_major(&self) -> bool {
        !matches!(self.kind, RaOpKind::Input)
    }
}

/// Errors detected while building or validating an RA graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaError {
    /// A referenced tensor id does not exist.
    UnknownTensor(TensorId),
    /// `if_then_else` branches disagree in shape.
    BranchShapeMismatch {
        /// Leaf branch.
        then: TensorId,
        /// Internal branch.
        otherwise: TensorId,
    },
    /// A recursion ties a placeholder to a body of different shape.
    RecursionShapeMismatch {
        /// The placeholder.
        placeholder: TensorId,
        /// The body.
        body: TensorId,
    },
    /// The tensor passed as a placeholder is not a placeholder op.
    NotAPlaceholder(TensorId),
    /// A placeholder is never tied by a recursion operator.
    UnboundPlaceholder(TensorId),
    /// A placeholder is tied by two recursion operators.
    DoublyBoundPlaceholder(TensorId),
    /// The graph has no outputs marked.
    NoOutputs,
    /// The refactor split names an op outside any recursion body.
    BadRefactorSplit(TensorId),
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::UnknownTensor(t) => write!(f, "unknown tensor {t}"),
            RaError::BranchShapeMismatch { then, otherwise } => {
                write!(
                    f,
                    "if_then_else branches {then} and {otherwise} have different shapes"
                )
            }
            RaError::RecursionShapeMismatch { placeholder, body } => {
                write!(
                    f,
                    "recursion body {body} does not match placeholder {placeholder} shape"
                )
            }
            RaError::NotAPlaceholder(t) => write!(f, "{t} is not a placeholder"),
            RaError::UnboundPlaceholder(t) => {
                write!(f, "placeholder {t} is never tied by a recursion")
            }
            RaError::DoublyBoundPlaceholder(t) => {
                write!(f, "placeholder {t} tied by two recursions")
            }
            RaError::NoOutputs => write!(f, "graph has no outputs marked"),
            RaError::BadRefactorSplit(t) => {
                write!(f, "refactor split {t} is not a recursion-body op")
            }
        }
    }
}

impl Error for RaError {}

/// Body-construction context handed to [`RaGraph::compute`] closures.
///
/// Provides the node variable, feature-axis variables and helpers to read
/// other tensors or build reductions.
pub struct BodyCtx<'g> {
    node_var: Var,
    axes: Vec<Var>,
    vg: &'g mut VarGen,
    ops: &'g [RaOp],
}

impl BodyCtx<'_> {
    /// The current node id as an index expression.
    pub fn node(&self) -> IdxExpr {
        IdxExpr::Var(self.node_var)
    }

    /// The `d`-th feature-axis variable as an index expression.
    ///
    /// # Panics
    ///
    /// Panics if `d` exceeds the declared feature rank.
    pub fn axis(&self, d: usize) -> IdxExpr {
        IdxExpr::Var(self.axes[d])
    }

    /// Reads tensor `t` at `index`.
    ///
    /// For node-major tensors `index[0]` must be a node id expression
    /// (e.g. [`node`](Self::node) or `node().child(k)`); inputs take only
    /// their declared indices.
    ///
    /// # Panics
    ///
    /// Panics if the index rank does not match the tensor's rank.
    pub fn read(&self, t: RaTensor, index: &[IdxExpr]) -> ValExpr {
        let op = &self.ops[t.id.0 as usize];
        let expect = op.feature_shape.len() + usize::from(op.is_node_major());
        assert_eq!(
            index.len(),
            expect,
            "tensor {} ({}) expects {} indices, got {}",
            t.id,
            op.name,
            expect,
            index.len()
        );
        ValExpr::Load {
            tensor: t.id,
            index: index.to_vec(),
        }
    }

    /// Builds a reduction `sum over k in 0..extent of f(ctx, k)`.
    ///
    /// The context is passed back into the closure so tensor reads can be
    /// issued while the reduction variable is in scope.
    pub fn sum(&mut self, extent: usize, f: impl FnOnce(&Self, IdxExpr) -> ValExpr) -> ValExpr {
        let k = self.vg.fresh("k");
        let body = f(self, IdxExpr::Var(k));
        ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(extent as i64),
            body: Box::new(body),
        }
    }

    /// The leaf predicate on the current node.
    pub fn is_leaf(&self) -> BoolExpr {
        BoolExpr::IsLeaf(self.node())
    }
}

/// A recursive model computation: a DAG of RA operators.
#[derive(Debug, Clone, Default)]
pub struct RaGraph {
    ops: Vec<RaOp>,
    outputs: Vec<TensorId>,
    vg: VarGen,
}

impl RaGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        RaGraph::default()
    }

    fn push(&mut self, op: RaOp) -> RaTensor {
        let id = TensorId(self.ops.len() as u32);
        self.ops.push(op);
        RaTensor { id }
    }

    /// Declares a model parameter/input with a fully static shape
    /// (`input_tensor` in Listing 1).
    pub fn input(&mut self, name: &str, shape: &[usize]) -> RaTensor {
        self.push(RaOp {
            name: name.to_string(),
            kind: RaOpKind::Input,
            feature_shape: shape.to_vec(),
        })
    }

    /// Declares a placeholder for recursive-call results with the given
    /// per-node feature shape (`placeholder((N, H))` in Listing 1).
    pub fn placeholder(&mut self, name: &str, feature_shape: &[usize]) -> RaTensor {
        self.push(RaOp {
            name: name.to_string(),
            kind: RaOpKind::Placeholder,
            feature_shape: feature_shape.to_vec(),
        })
    }

    /// Declares a per-node computation (`compute` in Listing 1). The body
    /// closure receives a [`BodyCtx`] exposing the node variable and one
    /// axis variable per feature dimension.
    pub fn compute(
        &mut self,
        name: &str,
        feature_shape: &[usize],
        f: impl FnOnce(&mut BodyCtx) -> ValExpr,
    ) -> RaTensor {
        let node_var = self.vg.fresh(&format!("{name}.n"));
        let axes: Vec<Var> = (0..feature_shape.len())
            .map(|d| self.vg.fresh(&format!("{name}.i{d}")))
            .collect();
        let body = {
            let mut ctx = BodyCtx {
                node_var,
                axes: axes.clone(),
                vg: &mut self.vg,
                ops: &self.ops,
            };
            f(&mut ctx)
        };
        self.push(RaOp {
            name: name.to_string(),
            kind: RaOpKind::Compute {
                node_var,
                axes,
                body,
            },
            feature_shape: feature_shape.to_vec(),
        })
    }

    /// The conditional operator for the leaf check (`if_then_else` in
    /// Listing 1): per node, `then` for leaves, `otherwise` for internal
    /// nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RaError::BranchShapeMismatch`] if the branches' shapes
    /// differ, or [`RaError::UnknownTensor`].
    pub fn if_then_else(
        &mut self,
        name: &str,
        then: RaTensor,
        otherwise: RaTensor,
    ) -> Result<RaTensor, RaError> {
        let ts = self.op(then.id)?.feature_shape.clone();
        let os = self.op(otherwise.id)?.feature_shape.clone();
        if ts != os {
            return Err(RaError::BranchShapeMismatch {
                then: then.id,
                otherwise: otherwise.id,
            });
        }
        Ok(self.push(RaOp {
            name: name.to_string(),
            kind: RaOpKind::IfThenElse {
                then: then.id,
                otherwise: otherwise.id,
            },
            feature_shape: ts,
        }))
    }

    /// The recursion operator (`recursion_op` in Listing 1): ties
    /// `placeholder` to `body`, returning the recursion result tensor.
    ///
    /// # Errors
    ///
    /// Returns [`RaError::NotAPlaceholder`] or
    /// [`RaError::RecursionShapeMismatch`] on misuse.
    pub fn recursion(
        &mut self,
        placeholder: RaTensor,
        body: RaTensor,
    ) -> Result<RaTensor, RaError> {
        let ph = self.op(placeholder.id)?;
        if !matches!(ph.kind, RaOpKind::Placeholder) {
            return Err(RaError::NotAPlaceholder(placeholder.id));
        }
        let ph_shape = ph.feature_shape.clone();
        let body_shape = self.op(body.id)?.feature_shape.clone();
        if ph_shape != body_shape {
            return Err(RaError::RecursionShapeMismatch {
                placeholder: placeholder.id,
                body: body.id,
            });
        }
        let name = format!("rec({})", self.ops[placeholder.id.0 as usize].name);
        Ok(self.push(RaOp {
            name,
            kind: RaOpKind::Recursion {
                placeholder: placeholder.id,
                body: body.id,
            },
            feature_shape: ph_shape,
        }))
    }

    /// Marks a tensor as a model output.
    pub fn mark_output(&mut self, t: RaTensor) {
        if !self.outputs.contains(&t.id) {
            self.outputs.push(t.id);
        }
    }

    /// The marked outputs.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// All operators, in id order (which is a topological order, since
    /// handles only exist after their op is created).
    pub fn ops(&self) -> &[RaOp] {
        &self.ops
    }

    /// Looks up one operator.
    ///
    /// # Errors
    ///
    /// Returns [`RaError::UnknownTensor`] if out of range.
    pub fn op(&self, id: TensorId) -> Result<&RaOp, RaError> {
        self.ops
            .get(id.0 as usize)
            .ok_or(RaError::UnknownTensor(id))
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates structural invariants: every placeholder tied exactly
    /// once, branch shapes consistent, outputs present.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`RaError`].
    pub fn validate(&self) -> Result<(), RaError> {
        if self.outputs.is_empty() {
            return Err(RaError::NoOutputs);
        }
        let mut tied = vec![0usize; self.ops.len()];
        for op in &self.ops {
            if let RaOpKind::Recursion { placeholder, .. } = op.kind {
                tied[placeholder.0 as usize] += 1;
            }
        }
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op.kind, RaOpKind::Placeholder) {
                match tied[i] {
                    0 => return Err(RaError::UnboundPlaceholder(TensorId(i as u32))),
                    1 => {}
                    _ => return Err(RaError::DoublyBoundPlaceholder(TensorId(i as u32))),
                }
            }
        }
        Ok(())
    }

    /// The recursion op tying `placeholder`, if any.
    pub fn recursion_for(&self, placeholder: TensorId) -> Option<TensorId> {
        self.ops
            .iter()
            .enumerate()
            .find_map(|(i, op)| match op.kind {
                RaOpKind::Recursion {
                    placeholder: ph, ..
                } if ph == placeholder => Some(TensorId(i as u32)),
                _ => None,
            })
    }

    /// Tensors read by op `id` (direct dependencies).
    pub fn reads_of(&self, id: TensorId) -> Vec<TensorId> {
        match &self.ops[id.0 as usize].kind {
            RaOpKind::Input | RaOpKind::Placeholder => Vec::new(),
            RaOpKind::Compute { body, .. } => {
                let mut v = Vec::new();
                body.loaded_tensors(&mut v);
                v
            }
            RaOpKind::IfThenElse { then, otherwise } => vec![*then, *otherwise],
            RaOpKind::Recursion { body, .. } => vec![*body],
        }
    }

    /// Fresh-variable generator access for lowering.
    pub fn var_gen_mut(&mut self) -> &mut VarGen {
        &mut self.vg
    }
}

/// How aggressively operators are fused into kernels (§7.3, Fig. 10a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionMode {
    /// One kernel launch per operator per dynamic batch — the vendor-library
    /// execution model.
    None,
    /// All operators fused into a single persistent kernel iterating over
    /// batches internally ("maximal kernel fusion").
    #[default]
    Maximal,
}

/// How the leaf check is lowered (Appendix B ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafCheckMode {
    /// One comparison against `num_internal` (the Appendix-B numbering).
    #[default]
    Numbering,
    /// A load of `num_children[n]` compared with zero.
    Load,
}

/// Where synchronization barriers are placed (Appendix A.4 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierMode {
    /// At the loop that actually carries the dependence (Cortex's pass).
    #[default]
    DependenceAware,
    /// Conservatively in the innermost loop (the unmodified TVM pass).
    Conservative,
}

/// The schedule for a recursive computation: the §3.1 recursion scheduling
/// primitives plus the ILIR-level knobs of §5 and the appendices.
///
/// `RaSchedule::default()` is the paper's best configuration: dynamic
/// batching, specialization, maximal fusion, persistence, dense
/// intermediate indexing, Appendix-B leaf checks and dependence-aware
/// barriers.
#[derive(Debug, Clone)]
pub struct RaSchedule {
    /// `dynamic_batch(rnn)`: process height wavefronts instead of single
    /// nodes.
    pub dynamic_batch: bool,
    /// `specialize_if_else(body)`: split leaf/internal loop nests instead
    /// of a conditional operator.
    pub specialize: bool,
    /// Kernel fusion mode.
    pub fusion: FusionMode,
    /// Model persistence: keep parameters in on-chip memory across batches.
    pub persist: bool,
    /// Recursion unrolling depth (trees/sequences only).
    pub unroll: Option<usize>,
    /// With unrolling: schedule one node per thread block so stage
    /// boundaries inside a super wave need only block-local synchronization
    /// (the TreeRNN schedule of §7.4) instead of global barriers.
    pub unroll_block_local: bool,
    /// Recursive refactoring: the op at which the recursion backedge is
    /// moved (Fig. 4). Ops downstream of this one execute in the consumer's
    /// wave.
    pub refactor_split: Option<TensorId>,
    /// Dense (iteration-space) indexing for same-wave intermediates (Fig. 5).
    pub dense_intermediates: bool,
    /// Leaf-check lowering.
    pub leaf_check: LeafCheckMode,
    /// Barrier-insertion mode.
    pub barrier: BarrierMode,
    /// Loop peeling factor for variable-bound loops (Appendix A.5).
    pub peel: Option<usize>,
    /// Nonlinearity implementation for generated code.
    pub nonlinearity: NonlinearityMode,
}

impl Default for RaSchedule {
    fn default() -> Self {
        RaSchedule {
            dynamic_batch: true,
            specialize: true,
            fusion: FusionMode::Maximal,
            persist: true,
            unroll: None,
            unroll_block_local: false,
            refactor_split: None,
            dense_intermediates: true,
            leaf_check: LeafCheckMode::Numbering,
            barrier: BarrierMode::DependenceAware,
            peel: None,
            nonlinearity: NonlinearityMode::Exact,
        }
    }
}

impl RaSchedule {
    /// The unoptimized starting point of Fig. 10a: no fusion, no
    /// specialization, no persistence (dynamic batching stays on — every
    /// framework compared in §7.3 batches).
    pub fn unoptimized() -> Self {
        RaSchedule {
            specialize: false,
            fusion: FusionMode::None,
            persist: false,
            dense_intermediates: false,
            ..RaSchedule::default()
        }
    }
}

/// Per-op analysis results used by lowering and the device model.
#[derive(Debug, Clone)]
pub struct GraphAnalysis {
    /// For each op: its reduction level. Level 0 = inputs/placeholders;
    /// an op's level is the max of its operand levels, plus one for each
    /// reduction over a same-wave operand. The maximum level over the
    /// recursion body is the number of barrier-separated segments a fused
    /// persistent kernel needs per wavefront (§7.4).
    pub level: Vec<u32>,
    /// Ops belonging to any recursion body cone (computed per node).
    pub in_recursion_body: Vec<bool>,
    /// Maximum level over recursion-body ops (≥ 1 when any exist).
    pub sync_depth: u32,
}

/// Computes reduction levels and recursion-body membership.
pub fn analyze(graph: &RaGraph) -> GraphAnalysis {
    let n = graph.len();
    let mut level = vec![0u32; n];
    for (i, op) in graph.ops().iter().enumerate() {
        level[i] = match &op.kind {
            RaOpKind::Input | RaOpKind::Placeholder => 0,
            RaOpKind::IfThenElse { then, otherwise } => {
                level[then.0 as usize].max(level[otherwise.0 as usize])
            }
            RaOpKind::Recursion { body, .. } => level[body.0 as usize],
            RaOpKind::Compute { body, .. } => compute_level(body, &level, false),
        };
    }
    // Recursion-body membership: ops on a path from a placeholder-tied body
    // back to inputs/placeholders, i.e. everything a recursion body reads
    // transitively (excluding inputs/placeholders themselves).
    let mut in_body = vec![false; n];
    for op in graph.ops() {
        if let RaOpKind::Recursion { body, .. } = op.kind {
            mark_cone(graph, body, &mut in_body);
        }
    }
    let sync_depth = graph
        .ops()
        .iter()
        .enumerate()
        .filter(|(i, _)| in_body[*i])
        .map(|(i, _)| level[i])
        .max()
        .unwrap_or(0)
        .max(1);
    GraphAnalysis {
        level,
        in_recursion_body: in_body,
        sync_depth,
    }
}

fn compute_level(e: &ValExpr, level: &[u32], inside_reduction: bool) -> u32 {
    match e {
        ValExpr::Const(_) => 0,
        ValExpr::Load { tensor, .. } => {
            let l = level[tensor.0 as usize];
            // Reducing over a same-wave tensor (level >= 1) requires that
            // tensor to be globally complete: one extra barrier level.
            // Reducing over level-0 data (previous waves / inputs) is
            // covered by the wave-entry barrier.
            if inside_reduction {
                l + 1
            } else {
                l
            }
        }
        ValExpr::Unary(_, a) => compute_level(a, level, inside_reduction),
        ValExpr::Bin(_, a, b) => {
            compute_level(a, level, inside_reduction).max(compute_level(b, level, inside_reduction))
        }
        ValExpr::Sum { body, .. } => compute_level(body, level, true).max(1),
        ValExpr::Select {
            then, otherwise, ..
        } => compute_level(then, level, inside_reduction).max(compute_level(
            otherwise,
            level,
            inside_reduction,
        )),
    }
}

fn mark_cone(graph: &RaGraph, start: TensorId, marked: &mut [bool]) {
    let mut stack = vec![start];
    while let Some(t) = stack.pop() {
        let idx = t.0 as usize;
        if marked[idx] {
            continue;
        }
        match graph.ops()[idx].kind {
            RaOpKind::Input | RaOpKind::Placeholder => continue,
            _ => {}
        }
        marked[idx] = true;
        stack.extend(graph.reads_of(t));
    }
}

/// Analysis of a recursive-refactoring request (Fig. 4).
///
/// Splitting at op `s` moves `s` and its transitive consumers inside the
/// recursion body (the `A2` set) across the backedge: they execute in the
/// consumer's wave. The analysis reports the resulting barrier depth and
/// the producer outputs that must newly be materialized to global memory
/// (they now cross a wave boundary).
#[derive(Debug, Clone)]
pub struct RefactorAnalysis {
    /// Barrier-separated segments per wave without refactoring.
    pub depth_before: u32,
    /// Barrier-separated segments per wave with refactoring.
    pub depth_after: u32,
    /// Ops in the moved (`A2`) set.
    pub moved: Vec<TensorId>,
    /// A1 outputs consumed by A2: newly cross-wave, so they are
    /// materialized to global memory instead of staying on-chip.
    pub crossing_tensors: Vec<TensorId>,
}

/// Analyzes a refactor split.
///
/// # Errors
///
/// Returns [`RaError::BadRefactorSplit`] if `split` is not a
/// recursion-body compute/conditional op.
pub fn analyze_refactor(graph: &RaGraph, split: TensorId) -> Result<RefactorAnalysis, RaError> {
    let base = analyze(graph);
    if split.0 as usize >= graph.len() || !base.in_recursion_body[split.0 as usize] {
        return Err(RaError::BadRefactorSplit(split));
    }
    // A2 = split ∪ transitive consumers within the body.
    let n = graph.len();
    let mut moved = vec![false; n];
    moved[split.0 as usize] = true;
    for i in 0..n {
        if base.in_recursion_body[i] && !moved[i] {
            let reads = graph.reads_of(TensorId(i as u32));
            if reads.iter().any(|r| moved[r.0 as usize]) {
                moved[i] = true;
            }
        }
    }
    // Recompute levels treating A1 outputs read by A2 as level 0 (they are
    // previous-wave data after the move).
    let mut level = vec![0u32; n];
    for (i, op) in graph.ops().iter().enumerate() {
        let eff_level_of = |t: TensorId, lv: &[u32]| -> u32 {
            if moved[i] && !moved[t.0 as usize] {
                0 // A2 reading A1: prior wave after refactoring
            } else {
                lv[t.0 as usize]
            }
        };
        level[i] = match &op.kind {
            RaOpKind::Input | RaOpKind::Placeholder => 0,
            RaOpKind::IfThenElse { then, otherwise } => {
                eff_level_of(*then, &level).max(eff_level_of(*otherwise, &level))
            }
            RaOpKind::Recursion { body, .. } => level[body.0 as usize],
            RaOpKind::Compute { body, .. } => {
                // Evaluate the level with operand levels adjusted for the
                // move: A1 outputs read by A2 count as prior-wave data.
                let mut eff = level.clone();
                for t in graph.reads_of(TensorId(i as u32)) {
                    eff[t.0 as usize] = eff_level_of(t, &level);
                }
                compute_level(body, &eff, false)
            }
        };
    }
    let depth_after = graph
        .ops()
        .iter()
        .enumerate()
        .filter(|(i, _)| base.in_recursion_body[*i])
        .map(|(i, _)| level[i])
        .max()
        .unwrap_or(0)
        .max(1);
    // Crossing tensors: A1 outputs consumed by moved *compute* ops — the
    // data that must be materialized to global memory because it now
    // crosses a wave boundary. Reads by conditional/recursion bookkeeping
    // ops (e.g. the leaf branch, which the leaf kernel handles) don't move
    // data.
    let crossing: Vec<TensorId> = (0..n)
        .filter(|&i| {
            base.in_recursion_body[i]
                && !moved[i]
                && (0..n).any(|j| {
                    moved[j]
                        && matches!(graph.ops()[j].kind, RaOpKind::Compute { .. })
                        && graph
                            .reads_of(TensorId(j as u32))
                            .contains(&TensorId(i as u32))
                })
        })
        .map(|i| TensorId(i as u32))
        .collect();
    Ok(RefactorAnalysis {
        depth_before: base.sync_depth,
        depth_after,
        moved: (0..n)
            .filter(|&i| moved[i])
            .map(|i| TensorId(i as u32))
            .collect(),
        crossing_tensors: crossing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1 / Listing 1 model.
    fn tree_rnn(h: usize) -> (RaGraph, RaTensor) {
        let mut g = RaGraph::new();
        let emb = g.input("Emb", &[100, h]);
        let ph = g.placeholder("rnn_ph", &[h]);
        let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
        let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
        let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
        let rec = g.compute("rec", &[h], |c| {
            c.read(lh, &[c.node(), c.axis(0)])
                .add(c.read(rh, &[c.node(), c.axis(0)]))
                .tanh()
        });
        let body = g.if_then_else("body", leaf, rec).unwrap();
        let rnn = g.recursion(ph, body).unwrap();
        g.mark_output(rnn);
        (g, rnn)
    }

    /// A GRU-like model with two chained reductions per node.
    fn chained_matvec(h: usize) -> RaGraph {
        let mut g = RaGraph::new();
        let u = g.input("U", &[h, h]);
        let uh = g.input("Uh", &[h, h]);
        let ph = g.placeholder("h_ph", &[h]);
        let hsum = g.compute("hsum", &[h], |c| {
            c.read(ph, &[c.node().child(0), c.axis(0)])
                .add(c.read(ph, &[c.node().child(1), c.axis(0)]))
        });
        let r = g.compute("r", &[h], |c| {
            let i = c.axis(0);
            let node = c.node();
            let red = c.sum(h, |c, k| {
                c.read(u, &[i.clone(), k.clone()])
                    .mul(c.read(hsum, &[node.clone(), k]))
            });
            red.sigmoid()
        });
        let hp = g.compute("hp", &[h], |c| {
            let i = c.axis(0);
            let node = c.node();
            let red = c.sum(h, |c, k| {
                let rk = c.read(r, &[node.clone(), k.clone()]);
                let hk = c.read(hsum, &[node.clone(), k.clone()]);
                c.read(uh, &[i.clone(), k]).mul(rk.mul(hk))
            });
            red.tanh()
        });
        let zero = g.compute("zero", &[h], |_| ValExpr::Const(0.0));
        let body = g.if_then_else("body", zero, hp).unwrap();
        let out = g.recursion(ph, body).unwrap();
        g.mark_output(out);
        g
    }

    #[test]
    fn listing1_builds_and_validates() {
        let (g, _) = tree_rnn(16);
        assert!(g.validate().is_ok());
        assert_eq!(g.outputs().len(), 1);
    }

    #[test]
    fn unbound_placeholder_rejected() {
        let mut g = RaGraph::new();
        let ph = g.placeholder("ph", &[4]);
        let c = g.compute("c", &[4], |c| c.read(ph, &[c.node(), c.axis(0)]));
        g.mark_output(c);
        assert_eq!(g.validate(), Err(RaError::UnboundPlaceholder(ph.id())));
    }

    #[test]
    fn branch_shape_mismatch_rejected() {
        let mut g = RaGraph::new();
        let a = g.compute("a", &[4], |_| ValExpr::Const(1.0));
        let b = g.compute("b", &[8], |_| ValExpr::Const(2.0));
        assert!(matches!(
            g.if_then_else("bad", a, b),
            Err(RaError::BranchShapeMismatch { .. })
        ));
    }

    #[test]
    fn recursion_requires_placeholder() {
        let mut g = RaGraph::new();
        let a = g.compute("a", &[4], |_| ValExpr::Const(1.0));
        let b = g.compute("b", &[4], |_| ValExpr::Const(2.0));
        assert_eq!(
            g.recursion(a, b).unwrap_err(),
            RaError::NotAPlaceholder(a.id())
        );
    }

    #[test]
    fn doubly_bound_placeholder_rejected() {
        let mut g = RaGraph::new();
        let ph = g.placeholder("ph", &[2]);
        let a = g.compute("a", &[2], |_| ValExpr::Const(1.0));
        let r1 = g.recursion(ph, a).unwrap();
        let _r2 = g.recursion(ph, a).unwrap();
        g.mark_output(r1);
        assert_eq!(g.validate(), Err(RaError::DoublyBoundPlaceholder(ph.id())));
    }

    #[test]
    fn elementwise_model_has_sync_depth_one() {
        let (g, _) = tree_rnn(8);
        let a = analyze(&g);
        assert_eq!(
            a.sync_depth, 1,
            "tanh(lh+rh) needs only the wave-entry barrier"
        );
    }

    #[test]
    fn chained_matvecs_have_sync_depth_two() {
        let g = chained_matvec(8);
        let a = analyze(&g);
        assert_eq!(
            a.sync_depth, 2,
            "reduction over a same-wave tensor adds a barrier"
        );
    }

    #[test]
    fn single_matvec_over_placeholder_is_depth_one() {
        let mut g = RaGraph::new();
        let w = g.input("W", &[8, 8]);
        let ph = g.placeholder("ph", &[8]);
        let mv = g.compute("mv", &[8], |c| {
            let i = c.axis(0);
            let node = c.node();
            let red = c.sum(8, |c, k| {
                c.read(w, &[i.clone(), k.clone()])
                    .mul(c.read(ph, &[node.clone().child(0), k]))
            });
            red.tanh()
        });
        let zero = g.compute("zero", &[8], |_| ValExpr::Const(0.0));
        let body = g.if_then_else("body", zero, mv).unwrap();
        let out = g.recursion(ph, body).unwrap();
        g.mark_output(out);
        assert_eq!(analyze(&g).sync_depth, 1);
    }

    #[test]
    fn refactor_reduces_depth_and_reports_crossings() {
        let g = chained_matvec(8);
        // Split at hp: hp (and the ops after it) move across the backedge.
        let hp = TensorId(4); // hsum=3? order: U=0, Uh=1, ph=2, hsum=3, r=4, hp=5
        let hp = TensorId(hp.0 + 1); // index of "hp" op = 5
        let info = analyze_refactor(&g, hp).unwrap();
        assert_eq!(info.depth_before, 2);
        assert_eq!(info.depth_after, 1, "moved reduction reads prior-wave data");
        assert!(
            !info.crossing_tensors.is_empty(),
            "r and hsum must cross the boundary"
        );
    }

    #[test]
    fn refactor_split_must_be_in_body() {
        let (g, _) = tree_rnn(4);
        let bad = TensorId(0); // the embedding input
        assert!(matches!(
            analyze_refactor(&g, bad),
            Err(RaError::BadRefactorSplit(_))
        ));
    }

    #[test]
    fn default_schedule_matches_paper_best() {
        let s = RaSchedule::default();
        assert!(s.dynamic_batch && s.specialize && s.persist && s.dense_intermediates);
        assert_eq!(s.fusion, FusionMode::Maximal);
        let u = RaSchedule::unoptimized();
        assert_eq!(u.fusion, FusionMode::None);
        assert!(!u.specialize && !u.persist);
    }

    #[test]
    fn reads_of_tracks_dependencies() {
        let (g, _) = tree_rnn(4);
        // body (if_then_else) reads leaf and rec.
        let body_id = TensorId(6);
        let reads = g.reads_of(body_id);
        assert_eq!(reads.len(), 2);
    }
}

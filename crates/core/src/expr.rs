//! Scalar expression IR shared by the Recursive API and the ILIR.
//!
//! Two sorts of expressions exist, mirroring a tensor compiler's IR:
//!
//! * [`IdxExpr`] — integer index expressions. These include *uninterpreted
//!   functions* ([`Ufn`]) over loop variables, which is how the ILIR
//!   represents indirect memory accesses like `left[node]` or
//!   `batch_begin[b]` (§5.1 of the paper, following the Sparse Polyhedral
//!   Framework).
//! * [`ValExpr`] — `f32` value expressions: tensor loads, arithmetic,
//!   nonlinearities and bounded reductions (`sum`), plus a conditional
//!   [`select`](ValExpr::Select) used to express the conditional operator
//!   (§5.2).
//!
//! Expressions are evaluated by the backend executor against an
//! environment binding loop variables and the linearized data-structure
//! arrays.

use std::fmt;

/// A loop or let-bound integer variable.
///
/// Variables are compared by identity (`id`); the name is carried only for
/// diagnostics and printed IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    id: u32,
}

impl Var {
    /// Creates a variable with an explicit id. Prefer [`VarGen::fresh`].
    pub fn from_raw(id: u32) -> Self {
        Var { id }
    }

    /// The raw id.
    pub fn id(self) -> u32 {
        self.id
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.id)
    }
}

/// Generates fresh [`Var`]s with unique ids.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u32,
    names: Vec<String>,
}

impl VarGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        VarGen::default()
    }

    /// Returns a fresh variable carrying `name` for diagnostics.
    pub fn fresh(&mut self, name: &str) -> Var {
        let v = Var { id: self.next };
        self.next += 1;
        self.names.push(name.to_string());
        v
    }

    /// The diagnostic name of `v`, if it was produced by this generator.
    pub fn name(&self, v: Var) -> &str {
        self.names
            .get(v.id as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

/// Identifier of a tensor within a program (RA graph or ILIR program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub u32);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The uninterpreted functions the ILIR may apply to index expressions.
///
/// Cortex represents data-structure accesses as uninterpreted functions of
/// loop variables (§5.1). The set is closed: each corresponds to one of the
/// arrays the data-structure linearizer produces, which keeps both the
/// executor and the [`prover`](crate::prover) aware of their semantics
/// (e.g. `BatchBegin` is monotonically non-decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ufn {
    /// `child_k[n]`: the `k`-th child of node `n` (e.g. `left`, `right`).
    Child(u8),
    /// `words[n]`: the word (input feature) id of node `n`.
    Word,
    /// `num_children[n]`.
    NumChildren,
    /// `batch_begin[b]` (Appendix B).
    BatchBegin,
    /// `batch_length[b]` (Appendix B).
    BatchLength,
    /// `post_order[i]`: the `i`-th node in dependence order (used when
    /// dynamic batching is disabled).
    NodeAt,
    /// `roots[i]`: the `i`-th root node (used by the recursive-refactoring
    /// epilogue, which finishes the moved computation for root nodes).
    RootAt,
    /// `stage_length[s]`: nodes in the `s`-th stage of an unrolled
    /// schedule (§3.1 unrolling; stages are not contiguous id ranges, so
    /// unrolled code pays for indirection — see Fig. 11).
    StageLength,
    /// `stage_node[s, i]`: the `i`-th node of unrolled stage `s`.
    StageNodeAt,
}

impl fmt::Display for Ufn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ufn::Child(0) => write!(f, "left"),
            Ufn::Child(1) => write!(f, "right"),
            Ufn::Child(k) => write!(f, "child{k}"),
            Ufn::Word => write!(f, "words"),
            Ufn::NumChildren => write!(f, "num_children"),
            Ufn::BatchBegin => write!(f, "batch_begin"),
            Ufn::BatchLength => write!(f, "batch_length"),
            Ufn::NodeAt => write!(f, "post_order"),
            Ufn::RootAt => write!(f, "roots"),
            Ufn::StageLength => write!(f, "stage_length"),
            Ufn::StageNodeAt => write!(f, "stage_node"),
        }
    }
}

/// Runtime scalars describing the linearized input (known only at runtime,
/// constant within one inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtScalar {
    /// Total number of nodes (`N`).
    NumNodes,
    /// Number of internal nodes; also the id of the first leaf (App. B).
    NumInternal,
    /// Number of leaves.
    NumLeaves,
    /// Number of internal batches.
    NumInternalBatches,
    /// First node id of the leaf batch.
    LeafBegin,
    /// Longest internal batch (used to size dense scratchpad tensors).
    MaxBatchLen,
    /// Number of root nodes.
    NumRoots,
    /// Number of stages in an unrolled schedule.
    NumStages,
}

impl fmt::Display for RtScalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RtScalar::NumNodes => "num_nodes",
            RtScalar::NumInternal => "num_internal",
            RtScalar::NumLeaves => "num_leaves",
            RtScalar::NumInternalBatches => "num_internal_batches",
            RtScalar::LeafBegin => "leaf_begin",
            RtScalar::MaxBatchLen => "max_batch_len",
            RtScalar::NumRoots => "num_roots",
            RtScalar::NumStages => "num_stages",
        };
        f.write_str(s)
    }
}

/// Integer binary operators for index expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdxBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Euclidean (floor) division.
    Div,
    /// Remainder.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// An integer index expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IdxExpr {
    /// Integer literal.
    Const(i64),
    /// Loop or let-bound variable.
    Var(Var),
    /// Runtime scalar (input-dependent constant).
    Rt(RtScalar),
    /// Uninterpreted function application (indirect access).
    Ufn(Ufn, Vec<IdxExpr>),
    /// Binary arithmetic.
    Bin(IdxBinOp, Box<IdxExpr>, Box<IdxExpr>),
}

impl IdxExpr {
    /// Variable reference.
    pub fn var(v: Var) -> Self {
        IdxExpr::Var(v)
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: IdxExpr) -> Self {
        IdxExpr::Bin(IdxBinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: IdxExpr) -> Self {
        IdxExpr::Bin(IdxBinOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: IdxExpr) -> Self {
        IdxExpr::Bin(IdxBinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `min(self, other)`.
    pub fn min(self, other: IdxExpr) -> Self {
        IdxExpr::Bin(IdxBinOp::Min, Box::new(self), Box::new(other))
    }

    /// `max(self, other)`.
    pub fn max(self, other: IdxExpr) -> Self {
        IdxExpr::Bin(IdxBinOp::Max, Box::new(self), Box::new(other))
    }

    /// The `k`-th child of this node id.
    pub fn child(self, k: u8) -> Self {
        IdxExpr::Ufn(Ufn::Child(k), vec![self])
    }

    /// The word id of this node.
    pub fn word(self) -> Self {
        IdxExpr::Ufn(Ufn::Word, vec![self])
    }

    /// Collects the free variables into `out`.
    pub fn free_vars(&self, out: &mut Vec<Var>) {
        match self {
            IdxExpr::Const(_) | IdxExpr::Rt(_) => {}
            IdxExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            IdxExpr::Ufn(_, args) => args.iter().for_each(|a| a.free_vars(out)),
            IdxExpr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }

    /// Substitutes `var := replacement` throughout.
    pub fn substitute(&self, var: Var, replacement: &IdxExpr) -> IdxExpr {
        match self {
            IdxExpr::Var(v) if *v == var => replacement.clone(),
            IdxExpr::Const(_) | IdxExpr::Var(_) | IdxExpr::Rt(_) => self.clone(),
            IdxExpr::Ufn(f, args) => IdxExpr::Ufn(
                *f,
                args.iter()
                    .map(|a| a.substitute(var, replacement))
                    .collect(),
            ),
            IdxExpr::Bin(op, a, b) => IdxExpr::Bin(
                *op,
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
        }
    }
}

impl From<i64> for IdxExpr {
    fn from(c: i64) -> Self {
        IdxExpr::Const(c)
    }
}

impl From<Var> for IdxExpr {
    fn from(v: Var) -> Self {
        IdxExpr::Var(v)
    }
}

impl From<RtScalar> for IdxExpr {
    fn from(r: RtScalar) -> Self {
        IdxExpr::Rt(r)
    }
}

impl fmt::Display for IdxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxExpr::Const(c) => write!(f, "{c}"),
            IdxExpr::Var(v) => write!(f, "{v}"),
            IdxExpr::Rt(r) => write!(f, "{r}"),
            IdxExpr::Ufn(u, args) => {
                write!(f, "{u}[")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            IdxExpr::Bin(op, a, b) => {
                let sym = match op {
                    IdxBinOp::Add => "+",
                    IdxBinOp::Sub => "-",
                    IdxBinOp::Mul => "*",
                    IdxBinOp::Div => "/",
                    IdxBinOp::Rem => "%",
                    IdxBinOp::Min => return write!(f, "min({a}, {b})"),
                    IdxBinOp::Max => return write!(f, "max({a}, {b})"),
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

/// Comparison operators for boolean conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A boolean condition over index expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// Integer comparison.
    Cmp(CmpOp, IdxExpr, IdxExpr),
    /// `isleaf(n)` — abstract leaf predicate. The compiler lowers this to
    /// either the Appendix-B numbering comparison (`n >= num_internal`) or
    /// a `num_children[n] == 0` load, depending on schedule options.
    IsLeaf(IdxExpr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Convenience: `a < b`.
    pub fn lt(a: impl Into<IdxExpr>, b: impl Into<IdxExpr>) -> Self {
        BoolExpr::Cmp(CmpOp::Lt, a.into(), b.into())
    }

    /// Convenience: `a >= b`.
    pub fn ge(a: impl Into<IdxExpr>, b: impl Into<IdxExpr>) -> Self {
        BoolExpr::Cmp(CmpOp::Ge, a.into(), b.into())
    }

    /// Substitutes a variable in all contained index expressions.
    pub fn substitute(&self, var: Var, replacement: &IdxExpr) -> BoolExpr {
        match self {
            BoolExpr::Cmp(op, a, b) => BoolExpr::Cmp(
                *op,
                a.substitute(var, replacement),
                b.substitute(var, replacement),
            ),
            BoolExpr::IsLeaf(e) => BoolExpr::IsLeaf(e.substitute(var, replacement)),
            BoolExpr::And(a, b) => BoolExpr::And(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            BoolExpr::Or(a, b) => BoolExpr::Or(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            BoolExpr::Not(a) => BoolExpr::Not(Box::new(a.substitute(var, replacement))),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {sym} {b})")
            }
            BoolExpr::IsLeaf(e) => write!(f, "isleaf({e})"),
            BoolExpr::And(a, b) => write!(f, "({a} && {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} || {b})"),
            BoolExpr::Not(a) => write!(f, "!{a}"),
        }
    }
}

/// Unary value operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Natural exponential.
    Exp,
}

/// Binary value operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// An `f32` value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ValExpr {
    /// Floating-point literal.
    Const(f32),
    /// Tensor load at the given indices.
    Load {
        /// The tensor being read.
        tensor: TensorId,
        /// One index expression per tensor dimension.
        index: Vec<IdxExpr>,
    },
    /// Unary operator application.
    Unary(UnaryOp, Box<ValExpr>),
    /// Binary operator application.
    Bin(BinOp, Box<ValExpr>, Box<ValExpr>),
    /// Bounded reduction: `sum over var in 0..extent of body`.
    Sum {
        /// Reduction variable.
        var: Var,
        /// Reduction extent (evaluated once per surrounding iteration).
        extent: IdxExpr,
        /// Summand.
        body: Box<ValExpr>,
    },
    /// Conditional value: the expression form of the conditional operator.
    Select {
        /// Condition over index variables.
        cond: BoolExpr,
        /// Value when true.
        then: Box<ValExpr>,
        /// Value when false.
        otherwise: Box<ValExpr>,
    },
}

impl ValExpr {
    /// Tensor load.
    pub fn load(tensor: TensorId, index: Vec<IdxExpr>) -> Self {
        ValExpr::Load { tensor, index }
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: ValExpr) -> Self {
        ValExpr::Bin(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: ValExpr) -> Self {
        ValExpr::Bin(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: ValExpr) -> Self {
        ValExpr::Bin(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `tanh(self)`.
    pub fn tanh(self) -> Self {
        ValExpr::Unary(UnaryOp::Tanh, Box::new(self))
    }

    /// `sigmoid(self)`.
    pub fn sigmoid(self) -> Self {
        ValExpr::Unary(UnaryOp::Sigmoid, Box::new(self))
    }

    /// Substitutes an index variable throughout.
    pub fn substitute(&self, var: Var, replacement: &IdxExpr) -> ValExpr {
        match self {
            ValExpr::Const(_) => self.clone(),
            ValExpr::Load { tensor, index } => ValExpr::Load {
                tensor: *tensor,
                index: index
                    .iter()
                    .map(|i| i.substitute(var, replacement))
                    .collect(),
            },
            ValExpr::Unary(op, a) => ValExpr::Unary(*op, Box::new(a.substitute(var, replacement))),
            ValExpr::Bin(op, a, b) => ValExpr::Bin(
                *op,
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ValExpr::Sum {
                var: rv,
                extent,
                body,
            } => {
                // Reduction variables are always fresh; shadowing cannot occur.
                debug_assert_ne!(*rv, var, "substituting a bound reduction variable");
                ValExpr::Sum {
                    var: *rv,
                    extent: extent.substitute(var, replacement),
                    body: Box::new(body.substitute(var, replacement)),
                }
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => ValExpr::Select {
                cond: cond.substitute(var, replacement),
                then: Box::new(then.substitute(var, replacement)),
                otherwise: Box::new(otherwise.substitute(var, replacement)),
            },
        }
    }

    /// Replaces every load of `from` with a load of `to` (same indices).
    pub fn retarget_loads(&self, from: TensorId, to: TensorId) -> ValExpr {
        self.transform_loads(&mut |tensor, index| {
            if tensor == from {
                ValExpr::Load { tensor: to, index }
            } else {
                ValExpr::Load { tensor, index }
            }
        })
    }

    /// Rewrites every load via `f` (receives tensor and index vector).
    pub fn transform_loads(
        &self,
        f: &mut impl FnMut(TensorId, Vec<IdxExpr>) -> ValExpr,
    ) -> ValExpr {
        match self {
            ValExpr::Const(_) => self.clone(),
            ValExpr::Load { tensor, index } => f(*tensor, index.clone()),
            ValExpr::Unary(op, a) => ValExpr::Unary(*op, Box::new(a.transform_loads(f))),
            ValExpr::Bin(op, a, b) => ValExpr::Bin(
                *op,
                Box::new(a.transform_loads(f)),
                Box::new(b.transform_loads(f)),
            ),
            ValExpr::Sum { var, extent, body } => ValExpr::Sum {
                var: *var,
                extent: extent.clone(),
                body: Box::new(body.transform_loads(f)),
            },
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => ValExpr::Select {
                cond: cond.clone(),
                then: Box::new(then.transform_loads(f)),
                otherwise: Box::new(otherwise.transform_loads(f)),
            },
        }
    }

    /// Collects the set of tensors this expression loads from.
    pub fn loaded_tensors(&self, out: &mut Vec<TensorId>) {
        match self {
            ValExpr::Const(_) => {}
            ValExpr::Load { tensor, .. } => {
                if !out.contains(tensor) {
                    out.push(*tensor);
                }
            }
            ValExpr::Unary(_, a) => a.loaded_tensors(out),
            ValExpr::Bin(_, a, b) => {
                a.loaded_tensors(out);
                b.loaded_tensors(out);
            }
            ValExpr::Sum { body, .. } => body.loaded_tensors(out),
            ValExpr::Select {
                then, otherwise, ..
            } => {
                then.loaded_tensors(out);
                otherwise.loaded_tensors(out);
            }
        }
    }

    /// Whether the expression contains a [`ValExpr::Sum`] reduction
    /// (loosely: "is a matvec-like op"); reductions are what force
    /// cross-thread synchronization in persistent kernels (§7.4).
    pub fn contains_reduction(&self) -> bool {
        match self {
            ValExpr::Const(_) | ValExpr::Load { .. } => false,
            ValExpr::Unary(_, a) => a.contains_reduction(),
            ValExpr::Bin(_, a, b) => a.contains_reduction() || b.contains_reduction(),
            ValExpr::Sum { .. } => true,
            ValExpr::Select {
                then, otherwise, ..
            } => then.contains_reduction() || otherwise.contains_reduction(),
        }
    }

    /// Counts scalar floating-point operations per evaluation, with
    /// reduction extents resolved by `extent_of`. Used by the device model
    /// to account flops.
    pub fn flops(&self, extent_of: &impl Fn(&IdxExpr) -> u64) -> u64 {
        match self {
            ValExpr::Const(_) | ValExpr::Load { .. } => 0,
            ValExpr::Unary(_, a) => 1 + a.flops(extent_of),
            ValExpr::Bin(_, a, b) => 1 + a.flops(extent_of) + b.flops(extent_of),
            ValExpr::Sum { extent, body, .. } => {
                let n = extent_of(extent);
                // body flops + one add per reduction step.
                n * (body.flops(extent_of) + 1)
            }
            ValExpr::Select {
                then, otherwise, ..
            } => 1 + then.flops(extent_of).max(otherwise.flops(extent_of)),
        }
    }
}

impl fmt::Display for ValExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValExpr::Const(c) => write!(f, "{c}"),
            ValExpr::Load { tensor, index } => {
                write!(f, "{tensor}[")?;
                for (i, e) in index.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            ValExpr::Unary(op, a) => {
                let name = match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Tanh => "tanh",
                    UnaryOp::Sigmoid => "sigmoid",
                    UnaryOp::Relu => "relu",
                    UnaryOp::Exp => "exp",
                };
                write!(f, "{name}({a})")
            }
            ValExpr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Max => return write!(f, "max({a}, {b})"),
                    BinOp::Min => return write!(f, "min({a}, {b})"),
                };
                write!(f, "({a} {sym} {b})")
            }
            ValExpr::Sum { var, extent, body } => {
                write!(f, "sum({var} < {extent}) {body}")
            }
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => {
                write!(f, "select({cond}, {then}, {otherwise})")
            }
        }
    }
}

impl From<f32> for ValExpr {
    fn from(c: f32) -> Self {
        ValExpr::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vg() -> VarGen {
        VarGen::new()
    }

    #[test]
    fn var_gen_produces_unique_named_vars() {
        let mut g = vg();
        let a = g.fresh("n");
        let b = g.fresh("i");
        assert_ne!(a, b);
        assert_eq!(g.name(a), "n");
        assert_eq!(g.name(b), "i");
    }

    #[test]
    fn idx_substitution() {
        let mut g = vg();
        let n = g.fresh("n");
        let e = IdxExpr::var(n).child(0).add(IdxExpr::Const(1));
        let s = e.substitute(n, &IdxExpr::Const(5));
        assert_eq!(
            s,
            IdxExpr::Ufn(Ufn::Child(0), vec![IdxExpr::Const(5)]).add(IdxExpr::Const(1))
        );
    }

    #[test]
    fn free_vars_deduplicated() {
        let mut g = vg();
        let n = g.fresh("n");
        let e = IdxExpr::var(n).add(IdxExpr::var(n).mul(IdxExpr::Const(2)));
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec![n]);
    }

    #[test]
    fn val_substitution_reaches_loads_and_selects() {
        let mut g = vg();
        let n = g.fresh("n");
        let t = TensorId(0);
        let e = ValExpr::Select {
            cond: BoolExpr::IsLeaf(IdxExpr::var(n)),
            then: Box::new(ValExpr::load(t, vec![IdxExpr::var(n)])),
            otherwise: Box::new(ValExpr::load(t, vec![IdxExpr::var(n).child(1)])),
        };
        let s = e.substitute(n, &IdxExpr::Const(3));
        match s {
            ValExpr::Select { cond, then, .. } => {
                assert_eq!(cond, BoolExpr::IsLeaf(IdxExpr::Const(3)));
                assert_eq!(*then, ValExpr::load(t, vec![IdxExpr::Const(3)]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn retarget_loads_only_hits_target() {
        let a = TensorId(0);
        let b = TensorId(1);
        let c = TensorId(2);
        let e = ValExpr::load(a, vec![IdxExpr::Const(0)])
            .add(ValExpr::load(b, vec![IdxExpr::Const(0)]));
        let r = e.retarget_loads(a, c);
        let mut loaded = Vec::new();
        r.loaded_tensors(&mut loaded);
        assert!(loaded.contains(&c) && loaded.contains(&b) && !loaded.contains(&a));
    }

    #[test]
    fn contains_reduction_detects_sum() {
        let mut g = vg();
        let k = g.fresh("k");
        let t = TensorId(0);
        let matvec = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(4),
            body: Box::new(ValExpr::load(t, vec![IdxExpr::var(k)])),
        };
        assert!(matvec.contains_reduction());
        assert!(!ValExpr::Const(1.0)
            .add(ValExpr::Const(2.0))
            .contains_reduction());
    }

    #[test]
    fn flops_accounting_matvec() {
        let mut g = vg();
        let k = g.fresh("k");
        let (w, x) = (TensorId(0), TensorId(1));
        // sum_k w[k] * x[k]: per step one mul + one add = 2 flops; extent 256.
        let e = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(256),
            body: Box::new(
                ValExpr::load(w, vec![IdxExpr::var(k)])
                    .mul(ValExpr::load(x, vec![IdxExpr::var(k)])),
            ),
        };
        let flops = e.flops(&|e| match e {
            IdxExpr::Const(c) => *c as u64,
            _ => 0,
        });
        assert_eq!(flops, 512);
    }

    #[test]
    fn display_is_readable() {
        let mut g = vg();
        let n = g.fresh("n");
        let e = ValExpr::load(
            TensorId(3),
            vec![IdxExpr::var(n).child(0), IdxExpr::Const(2)],
        )
        .tanh();
        assert_eq!(format!("{e}"), "tanh(t3[left[v0], 2])");
        let b = BoolExpr::IsLeaf(IdxExpr::var(n));
        assert_eq!(format!("{b}"), "isleaf(v0)");
    }
}

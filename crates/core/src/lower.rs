//! RA lowering: recursion to loops (§4 of the paper).
//!
//! Lowering turns a recursive RA computation plus an [`RaSchedule`] into an
//! [`IlirProgram`] that iterates over the arrays produced by the
//! data-structure linearizer:
//!
//! * temporary tensors are made explicit (§4.1) — every materialized
//!   operator gets storage, per-node in global memory or per-batch in
//!   scratchpad (Fig. 5 dense indexing),
//! * with **specialization**, leaf and internal nodes get separate loop
//!   nests; without it, a single loop nest carries the conditional
//!   operator (§5.2),
//! * with **dynamic batching**, loops iterate over height wavefronts via
//!   `batch_begin`/`batch_length` (Appendix B); without it, over nodes in
//!   dependence order,
//! * **computation hoisting and constant propagation** (§4.3) detect leaf
//!   cases that are node-independent (hoisted to a single evaluation) or
//!   the zero tensor (eliminated entirely),
//! * operators whose values do not depend on recursive results are hoisted
//!   into a *precompute* kernel executed once before the waves — this is
//!   how the input matrix–vector products of §7.1 run "at the beginning of
//!   the execution",
//! * **kernel fusion** ([`FusionMode::Maximal`]) emits one persistent
//!   kernel iterating all waves with barriers between dependence levels;
//!   [`FusionMode::None`] emits one kernel per operator per wave (the
//!   vendor-library execution model),
//! * **recursive refactoring** (Fig. 4) moves the operators downstream of
//!   the split across the backedge: they execute for a node's children
//!   inside the node's wave, with an epilogue kernel finishing the roots.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::{BoolExpr, CmpOp, IdxExpr, RtScalar, TensorId, Ufn, ValExpr, Var};
use crate::ilir::{
    DimExtent, DimName, IlirProgram, Kernel, LaunchPattern, LoopKind, ProgramMeta, Stmt,
    StorageClass, TensorDecl,
};
use crate::ra::{
    analyze, analyze_refactor, FusionMode, LeafCheckMode, RaError, RaGraph, RaOpKind, RaSchedule,
    RefactorAnalysis,
};
use crate::simplify::{is_zero, simplify_val};

/// Compile-time information about the input data structure (§3: "the user
/// also needs to provide basic information about the input data structure
/// such as the maximum number of children per node").
#[derive(Debug, Clone, Copy)]
pub struct StructureInfo {
    /// Maximum number of children per node.
    pub max_children: usize,
}

/// Errors produced by lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The RA graph failed validation.
    Ra(RaError),
    /// The schedule combination is not supported.
    UnsupportedSchedule(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Ra(e) => write!(f, "invalid RA graph: {e}"),
            LowerError::UnsupportedSchedule(msg) => write!(f, "unsupported schedule: {msg}"),
        }
    }
}

impl Error for LowerError {}

impl From<RaError> for LowerError {
    fn from(e: RaError) -> Self {
        LowerError::Ra(e)
    }
}

/// Which nodes an operator is computed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Guard {
    /// Leaf nodes only (the `then` cone of the conditional).
    LeafOnly,
    /// Internal nodes only (the `otherwise` cone).
    InternalOnly,
    /// Every node (shared by both branches, e.g. input transforms).
    All,
}

/// Base id for variables introduced during lowering; far above anything a
/// model's RA graph allocates, so identities never collide.
const LOWERING_VAR_BASE: u32 = 1 << 24;

struct LowerCtx<'g> {
    graph: &'g RaGraph,
    schedule: &'g RaSchedule,
    info: StructureInfo,
    ph_to_rec: HashMap<TensorId, TensorId>,
    /// `(recursion storage, then branch, otherwise branch)` per recursion,
    /// in declaration order.
    recursions: Vec<(TensorId, TensorId, TensorId)>,
    level: Vec<u32>,
    in_body: Vec<bool>,
    depends_ph: Vec<bool>,
    guard: Vec<Guard>,
    inlined: Vec<bool>,
    materialized: Vec<bool>,
    scratch: Vec<bool>,
    moved: Vec<bool>,
    refactor: Option<RefactorAnalysis>,
    resolved: Vec<Option<ValExpr>>,
    next_var: u32,
}

/// Lowers a recursive computation to the ILIR under the given schedule.
///
/// # Errors
///
/// Returns [`LowerError::Ra`] if the graph is invalid (including an invalid
/// refactor split) and [`LowerError::UnsupportedSchedule`] for unsupported
/// schedule combinations: refactoring without maximal fusion, refactoring
/// combined with unrolling, unroll depth < 2, or a conditional operator
/// used anywhere but as a recursion body (the common case §6 implements).
pub fn lower(
    graph: &RaGraph,
    schedule: &RaSchedule,
    info: StructureInfo,
) -> Result<IlirProgram, LowerError> {
    graph.validate()?;
    if schedule.refactor_split.is_some() && schedule.fusion != FusionMode::Maximal {
        return Err(LowerError::UnsupportedSchedule(
            "recursive refactoring requires maximal kernel fusion".to_string(),
        ));
    }
    if schedule.refactor_split.is_some() && schedule.unroll.is_some() {
        return Err(LowerError::UnsupportedSchedule(
            "recursive refactoring and unrolling cannot be combined".to_string(),
        ));
    }
    if let Some(d) = schedule.unroll {
        if d < 2 {
            return Err(LowerError::UnsupportedSchedule(format!(
                "unroll depth must be >= 2, got {d}"
            )));
        }
        if !schedule.dynamic_batch || !schedule.specialize || schedule.fusion != FusionMode::Maximal
        {
            return Err(LowerError::UnsupportedSchedule(
                "unrolling requires dynamic batching, specialization and maximal fusion"
                    .to_string(),
            ));
        }
    }

    let analysis = analyze(graph);
    let refactor = match schedule.refactor_split {
        Some(split) => Some(analyze_refactor(graph, split)?),
        None => None,
    };

    let n = graph.len();
    let mut ctx = LowerCtx {
        graph,
        schedule,
        info,
        ph_to_rec: HashMap::new(),
        recursions: Vec::new(),
        level: analysis.level.clone(),
        in_body: analysis.in_recursion_body.clone(),
        depends_ph: vec![false; n],
        guard: vec![Guard::All; n],
        inlined: vec![false; n],
        materialized: vec![false; n],
        scratch: vec![false; n],
        moved: vec![false; n],
        refactor,
        resolved: vec![None; n],
        next_var: LOWERING_VAR_BASE,
    };
    ctx.classify()?;
    ctx.emit(analysis.sync_depth)
}

impl LowerCtx<'_> {
    fn op_kind(&self, id: TensorId) -> &RaOpKind {
        &self.graph.ops()[id.0 as usize].kind
    }

    fn feature_shape(&self, id: TensorId) -> &[usize] {
        &self.graph.ops()[id.0 as usize].feature_shape
    }

    fn fresh(&mut self) -> Var {
        let v = Var::from_raw(self.next_var);
        self.next_var += 1;
        v
    }

    // ----------------------------------------------------------------
    // Classification
    // ----------------------------------------------------------------

    fn classify(&mut self) -> Result<(), LowerError> {
        let n = self.graph.len();
        for (i, op) in self.graph.ops().iter().enumerate() {
            if let RaOpKind::Recursion { placeholder, body } = op.kind {
                let rec = TensorId(i as u32);
                self.ph_to_rec.insert(placeholder, rec);
                let (then, otherwise) = match *self.op_kind(body) {
                    RaOpKind::IfThenElse { then, otherwise } => (then, otherwise),
                    _ => {
                        return Err(LowerError::UnsupportedSchedule(
                            "recursion bodies must be if_then_else conditionals".to_string(),
                        ))
                    }
                };
                self.recursions.push((rec, then, otherwise));
            }
        }
        // Conditionals may only appear as recursion bodies.
        for (i, op) in self.graph.ops().iter().enumerate() {
            if matches!(op.kind, RaOpKind::IfThenElse { .. }) {
                let id = TensorId(i as u32);
                let consumers = self.consumers_of(id);
                let only_recursions = consumers.iter().all(
                    |c| matches!(self.op_kind(*c), RaOpKind::Recursion { body, .. } if *body == id),
                );
                if !only_recursions || consumers.is_empty() {
                    return Err(LowerError::UnsupportedSchedule(
                        "if_then_else is only supported as a recursion body".to_string(),
                    ));
                }
            }
        }
        // Placeholder dependence, transitively.
        for i in 0..n {
            let id = TensorId(i as u32);
            self.depends_ph[i] = match self.op_kind(id) {
                RaOpKind::Input => false,
                RaOpKind::Placeholder | RaOpKind::Recursion { .. } => true,
                _ => self
                    .graph
                    .reads_of(id)
                    .iter()
                    .any(|r| self.depends_ph[r.0 as usize]),
            };
        }
        // Branch membership.
        let mut in_then = vec![false; n];
        let mut in_else = vec![false; n];
        for (_, then, otherwise) in self.recursions.clone() {
            self.mark_cone(then, &mut in_then);
            self.mark_cone(otherwise, &mut in_else);
        }
        for i in 0..n {
            self.guard[i] = match (in_then[i], in_else[i]) {
                (true, false) => Guard::LeafOnly,
                (false, true) => Guard::InternalOnly,
                _ => Guard::All,
            };
        }
        if let Some(r) = &self.refactor {
            for t in &r.moved {
                self.moved[t.0 as usize] = true;
            }
        }
        let crossing: Vec<TensorId> = self
            .refactor
            .as_ref()
            .map(|r| r.crossing_tensors.clone())
            .unwrap_or_default();
        // Inlining under maximal fusion: elementwise ops, plus recursion
        // branch ops whose only consumer is their conditional (these write
        // straight into the recursion storage — no separate kernel, no
        // separate buffer: the aggressive fusion of Fig. 8).
        for i in 0..n {
            let id = TensorId(i as u32);
            if self.schedule.fusion != FusionMode::Maximal || crossing.contains(&id) {
                continue;
            }
            if self.graph.outputs().contains(&id) {
                continue; // user-visible tensors must materialize
            }
            if let RaOpKind::Compute { body, .. } = self.op_kind(id) {
                let elementwise = !body.contains_reduction();
                let branch_only = self.is_branch_consumed_only_by_conditional(id);
                if elementwise || branch_only {
                    self.inlined[i] = true;
                }
            }
        }
        for i in 0..n {
            if matches!(self.op_kind(TensorId(i as u32)), RaOpKind::Compute { .. }) {
                self.materialized[i] = !self.inlined[i];
            }
        }
        // Scratch eligibility (Fig. 5). Dense iteration-space indexing
        // needs a batch position, so it requires dynamic batching.
        if self.schedule.fusion == FusionMode::Maximal
            && self.schedule.dense_intermediates
            && self.schedule.dynamic_batch
        {
            for i in 0..n {
                let id = TensorId(i as u32);
                if !self.materialized[i]
                    || !self.in_body[i]
                    || !self.depends_ph[i]
                    || self.moved[i]
                    || crossing.contains(&id)
                    || self.graph.outputs().contains(&id)
                {
                    continue;
                }
                let mut eligible = true;
                let mut consumed = false;
                for j in 0..n {
                    let jid = TensorId(j as u32);
                    let reads = self.op_reads_including_inlined(jid);
                    if !reads.contains(&id) {
                        continue;
                    }
                    if self.moved[j] != self.moved[i] {
                        eligible = false; // crosses the refactoring stage
                        continue;
                    }
                    if let RaOpKind::Compute { body, .. } = self.op_kind(jid) {
                        let mut ok = true;
                        let mut c = false;
                        check_loads(body, id, &mut ok, &mut c);
                        // The consumer may see the producer through an
                        // inlined chain; resolve-level checking happens at
                        // emission (debug assert). Here a direct structural
                        // check suffices for direct reads.
                        if c && !ok {
                            eligible = false;
                        }
                        consumed |= c;
                    }
                }
                self.scratch[i] = eligible && consumed;
            }
        }
        Ok(())
    }

    fn consumers_of(&self, id: TensorId) -> Vec<TensorId> {
        (0..self.graph.len() as u32)
            .map(TensorId)
            .filter(|j| self.graph.reads_of(*j).contains(&id))
            .collect()
    }

    fn op_reads_including_inlined(&self, id: TensorId) -> Vec<TensorId> {
        // Direct reads only; inlined chains are checked at emission.
        self.graph.reads_of(id)
    }

    fn is_branch_consumed_only_by_conditional(&self, id: TensorId) -> bool {
        let is_branch = self.recursions.iter().any(|(_, t, o)| *t == id || *o == id);
        if !is_branch {
            return false;
        }
        self.consumers_of(id)
            .iter()
            .all(|c| matches!(self.op_kind(*c), RaOpKind::IfThenElse { .. }))
    }

    fn mark_cone(&self, start: TensorId, marked: &mut [bool]) {
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            let i = t.0 as usize;
            if marked[i] {
                continue;
            }
            match self.op_kind(t) {
                RaOpKind::Input | RaOpKind::Placeholder | RaOpKind::Recursion { .. } => continue,
                _ => {}
            }
            marked[i] = true;
            stack.extend(self.graph.reads_of(t));
        }
    }

    // ----------------------------------------------------------------
    // Body resolution (placeholder retargeting + inlining)
    // ----------------------------------------------------------------

    fn resolve(&mut self, id: TensorId) -> ValExpr {
        if let Some(e) = &self.resolved[id.0 as usize] {
            return e.clone();
        }
        let body = match self.op_kind(id) {
            RaOpKind::Compute { body, .. } => body.clone(),
            _ => unreachable!("resolve() is only called on compute ops"),
        };
        let out = simplify_val(&self.resolve_expr(&body));
        self.resolved[id.0 as usize] = Some(out.clone());
        out
    }

    fn resolve_expr(&mut self, e: &ValExpr) -> ValExpr {
        match e {
            ValExpr::Load { tensor, index } => {
                let index: Vec<IdxExpr> = index.clone();
                if let Some(rec) = self.ph_to_rec.get(tensor) {
                    return ValExpr::Load {
                        tensor: *rec,
                        index,
                    };
                }
                let i = tensor.0 as usize;
                if self.inlined[i] {
                    let (node_var, axes) = match self.op_kind(*tensor) {
                        RaOpKind::Compute { node_var, axes, .. } => (*node_var, axes.clone()),
                        _ => unreachable!("only compute ops are inlined"),
                    };
                    let producer = self.resolve(*tensor);
                    let mut out = producer.substitute(node_var, &index[0]);
                    for (d, ax) in axes.iter().enumerate() {
                        out = out.substitute(*ax, &index[d + 1]);
                    }
                    return out;
                }
                ValExpr::Load {
                    tensor: *tensor,
                    index,
                }
            }
            ValExpr::Const(_) => e.clone(),
            ValExpr::Unary(op, a) => ValExpr::Unary(*op, Box::new(self.resolve_expr(a))),
            ValExpr::Bin(op, a, b) => ValExpr::Bin(
                *op,
                Box::new(self.resolve_expr(a)),
                Box::new(self.resolve_expr(b)),
            ),
            ValExpr::Sum { var, extent, body } => ValExpr::Sum {
                var: *var,
                extent: extent.clone(),
                body: Box::new(self.resolve_expr(body)),
            },
            ValExpr::Select {
                cond,
                then,
                otherwise,
            } => ValExpr::Select {
                cond: cond.clone(),
                then: Box::new(self.resolve_expr(then)),
                otherwise: Box::new(self.resolve_expr(otherwise)),
            },
        }
    }

    // ----------------------------------------------------------------
    // Emission helpers
    // ----------------------------------------------------------------

    fn leaf_check(&self, node: IdxExpr) -> BoolExpr {
        match self.schedule.leaf_check {
            LeafCheckMode::Numbering => {
                BoolExpr::Cmp(CmpOp::Ge, node, IdxExpr::Rt(RtScalar::NumInternal))
            }
            LeafCheckMode::Load => BoolExpr::Cmp(
                CmpOp::Eq,
                IdxExpr::Ufn(Ufn::NumChildren, vec![node]),
                IdxExpr::Const(0),
            ),
        }
    }

    fn rewrite_scratch_indices(&self, e: &ValExpr, node: Var, n_idx: Option<Var>) -> ValExpr {
        let scratch = &self.scratch;
        e.transform_loads(&mut |tensor, mut index| {
            if scratch[tensor.0 as usize] {
                let pos = n_idx.expect("scratch load requires a batch position");
                debug_assert_eq!(
                    index[0],
                    IdxExpr::Var(node),
                    "scratch-eligible tensors are consumed at the consumer's node"
                );
                index[0] = IdxExpr::Var(pos);
            }
            ValExpr::Load { tensor, index }
        })
    }

    /// Stores computing the materialized op `id` at node `node`.
    fn op_stores(&mut self, id: TensorId, node: Var, n_idx: Option<Var>) -> Vec<Stmt> {
        let (node_var, axes) = match self.op_kind(id) {
            RaOpKind::Compute { node_var, axes, .. } => (*node_var, axes.clone()),
            _ => unreachable!("op_stores on non-compute op"),
        };
        let shape = self.feature_shape(id).to_vec();
        let resolved = self.resolve(id);
        let mut value = resolved.substitute(node_var, &IdxExpr::Var(node));
        value = self.rewrite_scratch_indices(&value, node, n_idx);
        let index0 = if self.scratch[id.0 as usize] {
            IdxExpr::Var(n_idx.expect("scratch store requires a batch position"))
        } else {
            IdxExpr::Var(node)
        };
        let mut index = vec![index0];
        index.extend(axes.iter().map(|a| IdxExpr::Var(*a)));
        wrap_feature_loops(
            Stmt::Store {
                tensor: id,
                index,
                value,
            },
            &axes,
            &shape,
        )
    }

    /// Stores writing the `branch` value into recursion storage `rec` at
    /// node `node`.
    fn rec_stores(
        &mut self,
        rec: TensorId,
        branch: TensorId,
        node: Var,
        n_idx: Option<Var>,
    ) -> Vec<Stmt> {
        let shape = self.feature_shape(branch).to_vec();
        let axes: Vec<Var> = (0..shape.len()).map(|_| self.fresh()).collect();
        let value = if self.inlined[branch.0 as usize] {
            let (node_var, op_axes) = match self.op_kind(branch) {
                RaOpKind::Compute { node_var, axes, .. } => (*node_var, axes.clone()),
                _ => unreachable!("inlined branch must be a compute op"),
            };
            let resolved = self.resolve(branch);
            let mut v = resolved.substitute(node_var, &IdxExpr::Var(node));
            for (d, ax) in op_axes.iter().enumerate() {
                v = v.substitute(*ax, &IdxExpr::Var(axes[d]));
            }
            self.rewrite_scratch_indices(&v, node, n_idx)
        } else {
            // Copy from the materialized branch tensor.
            let src0 = if self.scratch[branch.0 as usize] {
                IdxExpr::Var(n_idx.expect("scratch read requires a batch position"))
            } else {
                IdxExpr::Var(node)
            };
            let mut src = vec![src0];
            src.extend(axes.iter().map(|a| IdxExpr::Var(*a)));
            ValExpr::Load {
                tensor: branch,
                index: src,
            }
        };
        let mut index = vec![IdxExpr::Var(node)];
        index.extend(axes.iter().map(|a| IdxExpr::Var(*a)));
        wrap_feature_loops(
            Stmt::Store {
                tensor: rec,
                index,
                value,
            },
            &axes,
            &shape,
        )
    }

    /// Effective emission level of a materialized wave op.
    fn emit_level(&self, id: TensorId) -> u32 {
        self.level[id.0 as usize].max(1)
    }

    /// The level at which a recursion's internal-branch store runs: after
    /// its branch value is available.
    fn rec_store_level(&self, branch: TensorId) -> u32 {
        self.level[branch.0 as usize].max(1)
    }

    // ----------------------------------------------------------------
    // Emission
    // ----------------------------------------------------------------

    fn emit(mut self, sync_depth: u32) -> Result<IlirProgram, LowerError> {
        let n = self.graph.len();
        let mut tensors: Vec<Option<TensorDecl>> = vec![None; n];
        // Parameter and materialized-tensor declarations.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let id = TensorId(i as u32);
            let op = &self.graph.ops()[i];
            match op.kind {
                RaOpKind::Input => {
                    tensors[i] = Some(TensorDecl {
                        id,
                        name: op.name.clone(),
                        dims: op
                            .feature_shape
                            .iter()
                            .map(|&d| DimExtent::Fixed(d))
                            .collect(),
                        dim_names: (0..op.feature_shape.len()).map(DimName::feature).collect(),
                        class: StorageClass::Param,
                        persist: self.schedule.persist,
                        is_output: false,
                    });
                }
                RaOpKind::Recursion { .. } => {
                    let mut dims = vec![DimExtent::Nodes];
                    dims.extend(op.feature_shape.iter().map(|&d| DimExtent::Fixed(d)));
                    let mut names = vec![DimName::node()];
                    names.extend((0..op.feature_shape.len()).map(DimName::feature));
                    tensors[i] = Some(TensorDecl {
                        id,
                        name: op.name.clone(),
                        dims,
                        dim_names: names,
                        class: StorageClass::Global,
                        persist: false,
                        is_output: self.graph.outputs().contains(&id),
                    });
                }
                RaOpKind::Compute { .. } if self.materialized[i] => {
                    let scratch = self.scratch[i];
                    let mut dims = vec![if scratch {
                        DimExtent::MaxBatch
                    } else {
                        DimExtent::Nodes
                    }];
                    dims.extend(op.feature_shape.iter().map(|&d| DimExtent::Fixed(d)));
                    let mut names = vec![if scratch {
                        DimName::batch()
                    } else {
                        DimName::node()
                    }];
                    names.extend((0..op.feature_shape.len()).map(DimName::feature));
                    tensors[i] = Some(TensorDecl {
                        id,
                        name: op.name.clone(),
                        dims,
                        dim_names: names,
                        class: if scratch {
                            StorageClass::Scratch
                        } else {
                            StorageClass::Global
                        },
                        persist: false,
                        is_output: self.graph.outputs().contains(&id),
                    });
                }
                _ => {}
            }
        }

        let mut kernels: Vec<Kernel> = Vec::new();

        // --- Precompute kernel: materialized ops independent of recursion.
        let precompute_ops: Vec<TensorId> = (0..n as u32)
            .map(TensorId)
            .filter(|id| self.materialized[id.0 as usize] && !self.depends_ph[id.0 as usize])
            .collect();
        if !precompute_ops.is_empty() {
            let mut body = Vec::new();
            for id in &precompute_ops {
                body.extend(self.range_loop_for_guard(*id, self.guard[id.0 as usize])?);
            }
            kernels.push(Kernel {
                name: "precompute".to_string(),
                launch: LaunchPattern::Once,
                batch_var: None,
                body,
            });
        }

        // --- Leaf handling (§4.3 hoisting and constant propagation).
        let mut leaf_zero = true;
        let mut leaf_hoisted = false;
        if self.schedule.specialize {
            let mut leaf_body = Vec::new();
            let n_idx = self.fresh();
            let node = self.fresh();
            let mut inner = Vec::new();
            for (rec, then, _) in self.recursions.clone() {
                let leaf_expr = self.branch_expr_at(then, node, None);
                if is_zero(&leaf_expr) {
                    continue; // storage is zero-initialized: nothing to do
                }
                leaf_zero = false;
                if !self.expr_uses_var(&leaf_expr, node) {
                    leaf_hoisted = true;
                }
                inner.extend(self.rec_stores(rec, then, node, None));
            }
            if !inner.is_empty() {
                leaf_body.push(Stmt::For {
                    var: n_idx,
                    extent: IdxExpr::Rt(RtScalar::NumLeaves),
                    kind: LoopKind::Parallel,
                    dim: Some(DimName::batch()),
                    body: vec![Stmt::Let {
                        var: node,
                        value: IdxExpr::Rt(RtScalar::LeafBegin).add(IdxExpr::Var(n_idx)),
                        body: inner,
                    }],
                });
                kernels.push(Kernel {
                    name: "leaf".to_string(),
                    launch: LaunchPattern::Once,
                    batch_var: None,
                    body: leaf_body,
                });
            }
        } else {
            leaf_zero = false;
        }

        // --- Wave (internal-node) kernels.
        let wave_ops: Vec<TensorId> = (0..n as u32)
            .map(TensorId)
            .filter(|id| {
                let i = id.0 as usize;
                self.materialized[i] && self.depends_ph[i] && self.in_body[i] && !self.moved[i]
            })
            .collect();
        let moved_ops: Vec<TensorId> = (0..n as u32)
            .map(TensorId)
            .filter(|id| self.materialized[id.0 as usize] && self.moved[id.0 as usize])
            .collect();
        let depth = if let Some(r) = &self.refactor {
            r.depth_after
        } else {
            sync_depth
        };

        match self.schedule.fusion {
            FusionMode::Maximal => {
                let body = if self.schedule.unroll.is_some() {
                    self.emit_fused_unrolled(&wave_ops, depth)?
                } else if self.schedule.dynamic_batch {
                    self.emit_fused_batched(&wave_ops, &moved_ops, depth)?
                } else {
                    self.emit_fused_unbatched(&wave_ops)?
                };
                kernels.push(Kernel {
                    name: "recursion_fused".to_string(),
                    launch: LaunchPattern::Once,
                    batch_var: None,
                    body,
                });
                if self.refactor.is_some() {
                    kernels.push(self.emit_refactor_epilogue(&moved_ops)?);
                }
            }
            FusionMode::None => {
                if !self.schedule.dynamic_batch {
                    return Err(LowerError::UnsupportedSchedule(
                        "unfused lowering requires dynamic batching (one kernel per op per batch)"
                            .to_string(),
                    ));
                }
                kernels.extend(self.emit_unfused_batched(&wave_ops)?);
            }
        }

        // --- Post-processing ops (outside the recursion, reading results).
        let post_ops: Vec<TensorId> = (0..n as u32)
            .map(TensorId)
            .filter(|id| {
                let i = id.0 as usize;
                self.materialized[i] && self.depends_ph[i] && !self.in_body[i]
            })
            .collect();
        if !post_ops.is_empty() {
            let mut body = Vec::new();
            for id in &post_ops {
                body.extend(self.range_loop_for_guard(*id, Guard::All)?);
            }
            kernels.push(Kernel {
                name: "postcompute".to_string(),
                launch: LaunchPattern::Once,
                batch_var: None,
                body,
            });
        }

        let outputs: Vec<TensorId> = self
            .graph
            .outputs()
            .iter()
            .map(|t| self.ph_to_rec.get(t).copied().unwrap_or(*t))
            .collect();
        let crossing = self
            .refactor
            .as_ref()
            .map(|r| r.crossing_tensors.clone())
            .unwrap_or_default();

        let mut program = IlirProgram {
            tensors,
            kernels,
            outputs,
            meta: ProgramMeta {
                schedule: self.schedule.clone(),
                sync_depth: depth,
                crossing_tensors: crossing,
                leaf_hoisted,
                leaf_zero: leaf_zero && self.schedule.specialize,
            },
            vg: crate::expr::VarGen::new(),
        };
        if let Some(factor) = self.schedule.peel {
            crate::passes::peel_variable_loops(&mut program, factor, &mut self.next_var);
        }
        if self.schedule.barrier == crate::ra::BarrierMode::Conservative {
            crate::passes::make_barriers_conservative(&mut program);
        }
        Ok(program)
    }

    /// A `for` nest computing `id` over its guard's contiguous node range
    /// (Appendix-B numbering turns branch guards into ranges).
    fn range_loop_for_guard(
        &mut self,
        id: TensorId,
        guard: Guard,
    ) -> Result<Vec<Stmt>, LowerError> {
        let n_idx = self.fresh();
        let node = self.fresh();
        let (extent, base): (IdxExpr, IdxExpr) = match guard {
            Guard::All => (IdxExpr::Rt(RtScalar::NumNodes), IdxExpr::Const(0)),
            Guard::InternalOnly => (IdxExpr::Rt(RtScalar::NumInternal), IdxExpr::Const(0)),
            Guard::LeafOnly => (
                IdxExpr::Rt(RtScalar::NumLeaves),
                IdxExpr::Rt(RtScalar::LeafBegin),
            ),
        };
        let stores = self.op_stores(id, node, None);
        Ok(vec![Stmt::For {
            var: n_idx,
            extent,
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: base.add(IdxExpr::Var(n_idx)),
                body: stores,
            }],
        }])
    }

    /// The resolved branch expression evaluated at a node variable —
    /// used by the hoisting analysis.
    fn branch_expr_at(&mut self, branch: TensorId, node: Var, _n_idx: Option<Var>) -> ValExpr {
        match self.op_kind(branch) {
            RaOpKind::Compute { node_var, .. } => {
                let nv = *node_var;
                let resolved = self.resolve(branch);
                resolved.substitute(nv, &IdxExpr::Var(node))
            }
            _ => ValExpr::Const(f32::NAN),
        }
    }

    fn expr_uses_var(&self, e: &ValExpr, v: Var) -> bool {
        let mut used = false;
        collect_idx_vars(e, &mut |var| {
            if var == v {
                used = true;
            }
        });
        used
    }

    /// Fused, dynamically batched internal kernel (Listing 2 shape).
    fn emit_fused_batched(
        &mut self,
        wave_ops: &[TensorId],
        moved_ops: &[TensorId],
        depth: u32,
    ) -> Result<Vec<Stmt>, LowerError> {
        let b = self.fresh();
        let specialize = self.schedule.specialize;
        // Batch index into the full (leaf-first) batch table.
        let (extent, batch_index): (IdxExpr, IdxExpr) = if specialize {
            (
                IdxExpr::Rt(RtScalar::NumInternalBatches),
                IdxExpr::Var(b).add(IdxExpr::Const(1)),
            )
        } else {
            (
                IdxExpr::Rt(RtScalar::NumInternalBatches).add(IdxExpr::Const(1)),
                IdxExpr::Var(b),
            )
        };
        let mut wave_body: Vec<Stmt> = vec![Stmt::Barrier]; // wave-entry barrier

        // Refactored A2 stage: finish moved ops for this wave's children.
        if !moved_ops.is_empty() {
            let n_idx = self.fresh();
            let node = self.fresh();
            let mut per_node = Vec::new();
            for slot in 0..self.info.max_children {
                let child = self.fresh();
                let mut child_stores = Vec::new();
                for id in moved_ops {
                    child_stores.extend(self.op_stores(*id, child, None));
                }
                for (rec, _, otherwise) in self.recursions.clone() {
                    if self.moved_branch(otherwise) {
                        child_stores.extend(self.rec_stores(rec, otherwise, child, None));
                    }
                }
                let guard = BoolExpr::And(
                    Box::new(BoolExpr::Cmp(
                        CmpOp::Lt,
                        IdxExpr::Const(slot as i64),
                        IdxExpr::Ufn(Ufn::NumChildren, vec![IdxExpr::Var(node)]),
                    )),
                    Box::new(BoolExpr::Not(Box::new(
                        self.leaf_check(IdxExpr::Var(child)),
                    ))),
                );
                per_node.push(Stmt::Let {
                    var: child,
                    value: IdxExpr::Ufn(Ufn::Child(slot as u8), vec![IdxExpr::Var(node)]),
                    body: vec![Stmt::If {
                        cond: guard,
                        then_branch: child_stores,
                        else_branch: Vec::new(),
                    }],
                });
            }
            wave_body.push(Stmt::For {
                var: n_idx,
                extent: IdxExpr::Ufn(Ufn::BatchLength, vec![batch_index.clone()]),
                kind: LoopKind::Parallel,
                dim: Some(DimName::batch()),
                body: vec![Stmt::Let {
                    var: node,
                    value: IdxExpr::Ufn(Ufn::BatchBegin, vec![batch_index.clone()])
                        .add(IdxExpr::Var(n_idx)),
                    body: per_node,
                }],
            });
            // No global barrier after the A2 stage: refactoring schedules a
            // node and its children in the same thread block (the same
            // per-subtree blocking as the TreeRNN unrolled schedule), so
            // the A2-write → A1-read dependence is satisfied by a
            // block-local sync. The backend accounts one per wave.
        }

        // Level groups. Without specialization the conditional operator
        // guards the whole internal computation: the else-cone's operators
        // must not execute for leaves (their child indirections are
        // undefined there) — §5.2.
        for level in 1..=depth {
            let n_idx = self.fresh();
            let node = self.fresh();
            let mut internal_stores = Vec::new();
            let mut leaf_stores = Vec::new();
            for id in wave_ops {
                if self.emit_level(*id) == level {
                    internal_stores.extend(self.op_stores(*id, node, Some(n_idx)));
                }
            }
            for (rec, then, otherwise) in self.recursions.clone() {
                if self.moved_branch(otherwise) {
                    continue; // written in the A2 stage / epilogue
                }
                if self.rec_store_level(otherwise) == level {
                    internal_stores.extend(self.rec_stores(rec, otherwise, node, Some(n_idx)));
                    if !specialize {
                        leaf_stores.extend(self.rec_stores(rec, then, node, Some(n_idx)));
                    }
                }
            }
            if internal_stores.is_empty() && leaf_stores.is_empty() {
                continue;
            }
            let per_node = if specialize {
                internal_stores
            } else {
                vec![Stmt::If {
                    cond: self.leaf_check(IdxExpr::Var(node)),
                    then_branch: leaf_stores,
                    else_branch: internal_stores,
                }]
            };
            if level > 1 {
                wave_body.push(Stmt::Barrier);
            }
            wave_body.push(Stmt::For {
                var: n_idx,
                extent: IdxExpr::Ufn(Ufn::BatchLength, vec![batch_index.clone()]),
                kind: LoopKind::Parallel,
                dim: Some(DimName::batch()),
                body: vec![Stmt::Let {
                    var: node,
                    value: IdxExpr::Ufn(Ufn::BatchBegin, vec![batch_index.clone()])
                        .add(IdxExpr::Var(n_idx)),
                    body: per_node,
                }],
            });
        }

        Ok(vec![Stmt::For {
            var: b,
            extent,
            kind: LoopKind::Serial,
            dim: Some(DimName::all_batches()),
            body: wave_body,
        }])
    }

    /// Fused kernel following an unrolled schedule (§3.1, Fig. 3): stages
    /// of non-contiguous node sets accessed through indirection.
    fn emit_fused_unrolled(
        &mut self,
        wave_ops: &[TensorId],
        depth: u32,
    ) -> Result<Vec<Stmt>, LowerError> {
        let s_var = self.fresh();
        let mut stage_body: Vec<Stmt> = vec![Stmt::Barrier];
        for level in 1..=depth {
            let n_idx = self.fresh();
            let node = self.fresh();
            let mut per_node = Vec::new();
            for id in wave_ops {
                if self.emit_level(*id) == level {
                    per_node.extend(self.op_stores(*id, node, Some(n_idx)));
                }
            }
            for (rec, _, otherwise) in self.recursions.clone() {
                if self.rec_store_level(otherwise) == level {
                    per_node.extend(self.rec_stores(rec, otherwise, node, Some(n_idx)));
                }
            }
            if per_node.is_empty() {
                continue;
            }
            if level > 1 {
                stage_body.push(Stmt::Barrier);
            }
            stage_body.push(Stmt::For {
                var: n_idx,
                extent: IdxExpr::Ufn(Ufn::StageLength, vec![IdxExpr::Var(s_var)]),
                kind: LoopKind::Parallel,
                dim: Some(DimName::batch()),
                body: vec![Stmt::Let {
                    var: node,
                    value: IdxExpr::Ufn(
                        Ufn::StageNodeAt,
                        vec![IdxExpr::Var(s_var), IdxExpr::Var(n_idx)],
                    ),
                    body: per_node,
                }],
            });
        }
        Ok(vec![Stmt::For {
            var: s_var,
            extent: IdxExpr::Rt(RtScalar::NumStages),
            kind: LoopKind::Serial,
            dim: Some(DimName::all_batches()),
            body: stage_body,
        }])
    }

    fn moved_branch(&self, branch: TensorId) -> bool {
        self.moved[branch.0 as usize]
            || self
                .refactor
                .as_ref()
                .is_some_and(|r| r.moved.contains(&branch))
    }

    /// Fused kernel without dynamic batching: one node at a time in
    /// dependence order.
    fn emit_fused_unbatched(&mut self, wave_ops: &[TensorId]) -> Result<Vec<Stmt>, LowerError> {
        let i_var = self.fresh();
        let node = self.fresh();
        let mut per_node: Vec<Stmt> = vec![Stmt::Barrier]; // dependence carried by the node loop
        let mut internal_stores = Vec::new();
        for id in wave_ops {
            internal_stores.extend(self.op_stores(*id, node, None));
        }
        for (rec, then, otherwise) in self.recursions.clone() {
            let leaf_stores = self.rec_stores(rec, then, node, None);
            let internal_rec = self.rec_stores(rec, otherwise, node, None);
            let mut internal_all = internal_stores.clone();
            internal_all.extend(internal_rec);
            internal_stores = Vec::new(); // ops emitted once, with the first recursion
            per_node.push(Stmt::If {
                cond: self.leaf_check(IdxExpr::Var(node)),
                then_branch: if self.schedule.specialize {
                    Vec::new()
                } else {
                    leaf_stores
                },
                else_branch: internal_all,
            });
        }
        Ok(vec![Stmt::For {
            var: i_var,
            extent: IdxExpr::Rt(RtScalar::NumNodes),
            kind: LoopKind::Serial,
            dim: Some(DimName::node()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Ufn(Ufn::NodeAt, vec![IdxExpr::Var(i_var)]),
                body: per_node,
            }],
        }])
    }

    /// One kernel per op per batch — the vendor-library model.
    ///
    /// Kernels are ordered by op id, which is a topological order of the
    /// RA graph; recursion-store kernels are placed at their recursion
    /// op's position so consumers of the recursion tensor (e.g. the
    /// TreeLSTM hidden state reading the cell state) launch after it.
    fn emit_unfused_batched(&mut self, wave_ops: &[TensorId]) -> Result<Vec<Kernel>, LowerError> {
        enum Item {
            Op(TensorId),
            Rec(TensorId, TensorId, TensorId),
        }
        let mut items: Vec<(u32, Item)> = wave_ops.iter().map(|id| (id.0, Item::Op(*id))).collect();
        for (rec, then, otherwise) in self.recursions.clone() {
            items.push((rec.0, Item::Rec(rec, then, otherwise)));
        }
        items.sort_by_key(|(id, _)| *id);

        let mut kernels = Vec::new();
        let specialize = self.schedule.specialize;
        for (_, item) in items {
            match item {
                Item::Op(id) => kernels.push(self.emit_unfused_op_kernel(id, specialize)),
                Item::Rec(rec, then, otherwise) => {
                    kernels.push(self.emit_unfused_rec_kernel(rec, then, otherwise, specialize))
                }
            }
        }
        Ok(kernels)
    }

    fn emit_unfused_op_kernel(&mut self, id: TensorId, specialize: bool) -> Kernel {
        let b = self.fresh();
        let n_idx = self.fresh();
        let node = self.fresh();
        let batch_index = if specialize {
            IdxExpr::Var(b).add(IdxExpr::Const(1))
        } else {
            IdxExpr::Var(b)
        };
        let stores = self.op_stores(id, node, None);
        let body = if specialize {
            stores
        } else {
            vec![Stmt::If {
                cond: BoolExpr::Not(Box::new(self.leaf_check(IdxExpr::Var(node)))),
                then_branch: stores,
                else_branch: Vec::new(),
            }]
        };
        Kernel {
            name: format!("op_{}", self.graph.ops()[id.0 as usize].name),
            launch: LaunchPattern::PerInternalBatch,
            batch_var: Some(b),
            body: vec![Stmt::For {
                var: n_idx,
                extent: IdxExpr::Ufn(Ufn::BatchLength, vec![batch_index.clone()]),
                kind: LoopKind::Parallel,
                dim: Some(DimName::batch()),
                body: vec![Stmt::Let {
                    var: node,
                    value: IdxExpr::Ufn(Ufn::BatchBegin, vec![batch_index])
                        .add(IdxExpr::Var(n_idx)),
                    body,
                }],
            }],
        }
    }

    /// The conditional/recursion stores get their own kernel, like the
    /// elementwise "output" op a vendor-library framework would launch.
    fn emit_unfused_rec_kernel(
        &mut self,
        rec: TensorId,
        then: TensorId,
        otherwise: TensorId,
        specialize: bool,
    ) -> Kernel {
        let b = self.fresh();
        let n_idx = self.fresh();
        let node = self.fresh();
        let batch_index = if specialize {
            IdxExpr::Var(b).add(IdxExpr::Const(1))
        } else {
            IdxExpr::Var(b)
        };
        let internal_stores = self.rec_stores(rec, otherwise, node, None);
        let body = if specialize {
            internal_stores
        } else {
            let leaf_stores = self.rec_stores(rec, then, node, None);
            vec![Stmt::If {
                cond: self.leaf_check(IdxExpr::Var(node)),
                then_branch: leaf_stores,
                else_branch: internal_stores,
            }]
        };
        Kernel {
            name: format!("op_rec_{}", rec.0),
            launch: LaunchPattern::PerInternalBatch,
            batch_var: Some(b),
            body: vec![Stmt::For {
                var: n_idx,
                extent: IdxExpr::Ufn(Ufn::BatchLength, vec![batch_index.clone()]),
                kind: LoopKind::Parallel,
                dim: Some(DimName::batch()),
                body: vec![Stmt::Let {
                    var: node,
                    value: IdxExpr::Ufn(Ufn::BatchBegin, vec![batch_index])
                        .add(IdxExpr::Var(n_idx)),
                    body,
                }],
            }],
        }
    }

    /// Epilogue finishing the refactored (moved) computation at the roots.
    fn emit_refactor_epilogue(&mut self, moved_ops: &[TensorId]) -> Result<Kernel, LowerError> {
        let r_idx = self.fresh();
        let node = self.fresh();
        let mut stores = Vec::new();
        for id in moved_ops {
            stores.extend(self.op_stores(*id, node, None));
        }
        for (rec, _, otherwise) in self.recursions.clone() {
            if self.moved_branch(otherwise) {
                stores.extend(self.rec_stores(rec, otherwise, node, None));
            }
        }
        Ok(Kernel {
            name: "refactor_epilogue".to_string(),
            launch: LaunchPattern::Once,
            batch_var: None,
            body: vec![Stmt::For {
                var: r_idx,
                extent: IdxExpr::Rt(RtScalar::NumRoots),
                kind: LoopKind::Parallel,
                dim: Some(DimName::batch()),
                body: vec![Stmt::Let {
                    var: node,
                    value: IdxExpr::Ufn(Ufn::RootAt, vec![IdxExpr::Var(r_idx)]),
                    body: vec![Stmt::If {
                        cond: BoolExpr::Not(Box::new(self.leaf_check(IdxExpr::Var(node)))),
                        then_branch: stores,
                        else_branch: Vec::new(),
                    }],
                }],
            }],
        })
    }
}

fn wrap_feature_loops(store: Stmt, axes: &[Var], shape: &[usize]) -> Vec<Stmt> {
    let mut stmt = store;
    for (d, ax) in axes.iter().enumerate().rev() {
        stmt = Stmt::For {
            var: *ax,
            extent: IdxExpr::Const(shape[d] as i64),
            kind: if d == axes.len() - 1 {
                LoopKind::Vectorized
            } else {
                LoopKind::Serial
            },
            dim: Some(DimName::feature(d)),
            body: vec![stmt],
        };
    }
    vec![stmt]
}

fn check_loads(e: &ValExpr, target: TensorId, ok: &mut bool, consumed: &mut bool) {
    match e {
        ValExpr::Load { tensor, index } => {
            if *tensor == target {
                *consumed = true;
                if !matches!(index.first(), Some(IdxExpr::Var(_))) {
                    *ok = false;
                }
            }
        }
        ValExpr::Const(_) => {}
        ValExpr::Unary(_, a) => check_loads(a, target, ok, consumed),
        ValExpr::Bin(_, a, b) => {
            check_loads(a, target, ok, consumed);
            check_loads(b, target, ok, consumed);
        }
        ValExpr::Sum { body, .. } => check_loads(body, target, ok, consumed),
        ValExpr::Select {
            then, otherwise, ..
        } => {
            check_loads(then, target, ok, consumed);
            check_loads(otherwise, target, ok, consumed);
        }
    }
}

fn collect_idx_vars(e: &ValExpr, f: &mut impl FnMut(Var)) {
    fn idx(e: &IdxExpr, f: &mut impl FnMut(Var)) {
        match e {
            IdxExpr::Var(v) => f(*v),
            IdxExpr::Const(_) | IdxExpr::Rt(_) => {}
            IdxExpr::Ufn(_, args) => args.iter().for_each(|a| idx(a, f)),
            IdxExpr::Bin(_, a, b) => {
                idx(a, f);
                idx(b, f);
            }
        }
    }
    fn cond(e: &BoolExpr, f: &mut impl FnMut(Var)) {
        match e {
            BoolExpr::Cmp(_, a, b) => {
                idx(a, f);
                idx(b, f);
            }
            BoolExpr::IsLeaf(a) => idx(a, f),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                cond(a, f);
                cond(b, f);
            }
            BoolExpr::Not(a) => cond(a, f),
        }
    }
    match e {
        ValExpr::Const(_) => {}
        ValExpr::Load { index, .. } => index.iter().for_each(|i| idx(i, f)),
        ValExpr::Unary(_, a) => collect_idx_vars(a, f),
        ValExpr::Bin(_, a, b) => {
            collect_idx_vars(a, f);
            collect_idx_vars(b, f);
        }
        ValExpr::Sum { extent, body, .. } => {
            idx(extent, f);
            collect_idx_vars(body, f);
        }
        ValExpr::Select {
            cond: c,
            then,
            otherwise,
        } => {
            cond(c, f);
            collect_idx_vars(then, f);
            collect_idx_vars(otherwise, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{BarrierMode, RaGraph};

    fn fig1_graph(h: usize) -> RaGraph {
        let mut g = RaGraph::new();
        let emb = g.input("Emb", &[50, h]);
        let ph = g.placeholder("rnn_ph", &[h]);
        let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
        let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
        let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
        let rec = g.compute("rec", &[h], |c| {
            c.read(lh, &[c.node(), c.axis(0)])
                .add(c.read(rh, &[c.node(), c.axis(0)]))
                .tanh()
        });
        let body = g.if_then_else("body", leaf, rec).unwrap();
        let rnn = g.recursion(ph, body).unwrap();
        g.mark_output(rnn);
        g
    }

    fn info() -> StructureInfo {
        StructureInfo { max_children: 2 }
    }

    #[test]
    fn default_schedule_lowers_to_three_kernels_or_fewer() {
        let g = fig1_graph(8);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        // Fully fused: a leaf kernel and the fused recursion kernel (no
        // precompute: the leaf gather depends on nothing recursive but
        // belongs to the leaf branch).
        assert!(p.num_kernels() <= 3, "{}", p);
        assert!(p.kernels.iter().any(|k| k.name == "recursion_fused"));
    }

    #[test]
    fn elementwise_ops_are_inlined_under_maximal_fusion() {
        let g = fig1_graph(8);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        // lh and rh disappear: only the recursion storage remains declared
        // (plus the parameter).
        let declared: Vec<&str> = p.declared_tensors().map(|t| t.name.as_str()).collect();
        assert!(declared.contains(&"Emb"));
        assert!(declared.iter().any(|n| n.starts_with("rec(")));
        assert!(!declared.contains(&"lh"));
        assert!(!declared.contains(&"rh"));
    }

    #[test]
    fn no_fusion_materializes_and_multiplies_kernels() {
        let g = fig1_graph(8);
        let mut s = RaSchedule::unoptimized();
        s.specialize = true;
        let p = lower(&g, &s, info()).unwrap();
        // lh, rh, rec each get a per-batch kernel plus the recursion copy
        // kernel and the leaf kernel.
        let per_batch = p
            .kernels
            .iter()
            .filter(|k| k.launch == LaunchPattern::PerInternalBatch)
            .count();
        assert!(per_batch >= 3, "{}", p);
        assert!(p.declared_tensors().any(|t| t.name == "lh"));
    }

    #[test]
    fn specialization_splits_leaf_loop() {
        let g = fig1_graph(8);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        assert!(p.kernels.iter().any(|k| k.name == "leaf"));
        // Specialized: no leaf conditional inside the fused kernel.
        let fused = p
            .kernels
            .iter()
            .find(|k| k.name == "recursion_fused")
            .unwrap();
        assert_eq!(fused.count(|s| matches!(s, Stmt::If { .. })), 0, "{}", p);
    }

    #[test]
    fn without_specialization_conditional_operator_appears() {
        let g = fig1_graph(8);
        let s = RaSchedule {
            specialize: false,
            ..RaSchedule::default()
        };
        let p = lower(&g, &s, info()).unwrap();
        assert!(!p.kernels.iter().any(|k| k.name == "leaf"));
        let fused = p
            .kernels
            .iter()
            .find(|k| k.name == "recursion_fused")
            .unwrap();
        assert!(fused.count(|s| matches!(s, Stmt::If { .. })) > 0, "{}", p);
    }

    #[test]
    fn zero_leaf_case_is_constant_propagated() {
        let mut g = RaGraph::new();
        let ph = g.placeholder("h_ph", &[4]);
        let zero = g.compute("zero", &[4], |_| ValExpr::Const(0.0));
        let rec = g.compute("rec", &[4], |c| {
            c.read(ph, &[c.node().child(0), c.axis(0)])
                .add(c.read(ph, &[c.node().child(1), c.axis(0)]))
        });
        let body = g.if_then_else("body", zero, rec).unwrap();
        let out = g.recursion(ph, body).unwrap();
        g.mark_output(out);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        assert!(p.meta.leaf_zero, "zero leaf case should be eliminated");
        assert!(!p.kernels.iter().any(|k| k.name == "leaf"));
    }

    #[test]
    fn matvec_models_get_precompute_kernel() {
        // Input-dependent matvec (no placeholder reads) must be hoisted to
        // a precompute kernel (§7.1 protocol).
        let mut g = RaGraph::new();
        let h = 4;
        let emb = g.input("Emb", &[10, h]);
        let w = g.input("W", &[h, h]);
        let ph = g.placeholder("h_ph", &[h]);
        let x = g.compute("x", &[h], |c| {
            let i = c.axis(0);
            let node = c.node();
            c.sum(h, |c, k| {
                c.read(w, &[i.clone(), k.clone()])
                    .mul(c.read(emb, &[node.clone().word(), k]))
            })
        });
        let leaf = g.compute("leaf", &[h], |c| c.read(x, &[c.node(), c.axis(0)]));
        let rec = g.compute("rec", &[h], |c| {
            c.read(x, &[c.node(), c.axis(0)])
                .add(c.read(ph, &[c.node().child(0), c.axis(0)]))
                .tanh()
        });
        let body = g.if_then_else("body", leaf, rec).unwrap();
        let out = g.recursion(ph, body).unwrap();
        g.mark_output(out);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        assert!(p.kernels.iter().any(|k| k.name == "precompute"), "{p}");
    }

    #[test]
    fn barriers_present_per_wave() {
        let g = fig1_graph(8);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        assert!(p.static_barrier_count() >= 1);
    }

    #[test]
    fn conservative_barriers_adds_more() {
        let g = fig1_graph(8);
        let default = lower(&g, &RaSchedule::default(), info()).unwrap();
        let conservative = lower(
            &g,
            &RaSchedule {
                barrier: BarrierMode::Conservative,
                ..RaSchedule::default()
            },
            info(),
        )
        .unwrap();
        assert!(
            conservative.static_barrier_count() >= default.static_barrier_count(),
            "conservative {} vs {}",
            conservative.static_barrier_count(),
            default.static_barrier_count()
        );
    }

    #[test]
    fn refactor_requires_fusion() {
        let g = fig1_graph(8);
        let s = RaSchedule {
            fusion: FusionMode::None,
            refactor_split: Some(TensorId(5)),
            ..RaSchedule::default()
        };
        assert!(matches!(
            lower(&g, &s, info()),
            Err(LowerError::UnsupportedSchedule(_))
        ));
    }

    #[test]
    fn refactor_emits_epilogue() {
        let g = fig1_graph(8);
        // Split at the recursive-case op (id 5: emb=0, ph=1, leaf=2, lh=3,
        // rh=4, rec=5).
        let s = RaSchedule {
            refactor_split: Some(TensorId(5)),
            ..RaSchedule::default()
        };
        let p = lower(&g, &s, info()).unwrap();
        assert!(
            p.kernels.iter().any(|k| k.name == "refactor_epilogue"),
            "{p}"
        );
    }

    #[test]
    fn unbatched_lowering_iterates_post_order() {
        let g = fig1_graph(8);
        let s = RaSchedule {
            dynamic_batch: false,
            ..RaSchedule::default()
        };
        let p = lower(&g, &s, info()).unwrap();
        let fused = p
            .kernels
            .iter()
            .find(|k| k.name == "recursion_fused")
            .unwrap();
        let mut found_node_at = false;
        for st in &fused.body {
            st.visit(&mut |s| {
                if let Stmt::Let {
                    value: IdxExpr::Ufn(Ufn::NodeAt, _),
                    ..
                } = s
                {
                    found_node_at = true;
                }
            });
        }
        assert!(found_node_at, "{p}");
    }

    #[test]
    fn program_pretty_prints_listing2_style() {
        let g = fig1_graph(4);
        let p = lower(&g, &RaSchedule::default(), info()).unwrap();
        let text = p.to_string();
        assert!(text.contains("batch_length["), "{text}");
        assert!(text.contains("batch_begin["), "{text}");
        assert!(text.contains("barrier()"), "{text}");
    }
}

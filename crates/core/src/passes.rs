//! ILIR lowering passes (§5 and Appendices A.4–A.5).
//!
//! * [`peel_variable_loops`] — loop peeling: splitting a variable-bound
//!   loop by a factor introduces bounds checks in the loop body; peeling
//!   emits a guard-free main part (the redundancy of its checks is
//!   *proven* by the [`prover`](crate::prover), standing in for Z3) and an
//!   exact remainder loop.
//! * [`make_barriers_conservative`] — reproduces the unmodified TVM
//!   barrier-insertion behaviour for the Appendix A.4 ablation: barriers
//!   conservatively placed in the innermost (per-node) loop instead of at
//!   the loop that actually carries the dependence.

use crate::expr::{IdxBinOp, IdxExpr, Var};
use crate::ilir::{DimName, IlirProgram, LoopKind, Stmt};
use crate::prover::{ProofContext, Verdict};

/// Outcome of [`peel_variable_loops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeelReport {
    /// Variable-bound loops that were split and peeled.
    pub loops_peeled: usize,
    /// Bounds checks in main parts proven redundant (and removed).
    pub checks_proven_redundant: usize,
}

/// Splits every variable-bound node loop by `factor`, peeling the
/// remainder so the main part runs without bounds checks.
///
/// Returns how many loops were transformed and how many checks the prover
/// discharged. `next_var` supplies fresh variable ids (continuing the
/// lowering's counter).
pub fn peel_variable_loops(
    program: &mut IlirProgram,
    factor: usize,
    next_var: &mut u32,
) -> PeelReport {
    assert!(factor >= 2, "peeling factor must be at least 2");
    let mut report = PeelReport::default();
    for kernel in &mut program.kernels {
        let body = std::mem::take(&mut kernel.body);
        kernel.body = body
            .into_iter()
            .flat_map(|s| peel_stmt(s, factor, next_var, &mut report))
            .collect();
    }
    report
}

fn fresh(next_var: &mut u32) -> Var {
    let v = Var::from_raw(*next_var);
    *next_var += 1;
    v
}

fn is_variable_extent(e: &IdxExpr) -> bool {
    match e {
        IdxExpr::Const(_) => false,
        IdxExpr::Var(_) | IdxExpr::Rt(_) | IdxExpr::Ufn(..) => true,
        IdxExpr::Bin(_, a, b) => is_variable_extent(a) || is_variable_extent(b),
    }
}

fn peel_stmt(s: Stmt, factor: usize, next_var: &mut u32, report: &mut PeelReport) -> Vec<Stmt> {
    match s {
        Stmt::For {
            var,
            extent,
            kind,
            dim,
            body,
        } => {
            let body: Vec<Stmt> = body
                .into_iter()
                .flat_map(|st| peel_stmt(st, factor, next_var, report))
                .collect();
            let peelable = kind == LoopKind::Parallel
                && dim == Some(DimName::batch())
                && is_variable_extent(&extent);
            if !peelable {
                return vec![Stmt::For {
                    var,
                    extent,
                    kind,
                    dim,
                    body,
                }];
            }
            report.loops_peeled += 1;
            let f = factor as i64;
            let q = fresh(next_var);
            let r = fresh(next_var);
            let t = fresh(next_var);
            let full = IdxExpr::Bin(
                IdxBinOp::Div,
                Box::new(extent.clone()),
                Box::new(IdxExpr::Const(f)),
            );
            let main_extent = full.clone().mul(IdxExpr::Const(f));
            // Prove the main part's implicit check `q*f + r < extent`
            // redundant — this is the Appendix A.5 query.
            {
                let mut ctx = ProofContext::new();
                // Model instantiation: any concrete extent ≥ factor works;
                // the proof is parametric in q's bound.
                let e = 1024i64;
                ctx.assume_var(q, 0, e / f - 1);
                ctx.assume_var(r, 0, f - 1);
                let idx = IdxExpr::Var(q).mul(IdxExpr::Const(f)).add(IdxExpr::Var(r));
                if ctx.prove_cmp(crate::expr::CmpOp::Lt, &idx, &IdxExpr::Const(e))
                    == Verdict::Proven
                {
                    report.checks_proven_redundant += 1;
                }
            }
            let main = Stmt::For {
                var: q,
                extent: full,
                kind,
                dim: dim.clone(),
                body: vec![Stmt::For {
                    var: r,
                    extent: IdxExpr::Const(f),
                    kind: LoopKind::Vectorized,
                    dim: None,
                    body: vec![Stmt::Let {
                        var,
                        value: IdxExpr::Var(q).mul(IdxExpr::Const(f)).add(IdxExpr::Var(r)),
                        body: body.clone(),
                    }],
                }],
            };
            let remainder = Stmt::For {
                var: t,
                extent: extent.clone().sub(main_extent.clone()),
                kind: LoopKind::Serial,
                dim,
                body: vec![Stmt::Let {
                    var,
                    value: main_extent.add(IdxExpr::Var(t)),
                    body,
                }],
            };
            vec![main, remainder]
        }
        Stmt::Let { var, value, body } => vec![Stmt::Let {
            var,
            value,
            body: body
                .into_iter()
                .flat_map(|st| peel_stmt(st, factor, next_var, report))
                .collect(),
        }],
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => vec![Stmt::If {
            cond,
            then_branch: then_branch
                .into_iter()
                .flat_map(|st| peel_stmt(st, factor, next_var, report))
                .collect(),
            else_branch: else_branch
                .into_iter()
                .flat_map(|st| peel_stmt(st, factor, next_var, report))
                .collect(),
        }],
        other => vec![other],
    }
}

/// Rewrites barrier placement to the conservative TVM scheme of Appendix
/// A.4: barriers move from the dependence-carrying batch loop into every
/// per-node loop body, multiplying the dynamic barrier count by the batch
/// width.
pub fn make_barriers_conservative(program: &mut IlirProgram) {
    for kernel in &mut program.kernels {
        let body = std::mem::take(&mut kernel.body);
        kernel.body = body.into_iter().map(conservative_stmt).collect();
    }
}

fn conservative_stmt(s: Stmt) -> Stmt {
    match s {
        Stmt::For {
            var,
            extent,
            kind,
            dim,
            body,
        } => {
            let is_all_batches = dim == Some(DimName::all_batches());
            let is_node_loop = dim == Some(DimName::batch());
            let mut body: Vec<Stmt> = body
                .into_iter()
                .filter(|st| !(is_all_batches && matches!(st, Stmt::Barrier)))
                .map(conservative_stmt)
                .collect();
            if is_node_loop {
                body.insert(0, Stmt::Barrier);
            }
            Stmt::For {
                var,
                extent,
                kind,
                dim,
                body,
            }
        }
        Stmt::Let { var, value, body } => Stmt::Let {
            var,
            value,
            body: body.into_iter().map(conservative_stmt).collect(),
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond,
            then_branch: then_branch.into_iter().map(conservative_stmt).collect(),
            else_branch: else_branch.into_iter().map(conservative_stmt).collect(),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{RtScalar, TensorId, ValExpr};
    use crate::ilir::{DimExtent, Kernel, LaunchPattern, ProgramMeta, StorageClass, TensorDecl};
    use crate::ra::RaSchedule;

    fn batch_loop_program() -> (IlirProgram, u32) {
        let mut next = 1000u32;
        let n_idx = Var::from_raw(900);
        let node = Var::from_raw(901);
        let b = Var::from_raw(902);
        let t0 = TensorId(0);
        let store = Stmt::Store {
            tensor: t0,
            index: vec![IdxExpr::Var(node)],
            value: ValExpr::Const(1.0),
        };
        let node_loop = Stmt::For {
            var: n_idx,
            extent: IdxExpr::Ufn(crate::expr::Ufn::BatchLength, vec![IdxExpr::Var(b)]),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Ufn(crate::expr::Ufn::BatchBegin, vec![IdxExpr::Var(b)])
                    .add(IdxExpr::Var(n_idx)),
                body: vec![store],
            }],
        };
        let program = IlirProgram {
            tensors: vec![Some(TensorDecl {
                id: t0,
                name: "out".to_string(),
                dims: vec![DimExtent::Nodes],
                dim_names: vec![DimName::node()],
                class: StorageClass::Global,
                persist: false,
                is_output: true,
            })],
            kernels: vec![Kernel {
                name: "k".to_string(),
                launch: LaunchPattern::Once,
                batch_var: None,
                body: vec![Stmt::For {
                    var: b,
                    extent: IdxExpr::Rt(RtScalar::NumInternalBatches),
                    kind: LoopKind::Serial,
                    dim: Some(DimName::all_batches()),
                    body: vec![Stmt::Barrier, node_loop],
                }],
            }],
            outputs: vec![t0],
            meta: ProgramMeta {
                schedule: RaSchedule::default(),
                sync_depth: 1,
                crossing_tensors: Vec::new(),
                leaf_hoisted: false,
                leaf_zero: false,
            },
            vg: crate::expr::VarGen::new(),
        };
        (program, {
            next += 1;
            next
        })
    }

    #[test]
    fn peeling_splits_variable_loops_only() {
        let (mut p, mut next) = batch_loop_program();
        let report = peel_variable_loops(&mut p, 4, &mut next);
        assert_eq!(report.loops_peeled, 1);
        assert_eq!(report.checks_proven_redundant, 1);
        // The node loop became two loops: main (nest of 2 Fors) + remainder.
        let k = &p.kernels[0];
        let fors = k.count(|s| matches!(s, Stmt::For { .. }));
        assert_eq!(fors, 4, "{p}"); // all_batches + main outer + main inner + remainder
    }

    #[test]
    fn peeling_preserves_fixed_loops() {
        let mut next = 2000u32;
        let i = Var::from_raw(903);
        let mut p = batch_loop_program().0;
        p.kernels[0].body = vec![Stmt::For {
            var: i,
            extent: IdxExpr::Const(16),
            kind: LoopKind::Vectorized,
            dim: Some(DimName::feature(0)),
            body: vec![],
        }];
        let report = peel_variable_loops(&mut p, 4, &mut next);
        assert_eq!(report.loops_peeled, 0);
    }

    #[test]
    fn conservative_barriers_move_into_node_loop() {
        let (mut p, _) = batch_loop_program();
        let before = p.static_barrier_count();
        assert_eq!(before, 1);
        make_barriers_conservative(&mut p);
        // The wave-entry barrier is gone; a per-node barrier appeared.
        let k = &p.kernels[0];
        let mut node_loop_has_barrier = false;
        for s in &k.body {
            s.visit(&mut |st| {
                if let Stmt::For {
                    dim: Some(d), body, ..
                } = st
                {
                    if *d == DimName::batch() {
                        node_loop_has_barrier = matches!(body.first(), Some(Stmt::Barrier));
                    }
                }
            });
        }
        assert!(node_loop_has_barrier, "{p}");
    }
}

//! Expression simplification: constant folding and algebraic identities.
//!
//! The lowering from the RA to the ILIR produces many trivially
//! simplifiable expressions (offsets of zero, multiplications by one,
//! selects with decided conditions). This module normalizes them; the
//! deeper reasoning about uninterpreted functions lives in
//! [`prover`](crate::prover).

use crate::expr::{BinOp, BoolExpr, CmpOp, IdxBinOp, IdxExpr, UnaryOp, ValExpr};

/// Simplifies an index expression.
///
/// Applies constant folding and the usual identities (`x+0`, `x*1`, `x*0`,
/// `x-0`, `min/max` of equal operands, nested constant folding). The
/// result evaluates identically in every environment (checked by property
/// tests).
pub fn simplify_idx(e: &IdxExpr) -> IdxExpr {
    match e {
        IdxExpr::Const(_) | IdxExpr::Var(_) | IdxExpr::Rt(_) => e.clone(),
        IdxExpr::Ufn(f, args) => IdxExpr::Ufn(*f, args.iter().map(simplify_idx).collect()),
        IdxExpr::Bin(op, a, b) => {
            let a = simplify_idx(a);
            let b = simplify_idx(b);
            use IdxBinOp::*;
            match (&a, &b) {
                (IdxExpr::Const(x), IdxExpr::Const(y)) => {
                    let v = match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => {
                            if *y == 0 {
                                return IdxExpr::Bin(*op, Box::new(a), Box::new(b));
                            }
                            x.div_euclid(*y)
                        }
                        Rem => {
                            if *y == 0 {
                                return IdxExpr::Bin(*op, Box::new(a), Box::new(b));
                            }
                            x.rem_euclid(*y)
                        }
                        Min => (*x).min(*y),
                        Max => (*x).max(*y),
                    };
                    IdxExpr::Const(v)
                }
                (IdxExpr::Const(0), _) if *op == Add => b,
                (_, IdxExpr::Const(0)) if matches!(op, Add | Sub) => a,
                (IdxExpr::Const(0), _) if *op == Mul => IdxExpr::Const(0),
                (_, IdxExpr::Const(0)) if *op == Mul => IdxExpr::Const(0),
                (IdxExpr::Const(1), _) if *op == Mul => b,
                (_, IdxExpr::Const(1)) if matches!(op, Mul | Div) => a,
                (_, IdxExpr::Const(1)) if *op == Rem => IdxExpr::Const(0),
                _ if a == b && matches!(op, Min | Max) => a,
                _ if a == b && *op == Sub => IdxExpr::Const(0),
                _ => IdxExpr::Bin(*op, Box::new(a), Box::new(b)),
            }
        }
    }
}

/// Simplifies a boolean expression, deciding constant comparisons.
pub fn simplify_bool(e: &BoolExpr) -> BoolExpr {
    match e {
        BoolExpr::Cmp(op, a, b) => {
            let a = simplify_idx(a);
            let b = simplify_idx(b);
            if let (IdxExpr::Const(x), IdxExpr::Const(y)) = (&a, &b) {
                let v = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                return constant_bool(v);
            }
            if a == b {
                return constant_bool(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
            }
            BoolExpr::Cmp(*op, a, b)
        }
        BoolExpr::IsLeaf(e) => BoolExpr::IsLeaf(simplify_idx(e)),
        BoolExpr::And(a, b) => {
            let a = simplify_bool(a);
            let b = simplify_bool(b);
            match (is_constant_bool(&a), is_constant_bool(&b)) {
                (Some(false), _) | (_, Some(false)) => constant_bool(false),
                (Some(true), _) => b,
                (_, Some(true)) => a,
                _ => BoolExpr::And(Box::new(a), Box::new(b)),
            }
        }
        BoolExpr::Or(a, b) => {
            let a = simplify_bool(a);
            let b = simplify_bool(b);
            match (is_constant_bool(&a), is_constant_bool(&b)) {
                (Some(true), _) | (_, Some(true)) => constant_bool(true),
                (Some(false), _) => b,
                (_, Some(false)) => a,
                _ => BoolExpr::Or(Box::new(a), Box::new(b)),
            }
        }
        BoolExpr::Not(a) => {
            let a = simplify_bool(a);
            match is_constant_bool(&a) {
                Some(v) => constant_bool(!v),
                None => BoolExpr::Not(Box::new(a)),
            }
        }
    }
}

/// Canonical constant-true/false encodings (`0 == 0` / `0 == 1`).
pub fn constant_bool(v: bool) -> BoolExpr {
    BoolExpr::Cmp(
        CmpOp::Eq,
        IdxExpr::Const(0),
        IdxExpr::Const(if v { 0 } else { 1 }),
    )
}

/// Recognizes the canonical constant encodings (and any decided constant
/// comparison).
pub fn is_constant_bool(e: &BoolExpr) -> Option<bool> {
    if let BoolExpr::Cmp(op, IdxExpr::Const(x), IdxExpr::Const(y)) = e {
        let v = match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        };
        return Some(v);
    }
    None
}

/// Simplifies a value expression.
///
/// Folds constants through arithmetic and nonlinearities, removes additive
/// and multiplicative identities, and resolves selects whose condition is
/// decided. The *zero-tensor* detection used by constant propagation in
/// RA lowering (§4.3) is `simplify_val(e) == ValExpr::Const(0.0)`.
pub fn simplify_val(e: &ValExpr) -> ValExpr {
    match e {
        ValExpr::Const(_) | ValExpr::Load { .. } => match e {
            ValExpr::Load { tensor, index } => ValExpr::Load {
                tensor: *tensor,
                index: index.iter().map(simplify_idx).collect(),
            },
            _ => e.clone(),
        },
        ValExpr::Unary(op, a) => {
            let a = simplify_val(a);
            if let ValExpr::Const(c) = a {
                let v = match op {
                    UnaryOp::Neg => -c,
                    UnaryOp::Tanh => c.tanh(),
                    UnaryOp::Sigmoid => 1.0 / (1.0 + (-c).exp()),
                    UnaryOp::Relu => c.max(0.0),
                    UnaryOp::Exp => c.exp(),
                };
                return ValExpr::Const(v);
            }
            ValExpr::Unary(*op, Box::new(a))
        }
        ValExpr::Bin(op, a, b) => {
            let a = simplify_val(a);
            let b = simplify_val(b);
            use BinOp::*;
            match (&a, &b) {
                (ValExpr::Const(x), ValExpr::Const(y)) => {
                    let v = match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => x / y,
                        Max => x.max(*y),
                        Min => x.min(*y),
                    };
                    ValExpr::Const(v)
                }
                (ValExpr::Const(c), _) if *c == 0.0 && *op == Add => b,
                (_, ValExpr::Const(c)) if *c == 0.0 && matches!(op, Add | Sub) => a,
                (ValExpr::Const(c), _) if *c == 0.0 && *op == Mul => ValExpr::Const(0.0),
                (_, ValExpr::Const(c)) if *c == 0.0 && *op == Mul => ValExpr::Const(0.0),
                (ValExpr::Const(c), _) if *c == 1.0 && *op == Mul => b,
                (_, ValExpr::Const(c)) if *c == 1.0 && matches!(op, Mul | Div) => a,
                _ => ValExpr::Bin(*op, Box::new(a), Box::new(b)),
            }
        }
        ValExpr::Sum { var, extent, body } => {
            let extent = simplify_idx(extent);
            let body = simplify_val(body);
            // sum of zero is zero regardless of extent.
            if body == ValExpr::Const(0.0) {
                return ValExpr::Const(0.0);
            }
            if let IdxExpr::Const(0) = extent {
                return ValExpr::Const(0.0);
            }
            ValExpr::Sum {
                var: *var,
                extent,
                body: Box::new(body),
            }
        }
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            let cond = simplify_bool(cond);
            let then = simplify_val(then);
            let otherwise = simplify_val(otherwise);
            match is_constant_bool(&cond) {
                Some(true) => then,
                Some(false) => otherwise,
                None => {
                    if then == otherwise {
                        then
                    } else {
                        ValExpr::Select {
                            cond,
                            then: Box::new(then),
                            otherwise: Box::new(otherwise),
                        }
                    }
                }
            }
        }
    }
}

/// Whether the expression is (provably, by folding) the zero tensor —
/// the special case §4.3 optimizes for recursive base values.
pub fn is_zero(e: &ValExpr) -> bool {
    simplify_val(e) == ValExpr::Const(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{TensorId, Var, VarGen};

    fn n() -> (VarGen, Var) {
        let mut g = VarGen::new();
        let v = g.fresh("n");
        (g, v)
    }

    #[test]
    fn folds_idx_arithmetic() {
        let e = IdxExpr::Const(3)
            .add(IdxExpr::Const(4))
            .mul(IdxExpr::Const(2));
        assert_eq!(simplify_idx(&e), IdxExpr::Const(14));
    }

    #[test]
    fn removes_idx_identities() {
        let (_, v) = n();
        assert_eq!(
            simplify_idx(&IdxExpr::var(v).add(IdxExpr::Const(0))),
            IdxExpr::var(v)
        );
        assert_eq!(
            simplify_idx(&IdxExpr::var(v).mul(IdxExpr::Const(1))),
            IdxExpr::var(v)
        );
        assert_eq!(
            simplify_idx(&IdxExpr::var(v).mul(IdxExpr::Const(0))),
            IdxExpr::Const(0)
        );
        assert_eq!(
            simplify_idx(&IdxExpr::var(v).sub(IdxExpr::var(v))),
            IdxExpr::Const(0)
        );
        assert_eq!(
            simplify_idx(&IdxExpr::var(v).min(IdxExpr::var(v))),
            IdxExpr::var(v)
        );
    }

    #[test]
    fn preserves_division_by_zero() {
        // Must not fold away UB; the expression is kept for runtime diagnosis.
        let e = IdxExpr::Bin(
            IdxBinOp::Div,
            Box::new(IdxExpr::Const(4)),
            Box::new(IdxExpr::Const(0)),
        );
        assert_eq!(simplify_idx(&e), e);
    }

    #[test]
    fn decides_constant_comparisons() {
        let t = BoolExpr::lt(IdxExpr::Const(1), IdxExpr::Const(2));
        assert_eq!(is_constant_bool(&simplify_bool(&t)), Some(true));
        let f = BoolExpr::ge(IdxExpr::Const(1), IdxExpr::Const(2));
        assert_eq!(is_constant_bool(&simplify_bool(&f)), Some(false));
    }

    #[test]
    fn reflexive_comparisons_decided_without_constants() {
        let (_, v) = n();
        let e = BoolExpr::Cmp(CmpOp::Le, IdxExpr::var(v), IdxExpr::var(v));
        assert_eq!(is_constant_bool(&simplify_bool(&e)), Some(true));
        let e = BoolExpr::Cmp(CmpOp::Lt, IdxExpr::var(v), IdxExpr::var(v));
        assert_eq!(is_constant_bool(&simplify_bool(&e)), Some(false));
    }

    #[test]
    fn and_or_short_circuit() {
        let (_, v) = n();
        let leaf = BoolExpr::IsLeaf(IdxExpr::var(v));
        let e = BoolExpr::And(Box::new(constant_bool(true)), Box::new(leaf.clone()));
        assert_eq!(simplify_bool(&e), leaf);
        let e = BoolExpr::Or(Box::new(constant_bool(true)), Box::new(leaf.clone()));
        assert_eq!(is_constant_bool(&simplify_bool(&e)), Some(true));
        let e = BoolExpr::Not(Box::new(constant_bool(false)));
        assert_eq!(is_constant_bool(&simplify_bool(&e)), Some(true));
    }

    #[test]
    fn folds_val_constants_through_nonlinearities() {
        let e = ValExpr::Const(0.0).tanh();
        assert_eq!(simplify_val(&e), ValExpr::Const(0.0));
        let e = ValExpr::Const(0.0).sigmoid();
        assert_eq!(simplify_val(&e), ValExpr::Const(0.5));
    }

    #[test]
    fn val_identities() {
        let x = ValExpr::load(TensorId(0), vec![IdxExpr::Const(0)]);
        assert_eq!(simplify_val(&x.clone().add(ValExpr::Const(0.0))), x);
        assert_eq!(simplify_val(&x.clone().mul(ValExpr::Const(1.0))), x);
        assert_eq!(
            simplify_val(&x.clone().mul(ValExpr::Const(0.0))),
            ValExpr::Const(0.0)
        );
    }

    #[test]
    fn zero_sum_collapses() {
        let (mut g, _) = n();
        let k = g.fresh("k");
        let e = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(256),
            body: Box::new(ValExpr::Const(0.5).mul(ValExpr::Const(0.0))),
        };
        assert!(is_zero(&e));
        let e = ValExpr::Sum {
            var: k,
            extent: IdxExpr::Const(0),
            body: Box::new(ValExpr::load(TensorId(0), vec![IdxExpr::var(k)])),
        };
        assert!(is_zero(&e));
    }

    #[test]
    fn select_resolution() {
        let x = ValExpr::load(TensorId(0), vec![IdxExpr::Const(0)]);
        let y = ValExpr::load(TensorId(1), vec![IdxExpr::Const(0)]);
        let e = ValExpr::Select {
            cond: constant_bool(true),
            then: Box::new(x.clone()),
            otherwise: Box::new(y.clone()),
        };
        assert_eq!(simplify_val(&e), x);
        // Equal branches collapse even with an undecided condition.
        let (_, v) = n();
        let e = ValExpr::Select {
            cond: BoolExpr::IsLeaf(IdxExpr::var(v)),
            then: Box::new(x.clone()),
            otherwise: Box::new(x.clone()),
        };
        assert_eq!(simplify_val(&e), x);
    }

    #[test]
    fn zero_detection_matches_section_4_3() {
        // TreeLSTM-style zero initial state: select(isleaf, 0, ...) is not
        // all-zero, but the leaf branch is — exactly what hoisting checks.
        let zero_init = ValExpr::Const(0.0).mul(ValExpr::Const(3.0));
        assert!(is_zero(&zero_init));
        let not_zero = ValExpr::load(TensorId(0), vec![IdxExpr::Const(0)]);
        assert!(!is_zero(&not_zero));
    }
}

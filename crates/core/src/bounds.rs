//! Bounds inference with named dimensions (Appendix A.2).
//!
//! In a traditional tensor compiler there is a one-to-one correspondence
//! between an operator's loops and its tensor's dimensions, making bounds
//! inference trivial. The ILIR breaks this: in Listing 3 of the paper, the
//! `rnn` tensor's node dimension `d_node` corresponds to *two* loops
//! (`d_all_batches` and `d_batch`). Named dimensions make the relation
//! explicit; this module recovers it from a lowered program and verifies
//! that every store stays within its tensor's declared extents.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::{IdxExpr, RtScalar, TensorId, ValExpr, Var};
use crate::ilir::{DimExtent, DimName, IlirProgram, Stmt};
use crate::prover::{ProofContext, Verdict};

/// The inferred relationship between one tensor dimension and the loops
/// that index it — the explicit mapping Appendix A.2 requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimRelation {
    /// The tensor.
    pub tensor: TensorId,
    /// Which dimension of the tensor (by position).
    pub dim: usize,
    /// The named dimension declared for it.
    pub dim_name: DimName,
    /// Named dimensions of the loops whose variables appear in the index
    /// expression for this dimension.
    pub loop_dims: Vec<DimName>,
}

/// Result of bounds inference over a program.
#[derive(Debug, Clone, Default)]
pub struct BoundsReport {
    /// All store-site dimension relations discovered.
    pub relations: Vec<DimRelation>,
    /// Number of store sites whose in-bounds condition the prover
    /// discharged.
    pub proven_in_bounds: usize,
    /// Number of store sites the prover could not decide (sound but
    /// unproven — these would carry runtime checks).
    pub undecided: usize,
}

/// Bounds violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundsError {
    /// A store used the wrong number of indices.
    RankMismatch {
        /// Offending tensor.
        tensor: TensorId,
        /// Declared rank.
        declared: usize,
        /// Used rank.
        used: usize,
    },
    /// A store provably exceeds a tensor extent.
    ProvenOutOfBounds {
        /// Offending tensor.
        tensor: TensorId,
        /// Dimension index.
        dim: usize,
    },
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsError::RankMismatch {
                tensor,
                declared,
                used,
            } => {
                write!(
                    f,
                    "store to {tensor} uses {used} indices but {declared} are declared"
                )
            }
            BoundsError::ProvenOutOfBounds { tensor, dim } => {
                write!(
                    f,
                    "store to {tensor} provably exceeds extent of dimension {dim}"
                )
            }
        }
    }
}

impl Error for BoundsError {}

/// Representative sizes used to instantiate runtime extents for the
/// decision procedure (any consistent instantiation works; the facts the
/// prover uses are the *relations* between these quantities).
#[derive(Debug, Clone, Copy)]
pub struct ModelSizes {
    /// Total nodes.
    pub num_nodes: i64,
    /// Internal nodes.
    pub num_internal: i64,
    /// Longest batch.
    pub max_batch: i64,
    /// Number of internal batches.
    pub num_internal_batches: i64,
}

impl Default for ModelSizes {
    fn default() -> Self {
        ModelSizes {
            num_nodes: 1024,
            num_internal: 511,
            max_batch: 513,
            num_internal_batches: 9,
        }
    }
}

/// Infers dimension relations for every store and checks bounds.
///
/// # Errors
///
/// Returns [`BoundsError`] on rank mismatches or provable out-of-bounds
/// stores. Stores the prover cannot decide are merely counted (they would
/// need runtime checks), mirroring how the lowering treats unproven
/// accesses.
pub fn check_program(
    program: &IlirProgram,
    sizes: ModelSizes,
) -> Result<BoundsReport, BoundsError> {
    let mut report = BoundsReport::default();
    for kernel in &program.kernels {
        let mut env = LoopEnv::new(sizes);
        if let Some(b) = kernel.batch_var {
            env.push_var(
                b,
                0,
                sizes.num_internal_batches - 1,
                Some(DimName::all_batches()),
            );
        }
        for s in &kernel.body {
            walk(program, s, &mut env, &mut report)?;
        }
    }
    Ok(report)
}

struct LoopEnv {
    sizes: ModelSizes,
    ctx: ProofContext,
    /// var -> named dimension of the loop (or let) that bound it.
    dims: HashMap<Var, Option<DimName>>,
    /// let-bound vars with their defining expressions (for relation
    /// recovery through indirections like `node = batch_begin[b] + n_idx`).
    lets: HashMap<Var, IdxExpr>,
}

impl LoopEnv {
    fn new(sizes: ModelSizes) -> Self {
        let mut ctx = ProofContext::new().with_structure_facts(sizes.num_nodes, sizes.num_internal);
        ctx.assume_rt(RtScalar::MaxBatchLen, sizes.max_batch, sizes.max_batch);
        ctx.assume_rt(
            RtScalar::NumInternalBatches,
            sizes.num_internal_batches,
            sizes.num_internal_batches,
        );
        ctx.assume_rt(RtScalar::NumRoots, 1, sizes.num_nodes);
        LoopEnv {
            sizes,
            ctx,
            dims: HashMap::new(),
            lets: HashMap::new(),
        }
    }

    fn push_var(&mut self, v: Var, lo: i64, hi: i64, dim: Option<DimName>) {
        self.ctx.assume_var(v, lo, hi.max(lo));
        self.dims.insert(v, dim);
    }

    /// Upper bound (exclusive) for a loop extent under the representative
    /// sizes; `None` when unknown.
    fn extent_hint(&self, e: &IdxExpr) -> Option<i64> {
        match e {
            IdxExpr::Const(c) => Some(*c),
            IdxExpr::Rt(RtScalar::NumNodes) => Some(self.sizes.num_nodes),
            IdxExpr::Rt(RtScalar::NumInternal) => Some(self.sizes.num_internal),
            IdxExpr::Rt(RtScalar::NumLeaves) => {
                Some(self.sizes.num_nodes - self.sizes.num_internal)
            }
            IdxExpr::Rt(RtScalar::NumInternalBatches) => Some(self.sizes.num_internal_batches),
            IdxExpr::Rt(RtScalar::MaxBatchLen) => Some(self.sizes.max_batch),
            IdxExpr::Rt(RtScalar::NumRoots) => Some(self.sizes.num_nodes),
            IdxExpr::Rt(RtScalar::LeafBegin) => Some(self.sizes.num_internal),
            IdxExpr::Ufn(crate::expr::Ufn::BatchLength, _) => Some(self.sizes.max_batch),
            IdxExpr::Bin(op, a, b) => {
                let (a, b) = (self.extent_hint(a)?, self.extent_hint(b)?);
                Some(match op {
                    crate::expr::IdxBinOp::Add => a + b,
                    crate::expr::IdxBinOp::Sub => a - b,
                    crate::expr::IdxBinOp::Mul => a * b,
                    crate::expr::IdxBinOp::Div => a.checked_div(b)?,
                    crate::expr::IdxBinOp::Rem => a.checked_rem(b)?,
                    crate::expr::IdxBinOp::Min => a.min(b),
                    crate::expr::IdxBinOp::Max => a.max(b),
                })
            }
            _ => None,
        }
    }

    /// Collects named loop dimensions reachable from an index expression,
    /// following let-bindings.
    fn loop_dims_of(&self, e: &IdxExpr, out: &mut Vec<DimName>) {
        match e {
            IdxExpr::Var(v) => {
                if let Some(def) = self.lets.get(v) {
                    self.loop_dims_of(def, out);
                } else if let Some(Some(d)) = self.dims.get(v) {
                    if !out.contains(d) {
                        out.push(d.clone());
                    }
                }
            }
            IdxExpr::Const(_) | IdxExpr::Rt(_) => {}
            IdxExpr::Ufn(_, args) => args.iter().for_each(|a| self.loop_dims_of(a, out)),
            IdxExpr::Bin(_, a, b) => {
                self.loop_dims_of(a, out);
                self.loop_dims_of(b, out);
            }
        }
    }

    fn resolve_lets(&self, e: &IdxExpr) -> IdxExpr {
        match e {
            IdxExpr::Var(v) => match self.lets.get(v) {
                Some(def) => self.resolve_lets(def),
                None => e.clone(),
            },
            IdxExpr::Const(_) | IdxExpr::Rt(_) => e.clone(),
            IdxExpr::Ufn(f, args) => {
                IdxExpr::Ufn(*f, args.iter().map(|a| self.resolve_lets(a)).collect())
            }
            IdxExpr::Bin(op, a, b) => IdxExpr::Bin(
                *op,
                Box::new(self.resolve_lets(a)),
                Box::new(self.resolve_lets(b)),
            ),
        }
    }
}

fn walk(
    program: &IlirProgram,
    s: &Stmt,
    env: &mut LoopEnv,
    report: &mut BoundsReport,
) -> Result<(), BoundsError> {
    match s {
        Stmt::For {
            var,
            extent,
            dim,
            body,
            ..
        } => {
            let hi = env.extent_hint(extent).unwrap_or(env.sizes.num_nodes);
            env.push_var(*var, 0, hi - 1, dim.clone());
            for st in body {
                walk(program, st, env, report)?;
            }
        }
        Stmt::Let { var, value, body } => {
            env.lets.insert(*var, value.clone());
            // Give the prover an interval for the let-bound value too.
            let resolved = env.resolve_lets(value);
            let iv = env.ctx.eval(&resolved);
            env.push_var(*var, iv.lo, iv.hi, None);
            env.lets.insert(*var, value.clone());
            for st in body {
                walk(program, st, env, report)?;
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for st in then_branch.iter().chain(else_branch) {
                walk(program, st, env, report)?;
            }
        }
        Stmt::Store {
            tensor,
            index,
            value,
        } => {
            check_store(program, *tensor, index, env, report)?;
            check_value_loads(program, value, env, report)?;
        }
        Stmt::Barrier => {}
    }
    Ok(())
}

fn check_value_loads(
    program: &IlirProgram,
    e: &ValExpr,
    env: &mut LoopEnv,
    report: &mut BoundsReport,
) -> Result<(), BoundsError> {
    match e {
        ValExpr::Load { tensor, index } => check_store(program, *tensor, index, env, report),
        ValExpr::Const(_) => Ok(()),
        ValExpr::Unary(_, a) => check_value_loads(program, a, env, report),
        ValExpr::Bin(_, a, b) => {
            check_value_loads(program, a, env, report)?;
            check_value_loads(program, b, env, report)
        }
        ValExpr::Sum { var, extent, body } => {
            let hi = env.extent_hint(extent).unwrap_or(env.sizes.num_nodes);
            env.push_var(*var, 0, hi - 1, None);
            check_value_loads(program, body, env, report)
        }
        ValExpr::Select {
            then, otherwise, ..
        } => {
            check_value_loads(program, then, env, report)?;
            check_value_loads(program, otherwise, env, report)
        }
    }
}

fn check_store(
    program: &IlirProgram,
    tensor: TensorId,
    index: &[IdxExpr],
    env: &LoopEnv,
    report: &mut BoundsReport,
) -> Result<(), BoundsError> {
    let Some(decl) = program.tensor_opt(tensor) else {
        return Ok(()); // runtime-provided arrays (linearizer outputs)
    };
    if decl.dims.len() != index.len() {
        return Err(BoundsError::RankMismatch {
            tensor,
            declared: decl.dims.len(),
            used: index.len(),
        });
    }
    for (d, idx) in index.iter().enumerate() {
        let mut loop_dims = Vec::new();
        env.loop_dims_of(idx, &mut loop_dims);
        report.relations.push(DimRelation {
            tensor,
            dim: d,
            dim_name: decl.dim_names[d].clone(),
            loop_dims,
        });
        let extent = match decl.dims[d] {
            DimExtent::Fixed(n) => IdxExpr::Const(n as i64),
            DimExtent::Nodes => IdxExpr::Rt(RtScalar::NumNodes),
            DimExtent::MaxBatch => IdxExpr::Rt(RtScalar::MaxBatchLen),
        };
        let resolved = env.resolve_lets(idx);
        match env
            .ctx
            .prove_cmp(crate::expr::CmpOp::Lt, &resolved, &extent)
        {
            Verdict::Proven => report.proven_in_bounds += 1,
            Verdict::Disproven => return Err(BoundsError::ProvenOutOfBounds { tensor, dim: d }),
            Verdict::Unknown => report.undecided += 1,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, StructureInfo};
    use crate::ra::{RaGraph, RaSchedule};

    fn fig1_program() -> IlirProgram {
        let mut g = RaGraph::new();
        let h = 8;
        let emb = g.input("Emb", &[50, h]);
        let ph = g.placeholder("rnn_ph", &[h]);
        let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
        let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
        let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
        let rec = g.compute("rec", &[h], |c| {
            c.read(lh, &[c.node(), c.axis(0)])
                .add(c.read(rh, &[c.node(), c.axis(0)]))
                .tanh()
        });
        let body = g.if_then_else("body", leaf, rec).unwrap();
        let rnn = g.recursion(ph, body).unwrap();
        g.mark_output(rnn);
        lower(
            &g,
            &RaSchedule::default(),
            StructureInfo { max_children: 2 },
        )
        .unwrap()
    }

    #[test]
    fn fig1_program_is_in_bounds() {
        let p = fig1_program();
        let report = check_program(&p, ModelSizes::default()).unwrap();
        assert!(report.proven_in_bounds > 0);
    }

    #[test]
    fn node_dim_relates_to_two_loop_dims() {
        // The Listing 3 fact: the recursion tensor's d_node dimension is
        // indexed by loops named d_all_batches and d_batch.
        let p = fig1_program();
        let report = check_program(&p, ModelSizes::default()).unwrap();
        let rel = report
            .relations
            .iter()
            .find(|r| {
                r.dim_name == DimName::node()
                    && r.loop_dims.contains(&DimName::all_batches())
                    && r.loop_dims.contains(&DimName::batch())
            })
            .expect("a node-dim store indexed by both batch loops");
        assert_eq!(rel.dim, 0);
    }

    #[test]
    fn feature_dims_relate_one_to_one() {
        let p = fig1_program();
        let report = check_program(&p, ModelSizes::default()).unwrap();
        assert!(
            report
                .relations
                .iter()
                .any(|r| r.dim_name == DimName::feature(0)
                    && r.loop_dims == vec![DimName::feature(0)])
        );
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut p = fig1_program();
        // Corrupt a store to use too few indices.
        fn truncate_first_store(stmts: &mut Vec<Stmt>) -> bool {
            for s in stmts {
                match s {
                    Stmt::Store { index, .. } => {
                        index.pop();
                        return true;
                    }
                    Stmt::For { body, .. } | Stmt::Let { body, .. } => {
                        if truncate_first_store(body) {
                            return true;
                        }
                    }
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        if truncate_first_store(then_branch) || truncate_first_store(else_branch) {
                            return true;
                        }
                    }
                    Stmt::Barrier => {}
                }
            }
            false
        }
        let kernel = p.kernels.iter_mut().find(|k| k.name == "leaf").unwrap();
        assert!(truncate_first_store(&mut kernel.body));
        assert!(matches!(
            check_program(&p, ModelSizes::default()),
            Err(BoundsError::RankMismatch { .. })
        ));
    }
}

//! The Irregular Loops IR (§5 of the paper).
//!
//! The ILIR is a loop-based, data-structure-agnostic IR extending what a
//! tensor compiler provides with: (1) non-affine index expressions
//! (uninterpreted functions over loop variables), (2) loops with variable
//! bounds (batch lengths known only at runtime), and (3) a conditional
//! operator. Tensor dimensions and loops carry *named dimensions*
//! (Appendix A.2) so bounds inference can relate them when they are no
//! longer one-to-one.
//!
//! A lowered program ([`IlirProgram`]) is a list of tensor declarations
//! plus kernels. The pretty-printer renders programs in the pseudo-code
//! style of Listings 2–3 of the paper.

use std::fmt;

use crate::expr::{BoolExpr, IdxExpr, TensorId, ValExpr, Var, VarGen};
use crate::ra::RaSchedule;

/// Where a tensor lives and how long it persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// Model parameter (weights, embeddings): read-only at inference.
    Param,
    /// Off-chip global memory, persisting across the whole inference
    /// (per-node result tensors, cross-wave intermediates).
    Global,
    /// On-chip scratchpad: sized to the longest batch and reused each
    /// wave (the dense-indexed intermediates of Fig. 5).
    Scratch,
}

/// One extent of a declared tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimExtent {
    /// Compile-time constant (hidden size, vocabulary size, …).
    Fixed(usize),
    /// The number of data-structure nodes, known at runtime (`N`).
    Nodes,
    /// The longest dynamic batch, known after linearization — the
    /// iteration-space extent of dense-indexed scratch tensors.
    MaxBatch,
}

impl fmt::Display for DimExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimExtent::Fixed(n) => write!(f, "{n}"),
            DimExtent::Nodes => write!(f, "N"),
            DimExtent::MaxBatch => write!(f, "maxB"),
        }
    }
}

/// A named dimension (Appendix A.2): relates tensor dimensions to the
/// loops that iterate over them, which is no longer one-to-one in the ILIR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimName(pub String);

impl DimName {
    /// The node dimension (`d_node` in Listing 3).
    pub fn node() -> Self {
        DimName("d_node".to_string())
    }

    /// The batch-of-batches loop dimension (`d_all_batches`).
    pub fn all_batches() -> Self {
        DimName("d_all_batches".to_string())
    }

    /// The within-batch loop dimension (`d_batch`).
    pub fn batch() -> Self {
        DimName("d_batch".to_string())
    }

    /// The `d`-th feature dimension (`d_hidden` for `d = 0`).
    pub fn feature(d: usize) -> Self {
        if d == 0 {
            DimName("d_hidden".to_string())
        } else {
            DimName(format!("d_feat{d}"))
        }
    }
}

impl fmt::Display for DimName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A tensor declaration in a lowered program.
#[derive(Debug, Clone)]
pub struct TensorDecl {
    /// Identifier (shared with the RA graph that produced the program).
    pub id: TensorId,
    /// Diagnostic name.
    pub name: String,
    /// Extents.
    pub dims: Vec<DimExtent>,
    /// Named dimensions, parallel to `dims`.
    pub dim_names: Vec<DimName>,
    /// Storage class.
    pub class: StorageClass,
    /// Whether the tensor participates in model persistence (kept in
    /// on-chip memory across waves; only meaningful for `Param`).
    pub persist: bool,
    /// Whether this is a program output.
    pub is_output: bool,
}

impl TensorDecl {
    /// Number of elements, with runtime extents substituted.
    pub fn len(&self, num_nodes: usize, max_batch: usize) -> usize {
        self.dims
            .iter()
            .map(|d| match d {
                DimExtent::Fixed(n) => *n,
                DimExtent::Nodes => num_nodes,
                DimExtent::MaxBatch => max_batch,
            })
            .product()
    }

    /// Whether the declared shape is fully static.
    pub fn is_static(&self) -> bool {
        self.dims.iter().all(|d| matches!(d, DimExtent::Fixed(_)))
    }
}

/// Loop annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Ordinary sequential loop.
    Serial,
    /// Parallel across hardware threads (node loops within a wave).
    Parallel,
    /// Data-parallel inner loop (feature dimension).
    Vectorized,
}

/// An ILIR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in 0..extent { body }` — extents may be variable
    /// (`batch_length[b]`), the hallmark of the ILIR.
    For {
        /// Loop variable.
        var: Var,
        /// Upper bound (exclusive), possibly variable.
        extent: IdxExpr,
        /// Execution annotation.
        kind: LoopKind,
        /// Named dimension of this loop (Appendix A.2).
        dim: Option<DimName>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `let var = value { body }` — binds an index (e.g. the indirection
    /// `node = batch_begin[b] + n_idx`).
    Let {
        /// Bound variable.
        var: Var,
        /// Its value.
        value: IdxExpr,
        /// Scope.
        body: Vec<Stmt>,
    },
    /// A tensor store `tensor[index] = value`.
    Store {
        /// Destination tensor.
        tensor: TensorId,
        /// Destination indices.
        index: Vec<IdxExpr>,
        /// Stored value.
        value: ValExpr,
    },
    /// The conditional operator (§5.2), lowered to an `if`.
    If {
        /// Condition.
        cond: BoolExpr,
        /// True branch.
        then_branch: Vec<Stmt>,
        /// False branch.
        else_branch: Vec<Stmt>,
    },
    /// A device-wide synchronization barrier (Appendix A.4).
    Barrier,
}

impl Stmt {
    /// Convenience constructor for a serial loop.
    pub fn loop_over(var: Var, extent: IdxExpr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            extent,
            kind: LoopKind::Serial,
            dim: None,
            body,
        }
    }

    /// Visits every statement (pre-order), including nested ones.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::For { body, .. } | Stmt::Let { body, .. } => {
                body.iter().for_each(|s| s.visit(f));
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.iter().for_each(|s| s.visit(f));
                else_branch.iter().for_each(|s| s.visit(f));
            }
            Stmt::Store { .. } | Stmt::Barrier => {}
        }
    }

    /// Counts statements satisfying a predicate.
    pub fn count(&self, pred: &impl Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if pred(s) {
                n += 1;
            }
        });
        n
    }
}

/// How often the runtime launches a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchPattern {
    /// Launched exactly once per inference.
    Once,
    /// Launched once per internal dynamic batch, in listed kernel order
    /// within each batch (the vendor-library execution model when fusion
    /// is disabled). The kernel body sees the batch index bound to
    /// [`Kernel::batch_var`].
    PerInternalBatch,
}

/// A lowered kernel: the unit of launch.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Diagnostic name.
    pub name: String,
    /// Launch pattern.
    pub launch: LaunchPattern,
    /// For [`LaunchPattern::PerInternalBatch`], the variable the runtime
    /// binds to the current batch index.
    pub batch_var: Option<Var>,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Counts statements satisfying a predicate across the body.
    pub fn count(&self, pred: impl Fn(&Stmt) -> bool) -> usize {
        self.body.iter().map(|s| s.count(&pred)).sum()
    }
}

/// Schedule summary the backend device model needs (beyond what the
/// kernels themselves encode).
#[derive(Debug, Clone)]
pub struct ProgramMeta {
    /// The schedule the program was lowered with.
    pub schedule: RaSchedule,
    /// Barrier-separated segments per wavefront (from RA analysis).
    pub sync_depth: u32,
    /// Tensors that newly cross wave boundaries due to recursive
    /// refactoring (extra global materialization).
    pub crossing_tensors: Vec<TensorId>,
    /// Whether the leaf case was hoisted out of the recursion (§4.3).
    pub leaf_hoisted: bool,
    /// Whether the leaf case folded to the zero tensor (§4.3).
    pub leaf_zero: bool,
}

/// A complete lowered program: declarations plus kernels in launch order.
#[derive(Debug, Clone)]
pub struct IlirProgram {
    /// Tensor declarations (indexed by [`TensorId`] — ids are dense).
    pub tensors: Vec<Option<TensorDecl>>,
    /// Kernels in launch order.
    pub kernels: Vec<Kernel>,
    /// Program outputs.
    pub outputs: Vec<TensorId>,
    /// Scheduling metadata for the device model.
    pub meta: ProgramMeta,
    /// Variable generator (continued from the RA graph) for passes that
    /// need fresh variables.
    pub vg: VarGen,
}

impl IlirProgram {
    /// Looks up a declared tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor was eliminated or never declared.
    pub fn tensor(&self, id: TensorId) -> &TensorDecl {
        self.tensors[id.0 as usize]
            .as_ref()
            .expect("tensor not declared")
    }

    /// Looks up a declared tensor, if present.
    pub fn tensor_opt(&self, id: TensorId) -> Option<&TensorDecl> {
        self.tensors.get(id.0 as usize).and_then(|t| t.as_ref())
    }

    /// Iterator over declared tensors.
    pub fn declared_tensors(&self) -> impl Iterator<Item = &TensorDecl> {
        self.tensors.iter().filter_map(|t| t.as_ref())
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Total barrier statements across all kernels (static count; the
    /// dynamic count depends on runtime batch counts).
    pub fn static_barrier_count(&self) -> usize {
        self.kernels
            .iter()
            .map(|k| k.count(|s| matches!(s, Stmt::Barrier)))
            .sum()
    }
}

impl fmt::Display for IlirProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// ILIR program: {} kernels", self.kernels.len())?;
        for t in self.declared_tensors() {
            let class = match t.class {
                StorageClass::Param => "param",
                StorageClass::Global => "global",
                StorageClass::Scratch => "scratch",
            };
            write!(f, "{class} {} {}(", t.id, t.name)?;
            for (i, (d, n)) in t.dims.iter().zip(&t.dim_names).enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{d}:{n}")?;
            }
            writeln!(
                f,
                "){}{}",
                if t.persist { " persist" } else { "" },
                if t.is_output { " out" } else { "" }
            )?;
        }
        for k in &self.kernels {
            let launch = match k.launch {
                LaunchPattern::Once => "once".to_string(),
                LaunchPattern::PerInternalBatch => {
                    format!(
                        "per-batch({})",
                        k.batch_var.map(|v| v.to_string()).unwrap_or_default()
                    )
                }
            };
            writeln!(f, "kernel {} [{}] {{", k.name, launch)?;
            for s in &k.body {
                fmt_stmt(f, s, 1)?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

fn fmt_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match s {
        Stmt::For {
            var,
            extent,
            kind,
            dim,
            body,
        } => {
            let k = match kind {
                LoopKind::Serial => "",
                LoopKind::Parallel => " @parallel",
                LoopKind::Vectorized => " @vector",
            };
            let d = dim.as_ref().map(|d| format!(" # {d}")).unwrap_or_default();
            writeln!(f, "{pad}for {var} = 0:{extent}:{k}{d}")?;
            for st in body {
                fmt_stmt(f, st, depth + 1)?;
            }
            Ok(())
        }
        Stmt::Let { var, value, body } => {
            writeln!(f, "{pad}{var} = {value}")?;
            for st in body {
                fmt_stmt(f, st, depth)?;
            }
            Ok(())
        }
        Stmt::Store {
            tensor,
            index,
            value,
        } => {
            write!(f, "{pad}{tensor}[")?;
            for (i, e) in index.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{e}")?;
            }
            writeln!(f, "] = {value}")
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            writeln!(f, "{pad}if {cond}:")?;
            for st in then_branch {
                fmt_stmt(f, st, depth + 1)?;
            }
            if !else_branch.is_empty() {
                writeln!(f, "{pad}else:")?;
                for st in else_branch {
                    fmt_stmt(f, st, depth + 1)?;
                }
            }
            Ok(())
        }
        Stmt::Barrier => writeln!(f, "{pad}barrier()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::RtScalar;

    fn sample_program() -> IlirProgram {
        let mut vg = VarGen::new();
        let n_idx = vg.fresh("n_idx");
        let node = vg.fresh("node");
        let i = vg.fresh("i");
        let rnn = TensorId(0);
        let decl = TensorDecl {
            id: rnn,
            name: "rnn".to_string(),
            dims: vec![DimExtent::Nodes, DimExtent::Fixed(4)],
            dim_names: vec![DimName::node(), DimName::feature(0)],
            class: StorageClass::Global,
            persist: false,
            is_output: true,
        };
        let body = vec![Stmt::For {
            var: n_idx,
            extent: IdxExpr::Rt(RtScalar::NumLeaves),
            kind: LoopKind::Parallel,
            dim: Some(DimName::batch()),
            body: vec![Stmt::Let {
                var: node,
                value: IdxExpr::Rt(RtScalar::LeafBegin).add(IdxExpr::var(n_idx)),
                body: vec![Stmt::For {
                    var: i,
                    extent: IdxExpr::Const(4),
                    kind: LoopKind::Vectorized,
                    dim: Some(DimName::feature(0)),
                    body: vec![Stmt::Store {
                        tensor: rnn,
                        index: vec![IdxExpr::var(node), IdxExpr::var(i)],
                        value: ValExpr::Const(1.0),
                    }],
                }],
            }],
        }];
        IlirProgram {
            tensors: vec![Some(decl)],
            kernels: vec![Kernel {
                name: "leaf".to_string(),
                launch: LaunchPattern::Once,
                batch_var: None,
                body,
            }],
            outputs: vec![rnn],
            meta: ProgramMeta {
                schedule: RaSchedule::default(),
                sync_depth: 1,
                crossing_tensors: Vec::new(),
                leaf_hoisted: false,
                leaf_zero: false,
            },
            vg,
        }
    }

    #[test]
    fn tensor_len_resolves_runtime_extents() {
        let p = sample_program();
        let t = p.tensor(TensorId(0));
        assert_eq!(t.len(255, 16), 255 * 4);
        assert!(!t.is_static());
    }

    #[test]
    fn stmt_visit_and_count() {
        let p = sample_program();
        let k = &p.kernels[0];
        assert_eq!(k.count(|s| matches!(s, Stmt::Store { .. })), 1);
        assert_eq!(k.count(|s| matches!(s, Stmt::For { .. })), 2);
        assert_eq!(p.static_barrier_count(), 0);
    }

    #[test]
    fn display_renders_paper_style() {
        let p = sample_program();
        let text = p.to_string();
        assert!(text.contains("kernel leaf [once]"), "{text}");
        assert!(text.contains("for v0 = 0:num_leaves"), "{text}");
        assert!(text.contains("t0[v1,v2] = 1"), "{text}");
        assert!(text.contains("d_hidden"), "{text}");
    }

    #[test]
    fn dim_names_match_listing_3() {
        assert_eq!(DimName::node().to_string(), "d_node");
        assert_eq!(DimName::all_batches().to_string(), "d_all_batches");
        assert_eq!(DimName::batch().to_string(), "d_batch");
        assert_eq!(DimName::feature(0).to_string(), "d_hidden");
    }
}

//! Cortex compiler core: the Recursive API, the Irregular Loops IR (ILIR)
//! and the lowering between them.
//!
//! This crate is the reproduction of the primary contribution of *"Cortex:
//! A Compiler for Recursive Deep Learning Models"* (MLSys 2021):
//!
//! * [`ra`] — the Recursive API (§3): recursive model computations as DAGs
//!   of per-node tensor operators, with the recursion scheduling primitives
//!   of §3.1 (dynamic batching, specialization, unrolling, recursive
//!   refactoring) captured in [`ra::RaSchedule`].
//! * [`mod@lower`] — RA lowering (§4.1): recursion to loops, temporary
//!   materialization, specialization splitting, computation hoisting and
//!   constant propagation (§4.3).
//! * [`ilir`] — the Irregular Loops IR (§5): loop nests with variable
//!   bounds, indirect (uninterpreted-function) memory accesses, named
//!   dimensions and a conditional operator.
//! * [`passes`] — ILIR transformations: dense intermediate indexing
//!   (Fig. 5), barrier insertion (App. A.4), loop peeling (App. A.5).
//! * [`bounds`] — bounds inference with named dimensions (App. A.2).
//! * [`expr`], [`simplify`], [`prover`] — the scalar expression language,
//!   its simplifier and the bound-check decision procedure (App. A.1).
//!
//! The execution backends that run lowered programs live in
//! `cortex-backend`; model definitions live in `cortex-models`.

pub mod bounds;
pub mod expr;
pub mod ilir;
pub mod lower;
pub mod passes;
pub mod prover;
pub mod ra;
pub mod simplify;

pub use expr::{TensorId, Var, VarGen};
pub use ilir::IlirProgram;
pub use lower::{lower, LowerError};
pub use ra::{RaGraph, RaSchedule, RaTensor};

//! Property-based soundness tests for the compiler core.
//!
//! * The simplifier must preserve the value of every expression in every
//!   environment (checked with a small reference evaluator).
//! * The prover must be *sound*: whenever it says `Proven`, sampling the
//!   assumed variable ranges may never find a counterexample (and dually
//!   for `Disproven`).

use cortex_core::expr::{
    BinOp, BoolExpr, CmpOp, IdxBinOp, IdxExpr, UnaryOp, ValExpr, Var,
};
use cortex_core::prover::{ProofContext, Verdict};
use cortex_core::simplify::{simplify_bool, simplify_idx, simplify_val};
use proptest::prelude::*;

const VARS: usize = 3;

fn var(i: usize) -> Var {
    Var::from_raw(i as u32)
}

/// Random integer index expressions over a small set of variables.
/// (No uninterpreted functions: their semantics need a structure; they
/// are exercised by the executor tests instead.)
fn arb_idx(depth: u32) -> BoxedStrategy<IdxExpr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(IdxExpr::Const),
        (0usize..VARS).prop_map(|i| IdxExpr::Var(var(i))),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        (inner.clone(), inner, prop::sample::select(vec![
            IdxBinOp::Add,
            IdxBinOp::Sub,
            IdxBinOp::Mul,
            IdxBinOp::Min,
            IdxBinOp::Max,
        ]))
            .prop_map(|(a, b, op)| IdxExpr::Bin(op, Box::new(a), Box::new(b)))
    })
    .boxed()
}

fn arb_bool(depth: u32) -> BoxedStrategy<BoolExpr> {
    let leaf = (
        arb_idx(2),
        arb_idx(2),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]),
    )
        .prop_map(|(a, b, op)| BoolExpr::Cmp(op, a, b));
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| BoolExpr::Not(Box::new(a))),
        ]
    })
    .boxed()
}

/// Random value expressions (constants and arithmetic over index-driven
/// selects; loads are exercised by the executor).
fn arb_val(depth: u32) -> BoxedStrategy<ValExpr> {
    let leaf = (-4.0f32..4.0).prop_map(ValExpr::Const);
    leaf.prop_recursive(depth, 48, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop::sample::select(vec![
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Max,
                BinOp::Min,
            ]))
                .prop_map(|(a, b, op)| ValExpr::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), prop::sample::select(vec![
                UnaryOp::Neg,
                UnaryOp::Tanh,
                UnaryOp::Sigmoid,
                UnaryOp::Relu,
            ]))
                .prop_map(|(a, op)| ValExpr::Unary(op, Box::new(a))),
            (arb_bool(1), inner.clone(), inner.clone()).prop_map(|(c, t, o)| ValExpr::Select {
                cond: c,
                then: Box::new(t),
                otherwise: Box::new(o),
            }),
        ]
    })
    .boxed()
}

// ----------------------------------------------------------------------
// Reference evaluators (no uninterpreted functions / loads / reductions).
// ----------------------------------------------------------------------

fn eval_idx(e: &IdxExpr, env: &[i64; VARS]) -> i64 {
    match e {
        IdxExpr::Const(c) => *c,
        IdxExpr::Var(v) => env[v.id() as usize],
        IdxExpr::Rt(_) | IdxExpr::Ufn(..) => unreachable!("not generated"),
        IdxExpr::Bin(op, a, b) => {
            let (x, y) = (eval_idx(a, env), eval_idx(b, env));
            match op {
                IdxBinOp::Add => x.wrapping_add(y),
                IdxBinOp::Sub => x.wrapping_sub(y),
                IdxBinOp::Mul => x.wrapping_mul(y),
                IdxBinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.div_euclid(y)
                    }
                }
                IdxBinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.rem_euclid(y)
                    }
                }
                IdxBinOp::Min => x.min(y),
                IdxBinOp::Max => x.max(y),
            }
        }
    }
}

fn eval_bool(e: &BoolExpr, env: &[i64; VARS]) -> bool {
    match e {
        BoolExpr::Cmp(op, a, b) => {
            let (x, y) = (eval_idx(a, env), eval_idx(b, env));
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        BoolExpr::IsLeaf(_) => unreachable!("not generated"),
        BoolExpr::And(a, b) => eval_bool(a, env) && eval_bool(b, env),
        BoolExpr::Or(a, b) => eval_bool(a, env) || eval_bool(b, env),
        BoolExpr::Not(a) => !eval_bool(a, env),
    }
}

fn eval_val(e: &ValExpr, env: &[i64; VARS]) -> f32 {
    match e {
        ValExpr::Const(c) => *c,
        ValExpr::Load { .. } | ValExpr::Sum { .. } => unreachable!("not generated"),
        ValExpr::Unary(op, a) => {
            let x = eval_val(a, env);
            match op {
                UnaryOp::Neg => -x,
                UnaryOp::Tanh => x.tanh(),
                UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                UnaryOp::Relu => x.max(0.0),
                UnaryOp::Exp => x.exp(),
            }
        }
        ValExpr::Bin(op, a, b) => {
            let (x, y) = (eval_val(a, env), eval_val(b, env));
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Max => x.max(y),
                BinOp::Min => x.min(y),
            }
        }
        ValExpr::Select { cond, then, otherwise } => {
            if eval_bool(cond, env) {
                eval_val(then, env)
            } else {
                eval_val(otherwise, env)
            }
        }
    }
}

proptest! {
    #[test]
    fn simplify_idx_preserves_value(
        e in arb_idx(4),
        env in prop::array::uniform3(-15i64..15),
    ) {
        let s = simplify_idx(&e);
        prop_assert_eq!(eval_idx(&e, &env), eval_idx(&s, &env), "{} vs {}", e, s);
    }

    #[test]
    fn simplify_bool_preserves_value(
        e in arb_bool(3),
        env in prop::array::uniform3(-15i64..15),
    ) {
        let s = simplify_bool(&e);
        prop_assert_eq!(eval_bool(&e, &env), eval_bool(&s, &env), "{} vs {}", e, s);
    }

    #[test]
    fn simplify_val_preserves_value(
        e in arb_val(4),
        env in prop::array::uniform3(-15i64..15),
    ) {
        let s = simplify_val(&e);
        let a = eval_val(&e, &env);
        let b = eval_val(&s, &env);
        // Folding uses the same f32 ops, so results match exactly unless
        // both are NaN (possible through Div… which we do generate via
        // sigmoid but never with NaN inputs; keep the guard anyway).
        prop_assert!(a == b || (a.is_nan() && b.is_nan()), "{} -> {}: {} vs {}", e, s, a, b);
    }

    #[test]
    fn prover_is_sound_on_comparisons(
        a in arb_idx(3),
        b in arb_idx(3),
        lo in -8i64..0,
        width in 1i64..12,
        samples in prop::array::uniform16(0u64..1_000_000),
    ) {
        let hi = lo + width;
        let mut ctx = ProofContext::new();
        for i in 0..VARS {
            ctx.assume_var(var(i), lo, hi);
        }
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ge, CmpOp::Gt, CmpOp::Ne] {
            let verdict = ctx.prove_cmp(op, &a, &b);
            if verdict == Verdict::Unknown {
                continue;
            }
            // Sample assignments within the assumed ranges; a sound
            // verdict can never be contradicted.
            for s in &samples {
                let env = [
                    lo + (s % width as u64) as i64,
                    lo + ((s / 7) % width as u64) as i64,
                    lo + ((s / 49) % width as u64) as i64,
                ];
                let (x, y) = (eval_idx(&a, &env), eval_idx(&b, &env));
                let holds = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                match verdict {
                    Verdict::Proven => prop_assert!(
                        holds,
                        "{a} {op:?} {b} proven but fails at {env:?}"
                    ),
                    Verdict::Disproven => prop_assert!(
                        !holds,
                        "{a} {op:?} {b} disproven but holds at {env:?}"
                    ),
                    Verdict::Unknown => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn simplification_is_idempotent(e in arb_idx(4)) {
        let once = simplify_idx(&e);
        let twice = simplify_idx(&once);
        prop_assert_eq!(once, twice);
    }
}

//! Randomized soundness tests for the compiler core.
//!
//! * The simplifier must preserve the value of every expression in every
//!   environment (checked with a small reference evaluator).
//! * The prover must be *sound*: whenever it says `Proven`, sampling the
//!   assumed variable ranges may never find a counterexample (and dually
//!   for `Disproven`).
//!
//! Expressions are generated with the workspace's deterministic
//! [`cortex_rng::Rng`] so every failure is reproducible.

use cortex_core::expr::{BinOp, BoolExpr, CmpOp, IdxBinOp, IdxExpr, UnaryOp, ValExpr, Var};
use cortex_core::prover::{ProofContext, Verdict};
use cortex_core::simplify::{simplify_bool, simplify_idx, simplify_val};
use cortex_rng::Rng;

const VARS: usize = 3;
const CASES: usize = 300;

fn var(i: usize) -> Var {
    Var::from_raw(i as u32)
}

/// Random integer index expressions over a small set of variables.
/// (No uninterpreted functions: their semantics need a structure; they
/// are exercised by the executor tests instead.)
fn arb_idx(rng: &mut Rng, depth: u32) -> IdxExpr {
    if depth == 0 || rng.below_usize(3) == 0 {
        return if rng.bool() {
            IdxExpr::Const(rng.range_i64(-20, 20))
        } else {
            IdxExpr::Var(var(rng.below_usize(VARS)))
        };
    }
    let op = *rng.pick(&[
        IdxBinOp::Add,
        IdxBinOp::Sub,
        IdxBinOp::Mul,
        IdxBinOp::Min,
        IdxBinOp::Max,
    ]);
    IdxExpr::Bin(
        op,
        Box::new(arb_idx(rng, depth - 1)),
        Box::new(arb_idx(rng, depth - 1)),
    )
}

fn arb_bool(rng: &mut Rng, depth: u32) -> BoolExpr {
    if depth == 0 || rng.below_usize(3) == 0 {
        let op = *rng.pick(&[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]);
        return BoolExpr::Cmp(op, arb_idx(rng, 2), arb_idx(rng, 2));
    }
    match rng.below_usize(3) {
        0 => BoolExpr::And(
            Box::new(arb_bool(rng, depth - 1)),
            Box::new(arb_bool(rng, depth - 1)),
        ),
        1 => BoolExpr::Or(
            Box::new(arb_bool(rng, depth - 1)),
            Box::new(arb_bool(rng, depth - 1)),
        ),
        _ => BoolExpr::Not(Box::new(arb_bool(rng, depth - 1))),
    }
}

/// Random value expressions (constants and arithmetic over index-driven
/// selects; loads are exercised by the executor).
fn arb_val(rng: &mut Rng, depth: u32) -> ValExpr {
    if depth == 0 || rng.below_usize(3) == 0 {
        return ValExpr::Const(rng.range_f32(-4.0, 4.0));
    }
    match rng.below_usize(3) {
        0 => {
            let op = *rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Max, BinOp::Min]);
            ValExpr::Bin(
                op,
                Box::new(arb_val(rng, depth - 1)),
                Box::new(arb_val(rng, depth - 1)),
            )
        }
        1 => {
            let op = *rng.pick(&[UnaryOp::Neg, UnaryOp::Tanh, UnaryOp::Sigmoid, UnaryOp::Relu]);
            ValExpr::Unary(op, Box::new(arb_val(rng, depth - 1)))
        }
        _ => ValExpr::Select {
            cond: arb_bool(rng, 1),
            then: Box::new(arb_val(rng, depth - 1)),
            otherwise: Box::new(arb_val(rng, depth - 1)),
        },
    }
}

fn arb_env(rng: &mut Rng) -> [i64; VARS] {
    [
        rng.range_i64(-15, 15),
        rng.range_i64(-15, 15),
        rng.range_i64(-15, 15),
    ]
}

// ----------------------------------------------------------------------
// Reference evaluators (no uninterpreted functions / loads / reductions).
// ----------------------------------------------------------------------

fn eval_idx(e: &IdxExpr, env: &[i64; VARS]) -> i64 {
    match e {
        IdxExpr::Const(c) => *c,
        IdxExpr::Var(v) => env[v.id() as usize],
        IdxExpr::Rt(_) | IdxExpr::Ufn(..) => unreachable!("not generated"),
        IdxExpr::Bin(op, a, b) => {
            let (x, y) = (eval_idx(a, env), eval_idx(b, env));
            match op {
                IdxBinOp::Add => x.wrapping_add(y),
                IdxBinOp::Sub => x.wrapping_sub(y),
                IdxBinOp::Mul => x.wrapping_mul(y),
                IdxBinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.div_euclid(y)
                    }
                }
                IdxBinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.rem_euclid(y)
                    }
                }
                IdxBinOp::Min => x.min(y),
                IdxBinOp::Max => x.max(y),
            }
        }
    }
}

fn eval_bool(e: &BoolExpr, env: &[i64; VARS]) -> bool {
    match e {
        BoolExpr::Cmp(op, a, b) => {
            let (x, y) = (eval_idx(a, env), eval_idx(b, env));
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        BoolExpr::IsLeaf(_) => unreachable!("not generated"),
        BoolExpr::And(a, b) => eval_bool(a, env) && eval_bool(b, env),
        BoolExpr::Or(a, b) => eval_bool(a, env) || eval_bool(b, env),
        BoolExpr::Not(a) => !eval_bool(a, env),
    }
}

fn eval_val(e: &ValExpr, env: &[i64; VARS]) -> f32 {
    match e {
        ValExpr::Const(c) => *c,
        ValExpr::Load { .. } | ValExpr::Sum { .. } => unreachable!("not generated"),
        ValExpr::Unary(op, a) => {
            let x = eval_val(a, env);
            match op {
                UnaryOp::Neg => -x,
                UnaryOp::Tanh => x.tanh(),
                UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
                UnaryOp::Relu => x.max(0.0),
                UnaryOp::Exp => x.exp(),
            }
        }
        ValExpr::Bin(op, a, b) => {
            let (x, y) = (eval_val(a, env), eval_val(b, env));
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Max => x.max(y),
                BinOp::Min => x.min(y),
            }
        }
        ValExpr::Select {
            cond,
            then,
            otherwise,
        } => {
            if eval_bool(cond, env) {
                eval_val(then, env)
            } else {
                eval_val(otherwise, env)
            }
        }
    }
}

#[test]
fn simplify_idx_preserves_value() {
    let mut rng = Rng::new(0x31);
    for _ in 0..CASES {
        let e = arb_idx(&mut rng, 4);
        let env = arb_env(&mut rng);
        let s = simplify_idx(&e);
        assert_eq!(eval_idx(&e, &env), eval_idx(&s, &env), "{e} vs {s}");
    }
}

#[test]
fn simplify_bool_preserves_value() {
    let mut rng = Rng::new(0x32);
    for _ in 0..CASES {
        let e = arb_bool(&mut rng, 3);
        let env = arb_env(&mut rng);
        let s = simplify_bool(&e);
        assert_eq!(eval_bool(&e, &env), eval_bool(&s, &env), "{e} vs {s}");
    }
}

#[test]
fn simplify_val_preserves_value() {
    let mut rng = Rng::new(0x33);
    for _ in 0..CASES {
        let e = arb_val(&mut rng, 4);
        let env = arb_env(&mut rng);
        let s = simplify_val(&e);
        let a = eval_val(&e, &env);
        let b = eval_val(&s, &env);
        // Folding uses the same f32 ops, so results match exactly unless
        // both are NaN (possible through Div… which we do generate via
        // sigmoid but never with NaN inputs; keep the guard anyway).
        assert!(
            a == b || (a.is_nan() && b.is_nan()),
            "{e} -> {s}: {a} vs {b}"
        );
    }
}

#[test]
fn prover_is_sound_on_comparisons() {
    let mut rng = Rng::new(0x34);
    for _ in 0..CASES {
        let a = arb_idx(&mut rng, 3);
        let b = arb_idx(&mut rng, 3);
        let lo = rng.range_i64(-8, 0);
        let width = rng.range_i64(1, 12);
        let hi = lo + width;
        let mut ctx = ProofContext::new();
        for i in 0..VARS {
            ctx.assume_var(var(i), lo, hi);
        }
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Ne,
        ] {
            let verdict = ctx.prove_cmp(op, &a, &b);
            if verdict == Verdict::Unknown {
                continue;
            }
            // Sample assignments within the assumed ranges; a sound
            // verdict can never be contradicted.
            for _ in 0..16 {
                let s = rng.below_u64(1_000_000);
                let env = [
                    lo + (s % width as u64) as i64,
                    lo + ((s / 7) % width as u64) as i64,
                    lo + ((s / 49) % width as u64) as i64,
                ];
                let (x, y) = (eval_idx(&a, &env), eval_idx(&b, &env));
                let holds = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                };
                match verdict {
                    Verdict::Proven => {
                        assert!(holds, "{a} {op:?} {b} proven but fails at {env:?}");
                    }
                    Verdict::Disproven => {
                        assert!(!holds, "{a} {op:?} {b} disproven but holds at {env:?}");
                    }
                    Verdict::Unknown => unreachable!(),
                }
            }
        }
    }
}

#[test]
fn simplification_is_idempotent() {
    let mut rng = Rng::new(0x35);
    for _ in 0..CASES {
        let e = arb_idx(&mut rng, 4);
        let once = simplify_idx(&e);
        let twice = simplify_idx(&once);
        assert_eq!(once, twice);
    }
}

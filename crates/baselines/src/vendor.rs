//! The metered "vendor library": black-box kernels with per-call
//! accounting.
//!
//! Frameworks built on cuDNN/cuBLAS/MKL invoke one opaque kernel per
//! operator (per node when eager, per dynamic batch otherwise). Each call
//! re-reads its parameters from global memory, requires contiguous inputs,
//! and costs a launch. [`VendorCtx`] wraps `cortex_tensor::kernels` with
//! exactly that cost structure, writing into the shared
//! [`Profile`] so baseline and Cortex
//! runs are compared on identical meters.

use cortex_backend::profile::{Profile, WaveStat};
use cortex_tensor::{kernels, Tensor};

/// Tracks live allocations to compute peak memory (Fig. 12).
#[derive(Debug, Default, Clone)]
pub struct MemoryMeter {
    live: u64,
    peak: u64,
    /// Reusable workspace (contiguity scratch), sized by its largest use —
    /// §7.6: "DyNet requires extra scratch space to ensure contiguous
    /// inputs to vendor library calls".
    pool: u64,
    /// When false (training-style frameworks), nothing is ever freed.
    pub allow_free: bool,
}

impl MemoryMeter {
    /// A meter that never frees (DyNet/Cavs keep intermediates for
    /// backprop).
    pub fn training() -> Self {
        MemoryMeter {
            allow_free: false,
            ..MemoryMeter::default()
        }
    }

    /// A meter that frees tensors when released (PyTorch eager, DyNet's
    /// simulated inference mode).
    pub fn inference() -> Self {
        MemoryMeter {
            allow_free: true,
            ..MemoryMeter::default()
        }
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: u64) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Records a release of `bytes` (no-op for training meters).
    pub fn free(&mut self, bytes: u64) {
        if self.allow_free {
            self.live = self.live.saturating_sub(bytes);
        }
    }

    /// Grows the reusable contiguity workspace to at least `bytes`.
    pub fn reserve_pool(&mut self, bytes: u64) {
        self.pool = self.pool.max(bytes);
    }

    /// Peak bytes observed (live allocations plus the workspace pool).
    pub fn peak(&self) -> u64 {
        self.peak + self.pool
    }
}

/// A metered vendor-library context.
#[derive(Debug)]
pub struct VendorCtx {
    /// The profile being filled.
    pub profile: Profile,
    /// Peak-memory meter.
    pub memory: MemoryMeter,
    /// When true, elementwise calls immediately following a reduction are
    /// folded into it (Cavs-style partial fusion).
    pub fuse_elementwise: bool,
    last_was_reduction: bool,
}

impl VendorCtx {
    /// Creates a context with the given memory policy and fusion behavior.
    pub fn new(memory: MemoryMeter, fuse_elementwise: bool) -> Self {
        VendorCtx {
            profile: Profile::new(),
            memory,
            fuse_elementwise,
            last_was_reduction: false,
        }
    }

    fn call(&mut self, is_reduction: bool) {
        if self.fuse_elementwise && !is_reduction && self.last_was_reduction {
            // Folded into the previous kernel: no extra launch.
        } else {
            self.profile.launches += 1;
            self.profile.host_api_calls += 1;
        }
        self.last_was_reduction = is_reduction;
    }

    /// Batched matrix product against a parameter: `Y[b] = W · X[b]`.
    ///
    /// One kernel call; the parameter is read once per call, inputs and
    /// outputs move through global memory.
    pub fn batched_matvec(&mut self, w: &Tensor, xs: &[&[f32]]) -> Vec<Vec<f32>> {
        self.call(true);
        let (m, k) = (w.shape().dim(0), w.shape().dim(1));
        let b = xs.len() as u64;
        let bytes = w.len() as u64 * 4 + b * k as u64 * 4 + b * m as u64 * 4;
        self.profile.param_bytes_read += w.len() as u64 * 4;
        self.profile.global_bytes_read += b * k as u64 * 4;
        self.profile.global_bytes_written += b * m as u64 * 4;
        let flops = b * 2 * (m as u64) * (k as u64);
        self.profile.flops += flops;
        self.profile.waves.push(WaveStat {
            flops,
            width: b,
            bytes,
        });
        xs.iter()
            .map(|x| (0..m).map(|i| kernels::dot(w.row(i), x)).collect())
            .collect()
    }

    /// Batched matrix–vector product where the matrix is *data* (MV-RNN's
    /// per-node composition matrices), so it is global traffic rather than
    /// parameter traffic.
    pub fn batched_dyn_matvec(&mut self, pairs: &[(&[f32], &[f32])], h: usize) -> Vec<Vec<f32>> {
        self.call(true);
        let b = pairs.len() as u64;
        let bytes = b * (h * h + 2 * h) as u64 * 4;
        self.profile.global_bytes_read += b * (h * h + h) as u64 * 4;
        self.profile.global_bytes_written += b * h as u64 * 4;
        let flops = b * 2 * (h as u64) * (h as u64);
        self.profile.flops += flops;
        self.profile.waves.push(WaveStat {
            flops,
            width: b,
            bytes,
        });
        pairs
            .iter()
            .map(|(m, x)| {
                (0..h)
                    .map(|i| {
                        let mut acc = 0.0;
                        for k in 0..h {
                            acc += m[i * h + k] * x[k];
                        }
                        acc
                    })
                    .collect()
            })
            .collect()
    }

    /// A batched elementwise kernel over `width` rows of `len` elements
    /// with roughly `ops_per_elem` flops each; `reads` input rows are
    /// consumed per output row. The closure computes the actual values.
    pub fn batched_elementwise<T>(
        &mut self,
        width: usize,
        len: usize,
        ops_per_elem: u64,
        reads: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        self.call(false);
        let b = width as u64;
        let flops = b * len as u64 * ops_per_elem;
        let bytes = b * (reads + 1) * len as u64 * 4;
        self.profile.flops += flops;
        self.profile.global_bytes_read += b * reads * len as u64 * 4;
        self.profile.global_bytes_written += b * len as u64 * 4;
        self.profile.waves.push(WaveStat {
            flops,
            width: b,
            bytes,
        });
        f()
    }

    /// A gather/scatter copy making vendor inputs contiguous (§7.2:
    /// "checks and memory copy operations have significant overheads").
    /// The destination workspace counts toward peak memory (§7.6).
    pub fn contiguity_copy(&mut self, bytes: u64) {
        self.profile.memcpy_bytes += bytes;
        self.profile.host_api_calls += 1;
        self.memory.reserve_pool(bytes);
        self.profile.allocated_bytes = self.memory.peak();
    }

    /// Allocates an intermediate of `bytes` (peak-memory accounting).
    pub fn alloc(&mut self, bytes: u64) {
        self.memory.alloc(bytes);
        self.profile.allocated_bytes = self.memory.peak();
    }

    /// Releases an intermediate of `bytes`.
    pub fn free(&mut self, bytes: u64) {
        self.memory.free(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_counts_launch_params_and_flops() {
        let mut ctx = VendorCtx::new(MemoryMeter::inference(), false);
        let w = Tensor::random(&[4, 4], 0.5, 1);
        let x = vec![1.0f32; 4];
        let ys = ctx.batched_matvec(&w, &[&x, &x]);
        assert_eq!(ys.len(), 2);
        assert_eq!(ctx.profile.launches, 1);
        assert_eq!(ctx.profile.param_bytes_read, 64);
        assert_eq!(ctx.profile.flops, 2 * 2 * 16);
        assert_eq!(ctx.profile.waves[0].width, 2);
    }

    #[test]
    fn partial_fusion_swallows_elementwise_after_reduction() {
        let mut fused = VendorCtx::new(MemoryMeter::inference(), true);
        let w = Tensor::random(&[2, 2], 0.5, 2);
        let x = vec![1.0f32; 2];
        fused.batched_matvec(&w, &[&x]);
        fused.batched_elementwise(1, 2, 1, 1, || ());
        assert_eq!(fused.profile.launches, 1, "elementwise folded into matvec");
        // Two elementwise in a row: the second costs a launch.
        fused.batched_elementwise(1, 2, 1, 1, || ());
        assert_eq!(fused.profile.launches, 2);

        let mut unfused = VendorCtx::new(MemoryMeter::inference(), false);
        unfused.batched_matvec(&w, &[&x]);
        unfused.batched_elementwise(1, 2, 1, 1, || ());
        assert_eq!(unfused.profile.launches, 2);
    }

    #[test]
    fn memory_meter_tracks_peak() {
        let mut m = MemoryMeter::inference();
        m.alloc(100);
        m.alloc(50);
        m.free(100);
        m.alloc(20);
        assert_eq!(m.peak(), 150);
        let mut t = MemoryMeter::training();
        t.alloc(100);
        t.free(100); // ignored
        t.alloc(50);
        assert_eq!(t.peak(), 150);
    }
}

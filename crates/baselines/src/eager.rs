//! PyTorch-like eager execution: per-node, per-operator kernel calls.
//!
//! §7.2: *"PyTorch does not perform automatic dynamic batching or kernel
//! fusion. Due to the lack of batching, it cannot exploit parallelism
//! across data structure nodes"* — every vendor call here has wave width
//! 1, and kernel-call counts grow with the node count. Memory is freed
//! eagerly (PyTorch's allocator releases dead intermediates), which is why
//! PyTorch has the lowest footprint in Fig. 12.

use cortex_backend::device::DeviceSpec;
use cortex_ds::RecStructure;
use cortex_models::Model;

use crate::cell::{CellKind, NodeState, WaveNode};
use crate::vendor::{MemoryMeter, VendorCtx};
use crate::FrameworkRun;

/// Runs `model` eagerly over `structure` on the device model.
///
/// # Panics
///
/// Panics if the model is not one of the known cells.
pub fn run(model: &Model, structure: &RecStructure, device: &DeviceSpec) -> FrameworkRun {
    let cell = CellKind::for_model(model)
        .unwrap_or_else(|| panic!("no eager cell for model {}", model.name));
    let h = model.hidden;
    let mut ctx = VendorCtx::new(MemoryMeter::inference(), false);
    ctx.alloc(model.params.total_bytes());
    let mut states = vec![NodeState::default(); structure.num_nodes()];
    for node in structure.post_order() {
        let wave = WaveNode::from_structure(structure, &[node]);
        let new_state = if structure.is_leaf(node) {
            cell.leaf_wave(&model.params, &wave, h, model.leaf, &mut ctx)
                .pop()
                .expect("one state per node")
        } else {
            let (mut sts, intermediates) =
                cell.internal_wave(&model.params, &wave, &states, h, &mut ctx);
            ctx.free(intermediates);
            sts.pop().expect("one state per node")
        };
        ctx.alloc(cell.state_bytes(h));
        states[node.index()] = new_state;
    }
    let hidden = states.into_iter().map(|s| s.h).collect();
    FrameworkRun::finish(hidden, ctx.profile, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_models::{reference, treegru, treelstm, LeafInit};

    #[test]
    fn eager_matches_reference() {
        let m = treelstm::tree_lstm(6, LeafInit::Embedding);
        let t = cortex_ds::datasets::random_binary_tree(8, 50);
        let want = reference::tree_lstm(&t, &m.params, 6, LeafInit::Embedding);
        let run = run(&m, &t, &DeviceSpec::v100());
        for n in t.iter() {
            for (g, w) in run.hidden[n.index()].iter().zip(&want.h[n.index()]) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn launches_grow_with_nodes() {
        let m = treegru::tree_gru(4, LeafInit::Embedding);
        let small = cortex_ds::datasets::random_binary_tree(5, 51);
        let large = cortex_ds::datasets::random_binary_tree(25, 52);
        let a = run(&m, &small, &DeviceSpec::v100());
        let b = run(&m, &large, &DeviceSpec::v100());
        assert!(b.profile.launches > 3 * a.profile.launches);
    }

    #[test]
    fn waves_have_width_one() {
        let m = treegru::tree_gru(4, LeafInit::Embedding);
        let t = cortex_ds::datasets::random_binary_tree(10, 53);
        let r = run(&m, &t, &DeviceSpec::v100());
        assert!(r.profile.waves.iter().all(|w| w.width == 1));
    }

    #[test]
    fn no_graph_or_batching_overheads() {
        let m = treegru::tree_gru(4, LeafInit::Embedding);
        let t = cortex_ds::datasets::random_binary_tree(6, 54);
        let r = run(&m, &t, &DeviceSpec::v100());
        assert!(r.profile.graph_construction_time.is_zero());
        assert!(r.profile.dynamic_batching_time.is_zero());
    }
}

//! DyNet-like execution: runtime dataflow-graph construction + on-the-fly
//! dynamic batching over the *operator* graph (Neubig et al. 2017b).
//!
//! DyNet's runtime, unlike Cavs and Cortex, works on a graph with one
//! vertex per tensor operator per data-structure node — "a much larger
//! graph" (§7.2, Table 6). Both the graph construction and the
//! signature/depth-based batching pass are executed for real here and
//! timed with wall clocks; execution then issues one vendor call per
//! operator batch with gather/scatter contiguity copies.

use std::time::Instant;

use cortex_backend::device::DeviceSpec;
use cortex_ds::{NodeId, RecStructure};
use cortex_models::Model;

use crate::cell::{CellKind, NodeState, WaveNode};
use crate::vendor::{MemoryMeter, VendorCtx};
use crate::FrameworkRun;

/// DyNet execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynetOptions {
    /// Simulate the inference-mode variant of Fig. 12 that releases
    /// intermediate tensors once consumed (stock DyNet keeps everything
    /// for backprop).
    pub inference_mode: bool,
}

/// One vertex of the runtime op graph.
#[derive(Debug, Clone, Copy)]
struct OpVertex {
    /// Operator signature (which op of the cell).
    sig: u16,
    /// Dependency depth (drives the batching agenda).
    depth: u32,
    /// Which structure node this op instance belongs to.
    node: u32,
}

/// Runs `model` under the DyNet execution model.
///
/// # Panics
///
/// Panics if the model is not one of the known cells.
pub fn run(
    model: &Model,
    structure: &RecStructure,
    device: &DeviceSpec,
    opts: DynetOptions,
) -> FrameworkRun {
    let cell = CellKind::for_model(model)
        .unwrap_or_else(|| panic!("no DyNet cell for model {}", model.name));
    let h = model.hidden;
    let meter = if opts.inference_mode {
        MemoryMeter::inference()
    } else {
        MemoryMeter::training()
    };
    let mut ctx = VendorCtx::new(meter, false);
    ctx.alloc(model.params.total_bytes());

    // --- 1. Runtime graph construction (measured). -------------------
    let ops_per_internal = cell.ops_per_internal(structure.max_children()) as u16;
    let t0 = Instant::now();
    let mut graph: Vec<OpVertex> = Vec::new();
    for node in structure.iter() {
        let height = structure.height(node);
        let n_ops = if structure.is_leaf(node) {
            1
        } else {
            ops_per_internal
        };
        for sig in 0..n_ops {
            graph.push(OpVertex {
                sig,
                depth: height * ops_per_internal as u32 + sig as u32,
                node: node.index() as u32,
            });
        }
    }
    ctx.profile.graph_construction_time = t0.elapsed();

    // --- 2. On-the-fly batching over the op graph (measured). --------
    // The published algorithm batches ops with identical signatures at
    // compatible depths; for uniform recursive cells this groups each
    // operator across all nodes of one structure level.
    let t1 = Instant::now();
    let mut order: Vec<usize> = (0..graph.len()).collect();
    order.sort_by_key(|&i| (graph[i].depth, graph[i].sig));
    let mut groups: Vec<(u16, Vec<u32>)> = Vec::new();
    for &i in &order {
        let v = graph[i];
        match groups.last_mut() {
            Some((sig, nodes))
                if *sig == v.sig
                    && graph[order[0]].depth <= v.depth // same agenda round
                    && nodes.last() != Some(&v.node) =>
            {
                nodes.push(v.node);
            }
            _ => groups.push((v.sig, vec![v.node])),
        }
    }
    ctx.profile.dynamic_batching_time = t1.elapsed();
    // `groups` is what the agenda would execute; our cell functions issue
    // the identical per-op batched calls level by level below, so the
    // group list is used only for its (measured) construction cost.
    drop(groups);

    // --- 3. Batched execution, one level at a time. -------------------
    let mut by_height: Vec<Vec<NodeId>> = Vec::new();
    for node in structure.iter() {
        let height = structure.height(node) as usize;
        if by_height.len() <= height {
            by_height.resize(height + 1, Vec::new());
        }
        by_height[height].push(node);
    }
    let mut states = vec![NodeState::default(); structure.num_nodes()];
    for (height, nodes) in by_height.iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        // Building the per-batch gather lists is part of the runtime
        // batching work (measured).
        let tg = Instant::now();
        let wave = WaveNode::from_structure(structure, nodes);
        ctx.profile.dynamic_batching_time += tg.elapsed();
        let new_states = if height == 0 {
            cell.leaf_wave(&model.params, &wave, h, model.leaf, &mut ctx)
        } else {
            let (sts, intermediates) =
                cell.internal_wave(&model.params, &wave, &states, h, &mut ctx);
            if opts.inference_mode {
                ctx.free(intermediates);
            }
            sts
        };
        for (st, &n) in new_states.into_iter().zip(nodes) {
            ctx.alloc(cell.state_bytes(h));
            states[n.index()] = st;
        }
    }
    let hidden = states.into_iter().map(|s| s.h).collect();
    FrameworkRun::finish(hidden, ctx.profile, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_models::{reference, treegru, treelstm, LeafInit};

    #[test]
    fn dynet_matches_reference() {
        let m = treegru::tree_gru(6, LeafInit::Embedding);
        let t = cortex_ds::datasets::random_binary_tree(12, 60);
        let want = reference::tree_gru(&t, &m.params, 6, LeafInit::Embedding, false);
        let r = run(&m, &t, &DeviceSpec::v100(), DynetOptions::default());
        for n in t.iter() {
            for (g, w) in r.hidden[n.index()].iter().zip(&want[n.index()]) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn batching_widens_waves_vs_eager() {
        let m = treelstm::tree_lstm(4, LeafInit::Zero);
        let f = cortex_ds::datasets::batch_of(
            |s| cortex_ds::datasets::random_binary_tree(10, s),
            8,
            61,
        );
        let dy = run(&m, &f, &DeviceSpec::v100(), DynetOptions::default());
        let eager = crate::eager::run(&m, &f, &DeviceSpec::v100());
        assert!(dy.profile.launches < eager.profile.launches / 2);
        assert!(dy.profile.waves.iter().any(|w| w.width > 4));
    }

    #[test]
    fn graph_and_batching_overheads_are_measured() {
        let m = treelstm::tree_lstm(4, LeafInit::Zero);
        let t = cortex_ds::datasets::random_binary_tree(40, 62);
        let r = run(&m, &t, &DeviceSpec::v100(), DynetOptions::default());
        assert!(r.profile.graph_construction_time.as_nanos() > 0);
        assert!(r.profile.dynamic_batching_time.as_nanos() > 0);
        assert!(
            r.profile.memcpy_bytes > 0,
            "contiguity copies must be counted"
        );
    }

    #[test]
    fn inference_mode_reduces_peak_memory() {
        let m = treelstm::tree_lstm(8, LeafInit::Zero);
        let t = cortex_ds::datasets::random_binary_tree(30, 63);
        let training = run(&m, &t, &DeviceSpec::v100(), DynetOptions::default());
        let inference = run(
            &m,
            &t,
            &DeviceSpec::v100(),
            DynetOptions {
                inference_mode: true,
            },
        );
        assert!(inference.profile.allocated_bytes < training.profile.allocated_bytes);
    }
}

//! Framework-level cell programs: the operator sequences PyTorch, DyNet
//! and Cavs execute for each model, built on the metered vendor library.
//!
//! A *cell* is the per-node computation expressed as the operator calls a
//! framework would issue (one matvec call per gate, one elementwise call
//! per combination). Each cell function processes a whole *wave* of nodes
//! through batched vendor calls — the eager (PyTorch) driver simply calls
//! it with waves of size one.
//!
//! The arithmetic matches `cortex_models::reference` exactly; unit tests
//! assert it, so all framework comparisons measure execution structure,
//! not numerics.

use cortex_backend::params::Params;
use cortex_ds::RecStructure;
use cortex_models::{mvrnn::MAT_VOCAB, LeafInit, Model};
use cortex_tensor::Tensor;

use crate::vendor::VendorCtx;

/// Per-node state carried through the recursion.
#[derive(Debug, Clone, Default)]
pub struct NodeState {
    /// Hidden / composition vector.
    pub h: Vec<f32>,
    /// LSTM cell state (empty otherwise).
    pub c: Vec<f32>,
    /// MV-RNN composition matrix, row-major (empty otherwise).
    pub mat: Vec<f32>,
}

impl NodeState {
    /// Bytes this state occupies on the device.
    pub fn bytes(&self) -> u64 {
        ((self.h.len() + self.c.len() + self.mat.len()) * 4) as u64
    }
}

/// One node of a wave: its children (indices into the global state table)
/// and word id.
#[derive(Debug, Clone)]
pub struct WaveNode {
    /// Children as structure-node indices.
    pub children: Vec<usize>,
    /// Word (input feature) id.
    pub word: u32,
}

impl WaveNode {
    /// Builds wave nodes from structure nodes.
    pub fn from_structure(s: &RecStructure, nodes: &[cortex_ds::NodeId]) -> Vec<WaveNode> {
        nodes
            .iter()
            .map(|&n| WaveNode {
                children: s.children(n).iter().map(|c| c.index()).collect(),
                word: s.word(n),
            })
            .collect()
    }
}

/// Which cell a model uses (dispatched by model name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// TreeFC.
    TreeFc,
    /// TreeRNN.
    TreeRnn,
    /// TreeGRU / SimpleTreeGRU / sequential GRU.
    TreeGru {
        /// SimpleTreeGRU's `h = (1-z) ∘ h'` variant.
        simple: bool,
    },
    /// TreeLSTM / sequential LSTM.
    TreeLstm,
    /// MV-RNN.
    MvRnn,
    /// DAG-RNN.
    DagRnn,
}

impl CellKind {
    /// Resolves the cell for a model built by `cortex_models`.
    pub fn for_model(model: &Model) -> Option<CellKind> {
        match model.name.as_str() {
            "TreeFC" => Some(CellKind::TreeFc),
            "TreeRNN" => Some(CellKind::TreeRnn),
            "TreeGRU" | "GRU" => Some(CellKind::TreeGru { simple: false }),
            "SimpleTreeGRU" => Some(CellKind::TreeGru { simple: true }),
            "TreeLSTM" | "LSTM" => Some(CellKind::TreeLstm),
            "MV-RNN" => Some(CellKind::MvRnn),
            "DAG-RNN" => Some(CellKind::DagRnn),
            _ => None,
        }
    }

    /// Framework operators issued per internal node — the size of the
    /// runtime dataflow graph DyNet builds (Table 6's graph-construction
    /// driver).
    pub fn ops_per_internal(&self, slots: usize) -> usize {
        match self {
            CellKind::TreeFc => 3,  // 2 matvec + combine
            CellKind::TreeRnn => 3, // hsum, matvec, combine
            CellKind::TreeGru { simple } => {
                // hsum, 2×(matvec+act), gate mul, matvec+act, final blend
                8 + usize::from(!*simple)
            }
            CellKind::TreeLstm => 8 + 2 * slots, // hsum, 3×(mv+act), per-child f, c, h
            CellKind::MvRnn => 7,                // 2 dyn-mv, 2 mv, combine, 2 matmat
            CellKind::DagRnn => 2 + slots,       // per-dir matvec, combine, (x precomputed)
        }
    }

    /// Computes leaf states for a wave of leaves (one gather call per
    /// state table).
    pub fn leaf_wave(
        &self,
        params: &Params,
        nodes: &[WaveNode],
        h: usize,
        leaf: LeafInit,
        ctx: &mut VendorCtx,
    ) -> Vec<NodeState> {
        let gather = |ctx: &mut VendorCtx, table: &Tensor, modulus: usize| -> Vec<Vec<f32>> {
            ctx.batched_elementwise(nodes.len(), h, 0, 1, || {
                nodes
                    .iter()
                    .map(|n| {
                        let row = if modulus == 0 {
                            n.word as usize
                        } else {
                            n.word as usize % modulus
                        };
                        table.as_slice()[row * table.shape().dims()[1..].iter().product::<usize>()
                            ..(row + 1) * table.shape().dims()[1..].iter().product::<usize>()]
                            .to_vec()
                    })
                    .collect()
            })
        };
        match self {
            CellKind::TreeLstm => {
                let (cs, hs) = match leaf {
                    LeafInit::Zero => (
                        vec![vec![0.0; h]; nodes.len()],
                        vec![vec![0.0; h]; nodes.len()],
                    ),
                    LeafInit::Embedding => (
                        gather(ctx, param(params, "Emb_c"), 0),
                        gather(ctx, param(params, "Emb_h"), 0),
                    ),
                };
                cs.into_iter()
                    .zip(hs)
                    .map(|(c, hv)| NodeState {
                        h: hv,
                        c,
                        mat: Vec::new(),
                    })
                    .collect()
            }
            CellKind::MvRnn => {
                let emb = param(params, "Emb");
                let emb_m = param(params, "Emb_M");
                let a = gather(ctx, emb, 0);
                let mats: Vec<Vec<f32>> = ctx.batched_elementwise(nodes.len(), h * h, 0, 1, || {
                    nodes
                        .iter()
                        .map(|n| {
                            let row = n.word as usize % MAT_VOCAB;
                            emb_m.as_slice()[row * h * h..(row + 1) * h * h].to_vec()
                        })
                        .collect()
                });
                a.into_iter()
                    .zip(mats)
                    .map(|(hv, mat)| NodeState {
                        h: hv,
                        c: Vec::new(),
                        mat,
                    })
                    .collect()
            }
            CellKind::DagRnn => {
                // Leaf (grid origin): h = tanh(x), with x = W_x·Emb[w] + b.
                let xs = dag_inputs(params, nodes, h, ctx);
                ctx.batched_elementwise(nodes.len(), h, 1, 1, || {
                    xs.into_iter()
                        .map(|x| NodeState {
                            h: x.iter().map(|v| v.tanh()).collect(),
                            ..NodeState::default()
                        })
                        .collect()
                })
            }
            _ => {
                let hs = match leaf {
                    LeafInit::Zero => vec![vec![0.0; h]; nodes.len()],
                    LeafInit::Embedding => gather(ctx, param(params, "Emb"), 0),
                };
                hs.into_iter()
                    .map(|hv| NodeState {
                        h: hv,
                        ..NodeState::default()
                    })
                    .collect()
            }
        }
    }

    /// Computes internal-node states for one wave via batched vendor
    /// calls, gathering children states (contiguity copies) as a vendor
    /// library requires. Returns the new states and the bytes of
    /// intermediate tensors the wave materialized.
    pub fn internal_wave(
        &self,
        params: &Params,
        nodes: &[WaveNode],
        states: &[NodeState],
        h: usize,
        ctx: &mut VendorCtx,
    ) -> (Vec<NodeState>, u64) {
        let b = nodes.len();
        let row_bytes = (h * 4) as u64;
        let mut intermediates = 0u64;
        let mut track = |ctx: &mut VendorCtx, rows: u64| {
            let bytes = rows * row_bytes;
            ctx.alloc(bytes);
            intermediates += bytes;
        };
        // Gather the children hidden states contiguously.
        let hsum: Vec<Vec<f32>> = {
            let total: u64 = nodes.iter().map(|n| n.children.len() as u64).sum();
            ctx.contiguity_copy(total * row_bytes);
            ctx.batched_elementwise(b, h, 1, 2, || {
                nodes
                    .iter()
                    .map(|n| {
                        let mut acc = states[n.children[0]].h.clone();
                        for &c in &n.children[1..] {
                            for (a, v) in acc.iter_mut().zip(&states[c].h) {
                                *a += v;
                            }
                        }
                        acc
                    })
                    .collect()
            })
        };
        track(ctx, b as u64);

        let sig = |x: f32| 1.0 / (1.0 + (-x).exp());
        match self {
            CellKind::TreeRnn => {
                let w = param(params, "W");
                let bias = param(params, "b");
                let refs: Vec<&[f32]> = hsum.iter().map(Vec::as_slice).collect();
                let mv = ctx.batched_matvec(w, &refs);
                track(ctx, b as u64);
                let out = ctx.batched_elementwise(b, h, 2, 2, || {
                    mv.iter()
                        .map(|row| {
                            row.iter()
                                .zip(bias.as_slice())
                                .map(|(x, bb)| (x + bb).tanh())
                                .collect::<Vec<f32>>()
                        })
                        .collect::<Vec<_>>()
                });
                (
                    out.into_iter()
                        .map(|hv| NodeState {
                            h: hv,
                            ..NodeState::default()
                        })
                        .collect(),
                    intermediates,
                )
            }
            CellKind::TreeFc => {
                let wl = param(params, "W_l");
                let wr = param(params, "W_r");
                let bias = param(params, "b");
                ctx.contiguity_copy(2 * b as u64 * row_bytes);
                let ls: Vec<&[f32]> = nodes
                    .iter()
                    .map(|n| states[n.children[0]].h.as_slice())
                    .collect();
                let rs: Vec<&[f32]> = nodes
                    .iter()
                    .map(|n| states[n.children[1]].h.as_slice())
                    .collect();
                let mvl = ctx.batched_matvec(wl, &ls);
                track(ctx, b as u64);
                let mvr = ctx.batched_matvec(wr, &rs);
                track(ctx, b as u64);
                let out = ctx.batched_elementwise(b, h, 3, 3, || {
                    mvl.iter()
                        .zip(&mvr)
                        .map(|(l, r)| {
                            l.iter()
                                .zip(r)
                                .zip(bias.as_slice())
                                .map(|((x, y), bb)| (x + y + bb).tanh())
                                .collect::<Vec<f32>>()
                        })
                        .collect::<Vec<_>>()
                });
                (
                    out.into_iter()
                        .map(|hv| NodeState {
                            h: hv,
                            ..NodeState::default()
                        })
                        .collect(),
                    intermediates,
                )
            }
            CellKind::TreeGru { simple } => {
                let refs: Vec<&[f32]> = hsum.iter().map(Vec::as_slice).collect();
                let gate = |ctx: &mut VendorCtx, wn: &str, bn: &str, refs: &[&[f32]]| {
                    let pre = ctx.batched_matvec(param(params, wn), refs);
                    let bias = param(params, bn);
                    ctx.batched_elementwise(refs.len(), h, 2, 1, || {
                        pre.iter()
                            .map(|row| {
                                row.iter()
                                    .zip(bias.as_slice())
                                    .map(|(x, bb)| sig(x + bb))
                                    .collect::<Vec<f32>>()
                            })
                            .collect::<Vec<_>>()
                    })
                };
                let r = gate(ctx, "U_r", "b_r", &refs);
                track(ctx, 2 * b as u64);
                let z = gate(ctx, "U_z", "b_z", &refs);
                track(ctx, 2 * b as u64);
                let gated: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 1, 2, || {
                    r.iter()
                        .zip(&hsum)
                        .map(|(rr, hs)| rr.iter().zip(hs).map(|(a, c)| a * c).collect())
                        .collect()
                });
                track(ctx, b as u64);
                let grefs: Vec<&[f32]> = gated.iter().map(Vec::as_slice).collect();
                let hp_pre = ctx.batched_matvec(param(params, "U_h"), &grefs);
                track(ctx, b as u64);
                let bh = param(params, "b_h");
                let hp: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 2, 1, || {
                    hp_pre
                        .iter()
                        .map(|row| {
                            row.iter()
                                .zip(bh.as_slice())
                                .map(|(x, bb)| (x + bb).tanh())
                                .collect()
                        })
                        .collect()
                });
                track(ctx, b as u64);
                let out: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 3, 3, || {
                    (0..b)
                        .map(|n| {
                            (0..h)
                                .map(|i| {
                                    let keep = (1.0 - z[n][i]) * hp[n][i];
                                    if *simple {
                                        keep
                                    } else {
                                        z[n][i] * hsum[n][i] + keep
                                    }
                                })
                                .collect()
                        })
                        .collect()
                });
                (
                    out.into_iter()
                        .map(|hv| NodeState {
                            h: hv,
                            ..NodeState::default()
                        })
                        .collect(),
                    intermediates,
                )
            }
            CellKind::TreeLstm => {
                let refs: Vec<&[f32]> = hsum.iter().map(Vec::as_slice).collect();
                let gate =
                    |ctx: &mut VendorCtx, wn: &str, bn: &str, refs: &[&[f32]], sigmoid: bool| {
                        let pre = ctx.batched_matvec(param(params, wn), refs);
                        let bias = param(params, bn);
                        ctx.batched_elementwise(refs.len(), h, 2, 1, || {
                            pre.iter()
                                .map(|row| {
                                    row.iter()
                                        .zip(bias.as_slice())
                                        .map(|(x, bb)| {
                                            if sigmoid {
                                                sig(x + bb)
                                            } else {
                                                (x + bb).tanh()
                                            }
                                        })
                                        .collect::<Vec<f32>>()
                                })
                                .collect::<Vec<_>>()
                        })
                    };
                let ig = gate(ctx, "U_i", "b_i", &refs, true);
                let og = gate(ctx, "U_o", "b_o", &refs, true);
                let ug = gate(ctx, "U_u", "b_u", &refs, false);
                track(ctx, 6 * b as u64);
                let max_slots = nodes.iter().map(|n| n.children.len()).max().unwrap_or(0);
                let mut fgs: Vec<Vec<Vec<f32>>> = Vec::new(); // [slot][node][i]
                for s in 0..max_slots {
                    ctx.contiguity_copy(b as u64 * row_bytes);
                    let hs: Vec<&[f32]> = nodes
                        .iter()
                        .map(|n| states[n.children[s]].h.as_slice())
                        .collect();
                    fgs.push(gate(ctx, "U_f", "b_f", &hs, true));
                    track(ctx, 2 * b as u64);
                }
                let c_new: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 4, 4, || {
                    (0..b)
                        .map(|n| {
                            (0..h)
                                .map(|i| {
                                    let mut acc = ig[n][i] * ug[n][i];
                                    for (s, f) in fgs.iter().enumerate() {
                                        acc += f[n][i] * states[nodes[n].children[s]].c[i];
                                    }
                                    acc
                                })
                                .collect()
                        })
                        .collect()
                });
                track(ctx, b as u64);
                let h_new: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 2, 2, || {
                    (0..b)
                        .map(|n| (0..h).map(|i| og[n][i] * c_new[n][i].tanh()).collect())
                        .collect()
                });
                (
                    h_new
                        .into_iter()
                        .zip(c_new)
                        .map(|(hv, cv)| NodeState {
                            h: hv,
                            c: cv,
                            mat: Vec::new(),
                        })
                        .collect(),
                    intermediates,
                )
            }
            CellKind::MvRnn => {
                ctx.contiguity_copy(2 * b as u64 * (h * h + h) as u64 * 4);
                let ba_pairs: Vec<(&[f32], &[f32])> = nodes
                    .iter()
                    .map(|n| {
                        (
                            states[n.children[1]].mat.as_slice(),
                            states[n.children[0]].h.as_slice(),
                        )
                    })
                    .collect();
                let ba = ctx.batched_dyn_matvec(&ba_pairs, h);
                track(ctx, b as u64);
                let ab_pairs: Vec<(&[f32], &[f32])> = nodes
                    .iter()
                    .map(|n| {
                        (
                            states[n.children[0]].mat.as_slice(),
                            states[n.children[1]].h.as_slice(),
                        )
                    })
                    .collect();
                let ab = ctx.batched_dyn_matvec(&ab_pairs, h);
                track(ctx, b as u64);
                let p1 = ctx.batched_matvec(
                    param(params, "W_1"),
                    &ba.iter().map(Vec::as_slice).collect::<Vec<_>>(),
                );
                let p2 = ctx.batched_matvec(
                    param(params, "W_2"),
                    &ab.iter().map(Vec::as_slice).collect::<Vec<_>>(),
                );
                track(ctx, 2 * b as u64);
                let bias = param(params, "b");
                let a_new: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 3, 3, || {
                    p1.iter()
                        .zip(&p2)
                        .map(|(x, y)| {
                            x.iter()
                                .zip(y)
                                .zip(bias.as_slice())
                                .map(|((u, v), bb)| (u + v + bb).tanh())
                                .collect()
                        })
                        .collect()
                });
                // A(n) = W_M1 · A_l + W_M2 · A_r (two batched matmat calls).
                let wm1 = param(params, "W_M1");
                let wm2 = param(params, "W_M2");
                let mats: Vec<Vec<f32>> = batched_matmat(ctx, wm1, wm2, nodes, states, h);
                ctx.alloc(b as u64 * (h * h * 4) as u64);
                intermediates += b as u64 * (h * h * 4) as u64;
                (
                    a_new
                        .into_iter()
                        .zip(mats)
                        .map(|(hv, mat)| NodeState {
                            h: hv,
                            c: Vec::new(),
                            mat,
                        })
                        .collect(),
                    intermediates,
                )
            }
            CellKind::DagRnn => {
                let xs = dag_inputs(params, nodes, h, ctx);
                track(ctx, b as u64);
                // Per-direction matvecs over present children.
                let mut acc = xs;
                let max_slots = nodes.iter().map(|n| n.children.len()).max().unwrap_or(0);
                for s in 0..max_slots {
                    let present: Vec<usize> =
                        (0..b).filter(|&n| nodes[n].children.len() > s).collect();
                    if present.is_empty() {
                        continue;
                    }
                    ctx.contiguity_copy(present.len() as u64 * row_bytes);
                    let hs: Vec<&[f32]> = present
                        .iter()
                        .map(|&n| states[nodes[n].children[s]].h.as_slice())
                        .collect();
                    let u = param(params, if s == 0 { "U_0" } else { "U_1" });
                    let mv = ctx.batched_matvec(u, &hs);
                    track(ctx, present.len() as u64);
                    for (slot_i, &n) in present.iter().enumerate() {
                        for i in 0..h {
                            acc[n][i] += mv[slot_i][i];
                        }
                    }
                }
                let out: Vec<Vec<f32>> = ctx.batched_elementwise(b, h, 1, 1, || {
                    acc.into_iter()
                        .map(|row| row.into_iter().map(|x| x.tanh()).collect())
                        .collect()
                });
                (
                    out.into_iter()
                        .map(|hv| NodeState {
                            h: hv,
                            ..NodeState::default()
                        })
                        .collect(),
                    intermediates,
                )
            }
        }
    }

    /// Bytes of persistent state produced per node.
    pub fn state_bytes(&self, h: usize) -> u64 {
        match self {
            CellKind::TreeLstm => (2 * h * 4) as u64,
            CellKind::MvRnn => ((h + h * h) * 4) as u64,
            _ => (h * 4) as u64,
        }
    }
}

fn param<'a>(params: &'a Params, name: &str) -> &'a Tensor {
    params
        .get(name)
        .unwrap_or_else(|| panic!("baseline: missing parameter '{name}'"))
}

/// DAG-RNN input transform `x = W_x · Emb[word] + b_x` for a wave.
fn dag_inputs(params: &Params, nodes: &[WaveNode], h: usize, ctx: &mut VendorCtx) -> Vec<Vec<f32>> {
    let emb = param(params, "Emb");
    let wx = param(params, "W_x");
    let bx = param(params, "b_x");
    let rows: Vec<&[f32]> = nodes.iter().map(|n| emb.row(n.word as usize)).collect();
    let mv = ctx.batched_matvec(wx, &rows);
    ctx.batched_elementwise(nodes.len(), h, 1, 1, || {
        mv.iter()
            .map(|row| row.iter().zip(bx.as_slice()).map(|(x, b)| x + b).collect())
            .collect()
    })
}

/// Two batched parameter×matrix products for the MV-RNN matrix recursion.
fn batched_matmat(
    ctx: &mut VendorCtx,
    wm1: &Tensor,
    wm2: &Tensor,
    nodes: &[WaveNode],
    states: &[NodeState],
    h: usize,
) -> Vec<Vec<f32>> {
    use cortex_backend::profile::WaveStat;
    let b = nodes.len() as u64;
    // Each call: one launch, parameter read once, per-node h×h in/out.
    for w in [wm1, wm2] {
        ctx.profile.launches += 1;
        ctx.profile.host_api_calls += 1;
        let bytes = w.len() as u64 * 4 + 2 * b * (h * h * 4) as u64;
        ctx.profile.param_bytes_read += w.len() as u64 * 4;
        ctx.profile.global_bytes_read += b * (h * h * 4) as u64;
        ctx.profile.global_bytes_written += b * (h * h * 4) as u64;
        let flops = b * 2 * (h as u64).pow(3);
        ctx.profile.flops += flops;
        ctx.profile.waves.push(WaveStat {
            flops,
            width: b,
            bytes,
        });
    }
    nodes
        .iter()
        .map(|n| {
            let (l, r) = (&states[n.children[0]].mat, &states[n.children[1]].mat);
            let mut out = vec![0.0f32; h * h];
            for i in 0..h {
                for j in 0..h {
                    let mut acc1 = 0.0;
                    for k in 0..h {
                        acc1 += wm1[[i, k]] * l[k * h + j];
                    }
                    let mut acc2 = 0.0;
                    for k in 0..h {
                        acc2 += wm2[[i, k]] * r[k * h + j];
                    }
                    out[i * h + j] = acc1 + acc2;
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::MemoryMeter;
    use cortex_models::treegru;

    #[test]
    fn cell_kind_dispatch() {
        let m = treegru::tree_gru(4, LeafInit::Zero);
        assert_eq!(
            CellKind::for_model(&m),
            Some(CellKind::TreeGru { simple: false })
        );
        let m = cortex_models::seq::seq_lstm(4);
        assert_eq!(CellKind::for_model(&m), Some(CellKind::TreeLstm));
    }

    #[test]
    fn ops_per_internal_counts_are_sane() {
        assert_eq!(CellKind::TreeFc.ops_per_internal(2), 3);
        assert!(CellKind::TreeLstm.ops_per_internal(2) > CellKind::TreeFc.ops_per_internal(2));
    }

    #[test]
    fn gru_wave_matches_reference_cell() {
        let m = treegru::tree_gru(4, LeafInit::Embedding);
        let mut ctx = VendorCtx::new(MemoryMeter::inference(), false);
        // Two leaves + one internal node.
        let t = cortex_ds::datasets::random_binary_tree(2, 0);
        let want = cortex_models::reference::tree_gru(&t, &m.params, 4, LeafInit::Embedding, false);
        let leaves: Vec<_> = t.iter().filter(|&n| t.is_leaf(n)).collect();
        let internal: Vec<_> = t.iter().filter(|&n| !t.is_leaf(n)).collect();
        let cell = CellKind::for_model(&m).unwrap();
        let mut states = vec![NodeState::default(); t.num_nodes()];
        let leaf_nodes = WaveNode::from_structure(&t, &leaves);
        for (st, &n) in cell
            .leaf_wave(&m.params, &leaf_nodes, 4, LeafInit::Embedding, &mut ctx)
            .into_iter()
            .zip(&leaves)
        {
            states[n.index()] = st;
        }
        let int_nodes = WaveNode::from_structure(&t, &internal);
        let (new_states, _) = cell.internal_wave(&m.params, &int_nodes, &states, 4, &mut ctx);
        for (st, &n) in new_states.into_iter().zip(&internal) {
            for (g, w) in st.h.iter().zip(&want[n.index()]) {
                assert!((g - w).abs() < 1e-5, "{g} vs {w}");
            }
        }
        assert!(ctx.profile.launches > 0);
    }
}

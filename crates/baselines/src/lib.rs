//! Baseline dynamic-NN frameworks for the Cortex evaluation (§7.2).
//!
//! The paper compares Cortex against PyTorch, DyNet, Cavs and GRNN. None
//! of those can run here, so this crate rebuilds their *execution models*
//! from their published designs, computing the **same numerics with the
//! same vendor kernels** (`cortex_tensor::kernels`, standing in for
//! cuBLAS/MKL/OpenBLAS) while metering exactly what each framework's
//! runtime does:
//!
//! * [`eager`] — PyTorch-like: per-node, per-operator eager execution.
//!   No batching (wave width 1), no fusion, one kernel call per operator
//!   per node, parameters re-read by every call.
//! * [`dynet`] — DyNet-like: constructs a runtime dataflow graph with one
//!   vertex per operator per node (*measured* wall-clock), runs the
//!   depth-based on-the-fly batching algorithm of Neubig et al. 2017b
//!   (*measured*), and executes one vendor call per operator per batch
//!   with gather/scatter copies to make inputs contiguous (§7.2's "Mem.
//!   mgmt" overhead). Keeps all intermediates (training-capable), with an
//!   inference-mode variant that releases them when consumed (Fig. 12).
//! * [`cavs`] — Cavs-like: one vertex function compiled once ("think like
//!   a vertex"), batched level-by-level over the input structure, with
//!   elementwise operators partially fused into the preceding reduction
//!   call (Table 1's "Partial" fusion) but still vendor calls + contiguity
//!   copies.
//! * [`grnn`] — GRNN-like: a hand-written persistent kernel for
//!   *sequential* LSTM/GRU only (Fig. 9): one launch, parameters pinned
//!   on-chip, one global barrier per step (lock-free or lock-based).
//!
//! Every framework's outputs are asserted equal to the pure-Rust
//! reference implementations (and hence to Cortex's compiled outputs),
//! so all latency differences come from the metered execution structure,
//! not from computing different things.

pub mod cavs;
pub mod cell;
pub mod dynet;
pub mod eager;
pub mod grnn;
pub mod vendor;

use cortex_backend::device::{DeviceSpec, LatencyEstimate};
use cortex_backend::profile::Profile;

/// The result of running a baseline framework.
#[derive(Debug, Clone)]
pub struct FrameworkRun {
    /// Hidden-state vectors per structure node (builder order).
    pub hidden: Vec<Vec<f32>>,
    /// Metered execution counters.
    pub profile: Profile,
    /// Device-model latency.
    pub latency: LatencyEstimate,
}

impl FrameworkRun {
    pub(crate) fn finish(hidden: Vec<Vec<f32>>, profile: Profile, device: &DeviceSpec) -> Self {
        let latency = device.latency(&profile);
        FrameworkRun {
            hidden,
            profile,
            latency,
        }
    }
}

//! Cavs-like execution: "think like a vertex" (Xu et al. 2018).
//!
//! Cavs separates the static vertex function (compiled once — its graph
//! has one vertex per *operator*, not per operator per node) from the
//! dynamic input structure, batching vertex executions level by level.
//! Compared to DyNet this removes the per-input graph-construction cost
//! and shrinks the batching problem to the data-structure graph; compared
//! to Cortex it still issues per-operator vendor calls (with partial
//! elementwise fusion — Table 1) and pays gather/scatter contiguity
//! copies, and it cannot specialize leaf checks (§7.2 notes the open
//! source version lacks specialization).

use std::time::Instant;

use cortex_backend::device::DeviceSpec;
use cortex_ds::{NodeId, RecStructure};
use cortex_models::Model;

use crate::cell::{CellKind, NodeState, WaveNode};
use crate::vendor::{MemoryMeter, VendorCtx};
use crate::FrameworkRun;

/// Runs `model` under the Cavs execution model.
///
/// # Panics
///
/// Panics if the model is not one of the known cells.
pub fn run(model: &Model, structure: &RecStructure, device: &DeviceSpec) -> FrameworkRun {
    let cell = CellKind::for_model(model)
        .unwrap_or_else(|| panic!("no Cavs cell for model {}", model.name));
    let h = model.hidden;
    // Training-capable: intermediates are kept (Fig. 12).
    let mut ctx = VendorCtx::new(MemoryMeter::training(), true);
    ctx.alloc(model.params.total_bytes());

    // --- Vertex-function "compilation": once, proportional to the cell's
    // operator count, not to the input size (measured).
    let t0 = Instant::now();
    let vertex_ops: Vec<u16> =
        (0..cell.ops_per_internal(structure.max_children()) as u16).collect();
    std::hint::black_box(&vertex_ops);
    ctx.profile.graph_construction_time = t0.elapsed();

    // --- Runtime batching over the *data-structure* graph (measured):
    // gather nodes into height levels, Cavs's scheduling unit.
    let t1 = Instant::now();
    let mut by_height: Vec<Vec<NodeId>> = Vec::new();
    for node in structure.iter() {
        let height = structure.height(node) as usize;
        if by_height.len() <= height {
            by_height.resize(height + 1, Vec::new());
        }
        by_height[height].push(node);
    }
    ctx.profile.dynamic_batching_time = t1.elapsed();

    // --- Batched vertex execution, level by level.
    let mut states = vec![NodeState::default(); structure.num_nodes()];
    for (height, nodes) in by_height.iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        // Per-level gather-list construction is runtime batching work
        // (measured), as in Cavs's scheduler.
        let tg = Instant::now();
        let wave = WaveNode::from_structure(structure, nodes);
        ctx.profile.dynamic_batching_time += tg.elapsed();
        let new_states = if height == 0 {
            cell.leaf_wave(&model.params, &wave, h, model.leaf, &mut ctx)
        } else {
            cell.internal_wave(&model.params, &wave, &states, h, &mut ctx)
                .0
        };
        for (st, &n) in new_states.into_iter().zip(nodes) {
            ctx.alloc(cell.state_bytes(h));
            states[n.index()] = st;
        }
    }
    let hidden = states.into_iter().map(|s| s.h).collect();
    FrameworkRun::finish(hidden, ctx.profile, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynet::{self, DynetOptions};
    use cortex_models::{reference, treefc, treegru, LeafInit};

    #[test]
    fn cavs_matches_reference() {
        let m = treefc::tree_fc(6, LeafInit::Embedding);
        let t = cortex_ds::datasets::perfect_binary_tree(4, 70);
        let want = reference::tree_fc(&t, &m.params, 6, LeafInit::Embedding);
        let r = run(&m, &t, &DeviceSpec::v100());
        for n in t.iter() {
            for (g, w) in r.hidden[n.index()].iter().zip(&want[n.index()]) {
                assert!((g - w).abs() < 1e-4, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn cavs_launches_fewer_kernels_than_dynet() {
        // Partial fusion folds elementwise ops into the preceding
        // reduction call.
        let m = treegru::tree_gru(4, LeafInit::Embedding);
        let t = cortex_ds::datasets::random_binary_tree(20, 71);
        let cavs = run(&m, &t, &DeviceSpec::v100());
        let dy = dynet::run(&m, &t, &DeviceSpec::v100(), DynetOptions::default());
        assert!(
            cavs.profile.launches < dy.profile.launches,
            "{} vs {}",
            cavs.profile.launches,
            dy.profile.launches
        );
    }

    #[test]
    fn cavs_graph_construction_is_input_independent() {
        let m = treegru::tree_gru(4, LeafInit::Embedding);
        let small = cortex_ds::datasets::random_binary_tree(4, 72);
        let large = cortex_ds::datasets::random_binary_tree(50, 73);
        let a = run(&m, &small, &DeviceSpec::v100());
        let b = run(&m, &large, &DeviceSpec::v100());
        // Vertex compilation is O(ops); allow generous slack for timer
        // noise but it must not scale with node count the way DyNet's
        // does. These are measured wall-clock micro-durations, so a
        // loaded machine can transiently invert them — retry before
        // declaring failure.
        let ok = (0..3).any(|_| {
            let dy_small = dynet::run(&m, &small, &DeviceSpec::v100(), DynetOptions::default());
            let dy_large = dynet::run(&m, &large, &DeviceSpec::v100(), DynetOptions::default());
            dy_large.profile.graph_construction_time >= dy_small.profile.graph_construction_time
        });
        assert!(
            ok,
            "DyNet graph construction should scale with node count (3 attempts)"
        );
        // Sanity: both Cavs runs measured something tiny.
        assert!(a.profile.graph_construction_time.as_micros() < 1000);
        assert!(b.profile.graph_construction_time.as_micros() < 1000);
    }
}

//! GRNN-like hand-optimized persistent RNN kernels (Holmes et al. 2019),
//! for the Fig. 9 comparison on *sequential* LSTM/GRU.
//!
//! GRNN runs the whole sequence in a single persistent kernel: weights
//! live in registers, each step reads the previous hidden state from
//! shared memory, and steps are separated by a device-wide barrier —
//! lock-free (Xiao & Feng 2010) in stock GRNN; the paper also measures a
//! lock-based variant for a fair comparison with Cortex (which uses the
//! lock-based one). The LSTM needs one barrier per step; the unrefactored
//! GRU's chained reductions need two, which GRNN's refactoring reduces to
//! match the LSTM.

use cortex_backend::device::DeviceSpec;
use cortex_backend::profile::{Profile, WaveStat};
use cortex_ds::{RecStructure, StructureKind};
use cortex_models::{reference, LeafInit, Model};

use crate::FrameworkRun;

/// Runs the persistent GRNN-style kernel for a sequential LSTM or GRU.
///
/// Pass [`DeviceSpec::v100`] for the lock-based barrier variant or
/// [`DeviceSpec::v100_lockfree_barrier`] for stock GRNN.
///
/// # Panics
///
/// Panics if `model` is not the sequential `"LSTM"`/`"GRU"` or the
/// structure is not a (batch of) sequence(s).
pub fn run(model: &Model, structure: &RecStructure, device: &DeviceSpec) -> FrameworkRun {
    assert_eq!(
        structure.kind(),
        StructureKind::Sequence,
        "GRNN persistent kernels only support sequences"
    );
    let h = model.hidden as u64;
    let batch = structure.roots().len() as u64;
    let steps = structure.max_height() as u64; // internal steps per sequence
    let (hidden, gates, barriers_per_step): (Vec<Vec<f32>>, u64, u64) = match model.name.as_str() {
        "LSTM" => {
            let r =
                reference::tree_lstm(structure, &model.params, model.hidden, LeafInit::Embedding);
            (r.h, 4, 1)
        }
        // GRNN applies its refactoring to the GRU, bringing it to one
        // barrier per step like the LSTM.
        "GRU" => {
            let r = reference::tree_gru(
                structure,
                &model.params,
                model.hidden,
                LeafInit::Embedding,
                false,
            );
            (r, 3, 1)
        }
        other => panic!("GRNN has hand-optimized kernels only for LSTM/GRU, not {other}"),
    };

    let mut profile = Profile::new();
    profile.launches = 1; // the persistent kernel
    profile.host_api_calls = 1;
    profile.barriers_global = steps * barriers_per_step;
    // Weights persist on-chip: read exactly once.
    profile.param_bytes_read = gates * h * h * 4 + gates * h * 4;
    // Per step and sequence: read previous state, write new state.
    let state_words = if model.name == "LSTM" { 2 * h } else { h };
    profile.global_bytes_read = steps * batch * state_words * 4;
    profile.global_bytes_written = (steps + 1) * batch * state_words * 4;
    let flops_per_step = batch * gates * 2 * h * h;
    profile.flops = steps * flops_per_step;
    let bytes_per_step = 2 * batch * state_words * 4; // read prev, write new
    profile.waves = (0..steps)
        .map(|_| WaveStat {
            flops: flops_per_step,
            width: batch,
            bytes: bytes_per_step,
        })
        .collect();
    profile.allocated_bytes = model.params.total_bytes() + (steps + 1) * batch * state_words * 4;

    FrameworkRun::finish(hidden, profile, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_ds::datasets;
    use cortex_models::seq;

    #[test]
    fn grnn_lstm_outputs_match_reference() {
        let m = seq::seq_lstm(6);
        let s = datasets::sequence(20, 80);
        let r = run(&m, &s, &DeviceSpec::v100_lockfree_barrier());
        let want = reference::tree_lstm(&s, &m.params, 6, LeafInit::Embedding);
        assert_eq!(r.hidden, want.h);
        assert_eq!(r.profile.launches, 1);
    }

    #[test]
    fn lock_free_barrier_is_faster() {
        let m = seq::seq_gru(8);
        let s = datasets::batch_of(|x| datasets::sequence(100, x), 10, 81);
        let free = run(&m, &s, &DeviceSpec::v100_lockfree_barrier());
        let locked = run(&m, &s, &DeviceSpec::v100());
        assert!(free.latency.total_s < locked.latency.total_s);
        assert_eq!(free.profile.barriers_global, 99);
    }

    #[test]
    fn rejects_trees() {
        let m = seq::seq_lstm(4);
        let t = datasets::random_binary_tree(5, 82);
        assert!(std::panic::catch_unwind(|| run(&m, &t, &DeviceSpec::v100())).is_err());
    }
}

//! A tiny, dependency-free, deterministic PRNG used across the workspace.
//!
//! The reproduction needs reproducible synthetic datasets and parameter
//! initializations, not cryptographic quality. [`Rng`] is SplitMix64
//! (Steele, Lea, Flood 2014): a 64-bit state advanced by a Weyl sequence
//! and finalized with a murmur-style mixer — passes BigCrush, one `u64` of
//! output per three multiplications, and identical on every platform.
//!
//! # Example
//!
//! ```
//! use cortex_rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.uniform_f32(0.5);
//! assert!((-0.5..0.5).contains(&x));
//! ```

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        // Pre-mix the seed so adjacent seeds (0, 1, 2, …) produce
        // uncorrelated streams from the very first draw.
        let mut rng = Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        rng.next_u64();
        rng
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64(0)");
        // Multiply-shift (Lemire); the tiny modulo bias of the plain
        // widening reduction is irrelevant for workload generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u32(&mut self, n: u32) -> u32 {
        self.below_u64(n as u64) as u32
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64({lo}, {hi})");
        lo.wrapping_add(self.below_u64(hi.abs_diff(lo)) as i64)
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize({lo}, {hi})");
        lo + self.below_usize(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        // 24 mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniform `f32` in `[-bound, bound)`.
    pub fn uniform_f32(&mut self, bound: f32) -> f32 {
        (self.f32() * 2.0 - 1.0) * bound
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.f32() * (hi - lo)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let xs: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
        let zs: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below_usize(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = Rng::new(2);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_near_zero() {
        let mut r = Rng::new(3);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.uniform_f32(1.0) as f64).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_endpoints() {
        let mut r = Rng::new(4);
        for _ in 0..100 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let u = r.range_usize(3, 4);
            assert_eq!(u, 3);
        }
    }
}

//! Deterministic fault injection for the serving front.
//!
//! Builds [`FaultHook`]s for [`cortex_backend::exec::Engine::set_fault_hook`] /
//! [`Batcher::set_fault_hook`](crate::Batcher::set_fault_hook) from the
//! in-repo deterministic RNG: same seed, same request stream → the same
//! faults at the same sites, every run, on every platform. Three shapes:
//!
//! * **Random pressure** ([`FaultInjector::with_rates`]): every
//!   instrumented site draws against `p_err`/`p_panic` — the
//!   model-based suite's background noise.
//! * **Targeted poisoning** ([`FaultInjector::poison_nodes`]): fault
//!   only the request with a given node count, at every one of its
//!   launches — a *sticky* culprit that still faults when chunk
//!   bisection re-runs it solo, which is exactly what the isolation
//!   machinery must prove it can contain.
//! * **Plan-path outage** ([`FaultInjector::always`] at
//!   [`FaultSite::Launch`]): launch sites exist only in the pc (ExecPlan)
//!   runtime, so an always-faulting launch hook emulates a broken
//!   lowered plan whose `interp` oracle still works — the
//!   circuit-breaker demotion scenario.
//!
//! Injected panics are real unwinds; [`silence_injected_panics`]
//! installs a process-wide panic-hook filter (once) that keeps them out
//! of test output while leaving genuine panics loud.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Once;

use cortex_backend::exec::{FaultAction, FaultHook, FaultSite, InjectedFault, InjectedPanic};
use cortex_rng::Rng;

/// Live counters of a running injector, shared with the hook.
#[derive(Debug, Clone, Default)]
pub struct FaultHandle {
    consulted: Rc<Cell<u64>>,
    fired: Rc<Cell<u64>>,
}

impl FaultHandle {
    /// How many instrumented sites the hook has been consulted at.
    pub fn consulted(&self) -> u64 {
        self.consulted.get()
    }

    /// How many faults the hook has raised.
    pub fn fired(&self) -> u64 {
        self.fired.get()
    }
}

/// Which sites an injector applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteFilter {
    All,
    LaunchOnly,
    GemmOnly,
    /// Launches of the one request with this node count.
    NodesExactly(usize),
}

impl SiteFilter {
    fn matches(self, site: FaultSite) -> bool {
        match (self, site) {
            (SiteFilter::All, _) => true,
            (SiteFilter::LaunchOnly, FaultSite::Launch { .. }) => true,
            (SiteFilter::GemmOnly, FaultSite::Gemm { .. }) => true,
            (SiteFilter::NodesExactly(n), FaultSite::Launch { nodes }) => nodes == n,
            _ => false,
        }
    }
}

/// A deterministic fault plan: seeded RNG, per-site fault rates, an
/// optional site filter, and an optional budget of fires.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    rng: Rng,
    p_err: f64,
    p_panic: f64,
    filter: SiteFilter,
    budget: Option<u64>,
}

impl FaultInjector {
    /// An injector that never fires (add rates or a target).
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            rng: Rng::new(seed),
            p_err: 0.0,
            p_panic: 0.0,
            filter: SiteFilter::All,
            budget: None,
        }
    }

    /// Random pressure: each matching site independently raises a typed
    /// error with probability `p_err`, a panic with `p_panic`.
    pub fn with_rates(mut self, p_err: f64, p_panic: f64) -> Self {
        self.p_err = p_err;
        self.p_panic = p_panic;
        self
    }

    /// Deterministic outage: every matching site raises `action`.
    pub fn always(mut self, action: FaultAction) -> Self {
        match action {
            FaultAction::Err => {
                self.p_err = 1.0;
                self.p_panic = 0.0;
            }
            FaultAction::Panic => {
                self.p_err = 0.0;
                self.p_panic = 1.0;
            }
        }
        self
    }

    /// Restrict to kernel-launch sites (pc runtime only).
    pub fn launches_only(mut self) -> Self {
        self.filter = SiteFilter::LaunchOnly;
        self
    }

    /// Restrict to wave-GEMM flush sites (both runtimes, whole batch).
    pub fn gemms_only(mut self) -> Self {
        self.filter = SiteFilter::GemmOnly;
        self
    }

    /// Sticky culprit: fault every launch of the request whose input has
    /// exactly `nodes` nodes (give the poisoned request a unique size).
    pub fn poison_nodes(mut self, nodes: usize) -> Self {
        self.filter = SiteFilter::NodesExactly(nodes);
        self
    }

    /// Stop after `n` fires (the fault "heals" afterwards — transient
    /// faults for retry/bisection tests).
    pub fn budget(mut self, n: u64) -> Self {
        self.budget = Some(n);
        self
    }

    /// Splits this fault plan into `n` independent per-shard hooks with
    /// deterministically derived seeds: each shard of a
    /// [`Router`](crate::Router) gets the same rates/filter/budget but
    /// its own fault stream, so shard A's traffic never perturbs the
    /// faults shard B sees — the router-level model-based suite depends
    /// on that isolation for reproducibility across placements.
    pub fn into_shard_hooks(self, n: usize) -> Vec<(FaultHook, FaultHandle)> {
        (0..n)
            .map(|i| {
                let derived = self
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                FaultInjector {
                    rng: Rng::new(derived),
                    ..self.clone()
                }
                .into_hook()
            })
            .collect()
    }

    /// Builds the hook plus a counter handle the test keeps.
    pub fn into_hook(self) -> (FaultHook, FaultHandle) {
        let handle = FaultHandle::default();
        let counters = handle.clone();
        let FaultInjector {
            seed: _,
            mut rng,
            p_err,
            p_panic,
            filter,
            mut budget,
        } = self;
        let hook: FaultHook = Rc::new(std::cell::RefCell::new(move |site: FaultSite| {
            if !filter.matches(site) {
                return None;
            }
            counters.consulted.set(counters.consulted.get() + 1);
            if budget == Some(0) {
                return None;
            }
            // One draw per consulted site keeps the stream aligned with
            // the site sequence regardless of what fires.
            let draw = rng.f64();
            let action = if draw < p_panic {
                Some(FaultAction::Panic)
            } else if draw < p_panic + p_err {
                Some(FaultAction::Err)
            } else {
                None
            };
            if action.is_some() {
                counters.fired.set(counters.fired.get() + 1);
                if let Some(b) = &mut budget {
                    *b -= 1;
                }
            }
            action
        }));
        (hook, handle)
    }
}

/// Installs (once, process-wide) a panic-hook filter that suppresses the
/// default "thread panicked" report for *injected* faults — their
/// unwinds are expected and caught — while forwarding every genuine
/// panic to the previous hook unchanged. Call from any test that injects
/// [`FaultAction::Panic`].
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().is::<InjectedPanic>() || info.payload().is::<InjectedFault>();
            if !injected {
                prev(info);
            }
        }));
    });
}

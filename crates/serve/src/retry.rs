//! Budgeted, deterministic retry for faulted requests.
//!
//! The [`Router`](crate::Router) re-dispatches a request whose leg
//! failed with a *fault-shaped* error ([`ServeError::EngineFault`],
//! [`ServeError::Poisoned`], [`ServeError::ResultExpired`]) to a
//! healthy sibling shard, after a deterministic exponential backoff
//! read off the injected [`Clock`](crate::Clock) — no wall-clock
//! sleeps, no jitter, so every retry schedule is reproducible under a
//! [`TestClock`](crate::TestClock). When the budget runs out the ticket
//! resolves [`ServeError::RetriesExhausted`] carrying the final
//! attempt's error.
//!
//! [`ServeError::EngineFault`]: crate::ServeError::EngineFault
//! [`ServeError::Poisoned`]: crate::ServeError::Poisoned
//! [`ServeError::ResultExpired`]: crate::ServeError::ResultExpired
//! [`ServeError::RetriesExhausted`]: crate::ServeError::RetriesExhausted

use std::time::Duration;

/// How many dispatches a request gets and how long to wait between
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dispatch budget, the initial dispatch included: 1 means
    /// never retry; 3 means up to two re-dispatches after faults.
    /// (Hedge duplicates don't count — they are concurrency, not
    /// retries.)
    pub max_attempts: u32,
    /// Backoff before the first re-dispatch; doubles per subsequent
    /// attempt. `Duration::ZERO` retries immediately at the next pump.
    pub backoff: Duration,
    /// Ceiling on the doubled backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Whether a request that has already been dispatched `attempts`
    /// times may be dispatched again.
    pub fn allows(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// Deterministic exponential backoff before re-dispatching a
    /// request whose `attempts`-th dispatch just failed (1-based):
    /// `backoff × 2^(attempts−1)`, saturating, capped at
    /// [`RetryPolicy::max_backoff`].
    pub fn backoff_for(&self, attempts: u32) -> Duration {
        let doublings = attempts.saturating_sub(1).min(32);
        let backed = self
            .backoff
            .saturating_mul(1u32.checked_shl(doublings).unwrap_or(u32::MAX));
        backed.min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(35), "capped");
        assert_eq!(p.backoff_for(60), Duration::from_millis(35), "no overflow");
    }

    #[test]
    fn budget_counts_the_initial_dispatch() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.allows(1), "one dispatch made: two left");
        assert!(p.allows(2));
        assert!(!p.allows(3), "budget spent");
        let never = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(!never.allows(1), "max_attempts 1 never retries");
    }

    #[test]
    fn zero_backoff_is_immediate() {
        let p = RetryPolicy {
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Duration::ZERO);
        assert_eq!(p.backoff_for(7), Duration::ZERO);
    }
}

//! Injectable time for the serving front.
//!
//! The [`Batcher`](crate::Batcher)'s flush-deadline policy, per-request
//! deadlines, and circuit-breaker reset window all read time through one
//! [`Clock`] trait instead of scattering `Instant::now()` calls through
//! `submit`/`poll` (which an earlier version did — untestable without
//! sleeping). Production uses [`MonotonicClock`]; tests and the
//! fault-injection harness drive a [`TestClock`] by hand, which makes
//! every deadline scenario deterministic.

use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A monotonic time source. `now()` is a duration since an arbitrary
/// fixed epoch (the clock's creation); only differences are meaningful.
pub trait Clock {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// Shared handles read the same time: the [`Router`](crate::Router)
/// hands one clock to every shard batcher this way.
impl<C: Clock + ?Sized> Clock for Rc<C> {
    fn now(&self) -> Duration {
        (**self).now()
    }
}

/// The production clock: wall time elapsed since construction.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock(Instant);

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock(Instant::now())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.0.elapsed()
    }
}

/// A manually driven clock. Cloning shares the underlying time, so a
/// test holds one handle while the [`Batcher`](crate::Batcher) reads the
/// other:
///
/// ```
/// use cortex_serve::{Clock, TestClock};
/// use std::time::Duration;
///
/// let clock = TestClock::new();
/// let handle = clock.clone();
/// handle.advance(Duration::from_millis(5));
/// assert_eq!(clock.now(), Duration::from_millis(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TestClock(Rc<Cell<Duration>>);

impl TestClock {
    /// A clock frozen at its epoch.
    pub fn new() -> Self {
        TestClock::default()
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.0.set(self.0.get() + d);
    }

    /// Jumps time to `t` past the epoch.
    pub fn set(&self, t: Duration) {
        self.0.set(t);
    }
}

impl Clock for TestClock {
    fn now(&self) -> Duration {
        self.0.get()
    }
}

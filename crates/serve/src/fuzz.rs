//! Adversarial structure fuzzing for the compile pipeline.
//!
//! Mirrors [`crate::faults`]: a seeded, dependency-free generator built
//! on the in-repo deterministic RNG — same seed, same hostile inputs,
//! every run, on every platform. Where the fault injector attacks the
//! *runtime* (errors and panics at instrumented sites), the structure
//! fuzzer attacks the *intake*: it emits raw structure parts the way an
//! untrusted client would wire them — cycles, self-loops, dangling
//! child ids, mismatched tables, fan-out violations, over-wide and
//! over-deep shapes — interleaved with well-formed trees, sequences and
//! DAGs so a suite can prove both directions at once:
//!
//! * every malformed case is refused with a **typed error**
//!   ([`StructureError`] at [`RecStructure::from_parts`], or
//!   `ExecError`/`ServeError` at engine/batcher admission) — never a
//!   panic;
//! * every accepted case executes **bit-identically** on the lowered
//!   ExecPlan runtime and the `interp` oracle.
//!
//! The generator rotates deterministically through [`SHAPES`] case
//! shapes while drawing sizes, arities and words from the RNG, so a
//! run of `SHAPES` consecutive cases covers every attack class and two
//! runs with the same seed are identical.

use cortex_ds::datasets::VOCAB_SIZE;
use cortex_ds::{NodeId, RecStructure, StructureError, StructureKind};
use cortex_rng::Rng;

/// Number of distinct case shapes [`StructureFuzzer::next_case`]
/// rotates through before repeating.
pub const SHAPES: usize = 12;

/// One generated input: raw structure *parts*, exactly as an untrusted
/// client would hand them over — no validation has happened yet.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Stable name of the attack class, for test diagnostics.
    pub label: &'static str,
    /// Claimed structure kind.
    pub kind: StructureKind,
    /// Per-node child lists (may be cyclic, dangling, or over-wide).
    pub children: Vec<Vec<NodeId>>,
    /// Per-node words (may disagree in length with `children`).
    pub words: Vec<u32>,
    /// Whether [`RecStructure::from_parts`] must refuse this case.
    ///
    /// `false` means the parts are structurally well-formed; admission
    /// may still refuse them later (arity/size/depth/budget limits at
    /// the engine), but construction must succeed.
    pub expect_malformed: bool,
}

impl FuzzCase {
    /// Runs the case through the validating constructor.
    pub fn build(&self) -> Result<RecStructure, StructureError> {
        RecStructure::from_parts(self.kind, self.children.clone(), self.words.clone())
    }
}

/// Deterministic generator of hostile (and control) structure parts.
#[derive(Debug, Clone)]
pub struct StructureFuzzer {
    rng: Rng,
    max_leaves: usize,
    next_shape: usize,
}

impl StructureFuzzer {
    /// New fuzzer; `seed` fully determines the case stream.
    pub fn new(seed: u64) -> Self {
        StructureFuzzer {
            rng: Rng::new(seed ^ 0x5f3759df_u64),
            max_leaves: 12,
            next_shape: 0,
        }
    }

    /// Caps the leaf count of generated trees (default 12, min 2).
    pub fn with_max_leaves(mut self, max_leaves: usize) -> Self {
        self.max_leaves = max_leaves.max(2);
        self
    }

    /// Generates `n` cases, rotating through every shape in order.
    pub fn cases(&mut self, n: usize) -> Vec<FuzzCase> {
        (0..n).map(|_| self.next_case()).collect()
    }

    /// Generates the next case; shape rotates, sizes are random.
    pub fn next_case(&mut self) -> FuzzCase {
        let shape = self.next_shape;
        self.next_shape = (shape + 1) % SHAPES;
        match shape {
            0 => self.valid_tree(),
            1 => self.valid_sequence(),
            2 => self.valid_dag(),
            3 => self.cycle(),
            4 => self.self_loop(),
            5 => self.unknown_child(),
            6 => self.length_mismatch(),
            7 => self.empty(),
            8 => self.shared_child_tree(),
            9 => self.sequence_fan_out(),
            10 => self.deep_chain(),
            _ => self.wide_arity(),
        }
    }

    fn word(&mut self) -> u32 {
        self.rng.below_u32(VOCAB_SIZE)
    }

    /// Random binary tree in children-before-parents order: combine two
    /// random roots under a fresh parent until one root remains.
    fn tree_parts(&mut self, leaves: usize) -> (Vec<Vec<NodeId>>, Vec<u32>) {
        let mut children: Vec<Vec<NodeId>> = (0..leaves).map(|_| Vec::new()).collect();
        let mut words: Vec<u32> = (0..leaves).map(|_| self.word()).collect();
        let mut roots: Vec<u32> = (0..leaves as u32).collect();
        while roots.len() > 1 {
            let a = roots.swap_remove(self.rng.below_usize(roots.len()));
            let b = roots.swap_remove(self.rng.below_usize(roots.len()));
            let id = children.len() as u32;
            children.push(vec![NodeId::new(a), NodeId::new(b)]);
            words.push(self.word());
            roots.push(id);
        }
        (children, words)
    }

    fn leaves(&mut self) -> usize {
        2 + self.rng.below_usize(self.max_leaves - 1)
    }

    /// A well-formed random full-binary tree: the control case every
    /// plan admits.
    pub fn valid_tree(&mut self) -> FuzzCase {
        let leaves = self.leaves();
        let (children, words) = self.tree_parts(leaves);
        FuzzCase {
            label: "valid_tree",
            kind: StructureKind::Tree,
            children,
            words,
            expect_malformed: false,
        }
    }

    fn valid_sequence(&mut self) -> FuzzCase {
        let len = self.leaves();
        let children = (0..len)
            .map(|i| {
                if i == 0 {
                    Vec::new()
                } else {
                    vec![NodeId::new(i as u32 - 1)]
                }
            })
            .collect();
        let words = (0..len).map(|_| self.word()).collect();
        FuzzCase {
            label: "valid_sequence",
            kind: StructureKind::Sequence,
            children,
            words,
            expect_malformed: false,
        }
    }

    /// Diamond: two internals share one leaf — legal only under `Dag`.
    fn valid_dag(&mut self) -> FuzzCase {
        let children = vec![
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec![NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(3), NodeId::new(4)],
        ];
        let words = (0..children.len()).map(|_| self.word()).collect();
        FuzzCase {
            label: "valid_dag",
            kind: StructureKind::Dag,
            children,
            words,
            expect_malformed: false,
        }
    }

    /// Two internals listing each other as children.
    fn cycle(&mut self) -> FuzzCase {
        let mut case = self.valid_tree();
        case.label = "cycle";
        case.expect_malformed = true;
        let n = case.children.len() as u32;
        case.children.push(vec![NodeId::new(n + 1)]);
        case.children.push(vec![NodeId::new(n)]);
        case.words.push(self.word());
        case.words.push(self.word());
        case
    }

    fn self_loop(&mut self) -> FuzzCase {
        let mut case = self.valid_tree();
        case.label = "self_loop";
        case.expect_malformed = true;
        let victim = self.rng.below_usize(case.children.len());
        case.children[victim].push(NodeId::new(victim as u32));
        case
    }

    /// A child id pointing past the end of the node table.
    fn unknown_child(&mut self) -> FuzzCase {
        let mut case = self.valid_tree();
        case.label = "unknown_child";
        case.expect_malformed = true;
        let n = case.children.len() as u32;
        let victim = self.rng.below_usize(case.children.len());
        case.children[victim].push(NodeId::new(n + self.rng.below_u32(100)));
        case
    }

    fn length_mismatch(&mut self) -> FuzzCase {
        let mut case = self.valid_tree();
        case.label = "length_mismatch";
        case.expect_malformed = true;
        if self.rng.below_u32(2) == 0 {
            case.words.pop();
        } else {
            case.words.push(self.word());
        }
        case
    }

    fn empty(&mut self) -> FuzzCase {
        FuzzCase {
            label: "empty",
            kind: StructureKind::Tree,
            children: Vec::new(),
            words: Vec::new(),
            expect_malformed: true,
        }
    }

    /// A node with two parents, claimed to be a `Tree`.
    fn shared_child_tree(&mut self) -> FuzzCase {
        let mut case = self.valid_tree();
        case.label = "shared_child_tree";
        case.expect_malformed = true;
        let root = case.children.len() as u32 - 1;
        let shared = self.rng.below_u32(root);
        case.children
            .push(vec![NodeId::new(shared), NodeId::new(root)]);
        case.words.push(self.word());
        case
    }

    /// A sequence node with two children.
    fn sequence_fan_out(&mut self) -> FuzzCase {
        let mut case = self.valid_sequence();
        case.label = "sequence_fan_out";
        case.expect_malformed = true;
        let last = case.children.len() - 1;
        case.children[last].push(NodeId::new(0));
        case
    }

    /// A unary chain of maximal depth: structurally valid, but every
    /// node sits in its own wavefront, so depth limits and watchdog
    /// budgets see their worst case.
    pub fn deep_chain(&mut self) -> FuzzCase {
        let depth = 2 * self.max_leaves + self.rng.below_usize(self.max_leaves);
        let children = (0..depth)
            .map(|i| {
                if i == 0 {
                    Vec::new()
                } else {
                    vec![NodeId::new(i as u32 - 1)]
                }
            })
            .collect();
        let words = (0..depth).map(|_| self.word()).collect();
        FuzzCase {
            label: "deep_chain",
            kind: StructureKind::Tree,
            children,
            words,
            expect_malformed: false,
        }
    }

    /// A root with far more children than any binary plan was compiled
    /// for: structurally valid, refused at engine intake
    /// (`ExecError::InvalidInput` with `ArityExceedsPlan`).
    pub fn wide_arity(&mut self) -> FuzzCase {
        let width = 4 + self.rng.below_usize(8);
        let mut children: Vec<Vec<NodeId>> = (0..width).map(|_| Vec::new()).collect();
        children.push((0..width as u32).map(NodeId::new).collect());
        let words = (0..=width).map(|_| self.word()).collect();
        FuzzCase {
            label: "wide_arity",
            kind: StructureKind::Tree,
            children,
            words,
            expect_malformed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_cases() {
        let a = StructureFuzzer::new(7).cases(3 * SHAPES);
        let b = StructureFuzzer::new(7).cases(3 * SHAPES);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.children, y.children);
            assert_eq!(x.words, y.words);
        }
    }

    #[test]
    fn every_shape_judges_correctly() {
        let mut fuzz = StructureFuzzer::new(11);
        for case in fuzz.cases(4 * SHAPES) {
            match case.build() {
                Ok(_) => assert!(
                    !case.expect_malformed,
                    "{}: malformed case was accepted",
                    case.label
                ),
                Err(e) => assert!(
                    case.expect_malformed,
                    "{}: well-formed case refused: {e}",
                    case.label
                ),
            }
        }
    }

    #[test]
    fn rotation_covers_all_shapes() {
        let mut fuzz = StructureFuzzer::new(3);
        let labels: std::collections::BTreeSet<&str> =
            fuzz.cases(SHAPES).iter().map(|c| c.label).collect();
        assert_eq!(labels.len(), SHAPES, "shape labels must be distinct");
    }
}

//! Shard health: breaker state, rolling error-rate windows, snapshots.
//!
//! The [`Router`](crate::Router)'s placement decisions need a cheap,
//! deterministic answer to "is this shard healthy right now?". Two
//! signals feed it:
//!
//! * the shard batcher's **circuit breaker** ([`BreakerState`], exposed
//!   by [`Batcher::breaker_state`](crate::Batcher::breaker_state)) —
//!   `Open` means the ExecPlan path is demoted and the shard is slow;
//! * a **rolling error-rate window** ([`RollingWindow`]) over the last
//!   N leg outcomes the router observed on the shard — fault-shaped
//!   errors only (engine faults, contained panics, expired results),
//!   so an overloaded-but-correct shard is not marked sick for missing
//!   deadlines (that signal drives the adaptive flush depth instead).
//!
//! [`HealthPolicy`] turns the signals into a verdict; a
//! [`HealthSnapshot`] packages everything for operators.

use crate::ServeStats;

/// The externally observable state of a shard batcher's circuit
/// breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation on the ExecPlan path.
    Closed,
    /// One more consecutive plan-path fault trips the breaker — either
    /// the threshold is almost reached, or the reset window just
    /// elapsed and the next chunk is the half-open probe.
    HalfOpen,
    /// Tripped: the engine is demoted to the `interp` oracle path until
    /// the reset window elapses.
    Open,
}

/// When the router considers a shard healthy enough for placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// How many recent leg outcomes the rolling window holds.
    pub window: usize,
    /// A shard whose windowed error rate exceeds this is unhealthy.
    pub max_error_rate: f64,
    /// Below this many samples the window abstains (the shard counts
    /// healthy): a single early fault must not blacklist a cold shard.
    pub min_samples: usize,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            window: 16,
            max_error_rate: 0.5,
            min_samples: 4,
        }
    }
}

impl HealthPolicy {
    /// The windowed verdict: healthy unless the window has enough
    /// samples *and* its error rate is over the line. (Breaker and
    /// liveness are judged separately by the router.)
    pub fn window_healthy(&self, window: &RollingWindow) -> bool {
        window.samples() < self.min_samples.max(1) || window.error_rate() <= self.max_error_rate
    }
}

/// A fixed-size ring of recent outcomes (`true` = ok) with an O(1)
/// error-rate read.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    outcomes: std::collections::VecDeque<bool>,
    cap: usize,
    errors: usize,
}

impl RollingWindow {
    /// An empty window holding at most `cap` outcomes (clamped ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RollingWindow {
            outcomes: std::collections::VecDeque::with_capacity(cap),
            cap,
            errors: 0,
        }
    }

    /// Records one outcome, evicting the oldest beyond the cap.
    pub fn record(&mut self, ok: bool) {
        if self.outcomes.len() == self.cap {
            if let Some(evicted) = self.outcomes.pop_front() {
                if !evicted {
                    self.errors -= 1;
                }
            }
        }
        self.outcomes.push_back(ok);
        if !ok {
            self.errors += 1;
        }
    }

    /// Outcomes currently in the window.
    pub fn samples(&self) -> usize {
        self.outcomes.len()
    }

    /// Fraction of windowed outcomes that were errors (0.0 when empty).
    pub fn error_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.errors as f64 / self.outcomes.len() as f64
        }
    }
}

/// One shard's health, as the router sees it — the operator-facing
/// probe behind [`Router::health`](crate::Router::health).
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// Index of the shard within its model's shard vector.
    pub shard: usize,
    /// Whether the shard's batcher (and engine) still exists. A killed
    /// shard stays in the vector, dead, so indices are stable.
    pub alive: bool,
    /// Whether placement currently considers the shard eligible
    /// (alive, breaker not `Open`, windowed error rate in bounds).
    pub healthy: bool,
    /// The shard batcher's circuit-breaker state (`Closed` if dead).
    pub breaker: BreakerState,
    /// Windowed error rate of router-observed leg outcomes.
    pub error_rate: f64,
    /// Samples currently in the rolling window.
    pub samples: usize,
    /// Requests queued on the shard right now.
    pub queued: usize,
    /// The shard's live flush depth (AIMD retunes this).
    pub max_batch: usize,
    /// The shard batcher's cumulative robustness counters.
    pub stats: ServeStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_window_evicts_oldest_and_tracks_rate() {
        let mut w = RollingWindow::new(4);
        assert_eq!(w.error_rate(), 0.0, "empty window abstains at 0");
        for ok in [false, false, true, true] {
            w.record(ok);
        }
        assert_eq!(w.samples(), 4);
        assert_eq!(w.error_rate(), 0.5);
        // Two more oks evict the two initial errors.
        w.record(true);
        w.record(true);
        assert_eq!(w.samples(), 4);
        assert_eq!(w.error_rate(), 0.0);
        w.record(false);
        assert_eq!(w.error_rate(), 0.25);
    }

    #[test]
    fn policy_abstains_below_min_samples() {
        let policy = HealthPolicy {
            window: 8,
            max_error_rate: 0.3,
            min_samples: 4,
        };
        let mut w = RollingWindow::new(policy.window);
        w.record(false);
        w.record(false);
        assert!(
            policy.window_healthy(&w),
            "2 samples < min_samples: abstain healthy"
        );
        w.record(false);
        w.record(false);
        assert!(!policy.window_healthy(&w), "4/4 errors over the line");
        for _ in 0..8 {
            w.record(true);
        }
        assert!(policy.window_healthy(&w), "window slid clean again");
    }
}

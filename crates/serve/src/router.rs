//! A sharded, multi-model serving router over [`Batcher`] shards.
//!
//! One [`Router`] owns a registry of models; each model is served by a
//! vector of [`Batcher`] shards (one engine each). On top of the
//! single-queue robustness substrate the shards provide, the router
//! adds the *topology*-level behaviors a production front needs:
//!
//! * **Health-aware placement** — a [`Placement`] strategy
//!   (deterministic least-loaded, power-of-two-choices, round-robin,
//!   or primary-with-spill) picks among *healthy* shards: alive,
//!   breaker not [`BreakerState::Open`], rolling error rate within the
//!   [`HealthPolicy`]. A shard refusing with
//!   [`ServeError::QueueFull`] spills to the next sibling instead of
//!   bouncing the caller.
//! * **Budgeted retries** — a leg that fails with a fault-shaped error
//!   ([`ServeError::EngineFault`], [`ServeError::Poisoned`],
//!   [`ServeError::ResultExpired`]) is re-dispatched to a healthy
//!   sibling under the [`RetryPolicy`]'s deterministic backoff;
//!   exhaustion resolves [`ServeError::RetriesExhausted`].
//! * **Hedged dispatch** — with a [`HedgePolicy`], a deadline-carrying
//!   request still unresolved after the hedge delay is duplicated to a
//!   second shard; the first result wins. Because shard execution is
//!   bit-identical to a solo run, the winner provably does not matter
//!   (the placement-independence suite asserts it).
//! * **Failover** — killing a shard ([`Router::kill_shard`]) moves its
//!   outstanding legs to live siblings *without* consuming retry
//!   budget; a request only resolves [`ServeError::Unavailable`] when
//!   no shard of its model is left alive.
//! * **Graceful lifecycle** — [`Router::drain`] resolves every
//!   outstanding ticket (flushing and retrying as needed);
//!   [`Router::shutdown`] does the same under a wall budget and sheds
//!   the remainder as typed [`ServeError::Shed`] outcomes. No ticket is
//!   ever lost either way.
//! * **Adaptive flush depth** — an [`AimdDepth`] controller retunes
//!   each shard's `max_batch` from its observed deadline-miss rate:
//!   additive increase while misses stay at zero, multiplicative
//!   decrease the moment a window sees one. The depth-16 constant the
//!   bench curve questioned becomes a live tradeoff.
//!
//! Determinism is load-bearing everywhere: placement draws come from a
//! seeded in-repo RNG, backoff is computed (never slept) on the
//! injected [`Clock`], and shard outputs are bit-identical to solo
//! runs — so the router-level model-based suite can assert
//! exactly-once resolution *and* bitwise-equal survivors across
//! arbitrary fault/kill interleavings.
//!
//! [`BreakerState::Open`]: crate::BreakerState::Open
//! [`ServeError::QueueFull`]: crate::ServeError::QueueFull
//! [`ServeError::EngineFault`]: crate::ServeError::EngineFault
//! [`ServeError::Poisoned`]: crate::ServeError::Poisoned
//! [`ServeError::ResultExpired`]: crate::ServeError::ResultExpired
//! [`ServeError::RetriesExhausted`]: crate::ServeError::RetriesExhausted
//! [`ServeError::Unavailable`]: crate::ServeError::Unavailable
//! [`ServeError::Shed`]: crate::ServeError::Shed

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use cortex_backend::exec::FaultHook;
use cortex_backend::params::Params;
use cortex_core::ilir::IlirProgram;
use cortex_ds::linearizer::Linearized;
use cortex_rng::Rng;

use crate::health::{BreakerState, HealthPolicy, HealthSnapshot, RollingWindow};
use crate::retry::RetryPolicy;
use crate::{
    Batcher, BatcherOptions, Clock, MonotonicClock, Response, ServeError, ServeStats, Ticket,
};

/// Handle to a model registered with [`Router::add_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(pub(crate) usize);

/// Handle to one request submitted to the [`Router`] (distinct from
/// the per-shard [`Ticket`]s its legs hold internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterTicket(pub(crate) u64);

/// How the router places a request on one of its model's shards. Every
/// strategy is deterministic (power-of-two draws from the router's
/// seeded RNG) and consults shard health first; a placed shard that
/// refuses with [`ServeError::QueueFull`] spills to the next candidate
/// in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The healthy shard with the fewest queued requests; ties break
    /// toward the lowest shard index.
    LeastLoaded,
    /// Power-of-two-choices: draw two distinct healthy shards from the
    /// seeded RNG, keep the less loaded. O(1) decision cost with
    /// near-least-loaded balance — the classic serving tradeoff.
    PowerOfTwo,
    /// Strict rotation over the healthy shards.
    RoundRobin,
    /// Always the lowest-indexed healthy shard, spilling rightward only
    /// on [`ServeError::QueueFull`] — the primary/standby topology.
    PrimarySpill,
}

/// When to duplicate a request to a second shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// How long a *deadline-carrying* request may stay unresolved after
    /// its latest dispatch before a duplicate leg is sent to a
    /// different shard. First leg to resolve wins; the loser is
    /// discarded (its result, bit-identical anyway, is dropped).
    pub delay: Duration,
}

/// AIMD controller for a shard's flush depth (`max_batch`): every
/// `window` resolutions, halve the depth if the window saw a deadline
/// miss, else grow it by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimdDepth {
    /// Depth each shard starts at (overrides the shard's
    /// [`BatcherOptions::max_batch`]).
    pub start: usize,
    /// Floor of the multiplicative decrease.
    pub min: usize,
    /// Ceiling of the additive increase.
    pub max: usize,
    /// How many shard resolutions make one observation window.
    pub window: u32,
}

impl Default for AimdDepth {
    fn default() -> Self {
        AimdDepth {
            start: 16,
            min: 1,
            max: 64,
            window: 8,
        }
    }
}

/// Topology-level policy of a [`Router`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// Shard selection strategy.
    pub placement: Placement,
    /// Seed for the placement RNG (power-of-two draws).
    pub seed: u64,
    /// Retry budget and backoff for fault-shaped leg failures.
    pub retry: RetryPolicy,
    /// Hedged dispatch for deadline-carrying requests (`None` = off).
    pub hedge: Option<HedgePolicy>,
    /// Adaptive per-shard flush depth (`None` = shards keep their
    /// configured fixed `max_batch`).
    pub adaptive_depth: Option<AimdDepth>,
    /// What "healthy" means for placement.
    pub health: HealthPolicy,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            placement: Placement::LeastLoaded,
            seed: 0,
            retry: RetryPolicy::default(),
            hedge: None,
            adaptive_depth: Some(AimdDepth::default()),
            health: HealthPolicy::default(),
        }
    }
}

/// Topology-level counters of a [`Router`], cumulative over its
/// lifetime. The router-level accounting invariant:
/// `submitted == resolved_ok + resolved_err + pending()` at every
/// quiescent point (after [`Router::drain`] / [`Router::shutdown`],
/// `pending() == 0`). Retries, failovers and hedges are *legs* of one
/// ticket — they never double-count a resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Router tickets issued.
    pub submitted: u64,
    /// Submissions refused without a ticket (every shard full, invalid
    /// input, zero deadline, draining, model dead).
    pub rejected: u64,
    /// Tickets resolved with a [`Response`].
    pub resolved_ok: u64,
    /// Tickets resolved with a [`ServeError`].
    pub resolved_err: u64,
    /// Tickets resolved [`ServeError::Shed`] (shutdown remainder).
    pub shed: u64,
    /// Tickets resolved [`ServeError::DeadlineExceeded`] at the router
    /// level (shard-level misses roll up here too: the leg's miss is
    /// the ticket's outcome unless a retry rescues it).
    pub deadline_misses: u64,
    /// Re-dispatches after fault-shaped leg failures (consumes
    /// [`RetryPolicy`] budget).
    pub retries: u64,
    /// Tickets that resolved [`ServeError::RetriesExhausted`].
    pub retries_exhausted: u64,
    /// Dispatches that landed on a non-first-choice shard because the
    /// preferred shard was at queue cap.
    pub spills: u64,
    /// Duplicate legs launched by the hedge policy.
    pub hedges_launched: u64,
    /// Tickets whose *hedge* leg produced the winning response.
    pub hedges_won: u64,
    /// Legs moved off a killed shard without consuming retry budget.
    pub failovers: u64,
    /// Shards killed via [`Router::kill_shard`].
    pub shard_kills: u64,
    /// AIMD depth increases applied across all shards.
    pub depth_increases: u64,
    /// AIMD depth decreases applied across all shards.
    pub depth_decreases: u64,
}

/// One dispatched copy of a request on a specific shard.
#[derive(Debug, Clone, Copy)]
struct Leg {
    shard: usize,
    /// The shard's generation id — a leg whose uid mismatches found its
    /// shard killed (indices are reused, uids never).
    uid: u64,
    ticket: Ticket,
}

/// What polling a leg found.
enum LegPoll {
    Pending,
    Done(Box<Result<Response, ServeError>>),
    ShardDead,
}

/// A leg whose router ticket already resolved (hedge loser, or a leg
/// superseded by failover) — polled until its shard-level ticket
/// resolves, then discarded.
struct Orphan {
    model: usize,
    leg: Leg,
}

/// Router-side state of one in-flight ticket.
struct InFlight {
    model: ModelId,
    input: Linearized,
    /// Absolute clock time after which the ticket must not execute.
    deadline: Option<Duration>,
    /// When the latest primary leg was dispatched (hedge timer).
    dispatched_at: Duration,
    /// Primary dispatches made (retry budget consumed). Hedges and
    /// failovers are free.
    attempts: u32,
    /// Consecutive re-dispatch attempts that found every shard full.
    redispatch_stalls: u32,
    /// The next re-dispatch is a failover (shard died under the leg):
    /// it does not consume retry budget.
    free_redispatch: bool,
    primary: Option<Leg>,
    hedge: Option<Leg>,
    /// Absolute clock time the scheduled re-dispatch becomes due.
    retry_due: Option<Duration>,
    /// The most recent leg failure (reported by
    /// [`ServeError::RetriesExhausted`] on exhaustion).
    last_err: Option<ServeError>,
    /// Where the last failed leg ran — re-dispatch avoids it when any
    /// alternative exists.
    last_shard: Option<usize>,
}

struct Shard<'p> {
    /// Generation id, unique across the router's lifetime.
    uid: u64,
    /// `None` = killed. The slot stays so shard indices are stable.
    batcher: Option<Batcher<'p>>,
    /// Router-observed leg outcomes (faults only), for placement.
    window: RollingWindow,
    /// Live flush depth (mirrors the batcher's `max_batch`).
    depth: usize,
    /// AIMD snapshot: shard resolutions at the last window boundary.
    aimd_total: u64,
    /// AIMD snapshot: shard deadline misses at the last boundary.
    aimd_misses: u64,
}

struct ModelEntry<'p> {
    name: String,
    shard_opts: BatcherOptions,
    shards: Vec<Shard<'p>>,
    /// Round-robin cursor.
    rr: usize,
}

/// A multi-model registry of [`Batcher`] shards with health-aware
/// dispatch, budgeted retries, hedging, failover and a graceful
/// lifecycle. See the [module docs](self) for the full semantics.
pub struct Router<'p> {
    opts: RouterOptions,
    clock: Rc<dyn Clock>,
    rng: Rng,
    models: Vec<ModelEntry<'p>>,
    in_flight: HashMap<u64, InFlight>,
    /// Resolved-but-unclaimed outcomes ([`Router::poll`] removes).
    done: HashMap<u64, Result<Response, ServeError>>,
    orphans: Vec<Orphan>,
    next_ticket: u64,
    next_shard_uid: u64,
    stats: RouterStats,
    draining: bool,
}

/// Fault-shaped errors: the leg's *execution* failed in a way a
/// different shard might not reproduce — retry-eligible.
fn is_fault(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::EngineFault { .. } | ServeError::Poisoned { .. } | ServeError::ResultExpired
    )
}

impl<'p> Router<'p> {
    /// An empty router (no models yet) under `opts`, on the production
    /// clock.
    pub fn new(opts: RouterOptions) -> Self {
        Router {
            rng: Rng::new(opts.seed),
            opts,
            clock: Rc::new(MonotonicClock::new()),
            models: Vec::new(),
            in_flight: HashMap::new(),
            done: HashMap::new(),
            orphans: Vec::new(),
            next_ticket: 0,
            next_shard_uid: 0,
            stats: RouterStats::default(),
            draining: false,
        }
    }

    /// Replaces the time source (builder-style) — every shard batcher
    /// added *afterwards* shares it. Call before [`Router::add_model`].
    pub fn with_clock(mut self, clock: Rc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Registers a model served by `shards` identical [`Batcher`]
    /// shards (one engine each), returning its handle. When adaptive
    /// depth is on, [`AimdDepth::start`] overrides
    /// `shard_opts.max_batch`.
    pub fn add_model(
        &mut self,
        name: &str,
        program: &'p IlirProgram,
        params: &Params,
        shards: usize,
        mut shard_opts: BatcherOptions,
    ) -> ModelId {
        assert!(shards >= 1, "a model needs at least one shard");
        if let Some(aimd) = self.opts.adaptive_depth {
            shard_opts.max_batch = aimd.start.clamp(aimd.min.max(1), aimd.max.max(1));
        }
        let mut entry = ModelEntry {
            name: name.to_string(),
            shard_opts,
            shards: Vec::with_capacity(shards),
            rr: 0,
        };
        for _ in 0..shards {
            let uid = self.next_shard_uid;
            self.next_shard_uid += 1;
            let batcher =
                Batcher::new(program, params.clone(), shard_opts).with_clock(self.clock.clone());
            entry.shards.push(Shard {
                uid,
                batcher: Some(batcher),
                window: RollingWindow::new(self.opts.health.window),
                depth: shard_opts.max_batch,
                aimd_total: 0,
                aimd_misses: 0,
            });
        }
        self.models.push(entry);
        ModelId(self.models.len() - 1)
    }

    /// Looks a registered model up by name.
    pub fn model(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|m| m.name == name).map(ModelId)
    }

    /// Submits a request for `model` under the model's default deadline
    /// policy ([`BatcherOptions::deadline`] of its shards).
    ///
    /// # Errors
    ///
    /// Admission refusals only — see [`Router::submit_with_deadline`].
    pub fn submit(
        &mut self,
        model: ModelId,
        input: Linearized,
    ) -> Result<RouterTicket, ServeError> {
        let default = self.models.get(model.0).and_then(|m| m.shard_opts.deadline);
        self.submit_with_deadline(model, input, default)
    }

    /// Submits a request with an explicit deadline budget (`None` = no
    /// deadline), placing it on a healthy shard and spilling on
    /// [`ServeError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Draining`] after [`Router::shutdown`],
    /// [`ServeError::DeadlineExceeded`] for a zero budget,
    /// [`ServeError::Unavailable`] when every shard of the model is
    /// dead, [`ServeError::QueueFull`] when every candidate shard is at
    /// cap, and the shard's own admission refusals
    /// ([`ServeError::InvalidInput`], [`ServeError::OverBudget`]). No
    /// ticket is issued on any of these. Execution failures resolve per
    /// ticket through [`Router::poll`] / [`Router::drain`].
    pub fn submit_with_deadline(
        &mut self,
        model: ModelId,
        input: Linearized,
        budget: Option<Duration>,
    ) -> Result<RouterTicket, ServeError> {
        assert!(model.0 < self.models.len(), "unknown model id");
        if self.draining {
            self.stats.rejected += 1;
            return Err(ServeError::Draining);
        }
        if budget == Some(Duration::ZERO) {
            self.stats.rejected += 1;
            return Err(ServeError::DeadlineExceeded);
        }
        let now = self.clock.now();
        match self.dispatch(model.0, &input, budget, None, false, true) {
            Ok(leg) => {
                let rt = self.next_ticket;
                self.next_ticket += 1;
                self.stats.submitted += 1;
                self.in_flight.insert(
                    rt,
                    InFlight {
                        model,
                        input,
                        deadline: budget.map(|b| now + b),
                        dispatched_at: now,
                        attempts: 1,
                        redispatch_stalls: 0,
                        free_redispatch: false,
                        last_shard: Some(leg.shard),
                        primary: Some(leg),
                        hedge: None,
                        retry_due: None,
                        last_err: None,
                    },
                );
                Ok(RouterTicket(rt))
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Retrieves a finished outcome, driving the whole topology one
    /// step: leg polls (which drive each shard's own flush/deadline
    /// policies), retries, failovers, hedge launches, and the AIMD
    /// depth controller.
    ///
    /// Returns `Ok(None)` while the ticket is in flight (and for
    /// unknown/already-claimed tickets).
    ///
    /// # Errors
    ///
    /// This ticket's own terminal error, exactly once.
    pub fn poll(&mut self, ticket: RouterTicket) -> Result<Option<Response>, ServeError> {
        self.pump(false);
        match self.done.remove(&ticket.0) {
            Some(Ok(r)) => Ok(Some(r)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }

    /// Flushes every alive shard's queue and steps the topology — the
    /// bulk counterpart of [`Router::poll`].
    pub fn flush(&mut self) {
        self.flush_shards();
        self.pump(false);
    }

    /// Resolves **every** outstanding ticket — flushing shards,
    /// ignoring retry backoff (a drain does not wait), failing over off
    /// dead shards — and returns all unclaimed outcomes in ticket
    /// order. After `drain` no ticket is pending and none was lost.
    /// The router remains usable (draining is not shutdown).
    pub fn drain(&mut self) -> Vec<(RouterTicket, Result<Response, ServeError>)> {
        let mut rounds = 0u32;
        while !self.in_flight.is_empty() {
            rounds += 1;
            assert!(
                rounds <= 100_000,
                "router drain failed to converge ({} tickets stuck)",
                self.in_flight.len()
            );
            self.flush_shards();
            self.pump(true);
        }
        self.discard_orphans();
        self.take_done()
    }

    /// [`Router::drain`] under a wall budget: drives the topology until
    /// every ticket resolves or `budget` elapses on the router's clock,
    /// then sheds the remainder as [`ServeError::Shed`] — typed, never
    /// lost. Afterwards the router refuses new submissions with
    /// [`ServeError::Draining`]. Returns all unclaimed outcomes in
    /// ticket order.
    pub fn shutdown(
        &mut self,
        budget: Duration,
    ) -> Vec<(RouterTicket, Result<Response, ServeError>)> {
        self.draining = true;
        let deadline = self.clock.now() + budget;
        let mut rounds = 0u32;
        while !self.in_flight.is_empty() && self.clock.now() < deadline && rounds <= 100_000 {
            rounds += 1;
            self.flush_shards();
            self.pump(true);
        }
        let mut ids: Vec<u64> = self.in_flight.keys().copied().collect();
        ids.sort_unstable();
        for rt in ids {
            let f = self.in_flight.remove(&rt).expect("listed id in flight");
            self.finish(rt, f, Err(ServeError::Shed));
        }
        self.discard_orphans();
        self.take_done()
    }

    /// Kills a shard: its engine and queued work drop on the spot
    /// (modeling a crashed process), and the next pump fails its
    /// outstanding legs over to live siblings without consuming retry
    /// budget. Returns `false` if the shard was already dead (or out of
    /// range). Requests find the model [`ServeError::Unavailable`] only
    /// when *every* shard is dead.
    pub fn kill_shard(&mut self, model: ModelId, shard: usize) -> bool {
        let Some(entry) = self.models.get_mut(model.0) else {
            return false;
        };
        let Some(s) = entry.shards.get_mut(shard) else {
            return false;
        };
        if s.batcher.is_none() {
            return false;
        }
        s.batcher = None;
        self.stats.shard_kills += 1;
        // Failover now: every leg on the dead shard re-dispatches (for
        // free) before the caller observes anything.
        self.pump(false);
        true
    }

    /// Installs (or removes) a fault-injection hook on one shard's
    /// engine (see [`crate::faults`]). Returns `false` for a dead or
    /// unknown shard.
    pub fn set_shard_fault_hook(
        &mut self,
        model: ModelId,
        shard: usize,
        hook: Option<FaultHook>,
    ) -> bool {
        match self
            .models
            .get_mut(model.0)
            .and_then(|m| m.shards.get_mut(shard))
            .and_then(|s| s.batcher.as_mut())
        {
            Some(b) => {
                b.set_fault_hook(hook);
                true
            }
            None => false,
        }
    }

    /// Per-shard health snapshots for `model` — liveness, breaker
    /// state, windowed error rate, queue depth, live flush depth, and
    /// the shard batcher's own [`ServeStats`].
    pub fn health(&self, model: ModelId) -> Vec<HealthSnapshot> {
        let entry = &self.models[model.0];
        entry
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (alive, breaker, queued, max_batch, stats) = match &s.batcher {
                    Some(b) => (
                        true,
                        b.breaker_state(),
                        b.pending(),
                        b.max_batch(),
                        b.serve_stats(),
                    ),
                    None => (
                        false,
                        BreakerState::Closed,
                        0,
                        s.depth,
                        ServeStats::default(),
                    ),
                };
                HealthSnapshot {
                    shard: i,
                    alive,
                    healthy: alive
                        && breaker != BreakerState::Open
                        && self.opts.health.window_healthy(&s.window),
                    breaker,
                    error_rate: s.window.error_rate(),
                    samples: s.window.samples(),
                    queued,
                    max_batch,
                    stats,
                }
            })
            .collect()
    }

    /// Topology-level counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Tickets submitted but not yet resolved (their outcome is still
    /// being produced; resolved-but-unclaimed outcomes don't count).
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Resolved outcomes nobody has claimed via [`Router::poll`] yet.
    pub fn unclaimed(&self) -> usize {
        self.done.len()
    }

    /// How many shards of `model` are still alive.
    pub fn alive_shards(&self, model: ModelId) -> usize {
        self.models[model.0]
            .shards
            .iter()
            .filter(|s| s.batcher.is_some())
            .count()
    }

    // -- internals ----------------------------------------------------

    /// One step of the whole topology: poll orphans, then every
    /// in-flight ticket (in ticket order, for determinism), then the
    /// AIMD controller. `ignore_backoff` makes due-dated retries fire
    /// immediately (drain/shutdown don't wait out backoff windows).
    fn pump(&mut self, ignore_backoff: bool) {
        let now = self.clock.now();
        self.poll_orphans();
        let mut ids: Vec<u64> = self.in_flight.keys().copied().collect();
        ids.sort_unstable();
        for rt in ids {
            let Some(mut f) = self.in_flight.remove(&rt) else {
                continue;
            };
            match self.step_ticket(&mut f, now, ignore_backoff) {
                Some(outcome) => self.finish(rt, f, outcome),
                None => {
                    self.in_flight.insert(rt, f);
                }
            }
        }
        self.adjust_depths();
    }

    /// Advances one ticket; `Some` is its terminal outcome.
    fn step_ticket(
        &mut self,
        f: &mut InFlight,
        now: Duration,
        ignore_backoff: bool,
    ) -> Option<Result<Response, ServeError>> {
        // Poll the outstanding legs. A winning leg is cleared before
        // returning so `finish` only orphans the *loser*.
        if let Some(leg) = f.primary {
            match self.poll_leg(f.model.0, leg) {
                LegPoll::Pending => {}
                LegPoll::Done(res) => {
                    f.primary = None;
                    match *res {
                        Ok(r) => return Some(Ok(r)),
                        Err(e) => f.last_err = Some(e),
                    }
                }
                LegPoll::ShardDead => {
                    f.primary = None;
                    f.free_redispatch = true;
                }
            }
        }
        if let Some(leg) = f.hedge {
            match self.poll_leg(f.model.0, leg) {
                LegPoll::Pending => {}
                LegPoll::Done(res) => {
                    f.hedge = None;
                    match *res {
                        Ok(r) => {
                            self.stats.hedges_won += 1;
                            return Some(Ok(r));
                        }
                        Err(e) => f.last_err = Some(e),
                    }
                }
                LegPoll::ShardDead => {
                    f.hedge = None;
                }
            }
        }

        if f.primary.is_none() && f.hedge.is_none() {
            // No legs in flight: classify the failure once…
            if f.retry_due.is_none() {
                if f.free_redispatch {
                    f.retry_due = Some(now);
                } else {
                    match f.last_err.clone() {
                        Some(e) if is_fault(&e) && self.opts.retry.allows(f.attempts) => {
                            f.retry_due = Some(now + self.opts.retry.backoff_for(f.attempts));
                        }
                        Some(e) if is_fault(&e) => {
                            return Some(Err(ServeError::RetriesExhausted {
                                attempts: f.attempts,
                                last: Box::new(e),
                            }));
                        }
                        Some(e) => return Some(Err(e)),
                        // A leg vanished without an error (defensive):
                        // failover rather than lose the ticket.
                        None => {
                            f.free_redispatch = true;
                            f.retry_due = Some(now);
                        }
                    }
                }
            }
            // …expire a ticket that outwaited its deadline…
            if f.deadline.is_some_and(|d| now >= d) {
                return Some(Err(ServeError::DeadlineExceeded));
            }
            // …and re-dispatch when the backoff is due.
            if let Some(due) = f.retry_due {
                if ignore_backoff || now >= due {
                    f.retry_due = None;
                    let budget = f.deadline.map(|d| d.saturating_sub(now));
                    let free = f.free_redispatch;
                    match self.dispatch(f.model.0, &f.input, budget, f.last_shard, false, false) {
                        Ok(leg) => {
                            f.free_redispatch = false;
                            f.redispatch_stalls = 0;
                            if free {
                                self.stats.failovers += 1;
                            } else {
                                f.attempts += 1;
                                self.stats.retries += 1;
                            }
                            f.last_shard = Some(leg.shard);
                            f.dispatched_at = now;
                            f.primary = Some(leg);
                        }
                        Err(ServeError::QueueFull) => {
                            // Every candidate at cap: wait out one more
                            // backoff (bounded — a stalled topology must
                            // not spin a ticket forever).
                            f.redispatch_stalls += 1;
                            if f.redispatch_stalls > 3 * self.opts.retry.max_attempts.max(1) {
                                return Some(Err(ServeError::RetriesExhausted {
                                    attempts: f.attempts,
                                    last: Box::new(ServeError::QueueFull),
                                }));
                            }
                            f.retry_due =
                                Some(now + self.opts.retry.backoff_for(f.attempts.max(1)));
                        }
                        Err(e) => return Some(Err(e)),
                    }
                }
            }
            return None;
        }

        // A primary is in flight: maybe hedge a deadline-risk request.
        if f.hedge.is_none() && f.primary.is_some() {
            if let (Some(hp), Some(deadline)) = (self.opts.hedge, f.deadline) {
                if now >= f.dispatched_at + hp.delay && now < deadline {
                    let remaining = deadline - now;
                    let avoid = f.primary.map(|l| l.shard);
                    if let Ok(leg) =
                        self.dispatch(f.model.0, &f.input, Some(remaining), avoid, true, false)
                    {
                        f.hedge = Some(leg);
                        self.stats.hedges_launched += 1;
                    }
                }
            }
        }
        None
    }

    /// Polls one leg on its shard, recording fault-shaped outcomes in
    /// the shard's health window.
    fn poll_leg(&mut self, model: usize, leg: Leg) -> LegPoll {
        let entry = &mut self.models[model];
        let Some(shard) = entry.shards.get_mut(leg.shard) else {
            return LegPoll::ShardDead;
        };
        if shard.uid != leg.uid {
            return LegPoll::ShardDead;
        }
        let Some(b) = shard.batcher.as_mut() else {
            return LegPoll::ShardDead;
        };
        match b.poll(leg.ticket) {
            Ok(None) => LegPoll::Pending,
            Ok(Some(r)) => {
                shard.window.record(true);
                LegPoll::Done(Box::new(Ok(r)))
            }
            Err(e) => {
                if is_fault(&e) {
                    shard.window.record(false);
                }
                LegPoll::Done(Box::new(Err(e)))
            }
        }
    }

    /// Places one request copy on a shard of `model`.
    ///
    /// Candidates are the healthy shards (alive, breaker not open,
    /// window within policy) — or every alive shard when none is
    /// healthy (serving sick beats not serving). They are ordered by
    /// the placement strategy; `avoid` (the last failed shard) moves to
    /// the back, or is excluded entirely under `strict_avoid` (hedges
    /// must land elsewhere). [`ServeError::QueueFull`] walks to the
    /// next candidate; `record_spill` counts those walks for first-time
    /// submissions.
    fn dispatch(
        &mut self,
        model: usize,
        input: &Linearized,
        budget: Option<Duration>,
        avoid: Option<usize>,
        strict_avoid: bool,
        record_spill: bool,
    ) -> Result<Leg, ServeError> {
        let placement = self.opts.placement;
        let health = self.opts.health;
        let entry = &mut self.models[model];
        let alive: Vec<usize> = entry
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.batcher.is_some())
            .map(|(i, _)| i)
            .collect();
        if alive.is_empty() {
            return Err(ServeError::Unavailable);
        }
        let healthy: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&i| {
                let s = &entry.shards[i];
                let b = s.batcher.as_ref().expect("alive shard has a batcher");
                b.breaker_state() != BreakerState::Open && health.window_healthy(&s.window)
            })
            .collect();
        let mut candidates = if healthy.is_empty() { alive } else { healthy };
        if strict_avoid {
            if let Some(a) = avoid {
                candidates.retain(|&i| i != a);
                if candidates.is_empty() {
                    return Err(ServeError::Unavailable);
                }
            }
        }
        let load = |entry: &ModelEntry<'_>, i: usize| {
            entry.shards[i]
                .batcher
                .as_ref()
                .map_or(usize::MAX, |b| b.pending())
        };
        let mut ordered = candidates;
        match placement {
            Placement::LeastLoaded => {
                ordered.sort_by_key(|&i| (load(entry, i), i));
            }
            Placement::PrimarySpill => {
                ordered.sort_unstable();
            }
            Placement::RoundRobin => {
                ordered.sort_unstable();
                let start = entry.rr % ordered.len();
                entry.rr = entry.rr.wrapping_add(1);
                ordered.rotate_left(start);
            }
            Placement::PowerOfTwo => {
                ordered.sort_by_key(|&i| (load(entry, i), i));
                if ordered.len() >= 2 {
                    let a = self.rng.below_usize(ordered.len());
                    let mut b = self.rng.below_usize(ordered.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    let (x, y) = (ordered[a], ordered[b]);
                    let first = if (load(entry, x), x) <= (load(entry, y), y) {
                        x
                    } else {
                        y
                    };
                    ordered.retain(|&i| i != first);
                    ordered.insert(0, first);
                }
            }
        }
        if !strict_avoid {
            if let Some(a) = avoid {
                if ordered.len() > 1 {
                    if let Some(pos) = ordered.iter().position(|&i| i == a) {
                        let moved = ordered.remove(pos);
                        ordered.push(moved);
                    }
                }
            }
        }
        for (rank, &i) in ordered.iter().enumerate() {
            let shard = &mut entry.shards[i];
            let uid = shard.uid;
            let b = shard.batcher.as_mut().expect("candidate shard is alive");
            match b.submit_with_deadline(input.clone(), budget) {
                Ok(ticket) => {
                    if rank > 0 && record_spill {
                        self.stats.spills += 1;
                    }
                    return Ok(Leg {
                        shard: i,
                        uid,
                        ticket,
                    });
                }
                Err(ServeError::QueueFull) => continue,
                // Input-shaped refusals are identical on every shard:
                // surface immediately.
                Err(e) => return Err(e),
            }
        }
        Err(ServeError::QueueFull)
    }

    /// Records a ticket's terminal outcome: counters, orphaning of any
    /// leftover legs, and the unclaimed-outcome slot.
    fn finish(&mut self, rt: u64, f: InFlight, outcome: Result<Response, ServeError>) {
        if let Some(leg) = f.primary {
            self.orphans.push(Orphan {
                model: f.model.0,
                leg,
            });
        }
        if let Some(leg) = f.hedge {
            self.orphans.push(Orphan {
                model: f.model.0,
                leg,
            });
        }
        match &outcome {
            Ok(_) => self.stats.resolved_ok += 1,
            Err(e) => {
                self.stats.resolved_err += 1;
                match e {
                    ServeError::DeadlineExceeded => self.stats.deadline_misses += 1,
                    ServeError::RetriesExhausted { .. } => self.stats.retries_exhausted += 1,
                    ServeError::Shed => self.stats.shed += 1,
                    _ => {}
                }
            }
        }
        let prev = self.done.insert(rt, outcome);
        debug_assert!(prev.is_none(), "router ticket {rt} resolved twice");
    }

    /// Polls discarded legs until their shard-level tickets resolve
    /// (still feeding the health windows), dropping the resolved.
    fn poll_orphans(&mut self) {
        let mut kept = std::mem::take(&mut self.orphans);
        kept.retain(|o| {
            let Some(entry) = self.models.get_mut(o.model) else {
                return false;
            };
            let Some(shard) = entry.shards.get_mut(o.leg.shard) else {
                return false;
            };
            if shard.uid != o.leg.uid {
                return false;
            }
            let Some(b) = shard.batcher.as_mut() else {
                return false;
            };
            match b.poll(o.leg.ticket) {
                Ok(None) => true,
                Ok(Some(_)) => {
                    shard.window.record(true);
                    false
                }
                Err(e) => {
                    if is_fault(&e) {
                        shard.window.record(false);
                    }
                    false
                }
            }
        });
        self.orphans = kept;
    }

    /// The AIMD depth controller: per shard, every
    /// [`AimdDepth::window`] resolutions, halve the flush depth if the
    /// window saw a deadline miss, else grow it by one.
    fn adjust_depths(&mut self) {
        let Some(aimd) = self.opts.adaptive_depth else {
            return;
        };
        for entry in &mut self.models {
            for shard in &mut entry.shards {
                let Some(b) = shard.batcher.as_mut() else {
                    continue;
                };
                let st = b.serve_stats();
                let total = st.resolved_ok + st.resolved_err;
                if total.saturating_sub(shard.aimd_total) < u64::from(aimd.window.max(1)) {
                    continue;
                }
                let missed = st.deadline_misses > shard.aimd_misses;
                let depth = if missed {
                    (shard.depth / 2).max(aimd.min.max(1))
                } else {
                    (shard.depth + 1).min(aimd.max.max(1))
                };
                if depth < shard.depth {
                    self.stats.depth_decreases += 1;
                } else if depth > shard.depth {
                    self.stats.depth_increases += 1;
                }
                if depth != shard.depth {
                    shard.depth = depth;
                    b.set_max_batch(depth);
                }
                shard.aimd_total = total;
                shard.aimd_misses = st.deadline_misses;
            }
        }
    }

    fn flush_shards(&mut self) {
        for entry in &mut self.models {
            for shard in &mut entry.shards {
                if let Some(b) = shard.batcher.as_mut() {
                    b.flush();
                }
            }
        }
    }

    /// Drops every orphan by draining their shard batchers' resolved
    /// sets (used once all router tickets are settled).
    fn discard_orphans(&mut self) {
        for entry in &mut self.models {
            for shard in &mut entry.shards {
                if let Some(b) = shard.batcher.as_mut() {
                    let _ = b.drain();
                }
            }
        }
        self.orphans.clear();
    }

    fn take_done(&mut self) -> Vec<(RouterTicket, Result<Response, ServeError>)> {
        let mut out: Vec<(RouterTicket, Result<Response, ServeError>)> = self
            .done
            .drain()
            .map(|(t, r)| (RouterTicket(t), r))
            .collect();
        out.sort_by_key(|&(t, _)| t);
        out
    }
}

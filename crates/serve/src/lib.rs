//! # cortex-serve — cross-request super-wave batching
//!
//! Serving a recursive model means many small, structurally independent
//! requests: each one alone pays full wave planning and per-wave GEMM
//! launches over waves only `bs` nodes wide (for sequences, width 1 —
//! the worst launch-bound case in the paper's Fig. 9 gap). This crate
//! adds the queueing layer over the backend's super-wave executor
//! ([`Engine::execute_many`]): a [`Batcher`] collects submissions,
//! flushes them as one batch through a **merged wave schedule** — one
//! gather and one stacked GEMM per (wave depth × stacking group) across
//! *all* queued requests — and hands back per-request responses that are
//! bit-for-bit what a solo run would have produced (outputs *and*
//! `Profile` counters; a property test in `tests/wave_equivalence.rs`
//! asserts exactly that).
//!
//! Flush policy is the classic serving trade-off: a bigger batch means
//! wider super-waves (throughput), a longer wait means worse latency.
//! [`BatcherOptions::max_batch`] bounds the first, and
//! [`BatcherOptions::max_delay`] bounds the second (checked on every
//! [`Batcher::poll`]).
//!
//! ```no_run
//! use cortex_serve::{Batcher, BatcherOptions};
//! # fn demo(program: &cortex_core::ilir::IlirProgram,
//! #         params: cortex_backend::params::Params,
//! #         inputs: Vec<cortex_ds::linearizer::Linearized>) {
//! let mut batcher = Batcher::new(program, params, BatcherOptions::default());
//! // Burst intake: one ticket per input, full queues flush mid-burst.
//! let tickets = batcher.submit_many(inputs).unwrap();
//! // Drain flushes the remainder and resolves every ticket in order —
//! // each response is exactly the solo-run result. (Interactive
//! // callers instead hold their ticket and `poll` it, which drives the
//! // deadline-based flush policy.)
//! for (ticket, result) in batcher.drain() {
//!     assert!(tickets.contains(&ticket));
//!     let _ = result.expect("flushed").outputs;
//! }
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use cortex_backend::exec::{Engine, ExecError, ExecStats};
use cortex_backend::params::Params;
use cortex_backend::profile::Profile;
use cortex_core::expr::TensorId;
use cortex_core::ilir::IlirProgram;
use cortex_ds::linearizer::Linearized;
use cortex_ds::merge::DepthMap;
use cortex_tensor::Tensor;

/// Flush policy of a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherOptions {
    /// Flush as soon as this many requests are queued (the super-wave
    /// width budget). A submission that fills the queue flushes
    /// synchronously.
    pub max_batch: usize,
    /// Flush whenever the *oldest* queued request has waited this long,
    /// checked on every [`Batcher::poll`]/[`Batcher::pending`] call —
    /// the latency bound of the throughput/latency trade-off.
    /// `Duration::ZERO` makes every poll flush (lowest latency, no
    /// cross-request merging beyond what one poll interval collects).
    pub max_delay: Duration,
    /// Run with model persistence active (the default serving mode:
    /// recurrent weights pinned on-chip).
    pub persist: bool,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        BatcherOptions {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            persist: true,
        }
    }
}

/// Handle to one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// The result of one request, exactly equal to a solo
/// [`Engine::execute`] run on the same input.
#[derive(Debug, Clone)]
pub struct Response {
    /// Output tensors by id (node-major, this request's numbering).
    pub outputs: HashMap<TensorId, Tensor>,
    /// Execution counters — per-request, identical to a solo run.
    pub profile: Profile,
    /// How many requests shared this request's flush.
    pub batch_size: usize,
    /// Mean merged super-wave width of the flush (from the batch's
    /// [`DepthMap`]): the amortization actually achieved.
    pub superwave_width: f64,
    /// How long the request waited in the queue before its flush.
    pub queue_delay: Duration,
}

struct PendingRequest {
    ticket: u64,
    lin: Linearized,
    submitted: Instant,
}

/// How many failed tickets a [`Batcher`] retains for error reporting.
/// A caller that drops tickets without ever polling them must not make
/// the batcher grow without bound, so failures beyond this are dropped
/// oldest-first (their polls then report "still queued" — `Ok(None)` —
/// like any unknown ticket).
pub const FAILED_RETENTION_CAP: usize = 1024;

/// A submission queue in front of one [`Engine`]: collects independent
/// requests and executes them through merged super-wave schedules.
///
/// # Invariants
///
/// Every submitted ticket is in exactly one of three places until it is
/// polled: the queue ([`Batcher::pending`]), the ready set
/// ([`Batcher::ready`]), or the failed set ([`Batcher::failed`], bounded
/// by [`FAILED_RETENTION_CAP`]) — so
/// `len() == pending() + ready() + failed()` always holds, and a failed
/// flush never strands a ticket: its chunk moves to the failed set while
/// **other** chunks of the same flush still execute.
pub struct Batcher<'p> {
    engine: Engine<'p>,
    params: Params,
    opts: BatcherOptions,
    queue: VecDeque<PendingRequest>,
    ready: HashMap<u64, Response>,
    /// Tickets whose flush failed, with the error: polling one of these
    /// reports the failure instead of waiting forever.
    failed: HashMap<u64, ExecError>,
    /// Insertion order of `failed` (oldest first), the drain order of
    /// the bounded retention policy. May transiently hold tickets
    /// already polled out of `failed`; compacted when it outgrows
    /// `2 × FAILED_RETENTION_CAP`.
    failed_order: VecDeque<u64>,
    next_ticket: u64,
    flushes: u64,
}

impl<'p> Batcher<'p> {
    /// Builds a batcher serving `program` with fixed parameters.
    pub fn new(program: &'p IlirProgram, params: Params, opts: BatcherOptions) -> Self {
        Batcher::with_engine(Engine::new(program), params, opts)
    }

    /// Builds a batcher over a pre-configured engine (e.g. with explicit
    /// [`cortex_backend::exec::ExecOptions`]).
    pub fn with_engine(engine: Engine<'p>, params: Params, opts: BatcherOptions) -> Self {
        Batcher {
            engine,
            params,
            opts,
            queue: VecDeque::new(),
            ready: HashMap::new(),
            failed: HashMap::new(),
            failed_order: VecDeque::new(),
            next_ticket: 0,
            flushes: 0,
        }
    }

    /// Enqueues a linearized input. Flushes synchronously when the queue
    /// reaches [`BatcherOptions::max_batch`].
    ///
    /// The ticket is **always** returned — a failing synchronous flush
    /// records its error against the affected chunk's tickets (this one
    /// included), which report it on their next [`Batcher::poll`]. (An
    /// earlier version returned the flush error here and dropped the
    /// ticket, leaving the request stuck unpollable in the failed set.)
    ///
    /// # Errors
    ///
    /// None currently; the `Result` is kept for API stability.
    pub fn submit(&mut self, lin: Linearized) -> Result<Ticket, ExecError> {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.queue.push_back(PendingRequest {
            ticket,
            lin,
            submitted: Instant::now(),
        });
        if self.queue.len() >= self.opts.max_batch {
            // Chunk errors are reported per ticket through `poll`.
            let _ = self.flush();
        }
        Ok(Ticket(ticket))
    }

    /// Enqueues a whole burst of inputs at once, returning one ticket
    /// per input in order. Exactly equivalent to calling
    /// [`Batcher::submit`] in a loop — full queues still flush
    /// synchronously mid-burst, in [`BatcherOptions::max_batch`]-sized
    /// chunks — but saves callers (benches, load generators, the future
    /// pipelined batcher's intake side) the per-request plumbing.
    ///
    /// # Errors
    ///
    /// None currently; execution errors surface per ticket through
    /// [`Batcher::poll`] or [`Batcher::drain`].
    pub fn submit_many(
        &mut self,
        lins: impl IntoIterator<Item = Linearized>,
    ) -> Result<Vec<Ticket>, ExecError> {
        lins.into_iter().map(|lin| self.submit(lin)).collect()
    }

    /// Flushes everything still queued, then returns every **tracked**
    /// ticket's outcome — ready responses and retained failures alike —
    /// in ticket order. After `drain` the batcher is empty: no request
    /// is left pending, ready, or failed.
    ///
    /// Tracked is the same notion [`Batcher::poll`] sees: failures
    /// beyond [`FAILED_RETENTION_CAP`] were already dropped
    /// oldest-first at flush time, so a burst with more than the cap's
    /// worth of *failing* requests resolves only the retained ones here
    /// (the dropped tickets read as unknown, exactly as their `poll`
    /// would). Successful responses are never dropped.
    ///
    /// This is the poll-side counterpart of [`Batcher::submit_many`]:
    /// callers that batch a known workload (benchmarks, offline scoring)
    /// stop hand-rolling `submit`/`poll` loops, and the resulting
    /// "intake burst → drain" shape is the synchronous half of the
    /// ROADMAP's pipelined `Batcher` design.
    pub fn drain(&mut self) -> Vec<(Ticket, Result<Response, ExecError>)> {
        // Chunk errors are reported per ticket below.
        let _ = self.flush();
        let mut out: Vec<(Ticket, Result<Response, ExecError>)> = self
            .ready
            .drain()
            .map(|(t, r)| (Ticket(t), Ok(r)))
            .chain(self.failed.drain().map(|(t, e)| (Ticket(t), Err(e))))
            .collect();
        self.failed_order.clear();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Retrieves a finished response, driving the deadline policy: if
    /// the oldest queued request has exceeded
    /// [`BatcherOptions::max_delay`], the queue flushes first.
    ///
    /// Returns `Ok(None)` while the request is still queued within its
    /// deadline.
    ///
    /// # Errors
    ///
    /// Reports only **this ticket's own** failure: a deadline flush may
    /// run several chunks, and another chunk's error must not mask this
    /// ticket's ready response (or its still-queued state) — per-ticket
    /// errors come out of the failed set, exactly once each; nothing
    /// waits forever.
    pub fn poll(&mut self, ticket: Ticket) -> Result<Option<Response>, ExecError> {
        if let Some(r) = self.ready.remove(&ticket.0) {
            return Ok(Some(r));
        }
        if let Some(e) = self.failed.remove(&ticket.0) {
            return Err(e);
        }
        if self
            .queue
            .front()
            .is_some_and(|p| p.submitted.elapsed() >= self.opts.max_delay)
        {
            // Chunk errors are reported per ticket below.
            let _ = self.flush();
        }
        if let Some(e) = self.failed.remove(&ticket.0) {
            return Err(e);
        }
        Ok(self.ready.remove(&ticket.0))
    }

    /// Flushes every queued request through one merged super-wave
    /// execution (in chunks of [`BatcherOptions::max_batch`]), making
    /// their responses pollable. Returns how many requests succeeded.
    ///
    /// A failing chunk never strands the rest of the queue: its tickets
    /// move to the failed set (their next [`Batcher::poll`] reports the
    /// error) and the remaining chunks still execute — chunks are
    /// independent executions, so one poisoned request only takes its
    /// own chunk down.
    ///
    /// # Errors
    ///
    /// Returns the **first** failing chunk's [`ExecError`] after all
    /// chunks have been processed.
    pub fn flush(&mut self) -> Result<usize, ExecError> {
        let mut flushed = 0usize;
        let mut first_err: Option<ExecError> = None;
        while !self.queue.is_empty() {
            let take = self.queue.len().min(self.opts.max_batch.max(1));
            let batch: Vec<PendingRequest> = self.queue.drain(..take).collect();
            let lins: Vec<&Linearized> = batch.iter().map(|p| &p.lin).collect();
            let map = DepthMap::build(&lins);
            let results = match self
                .engine
                .execute_many(&lins, &self.params, self.opts.persist)
            {
                Ok(r) => r,
                Err(e) => {
                    for pending in &batch {
                        self.fail_ticket(pending.ticket, e.clone());
                    }
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            self.flushes += 1;
            let width = map.mean_super_width();
            for (pending, (outputs, profile)) in batch.iter().zip(results) {
                self.ready.insert(
                    pending.ticket,
                    Response {
                        outputs,
                        profile,
                        batch_size: batch.len(),
                        superwave_width: width,
                        queue_delay: pending.submitted.elapsed(),
                    },
                );
            }
            flushed += take;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(flushed),
        }
    }

    /// Records a ticket's flush failure under the bounded retention
    /// policy: beyond [`FAILED_RETENTION_CAP`] unpolled failures, the
    /// oldest are dropped.
    fn fail_ticket(&mut self, ticket: u64, e: ExecError) {
        if self.failed.insert(ticket, e).is_none() {
            self.failed_order.push_back(ticket);
        }
        while self.failed.len() > FAILED_RETENTION_CAP {
            match self.failed_order.pop_front() {
                Some(t) => {
                    self.failed.remove(&t);
                }
                None => break,
            }
        }
        // `failed_order` may hold tickets already polled out of
        // `failed`; compact so it stays within a constant factor of the
        // cap (amortized O(1) per failure).
        if self.failed_order.len() > 2 * FAILED_RETENTION_CAP {
            let failed = &self.failed;
            self.failed_order.retain(|t| failed.contains_key(t));
        }
    }

    /// Number of requests waiting for a flush.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of flushed-but-unpolled responses.
    pub fn ready(&self) -> usize {
        self.ready.len()
    }

    /// Number of retained flush failures not yet reported through
    /// [`Batcher::poll`] (bounded by [`FAILED_RETENTION_CAP`]).
    pub fn failed(&self) -> usize {
        self.failed.len()
    }

    /// Total tickets the batcher currently tracks:
    /// `pending() + ready() + failed()`.
    pub fn len(&self) -> usize {
        self.queue.len() + self.ready.len() + self.failed.len()
    }

    /// Whether no tickets are tracked at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executor-strategy counters of the most recent flush (see
    /// [`Engine::stats`]); `super_gemms > 0` means cross-request merging
    /// engaged.
    pub fn stats(&self) -> ExecStats {
        self.engine.stats()
    }

    /// How many merged executions have run.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cortex_backend::exec;
    use cortex_core::ra::RaSchedule;
    use cortex_ds::linearizer::Linearizer;
    use cortex_ds::{datasets, RecStructure};
    use cortex_models::{treelstm, LeafInit};

    fn lin(s: &RecStructure) -> Linearized {
        Linearizer::new().linearize(s).unwrap()
    }

    #[test]
    fn batched_responses_equal_solo_runs_exactly() {
        let model = treelstm::tree_lstm(9, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let trees: Vec<RecStructure> = (0..5u64)
            .map(|s| datasets::random_binary_tree(6 + 3 * s as usize, s))
            .collect();

        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: trees.len(),
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let tickets: Vec<Ticket> = trees
            .iter()
            .map(|t| batcher.submit(lin(t)).unwrap())
            .collect();
        // The queue filled exactly: the last submit flushed everything.
        assert_eq!(batcher.pending(), 0);
        assert!(batcher.stats().super_gemms > 0, "merging must engage");

        for (t, ticket) in trees.iter().zip(tickets) {
            let response = batcher.poll(ticket).unwrap().expect("flushed");
            let (solo_out, solo_prof) =
                exec::execute(&program, &lin(t), &model.params, true).unwrap();
            assert_eq!(response.batch_size, trees.len());
            assert_eq!(response.profile.flops, solo_prof.flops);
            assert_eq!(response.profile.launches, solo_prof.launches);
            for (id, tensor) in &solo_out {
                assert_eq!(&response.outputs[id], tensor, "bit-exact outputs");
            }
        }
        assert_eq!(batcher.ready(), 0, "every response polled exactly once");
    }

    #[test]
    fn submit_many_and_drain_resolve_every_ticket() {
        let model = treelstm::tree_lstm(6, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let trees: Vec<RecStructure> = (0..7u64)
            .map(|s| datasets::random_binary_tree(5 + 2 * s as usize, 50 + s))
            .collect();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 3, // the burst spans multiple flush chunks
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let tickets = batcher.submit_many(trees.iter().map(lin)).unwrap();
        assert_eq!(tickets.len(), trees.len());
        // Two full chunks flushed synchronously mid-burst; one remains.
        assert_eq!(batcher.pending(), 1);
        let results = batcher.drain();
        assert!(batcher.is_empty(), "drain leaves nothing tracked");
        assert_eq!(results.len(), trees.len());
        // Ticket order, every outcome present, bit-exact vs solo runs.
        for ((ticket, result), t) in results.into_iter().zip(&trees) {
            let response = result.expect("all requests succeed");
            let (solo_out, solo_prof) =
                exec::execute(&program, &lin(t), &model.params, true).unwrap();
            assert!(tickets.contains(&ticket));
            assert_eq!(response.profile, solo_prof);
            for (id, tensor) in &solo_out {
                assert_eq!(&response.outputs[id], tensor);
            }
        }
    }

    #[test]
    fn drain_reports_failures_and_empties_the_batcher() {
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound: all fail
            BatcherOptions {
                max_batch: 8,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let tickets = batcher
            .submit_many((0..3u64).map(|s| lin(&datasets::random_binary_tree(4, s))))
            .unwrap();
        let results = batcher.drain();
        assert_eq!(results.len(), tickets.len());
        for (i, (ticket, result)) in results.into_iter().enumerate() {
            assert_eq!(ticket, tickets[i], "ticket order");
            assert!(matches!(
                result,
                Err(cortex_backend::exec::ExecError::MissingParam(_))
            ));
        }
        assert!(batcher.is_empty());
        // Drained failures are gone: a re-poll reads as unknown.
        assert!(batcher.poll(tickets[0]).unwrap().is_none());
    }

    #[test]
    fn zero_delay_polls_flush_immediately() {
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::ZERO,
                persist: true,
            },
        );
        let t = batcher
            .submit(lin(&datasets::random_binary_tree(8, 1)))
            .unwrap();
        assert_eq!(batcher.pending(), 1, "queue holds until a poll");
        let r = batcher.poll(t).unwrap().expect("deadline flush on poll");
        assert_eq!(r.batch_size, 1);
        assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn long_delay_keeps_queueing_until_batch_full() {
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 3,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let t0 = batcher
            .submit(lin(&datasets::random_binary_tree(6, 2)))
            .unwrap();
        assert!(
            batcher.poll(t0).unwrap().is_none(),
            "within deadline: waits"
        );
        let _t1 = batcher
            .submit(lin(&datasets::random_binary_tree(7, 3)))
            .unwrap();
        assert_eq!(batcher.pending(), 2);
        let t2 = batcher
            .submit(lin(&datasets::random_binary_tree(8, 4)))
            .unwrap();
        // Third submission hit max_batch: everyone flushed together.
        assert_eq!(batcher.pending(), 0);
        assert_eq!(batcher.flushes(), 1);
        assert_eq!(batcher.poll(t0).unwrap().unwrap().batch_size, 3);
        assert_eq!(batcher.poll(t2).unwrap().unwrap().batch_size, 3);
    }

    #[test]
    fn failed_flushes_report_through_poll_instead_of_hanging() {
        // Unbound parameters make every execution fail: the tickets of
        // the failing chunk must surface the error on poll (exactly
        // once) rather than spin forever as "still queued" — and the
        // submitter must still receive its ticket (an earlier version
        // returned the flush error from `submit` and dropped the
        // ticket, stranding the request unpollable in the failed set).
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound
            BatcherOptions {
                max_batch: 2,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let t0 = batcher
            .submit(lin(&datasets::random_binary_tree(5, 7)))
            .unwrap();
        // The second submission fills the batch; its synchronous flush
        // fails, and the submitter still gets a pollable ticket.
        let t1 = batcher
            .submit(lin(&datasets::random_binary_tree(6, 8)))
            .unwrap();
        assert_eq!(batcher.pending(), 0, "the failing chunk was drained");
        assert_eq!(batcher.failed(), 2);
        assert_eq!(batcher.len(), 2, "len == pending + ready + failed");
        // Both tickets report the error, exactly once each.
        for t in [t0, t1] {
            assert!(matches!(
                batcher.poll(t),
                Err(cortex_backend::exec::ExecError::MissingParam(_))
            ));
            assert!(batcher.poll(t).unwrap().is_none());
        }
        assert!(batcher.is_empty());
    }

    #[test]
    fn unpolled_failures_are_retained_bounded() {
        // A caller that drops failing tickets without polling them must
        // not grow the batcher without bound: retention is capped, with
        // the oldest failures dropped first.
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound: all flushes fail
            BatcherOptions {
                max_batch: 1,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let total = FAILED_RETENTION_CAP + 40;
        let structure = datasets::random_binary_tree(3, 1);
        let mut first = None;
        let mut last = None;
        for _ in 0..total {
            let t = batcher.submit(lin(&structure)).unwrap();
            first.get_or_insert(t);
            last = Some(t);
        }
        assert_eq!(
            batcher.failed(),
            FAILED_RETENTION_CAP,
            "retention is capped"
        );
        assert_eq!(batcher.len(), FAILED_RETENTION_CAP);
        // The newest failure is still reportable; the oldest was dropped
        // (its poll reads as unknown/still-queued, not an error).
        assert!(batcher.poll(last.unwrap()).is_err());
        assert!(batcher.poll(first.unwrap()).unwrap().is_none());
    }

    #[test]
    fn a_poisoned_chunk_does_not_strand_other_chunks() {
        // An unrolling schedule rejects DAG inputs at interpreter build
        // time, so a chunk containing a DAG fails while tree-only chunks
        // succeed: the failure must not keep later chunks from
        // executing, and every ticket must resolve.
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model
            .lower(&RaSchedule {
                unroll: Some(2),
                ..RaSchedule::default()
            })
            .unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 2,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        // Chunk 1: a grid DAG poisons it (unrolling a DAG is rejected).
        let bad = batcher.submit(lin(&datasets::grid_dag(3, 3, 5))).unwrap();
        let also_bad = batcher
            .submit(lin(&datasets::random_binary_tree(6, 9)))
            .unwrap();
        // Chunk 2: trees only — must still execute.
        let good0 = batcher
            .submit(lin(&datasets::random_binary_tree(5, 10)))
            .unwrap();
        let good1 = batcher
            .submit(lin(&datasets::random_binary_tree(7, 11)))
            .unwrap();
        assert_eq!(batcher.pending(), 0);
        assert!(batcher.poll(bad).is_err());
        assert!(
            batcher.poll(also_bad).is_err(),
            "chunk-mates share the error"
        );
        assert!(batcher.poll(good0).unwrap().is_some(), "later chunk ran");
        assert!(batcher.poll(good1).unwrap().is_some());
        assert!(batcher.is_empty());
    }

    #[test]
    fn steady_state_serving_repacks_no_weights() {
        // Weight packs are pinned across a serving engine's lifetime
        // (LRU eviction, keyed per params generation): after the first
        // flush, no flush may repack anything.
        let model = treelstm::tree_lstm(8, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 3,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        for round in 0..4u64 {
            let tickets: Vec<Ticket> = (0..3u64)
                .map(|s| {
                    batcher
                        .submit(lin(&datasets::random_binary_tree(
                            6 + s as usize,
                            31 + round * 3 + s,
                        )))
                        .unwrap()
                })
                .collect();
            for t in tickets {
                batcher.poll(t).unwrap().expect("flushed");
            }
            if round > 0 {
                assert_eq!(
                    batcher.stats().weight_packs,
                    0,
                    "steady-state flush {round} repacked weights"
                );
            }
        }
    }

    #[test]
    fn responses_route_to_the_right_ticket() {
        // Distinguishable inputs: different tree shapes give different
        // node counts, so the output tensor's first dimension identifies
        // which request a response belongs to.
        let model = treelstm::tree_lstm(5, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let sizes = [5usize, 9, 13, 17];
        let trees: Vec<RecStructure> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| datasets::random_binary_tree(n, i as u64))
            .collect();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: trees.len(),
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let tickets: Vec<Ticket> = trees
            .iter()
            .map(|t| batcher.submit(lin(t)).unwrap())
            .collect();
        for (t, ticket) in trees.iter().zip(tickets) {
            let r = batcher.poll(ticket).unwrap().unwrap();
            let out = &r.outputs[&model.output];
            assert_eq!(out.shape().dim(0), t.num_nodes());
        }
    }

    #[test]
    fn queued_sequences_report_wide_superwaves() {
        use cortex_models::seq;
        let model = seq::seq_lstm(6);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 4,
                max_delay: Duration::from_secs(3600),
                persist: true,
            },
        );
        let tickets: Vec<Ticket> = (0..4u64)
            .map(|s| batcher.submit(lin(&datasets::sequence(12, s))).unwrap())
            .collect();
        let r = batcher.poll(tickets[0]).unwrap().unwrap();
        assert!(
            (r.superwave_width - 4.0).abs() < 1e-9,
            "4 width-1 sequence waves merge into width-4 super-waves, got {}",
            r.superwave_width
        );
        assert!(batcher.stats().super_gemms > 0);
        let mean_requests =
            batcher.stats().super_gemm_requests as f64 / batcher.stats().super_gemms.max(1) as f64;
        assert!(
            mean_requests > 3.0,
            "nearly every GEMM should serve all 4 requests, got {mean_requests:.2}"
        );
    }
}

//! # cortex-serve — a fault-tolerant cross-request serving front
//!
//! Serving a recursive model means many small, structurally independent
//! requests: each one alone pays full wave planning and per-wave GEMM
//! launches over waves only `bs` nodes wide (for sequences, width 1 —
//! the worst launch-bound case in the paper's Fig. 9 gap). This crate
//! adds the queueing layer over the backend's super-wave executor
//! ([`Engine::execute_many`]): a [`Batcher`] collects submissions,
//! flushes them as one batch through a **merged wave schedule** — one
//! gather and one stacked GEMM per (wave depth × stacking group) across
//! *all* queued requests — and hands back per-request responses that are
//! bit-for-bit what a solo run would have produced (outputs *and*
//! `Profile` counters; a property test in `tests/wave_equivalence.rs`
//! asserts exactly that).
//!
//! On top of the throughput machinery sits the **robustness substrate**
//! a production front end assumes:
//!
//! * **Typed outcomes** — every failure is a [`ServeError`], never a
//!   string: admission refusals ([`ServeError::QueueFull`],
//!   [`ServeError::DeadlineExceeded`]), load-shedding
//!   ([`ServeError::Shed`]), typed engine errors
//!   ([`ServeError::EngineFault`]) and contained panics
//!   ([`ServeError::Poisoned`]).
//! * **Bounded admission** — the queue holds at most
//!   [`BatcherOptions::queue_cap`] requests; a full queue applies the
//!   explicit [`WhenFull`] policy (reject, shed-oldest, shed-newest)
//!   instead of growing without bound.
//! * **Deadlines** — per-request deadlines are checked at admission and
//!   at every flush boundary; an expired request resolves
//!   [`ServeError::DeadlineExceeded`] without executing.
//! * **Fault isolation** — each flush chunk runs under panic
//!   containment; a failing chunk is *bisected* so the poisoned
//!   request(s) resolve with their own error while healthy co-batched
//!   requests still return bit-identical solo results.
//! * **Graceful degradation** — repeated ExecPlan-path faults trip a
//!   circuit breaker that demotes the engine to the AST-walking
//!   `interp` oracle (bit-identical results, slower) for a reset
//!   window instead of failing traffic.
//!
//! The [`faults`] module provides the deterministic fault-injection
//! hooks the model-based test suite (and `bench_serving`'s robustness
//! scenarios) drive all of this with.
//!
//! ```no_run
//! use cortex_serve::{Batcher, BatcherOptions};
//! # fn demo(program: &cortex_core::ilir::IlirProgram,
//! #         params: cortex_backend::params::Params,
//! #         inputs: Vec<cortex_ds::linearizer::Linearized>) {
//! let mut batcher = Batcher::new(program, params, BatcherOptions::default());
//! // Burst intake: one ticket per admitted input (a bounded queue may
//! // refuse some), full queues flush mid-burst.
//! let tickets: Vec<_> = batcher
//!     .submit_many(inputs)
//!     .into_iter()
//!     .filter_map(Result::ok)
//!     .collect();
//! // Drain flushes the remainder and resolves every ticket in order —
//! // each response is exactly the solo-run result. (Interactive
//! // callers instead hold their ticket and `poll` it, which drives the
//! // deadline-based flush policy.)
//! for (ticket, result) in batcher.drain() {
//!     assert!(tickets.contains(&ticket));
//!     let _ = result.expect("flushed").outputs;
//! }
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::Duration;

use cortex_backend::exec::{
    Engine, ExecError, ExecOptions, ExecStats, FaultHook, InjectedPanic, RunOutput,
};
use cortex_backend::params::Params;
use cortex_backend::profile::Profile;
use cortex_core::expr::TensorId;
use cortex_core::ilir::IlirProgram;
use cortex_ds::linearizer::Linearized;
use cortex_ds::merge::DepthMap;
use cortex_tensor::Tensor;

mod clock;
pub mod faults;
pub mod fuzz;
pub mod health;
pub mod retry;
pub mod router;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use health::{BreakerState, HealthPolicy, HealthSnapshot};
pub use retry::RetryPolicy;
pub use router::{
    AimdDepth, HedgePolicy, ModelId, Placement, Router, RouterOptions, RouterStats, RouterTicket,
};

// ---------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------

/// Every way a request can fail, as a type. A ticket resolves exactly
/// once: with a [`Response`] or with one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission refused: the queue is at [`BatcherOptions::queue_cap`]
    /// under [`WhenFull::Reject`]. No ticket was issued — retry later.
    QueueFull,
    /// The request's deadline expired: at admission (zero budget) or at
    /// a flush boundary before it executed.
    DeadlineExceeded,
    /// The request was evicted by the [`WhenFull`] shedding policy to
    /// admit newer traffic (or was itself shed on arrival under
    /// [`WhenFull::ShedNewest`]).
    Shed,
    /// Admission refused: the input failed the engine's untrusted-input
    /// validation (arity over the lowered plan, size/depth over the
    /// configured limits, non-finite parameters). No ticket was issued
    /// and no co-batched request was touched.
    InvalidInput {
        /// The executor's intake error.
        source: ExecError,
    },
    /// Admission refused: the plan-time memory estimate for this input
    /// exceeds [`ExecOptions::memory_budget`]. No ticket was issued.
    OverBudget {
        /// Estimated bytes the run would need.
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The engine returned a typed error executing this request.
    EngineFault {
        /// The executor's own error.
        source: ExecError,
    },
    /// Executing this request panicked; the panic was contained and the
    /// request isolated so co-batched requests could still resolve.
    Poisoned {
        /// The contained panic's message.
        message: String,
    },
    /// The ticket did fail, but its stored error was dropped by the
    /// bounded failed-set retention ([`FAILED_RETENTION_CAP`]) before
    /// anyone polled it. Distinguishable from "still queued"
    /// (`Ok(None)`): the request is definitively over, its original
    /// error is gone. Counted in [`ServeStats::failed_dropped`] at drop
    /// time.
    ResultExpired,
    /// Every dispatch the [`RetryPolicy`] allowed has failed; `last` is
    /// the final attempt's own error. Raised by the [`Router`] only —
    /// a lone [`Batcher`] never retries.
    RetriesExhausted {
        /// Dispatch attempts made (initial dispatch included).
        attempts: u32,
        /// The last attempt's error.
        last: Box<ServeError>,
    },
    /// No shard of the requested model is alive to take the request
    /// (every sibling was killed). Raised by the [`Router`] only.
    Unavailable,
    /// The [`Router`] has been shut down and admits nothing new.
    Draining,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "admission queue is full"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServeError::Shed => write!(f, "shed by the queue's when-full policy"),
            ServeError::InvalidInput { source } => {
                write!(f, "invalid input refused at admission: {source}")
            }
            ServeError::OverBudget { needed, budget } => {
                write!(
                    f,
                    "over budget at admission: needs ~{needed} bytes, budget is {budget}"
                )
            }
            ServeError::EngineFault { source } => write!(f, "engine fault: {source}"),
            ServeError::Poisoned { message } => {
                write!(f, "request poisoned its batch (contained panic: {message})")
            }
            ServeError::ResultExpired => {
                write!(f, "failed result dropped by bounded retention before poll")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            ServeError::Unavailable => write!(f, "no alive shard can take this request"),
            ServeError::Draining => write!(f, "router is draining; admission closed"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::EngineFault { source } | ServeError::InvalidInput { source } => {
                Some(source)
            }
            ServeError::RetriesExhausted { last, .. } => Some(&**last),
            _ => None,
        }
    }
}

impl From<ExecError> for ServeError {
    fn from(source: ExecError) -> Self {
        ServeError::EngineFault { source }
    }
}

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

/// What a full admission queue does with the next submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhenFull {
    /// Refuse it: [`Batcher::submit`] returns
    /// [`ServeError::QueueFull`] and no ticket is issued. The blockless
    /// backpressure policy — the caller decides whether to retry.
    Reject,
    /// Admit it by evicting the *oldest* queued request, which resolves
    /// [`ServeError::Shed`]. Freshest-traffic-wins (a latency-sensitive
    /// front prefers new requests, whose deadlines are furthest away).
    ShedOldest,
    /// Issue a ticket but immediately resolve it [`ServeError::Shed`];
    /// queued requests keep their place. Oldest-traffic-wins.
    ShedNewest,
}

/// Flush, admission, deadline and degradation policy of a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherOptions {
    /// Flush as soon as this many requests are queued (the super-wave
    /// width budget). A submission that fills the queue flushes
    /// synchronously.
    pub max_batch: usize,
    /// Flush whenever the *oldest* queued request has waited this long,
    /// checked on every [`Batcher::poll`] call — the latency bound of
    /// the throughput/latency trade-off. `Duration::ZERO` makes every
    /// poll flush (lowest latency, no cross-request merging beyond what
    /// one poll interval collects).
    pub max_delay: Duration,
    /// Run with model persistence active (the default serving mode:
    /// recurrent weights pinned on-chip).
    pub persist: bool,
    /// Bounded admission: at most this many requests wait in the queue
    /// (clamped to ≥ 1). Beyond it, [`BatcherOptions::when_full`]
    /// applies. The default (1024) never engages under the default
    /// `max_batch` (the queue flushes at 16) — it is the safety net for
    /// configurations that defer flushing.
    pub queue_cap: usize,
    /// Policy for submissions arriving at a full queue.
    pub when_full: WhenFull,
    /// Default per-request deadline budget, from admission: a request
    /// still queued when its budget elapses resolves
    /// [`ServeError::DeadlineExceeded`] at the next flush boundary or
    /// poll instead of executing. `None` = no deadline.
    /// [`Batcher::submit_with_deadline`] overrides per request.
    pub deadline: Option<Duration>,
    /// Circuit breaker: after this many *consecutive* engine faults on
    /// the ExecPlan path, demote the engine to the `interp` oracle path
    /// (bit-identical results, no lowered-plan execution) for
    /// [`BatcherOptions::breaker_reset`]. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays degraded before re-trying the
    /// ExecPlan path (half-open: one more fault re-trips immediately).
    pub breaker_reset: Duration,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        BatcherOptions {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            persist: true,
            queue_cap: 1024,
            when_full: WhenFull::Reject,
            deadline: None,
            breaker_threshold: 3,
            breaker_reset: Duration::from_secs(1),
        }
    }
}

// ---------------------------------------------------------------------
// Tickets, responses, counters
// ---------------------------------------------------------------------

/// Handle to one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// The result of one request, exactly equal to a solo
/// [`Engine::execute`] run on the same input.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Output tensors by id (node-major, this request's numbering).
    pub outputs: HashMap<TensorId, Tensor>,
    /// Execution counters — per-request, identical to a solo run.
    pub profile: Profile,
    /// How many requests shared this request's flush chunk (after any
    /// fault-isolation re-batching).
    pub batch_size: usize,
    /// Mean merged super-wave width of the flush (from the batch's
    /// [`DepthMap`]): the amortization actually achieved.
    pub superwave_width: f64,
    /// How long the request waited in the queue before its flush.
    pub queue_delay: Duration,
    /// Whether the circuit breaker had demoted execution to the
    /// `interp` oracle path when this request ran. Results are
    /// bit-identical either way; this flags the slower path.
    pub degraded: bool,
}

/// Robustness counters of a [`Batcher`], cumulative over its lifetime.
///
/// The admission invariant they witness:
/// `submitted == resolved_ok + resolved_err + pending()` at every
/// quiescent point (and after [`Batcher::drain`], `pending() == 0`, so
/// `submitted == resolved_ok + resolved_err` — nothing is ever lost).
/// Outcomes count at *resolution* time (when the ticket's fate is
/// decided), not at poll time, so the bounded failed-set retention
/// ([`FAILED_RETENTION_CAP`]) never un-counts anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Tickets issued (admitted requests, including shed-on-arrival).
    pub submitted: u64,
    /// Submissions refused without a ticket ([`ServeError::QueueFull`]
    /// under [`WhenFull::Reject`], a zero deadline budget, an invalid
    /// input, or an over-budget input at admission).
    pub rejected: u64,
    /// Submissions refused because the input failed untrusted-input
    /// validation ([`ServeError::InvalidInput`]); also counted in
    /// `rejected`.
    pub rejected_invalid: u64,
    /// Submissions refused because the plan-time memory estimate
    /// exceeded the engine's budget ([`ServeError::OverBudget`]); also
    /// counted in `rejected`.
    pub over_budget: u64,
    /// Tickets resolved with a [`Response`].
    pub resolved_ok: u64,
    /// Tickets resolved with a [`ServeError`] (shed and deadline
    /// outcomes included).
    pub resolved_err: u64,
    /// Tickets resolved [`ServeError::Shed`] by the when-full policy.
    pub shed: u64,
    /// Tickets resolved [`ServeError::DeadlineExceeded`].
    pub deadline_misses: u64,
    /// Faulted requests isolated out of a multi-request chunk by
    /// bisection (their healthy chunk-mates still resolved).
    pub isolated_faults: u64,
    /// Flush chunks executed while the circuit breaker held the engine
    /// on the degraded `interp` path.
    pub degraded_runs: u64,
    /// Engine panics contained by the serving layer.
    pub panics_contained: u64,
    /// Failed tickets whose stored error was dropped by the bounded
    /// retention policy ([`FAILED_RETENTION_CAP`]) before being polled.
    /// Their later polls read [`ServeError::ResultExpired`]. Already
    /// counted in `resolved_err` at resolution time — this counter only
    /// witnesses the loss of the error *detail*.
    pub failed_dropped: u64,
}

struct PendingRequest {
    ticket: u64,
    lin: Linearized,
    /// Clock time of admission.
    submitted: Duration,
    /// Absolute clock time after which the request must not execute.
    deadline: Option<Duration>,
}

/// How many failed tickets a [`Batcher`] retains for error reporting.
/// A caller that drops tickets without ever polling them must not make
/// the batcher grow without bound, so failures beyond this are dropped
/// oldest-first. A dropped ticket's first poll reports
/// [`ServeError::ResultExpired`] (the failure happened; its detail is
/// gone) and increments [`ServeStats::failed_dropped`] at drop time.
/// The [`ServeStats`] resolution counters are recorded before the drop,
/// so the accounting invariant survives.
pub const FAILED_RETENTION_CAP: usize = 1024;

/// How many *dropped* failed tickets a [`Batcher`] remembers so their
/// polls can report [`ServeError::ResultExpired`] instead of reading as
/// unknown. Ticket ids are 8 bytes each, so this tail is cheap; beyond
/// it the oldest expirations are forgotten entirely (their polls read
/// `Ok(None)`, the pre-fix behavior, and `failed_dropped` still counts
/// them).
pub const EXPIRED_RETENTION_CAP: usize = 4 * FAILED_RETENTION_CAP;

/// The outcome of one guarded engine execution of a chunk.
enum ChunkOutcome {
    Ok(Vec<RunOutput>),
    Fault(ServeError),
}

// ---------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------

/// A bounded submission queue in front of one [`Engine`]: collects
/// independent requests, executes them through merged super-wave
/// schedules, and contains their failures.
///
/// # Invariants
///
/// Every admitted ticket is in exactly one of three places until it is
/// polled: the queue ([`Batcher::pending`]), the ready set
/// ([`Batcher::ready`]), or the failed set ([`Batcher::failed`], bounded
/// by [`FAILED_RETENTION_CAP`]) — so
/// `len() == pending() + ready() + failed()` always holds. Every
/// admitted ticket resolves **exactly once**: with a [`Response`] or a
/// [`ServeError`] (see [`ServeStats`] for the counter form of the
/// invariant). A failing request never strands its chunk-mates: the
/// chunk is bisected until the fault is isolated to the request(s) that
/// actually carry it.
pub struct Batcher<'p> {
    program: &'p IlirProgram,
    engine: Engine<'p>,
    /// The healthy (non-degraded) engine options; the circuit breaker
    /// restores these when its reset window elapses.
    base_opts: ExecOptions,
    /// The installed fault-injection hook, re-installed when a contained
    /// panic forces an engine rebuild.
    fault_hook: Option<FaultHook>,
    params: Params,
    opts: BatcherOptions,
    clock: Rc<dyn Clock>,
    queue: VecDeque<PendingRequest>,
    ready: HashMap<u64, Response>,
    /// Tickets whose execution failed, with their own typed error:
    /// polling one of these reports the failure instead of waiting
    /// forever.
    failed: HashMap<u64, ServeError>,
    /// Insertion order of `failed` (oldest first), the drain order of
    /// the bounded retention policy. May transiently hold tickets
    /// already polled out of `failed`; compacted when it outgrows
    /// `2 × FAILED_RETENTION_CAP`.
    failed_order: VecDeque<u64>,
    /// Tickets whose failure was dropped by the retention cap before
    /// being polled: their next poll reads
    /// [`ServeError::ResultExpired`]. Bounded by
    /// [`EXPIRED_RETENTION_CAP`], oldest forgotten first.
    expired: std::collections::HashSet<u64>,
    /// Insertion order of `expired` (oldest first). May transiently
    /// hold already-polled tickets; compacted like `failed_order`.
    expired_order: VecDeque<u64>,
    next_ticket: u64,
    flushes: u64,
    serve_stats: ServeStats,
    /// Consecutive ExecPlan-path engine faults (resets on a clean
    /// plan-path chunk).
    consecutive_faults: u32,
    /// While `Some`, the breaker holds the engine on the `interp` path
    /// until this clock time.
    degraded_until: Option<Duration>,
}

impl<'p> Batcher<'p> {
    /// Builds a batcher serving `program` with fixed parameters.
    pub fn new(program: &'p IlirProgram, params: Params, opts: BatcherOptions) -> Self {
        Batcher::with_engine(Engine::new(program), params, opts)
    }

    /// Builds a batcher over a pre-configured engine (e.g. with explicit
    /// [`ExecOptions`]).
    pub fn with_engine(engine: Engine<'p>, params: Params, opts: BatcherOptions) -> Self {
        Batcher {
            program: engine.program(),
            base_opts: engine.options(),
            fault_hook: engine.fault_hook(),
            engine,
            params,
            opts,
            clock: Rc::new(MonotonicClock::new()),
            queue: VecDeque::new(),
            ready: HashMap::new(),
            failed: HashMap::new(),
            failed_order: VecDeque::new(),
            expired: std::collections::HashSet::new(),
            expired_order: VecDeque::new(),
            next_ticket: 0,
            flushes: 0,
            serve_stats: ServeStats::default(),
            consecutive_faults: 0,
            degraded_until: None,
        }
    }

    /// Replaces the time source (builder-style). Tests inject a
    /// [`TestClock`] here to drive deadlines, the flush policy and the
    /// breaker reset window deterministically.
    pub fn with_clock(mut self, clock: Rc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Installs (or removes) a deterministic fault-injection hook on the
    /// underlying engine (see [`faults`]), surviving the engine rebuilds
    /// that panic containment forces.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook.clone();
        self.engine.set_fault_hook(hook);
    }

    /// Reconfigures the underlying engine's executor options while
    /// requests may be queued. Safe by construction: queued requests
    /// have not started executing (a flush chunk runs to completion
    /// within one [`Batcher::flush`] call), and [`Engine::set_options`]
    /// rebuilds analyses and drops grouping-shaped caches so the next
    /// flush behaves exactly like a freshly built engine — results stay
    /// bit-identical (regression-tested).
    pub fn set_exec_options(&mut self, opts: ExecOptions) {
        self.base_opts = opts;
        if self.degraded() {
            let mut degraded = opts;
            degraded.interp = true;
            self.engine.set_options(degraded);
        } else {
            self.engine.set_options(opts);
        }
    }

    /// Whether the circuit breaker currently holds the engine on the
    /// degraded `interp` oracle path.
    pub fn degraded(&self) -> bool {
        self.degraded_until.is_some()
    }

    /// Enqueues a linearized input under the default deadline policy
    /// ([`BatcherOptions::deadline`]). Flushes synchronously when the
    /// queue reaches [`BatcherOptions::max_batch`].
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the queue is at
    /// [`BatcherOptions::queue_cap`] under [`WhenFull::Reject`] (no
    /// ticket is issued), [`ServeError::DeadlineExceeded`] for a zero
    /// deadline budget. Execution failures are **not** reported here:
    /// they resolve per ticket through [`Batcher::poll`] /
    /// [`Batcher::drain`].
    pub fn submit(&mut self, lin: Linearized) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(lin, self.opts.deadline)
    }

    /// [`Batcher::submit`] with an explicit deadline budget for this
    /// request (`None` = no deadline), overriding
    /// [`BatcherOptions::deadline`].
    ///
    /// # Errors
    ///
    /// See [`Batcher::submit`].
    pub fn submit_with_deadline(
        &mut self,
        lin: Linearized,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        let now = self.clock.now();
        // Admission-time deadline check: a zero budget can never execute.
        if deadline == Some(Duration::ZERO) {
            self.serve_stats.rejected += 1;
            return Err(ServeError::DeadlineExceeded);
        }
        // Untrusted-input validation at admission: a hostile or
        // over-budget request is refused *here*, before it can co-batch
        // with (and abort) healthy requests at flush time.
        if let Err(source) = self.engine.validate_input(&lin) {
            self.serve_stats.rejected += 1;
            return Err(match source {
                ExecError::OverBudget { needed, budget } => {
                    self.serve_stats.over_budget += 1;
                    ServeError::OverBudget { needed, budget }
                }
                source => {
                    self.serve_stats.rejected_invalid += 1;
                    ServeError::InvalidInput { source }
                }
            });
        }
        if self.queue.len() >= self.opts.queue_cap.max(1) {
            match self.opts.when_full {
                WhenFull::Reject => {
                    self.serve_stats.rejected += 1;
                    return Err(ServeError::QueueFull);
                }
                WhenFull::ShedOldest => {
                    let victim = self.queue.pop_front().expect("full queue is non-empty");
                    self.record_failure(victim.ticket, ServeError::Shed);
                }
                WhenFull::ShedNewest => {
                    let ticket = self.alloc_ticket();
                    self.record_failure(ticket, ServeError::Shed);
                    return Ok(Ticket(ticket));
                }
            }
        }
        let ticket = self.alloc_ticket();
        self.queue.push_back(PendingRequest {
            ticket,
            lin,
            submitted: now,
            deadline: deadline.map(|d| now + d),
        });
        if self.queue.len() >= self.opts.max_batch {
            self.flush();
        }
        Ok(Ticket(ticket))
    }

    /// Enqueues a whole burst of inputs at once, returning one admission
    /// outcome per input in order. Exactly equivalent to calling
    /// [`Batcher::submit`] in a loop — full queues still flush
    /// synchronously mid-burst, in [`BatcherOptions::max_batch`]-sized
    /// chunks, and the bounded-admission policy applies per submission
    /// (a rejected input yields its own `Err` without aborting the
    /// burst).
    pub fn submit_many(
        &mut self,
        lins: impl IntoIterator<Item = Linearized>,
    ) -> Vec<Result<Ticket, ServeError>> {
        lins.into_iter().map(|lin| self.submit(lin)).collect()
    }

    /// Flushes everything still queued, then returns every **tracked**
    /// ticket's outcome — ready responses and retained failures alike —
    /// in ticket order. After `drain` the batcher is empty: no request
    /// is left pending, ready, or failed.
    ///
    /// Tracked is the same notion [`Batcher::poll`] sees: a failure
    /// dropped by the [`FAILED_RETENTION_CAP`] retention policy resolves
    /// here as [`ServeError::ResultExpired`] (while the
    /// [`EXPIRED_RETENTION_CAP`] tail remembers it), exactly as its
    /// `poll` would. Successful responses are never dropped.
    pub fn drain(&mut self) -> Vec<(Ticket, Result<Response, ServeError>)> {
        self.flush();
        let mut out: Vec<(Ticket, Result<Response, ServeError>)> = self
            .ready
            .drain()
            .map(|(t, r)| (Ticket(t), Ok(r)))
            .chain(self.failed.drain().map(|(t, e)| (Ticket(t), Err(e))))
            .chain(
                self.expired
                    .drain()
                    .map(|t| (Ticket(t), Err(ServeError::ResultExpired))),
            )
            .collect();
        self.failed_order.clear();
        self.expired_order.clear();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Retrieves a finished response, driving the deadline policies: any
    /// queued request whose own deadline expired resolves
    /// [`ServeError::DeadlineExceeded`], and if the oldest queued
    /// request has waited past [`BatcherOptions::max_delay`] the queue
    /// flushes.
    ///
    /// Returns `Ok(None)` while the request is still queued within its
    /// deadline (and for unknown/already-resolved tickets).
    ///
    /// # Errors
    ///
    /// Reports only **this ticket's own** typed failure, exactly once —
    /// another request's error never masks this ticket's ready response
    /// or still-queued state.
    pub fn poll(&mut self, ticket: Ticket) -> Result<Option<Response>, ServeError> {
        if let Some(r) = self.ready.remove(&ticket.0) {
            return Ok(Some(r));
        }
        if let Some(e) = self.failed.remove(&ticket.0) {
            return Err(e);
        }
        if self.expired.remove(&ticket.0) {
            return Err(ServeError::ResultExpired);
        }
        let now = self.clock.now();
        self.expire_due(now);
        if self
            .queue
            .front()
            .is_some_and(|p| now.saturating_sub(p.submitted) >= self.opts.max_delay)
        {
            self.flush();
        }
        if let Some(e) = self.failed.remove(&ticket.0) {
            return Err(e);
        }
        if self.expired.remove(&ticket.0) {
            return Err(ServeError::ResultExpired);
        }
        Ok(self.ready.remove(&ticket.0))
    }

    /// Flushes every queued request through merged super-wave
    /// executions (in chunks of [`BatcherOptions::max_batch`]), making
    /// their outcomes pollable, and returns how many requests resolved
    /// with a response.
    ///
    /// Expired deadlines resolve first, without executing. A faulting
    /// chunk is bisected until the fault is isolated: each failing
    /// request resolves with **its own** [`ServeError`] (a contained
    /// panic reads [`ServeError::Poisoned`], a typed engine error
    /// [`ServeError::EngineFault`]) while every healthy chunk-mate is
    /// re-run and resolves normally — one poisoned request never takes
    /// a batch down. Repeated ExecPlan-path faults trip the circuit
    /// breaker (see [`BatcherOptions::breaker_threshold`]).
    pub fn flush(&mut self) -> usize {
        let now = self.clock.now();
        self.update_breaker(now);
        self.expire_due(now);
        let mut ok = 0usize;
        while !self.queue.is_empty() {
            let take = self.queue.len().min(self.opts.max_batch.max(1));
            let batch: Vec<PendingRequest> = self.queue.drain(..take).collect();
            ok += self.run_chunk(batch, false);
        }
        ok
    }

    // -- internals ----------------------------------------------------

    fn alloc_ticket(&mut self) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.serve_stats.submitted += 1;
        ticket
    }

    /// Resolves every queued request whose deadline is due as
    /// [`ServeError::DeadlineExceeded`] — the flush-boundary half of the
    /// deadline check.
    fn expire_due(&mut self, now: Duration) {
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].deadline.is_some_and(|d| now >= d) {
                let victim = self.queue.remove(i).expect("index in bounds");
                self.record_failure(victim.ticket, ServeError::DeadlineExceeded);
            } else {
                i += 1;
            }
        }
    }

    /// Executes one chunk, bisecting on failure so each ticket's outcome
    /// is its own. `from_bisect` marks recursive calls (for the
    /// isolation counter). Returns how many requests resolved Ok.
    fn run_chunk(&mut self, mut batch: Vec<PendingRequest>, from_bisect: bool) -> usize {
        if batch.is_empty() {
            return 0;
        }
        match self.guarded_execute(&batch) {
            ChunkOutcome::Ok(results) => {
                self.note_engine_success();
                self.flushes += 1;
                let now = self.clock.now();
                let lins: Vec<&Linearized> = batch.iter().map(|p| &p.lin).collect();
                let width = DepthMap::build(&lins).mean_super_width();
                let degraded = self.degraded();
                let n = batch.len();
                for (pending, (outputs, profile)) in batch.iter().zip(results) {
                    self.serve_stats.resolved_ok += 1;
                    self.ready.insert(
                        pending.ticket,
                        Response {
                            outputs,
                            profile,
                            batch_size: n,
                            superwave_width: width,
                            queue_delay: now.saturating_sub(pending.submitted),
                            degraded,
                        },
                    );
                }
                n
            }
            ChunkOutcome::Fault(err) => {
                if batch.len() == 1 {
                    // The fault is isolated to this request.
                    self.note_engine_fault();
                    if from_bisect {
                        self.serve_stats.isolated_faults += 1;
                    }
                    let pending = batch.pop().expect("len checked");
                    self.record_failure(pending.ticket, err);
                    0
                } else {
                    // Bisect: healthy co-batched requests must still
                    // resolve; only the culprit(s) keep faulting as the
                    // halves shrink to singletons.
                    let right = batch.split_off(batch.len() / 2);
                    self.run_chunk(batch, true) + self.run_chunk(right, true)
                }
            }
        }
    }

    /// One guarded engine execution: typed engine errors come back as
    /// [`ChunkOutcome::Fault`], and a panic is contained — counted, the
    /// engine rebuilt from its program (the unwound engine may hold torn
    /// caches), and reported as [`ServeError::Poisoned`].
    fn guarded_execute(&mut self, batch: &[PendingRequest]) -> ChunkOutcome {
        if self.degraded() {
            self.serve_stats.degraded_runs += 1;
        }
        let lins: Vec<&Linearized> = batch.iter().map(|p| &p.lin).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.engine
                .execute_many(&lins, &self.params, self.opts.persist)
        }));
        match result {
            Ok(Ok(outputs)) => ChunkOutcome::Ok(outputs),
            Ok(Err(e)) => ChunkOutcome::Fault(ServeError::EngineFault { source: e }),
            Err(payload) => {
                self.serve_stats.panics_contained += 1;
                self.rebuild_engine();
                ChunkOutcome::Fault(ServeError::Poisoned {
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// Replaces the engine after a contained panic: same program, same
    /// options (including any degradation in effect), same fault hook,
    /// cold caches.
    fn rebuild_engine(&mut self) {
        let opts = self.engine.options();
        self.engine = Engine::with_options(self.program, opts);
        self.engine.set_fault_hook(self.fault_hook.clone());
    }

    /// A clean chunk on the ExecPlan path re-arms the breaker.
    fn note_engine_success(&mut self) {
        if !self.degraded() {
            self.consecutive_faults = 0;
        }
    }

    /// Counts an isolated engine fault toward the breaker — plan-path
    /// faults only: once degraded, further faults (the input's own
    /// errors, which the oracle path shares) don't re-count.
    fn note_engine_fault(&mut self) {
        if self.degraded() || self.opts.breaker_threshold == 0 {
            return;
        }
        self.consecutive_faults += 1;
        if self.consecutive_faults >= self.opts.breaker_threshold {
            let now = self.clock.now();
            self.degraded_until = Some(now + self.opts.breaker_reset);
            let mut degraded = self.base_opts;
            degraded.interp = true;
            self.engine.set_options(degraded);
        }
    }

    /// Restores the ExecPlan path when the breaker's reset window has
    /// elapsed — half-open: one more plan-path fault re-trips
    /// immediately.
    fn update_breaker(&mut self, now: Duration) {
        if self.degraded_until.is_some_and(|until| now >= until) {
            self.degraded_until = None;
            self.engine.set_options(self.base_opts);
            self.consecutive_faults = self.opts.breaker_threshold.saturating_sub(1);
        }
    }

    /// Records a ticket's typed failure under the bounded retention
    /// policy: beyond [`FAILED_RETENTION_CAP`] unpolled failures, the
    /// oldest are dropped. Resolution counters update here — exactly
    /// once per ticket.
    fn record_failure(&mut self, ticket: u64, e: ServeError) {
        self.serve_stats.resolved_err += 1;
        match &e {
            ServeError::Shed => self.serve_stats.shed += 1,
            ServeError::DeadlineExceeded => self.serve_stats.deadline_misses += 1,
            _ => {}
        }
        let prev = self.failed.insert(ticket, e);
        debug_assert!(prev.is_none(), "ticket {ticket} resolved twice");
        if prev.is_none() {
            self.failed_order.push_back(ticket);
        }
        while self.failed.len() > FAILED_RETENTION_CAP {
            match self.failed_order.pop_front() {
                Some(t) => {
                    if self.failed.remove(&t).is_some() {
                        self.serve_stats.failed_dropped += 1;
                        self.note_expired(t);
                    }
                }
                None => break,
            }
        }
        // `failed_order` may hold tickets already polled out of
        // `failed`; compact so it stays within a constant factor of the
        // cap (amortized O(1) per failure).
        if self.failed_order.len() > 2 * FAILED_RETENTION_CAP {
            let failed = &self.failed;
            self.failed_order.retain(|t| failed.contains_key(t));
        }
    }

    /// Remembers a retention-dropped ticket so its poll can report
    /// [`ServeError::ResultExpired`], under its own (larger) bound.
    fn note_expired(&mut self, ticket: u64) {
        if self.expired.insert(ticket) {
            self.expired_order.push_back(ticket);
        }
        while self.expired.len() > EXPIRED_RETENTION_CAP {
            match self.expired_order.pop_front() {
                Some(t) => {
                    self.expired.remove(&t);
                }
                None => break,
            }
        }
        if self.expired_order.len() > 2 * EXPIRED_RETENTION_CAP {
            let expired = &self.expired;
            self.expired_order.retain(|t| expired.contains(t));
        }
    }

    // -- accessors ----------------------------------------------------

    /// Number of requests waiting for a flush.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of flushed-but-unpolled responses.
    pub fn ready(&self) -> usize {
        self.ready.len()
    }

    /// Number of retained typed failures not yet reported through
    /// [`Batcher::poll`] (bounded by [`FAILED_RETENTION_CAP`]).
    pub fn failed(&self) -> usize {
        self.failed.len()
    }

    /// Total tickets the batcher currently tracks:
    /// `pending() + ready() + failed()`.
    pub fn len(&self) -> usize {
        self.queue.len() + self.ready.len() + self.failed.len()
    }

    /// Whether no tickets are tracked at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executor-strategy counters of the most recent flush (see
    /// [`Engine::stats`]); `super_gemms > 0` means cross-request merging
    /// engaged.
    pub fn stats(&self) -> ExecStats {
        self.engine.stats()
    }

    /// Cumulative robustness counters (admission, shedding, deadlines,
    /// isolation, degradation).
    pub fn serve_stats(&self) -> ServeStats {
        self.serve_stats
    }

    /// How many merged executions have run.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The circuit breaker's externally observable state: `Open` while
    /// the engine is held on the degraded `interp` path, `HalfOpen` when
    /// one more consecutive plan-path fault would trip it (including
    /// the probe window right after a reset), `Closed` otherwise. The
    /// [`Router`] feeds its health-aware placement with this.
    pub fn breaker_state(&self) -> BreakerState {
        if self.degraded_until.is_some() {
            BreakerState::Open
        } else if self.opts.breaker_threshold > 0
            && self.consecutive_faults > 0
            && self.consecutive_faults + 1 >= self.opts.breaker_threshold
        {
            BreakerState::HalfOpen
        } else {
            BreakerState::Closed
        }
    }

    /// The current flush depth ([`BatcherOptions::max_batch`]) — live,
    /// because [`Batcher::set_max_batch`] can retune it.
    pub fn max_batch(&self) -> usize {
        self.opts.max_batch
    }

    /// Retunes the flush depth at runtime (the [`Router`]'s AIMD
    /// adaptive-depth controller drives this). Clamped to ≥ 1; if the
    /// queue already holds the new depth, it flushes immediately —
    /// exactly as if the requests had arrived under it.
    pub fn set_max_batch(&mut self, depth: usize) {
        self.opts.max_batch = depth.max(1);
        if self.queue.len() >= self.opts.max_batch {
            self.flush();
        }
    }

    /// The batcher's current policy options (admission, flush, deadline,
    /// breaker), reflecting any live [`Batcher::set_max_batch`] retune.
    pub fn options(&self) -> BatcherOptions {
        self.opts
    }
}

/// Human-readable message of a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        format!("injected panic at {}", injected.0)
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{silence_injected_panics, FaultInjector};
    use cortex_backend::exec::{self, FaultAction};
    use cortex_core::ra::RaSchedule;
    use cortex_ds::linearizer::Linearizer;
    use cortex_ds::{datasets, RecStructure};
    use cortex_models::{treelstm, LeafInit};

    fn lin(s: &RecStructure) -> Linearized {
        Linearizer::new().linearize(s).unwrap()
    }

    /// Options for tests that flush only at `max_batch` (no wall-clock
    /// policies in the way).
    fn manual(max_batch: usize) -> BatcherOptions {
        BatcherOptions {
            max_batch,
            max_delay: Duration::from_secs(3600),
            ..BatcherOptions::default()
        }
    }

    #[test]
    fn batched_responses_equal_solo_runs_exactly() {
        let model = treelstm::tree_lstm(9, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let trees: Vec<RecStructure> = (0..5u64)
            .map(|s| datasets::random_binary_tree(6 + 3 * s as usize, s))
            .collect();

        let mut batcher = Batcher::new(&program, model.params.clone(), manual(trees.len()));
        let tickets: Vec<Ticket> = trees
            .iter()
            .map(|t| batcher.submit(lin(t)).unwrap())
            .collect();
        // The queue filled exactly: the last submit flushed everything.
        assert_eq!(batcher.pending(), 0);
        assert!(batcher.stats().super_gemms > 0, "merging must engage");

        for (t, ticket) in trees.iter().zip(tickets) {
            let response = batcher.poll(ticket).unwrap().expect("flushed");
            let (solo_out, solo_prof) =
                exec::execute(&program, &lin(t), &model.params, true).unwrap();
            assert_eq!(response.batch_size, trees.len());
            assert!(!response.degraded);
            assert_eq!(response.profile.flops, solo_prof.flops);
            assert_eq!(response.profile.launches, solo_prof.launches);
            for (id, tensor) in &solo_out {
                assert_eq!(&response.outputs[id], tensor, "bit-exact outputs");
            }
        }
        assert_eq!(batcher.ready(), 0, "every response polled exactly once");
        let stats = batcher.serve_stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.resolved_ok, 5);
        assert_eq!(stats.resolved_err, 0);
    }

    #[test]
    fn submit_many_and_drain_resolve_every_ticket() {
        let model = treelstm::tree_lstm(6, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let trees: Vec<RecStructure> = (0..7u64)
            .map(|s| datasets::random_binary_tree(5 + 2 * s as usize, 50 + s))
            .collect();
        // max_batch 3: the burst spans multiple flush chunks.
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(3));
        let tickets: Vec<Ticket> = batcher
            .submit_many(trees.iter().map(lin))
            .into_iter()
            .map(|r| r.expect("unbounded admission accepts all"))
            .collect();
        assert_eq!(tickets.len(), trees.len());
        // Two full chunks flushed synchronously mid-burst; one remains.
        assert_eq!(batcher.pending(), 1);
        let results = batcher.drain();
        assert!(batcher.is_empty(), "drain leaves nothing tracked");
        assert_eq!(results.len(), trees.len());
        // Ticket order, every outcome present, bit-exact vs solo runs.
        for ((ticket, result), t) in results.into_iter().zip(&trees) {
            let response = result.expect("all requests succeed");
            let (solo_out, solo_prof) =
                exec::execute(&program, &lin(t), &model.params, true).unwrap();
            assert!(tickets.contains(&ticket));
            assert_eq!(response.profile, solo_prof);
            for (id, tensor) in &solo_out {
                assert_eq!(&response.outputs[id], tensor);
            }
        }
    }

    #[test]
    fn drain_reports_failures_and_empties_the_batcher() {
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound: all fail
            manual(8),
        );
        let tickets: Vec<Ticket> = batcher
            .submit_many((0..3u64).map(|s| lin(&datasets::random_binary_tree(4, s))))
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let results = batcher.drain();
        assert_eq!(results.len(), tickets.len());
        for (i, (ticket, result)) in results.into_iter().enumerate() {
            assert_eq!(ticket, tickets[i], "ticket order");
            assert!(matches!(
                result,
                Err(ServeError::EngineFault {
                    source: ExecError::MissingParam(_)
                })
            ));
        }
        assert!(batcher.is_empty());
        // Drained failures are gone: a re-poll reads as unknown.
        assert!(batcher.poll(tickets[0]).unwrap().is_none());
        // Counters saw each ticket resolve exactly once.
        let stats = batcher.serve_stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.resolved_err, 3);
        assert_eq!(stats.resolved_ok, 0);
    }

    #[test]
    fn zero_delay_polls_flush_immediately() {
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::ZERO,
                ..BatcherOptions::default()
            },
        );
        let t = batcher
            .submit(lin(&datasets::random_binary_tree(8, 1)))
            .unwrap();
        assert_eq!(batcher.pending(), 1, "queue holds until a poll");
        let r = batcher.poll(t).unwrap().expect("deadline flush on poll");
        assert_eq!(r.batch_size, 1);
        assert_eq!(batcher.pending(), 0);
    }

    #[test]
    fn long_delay_keeps_queueing_until_batch_full() {
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(3));
        let t0 = batcher
            .submit(lin(&datasets::random_binary_tree(6, 2)))
            .unwrap();
        assert!(
            batcher.poll(t0).unwrap().is_none(),
            "within deadline: waits"
        );
        let _t1 = batcher
            .submit(lin(&datasets::random_binary_tree(7, 3)))
            .unwrap();
        assert_eq!(batcher.pending(), 2);
        let t2 = batcher
            .submit(lin(&datasets::random_binary_tree(8, 4)))
            .unwrap();
        // Third submission hit max_batch: everyone flushed together.
        assert_eq!(batcher.pending(), 0);
        assert_eq!(batcher.flushes(), 1);
        assert_eq!(batcher.poll(t0).unwrap().unwrap().batch_size, 3);
        assert_eq!(batcher.poll(t2).unwrap().unwrap().batch_size, 3);
    }

    #[test]
    fn failed_flushes_report_through_poll_instead_of_hanging() {
        // Unbound parameters make every execution fail: the tickets of
        // the failing chunk must surface the error on poll (exactly
        // once) rather than spin forever as "still queued" — and the
        // submitter must still receive its ticket (an earlier version
        // returned the flush error from `submit` and dropped the
        // ticket, stranding the request unpollable in the failed set).
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound
            manual(2),
        );
        let t0 = batcher
            .submit(lin(&datasets::random_binary_tree(5, 7)))
            .unwrap();
        // The second submission fills the batch; its synchronous flush
        // fails, and the submitter still gets a pollable ticket.
        let t1 = batcher
            .submit(lin(&datasets::random_binary_tree(6, 8)))
            .unwrap();
        assert_eq!(batcher.pending(), 0, "the failing chunk was drained");
        assert_eq!(batcher.failed(), 2);
        assert_eq!(batcher.len(), 2, "len == pending + ready + failed");
        // Both tickets report *their own* error, exactly once each.
        for t in [t0, t1] {
            assert!(matches!(
                batcher.poll(t),
                Err(ServeError::EngineFault {
                    source: ExecError::MissingParam(_)
                })
            ));
            assert!(batcher.poll(t).unwrap().is_none());
        }
        assert!(batcher.is_empty());
    }

    #[test]
    fn unpolled_failures_are_retained_bounded() {
        // A caller that drops failing tickets without polling them must
        // not grow the batcher without bound: retention is capped, with
        // the oldest failures dropped first.
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound: all flushes fail
            manual(1),
        );
        let total = FAILED_RETENTION_CAP + 40;
        let structure = datasets::random_binary_tree(3, 1);
        let mut first = None;
        let mut last = None;
        for _ in 0..total {
            let t = batcher.submit(lin(&structure)).unwrap();
            first.get_or_insert(t);
            last = Some(t);
        }
        assert_eq!(
            batcher.failed(),
            FAILED_RETENTION_CAP,
            "retention is capped"
        );
        assert_eq!(batcher.len(), FAILED_RETENTION_CAP);
        // The newest failure is still reportable with its own error; the
        // oldest was dropped, which its poll must *observe* — once — as
        // ResultExpired rather than reading as still-queued.
        assert!(matches!(
            batcher.poll(last.unwrap()),
            Err(ServeError::EngineFault { .. })
        ));
        assert_eq!(batcher.poll(first.unwrap()), Err(ServeError::ResultExpired));
        assert!(
            batcher.poll(first.unwrap()).unwrap().is_none(),
            "the expiration reports exactly once"
        );
        // Resolution counters recorded every ticket before the drops,
        // and the drops themselves are counted.
        assert_eq!(batcher.serve_stats().resolved_err, total as u64);
        assert_eq!(batcher.serve_stats().failed_dropped, 40);
    }

    #[test]
    fn dropped_failures_surface_result_expired_in_drain_too() {
        // Regression for the silent-loss bug: a retention-dropped ticket
        // must be distinguishable from an unknown one in *every*
        // reporting path — drain included.
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            cortex_backend::params::Params::new(), // nothing bound: all flushes fail
            manual(1),
        );
        let structure = datasets::random_binary_tree(3, 1);
        let mut tickets = Vec::new();
        for _ in 0..FAILED_RETENTION_CAP + 3 {
            tickets.push(batcher.submit(lin(&structure)).unwrap());
        }
        assert_eq!(batcher.serve_stats().failed_dropped, 3);
        let results: HashMap<Ticket, Result<Response, ServeError>> =
            batcher.drain().into_iter().collect();
        assert_eq!(results.len(), tickets.len(), "drain reports every ticket");
        for (i, t) in tickets.iter().enumerate() {
            match &results[t] {
                Err(ServeError::ResultExpired) => {
                    assert!(i < 3, "only the dropped oldest expire")
                }
                Err(ServeError::EngineFault { .. }) => assert!(i >= 3),
                other => panic!("unexpected outcome for ticket {i}: {other:?}"),
            }
        }
        assert!(batcher.is_empty(), "drain clears the expired tail too");
        assert!(batcher.poll(tickets[0]).unwrap().is_none());
    }

    #[test]
    fn a_poisoned_chunk_mate_is_isolated_by_bisection() {
        // An unrolling schedule rejects DAG inputs at interpreter build
        // time, so a chunk containing a DAG fails as a whole: bisection
        // must isolate the DAG to its own typed error while its healthy
        // chunk-mate — co-batched with the culprit — still resolves,
        // and later chunks must be untouched.
        let model = treelstm::tree_lstm(4, LeafInit::Zero);
        let program = model
            .lower(&RaSchedule {
                unroll: Some(2),
                ..RaSchedule::default()
            })
            .unwrap();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(2));
        // Chunk 1: a DAG poisons it (unrolling a DAG is rejected). A
        // full-binary diamond, so it clears the plan's arity intake and
        // only fails at engine time — the containment scenario.
        let bad = {
            use cortex_ds::{StructureBuilder, StructureKind};
            let mut b = StructureBuilder::new(StructureKind::Dag);
            let l0 = b.leaf(1);
            let l1 = b.leaf(2);
            let l2 = b.leaf(3);
            let d0 = b.internal(&[l0, l1]).unwrap();
            let d1 = b.internal(&[l1, l2]).unwrap();
            b.internal(&[d0, d1]).unwrap();
            batcher.submit(lin(&b.finish().unwrap())).unwrap()
        };
        let innocent = batcher
            .submit(lin(&datasets::random_binary_tree(6, 9)))
            .unwrap();
        // Chunk 2: trees only — must still execute.
        let good0 = batcher
            .submit(lin(&datasets::random_binary_tree(5, 10)))
            .unwrap();
        let good1 = batcher
            .submit(lin(&datasets::random_binary_tree(7, 11)))
            .unwrap();
        assert_eq!(batcher.pending(), 0);
        assert!(matches!(
            batcher.poll(bad),
            Err(ServeError::EngineFault {
                source: ExecError::Unroll(_)
            })
        ));
        assert!(
            batcher.poll(innocent).unwrap().is_some(),
            "bisection re-runs the healthy chunk-mate instead of sharing the culprit's error"
        );
        assert!(batcher.poll(good0).unwrap().is_some(), "later chunk ran");
        assert!(batcher.poll(good1).unwrap().is_some());
        assert!(batcher.is_empty());
        assert_eq!(batcher.serve_stats().isolated_faults, 1);
    }

    #[test]
    fn steady_state_serving_repacks_no_weights() {
        // Weight packs are pinned across a serving engine's lifetime
        // (LRU eviction, keyed per params generation): after the first
        // flush, no flush may repack anything.
        let model = treelstm::tree_lstm(8, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(3));
        for round in 0..4u64 {
            let tickets: Vec<Ticket> = (0..3u64)
                .map(|s| {
                    batcher
                        .submit(lin(&datasets::random_binary_tree(
                            6 + s as usize,
                            31 + round * 3 + s,
                        )))
                        .unwrap()
                })
                .collect();
            for t in tickets {
                batcher.poll(t).unwrap().expect("flushed");
            }
            if round > 0 {
                assert_eq!(
                    batcher.stats().weight_packs,
                    0,
                    "steady-state flush {round} repacked weights"
                );
            }
        }
    }

    #[test]
    fn responses_route_to_the_right_ticket() {
        // Distinguishable inputs: different tree shapes give different
        // node counts, so the output tensor's first dimension identifies
        // which request a response belongs to.
        let model = treelstm::tree_lstm(5, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let sizes = [5usize, 9, 13, 17];
        let trees: Vec<RecStructure> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| datasets::random_binary_tree(n, i as u64))
            .collect();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(trees.len()));
        let tickets: Vec<Ticket> = trees
            .iter()
            .map(|t| batcher.submit(lin(t)).unwrap())
            .collect();
        for (t, ticket) in trees.iter().zip(tickets) {
            let r = batcher.poll(ticket).unwrap().unwrap();
            let out = &r.outputs[&model.output];
            assert_eq!(out.shape().dim(0), t.num_nodes());
        }
    }

    #[test]
    fn queued_sequences_report_wide_superwaves() {
        use cortex_models::seq;
        let model = seq::seq_lstm(6);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(4));
        let tickets: Vec<Ticket> = (0..4u64)
            .map(|s| batcher.submit(lin(&datasets::sequence(12, s))).unwrap())
            .collect();
        let r = batcher.poll(tickets[0]).unwrap().unwrap();
        assert!(
            (r.superwave_width - 4.0).abs() < 1e-9,
            "4 width-1 sequence waves merge into width-4 super-waves, got {}",
            r.superwave_width
        );
        assert!(batcher.stats().super_gemms > 0);
        let mean_requests =
            batcher.stats().super_gemm_requests as f64 / batcher.stats().super_gemms.max(1) as f64;
        assert!(
            mean_requests > 3.0,
            "nearly every GEMM should serve all 4 requests, got {mean_requests:.2}"
        );
    }

    // -- robustness: admission, deadlines, isolation, degradation -----

    #[test]
    fn full_queue_rejects_without_issuing_a_ticket() {
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64, // never auto-flushes in this test
                max_delay: Duration::from_secs(3600),
                queue_cap: 2,
                when_full: WhenFull::Reject,
                ..BatcherOptions::default()
            },
        );
        let structure = datasets::random_binary_tree(4, 2);
        let t0 = batcher.submit(lin(&structure)).unwrap();
        let t1 = batcher.submit(lin(&structure)).unwrap();
        assert_eq!(
            batcher.submit(lin(&structure)),
            Err(ServeError::QueueFull),
            "third submission finds the queue at cap"
        );
        assert_eq!(batcher.pending(), 2, "queued requests are untouched");
        for (ticket, result) in batcher.drain() {
            assert!(ticket == t0 || ticket == t1);
            result.expect("admitted requests execute normally");
        }
        let stats = batcher.serve_stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resolved_ok, 2);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn shed_oldest_evicts_the_head_and_resolves_it_shed() {
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
                queue_cap: 2,
                when_full: WhenFull::ShedOldest,
                ..BatcherOptions::default()
            },
        );
        let structure = datasets::random_binary_tree(4, 2);
        let t0 = batcher.submit(lin(&structure)).unwrap();
        let t1 = batcher.submit(lin(&structure)).unwrap();
        let t2 = batcher.submit(lin(&structure)).unwrap();
        // t0 was evicted to admit t2; it resolves Shed immediately.
        assert_eq!(batcher.poll(t0), Err(ServeError::Shed));
        let outcomes: HashMap<Ticket, bool> = batcher
            .drain()
            .into_iter()
            .map(|(t, r)| (t, r.is_ok()))
            .collect();
        assert!(outcomes[&t1]);
        assert!(outcomes[&t2], "freshest traffic wins");
        let stats = batcher.serve_stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.resolved_ok + stats.resolved_err, stats.submitted);
    }

    #[test]
    fn shed_newest_keeps_the_queue_and_sheds_the_arrival() {
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
                queue_cap: 2,
                when_full: WhenFull::ShedNewest,
                ..BatcherOptions::default()
            },
        );
        let structure = datasets::random_binary_tree(4, 2);
        let t0 = batcher.submit(lin(&structure)).unwrap();
        let t1 = batcher.submit(lin(&structure)).unwrap();
        // The arrival gets a ticket (so the caller can observe the shed
        // outcome) but never queues.
        let t2 = batcher.submit(lin(&structure)).unwrap();
        assert_eq!(batcher.pending(), 2);
        assert_eq!(batcher.poll(t2), Err(ServeError::Shed));
        for t in [t0, t1] {
            assert!(batcher.poll(t).unwrap().is_none(), "still queued");
        }
        for (_, result) in batcher.drain() {
            result.expect("oldest traffic wins");
        }
        assert_eq!(batcher.serve_stats().shed, 1);
    }

    #[test]
    fn deadlines_reject_at_admission_and_expire_at_flush_boundaries() {
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let clock = TestClock::new();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(64))
            .with_clock(Rc::new(clock.clone()));
        let structure = datasets::random_binary_tree(4, 2);
        // Admission-time: a zero budget can never execute.
        assert_eq!(
            batcher.submit_with_deadline(lin(&structure), Some(Duration::ZERO)),
            Err(ServeError::DeadlineExceeded)
        );
        // Flush-boundary: the 5 ms request expires while queued, the
        // deadline-free one executes.
        let doomed = batcher
            .submit_with_deadline(lin(&structure), Some(Duration::from_millis(5)))
            .unwrap();
        let healthy = batcher.submit(lin(&structure)).unwrap();
        clock.advance(Duration::from_millis(6));
        batcher.flush();
        assert_eq!(batcher.poll(doomed), Err(ServeError::DeadlineExceeded));
        let response = batcher.poll(healthy).unwrap().expect("flushed");
        assert!(response.queue_delay >= Duration::from_millis(6));
        let stats = batcher.serve_stats();
        assert_eq!(stats.rejected, 1, "zero-budget admission refusal");
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.resolved_ok + stats.resolved_err, stats.submitted);
    }

    #[test]
    fn expired_deadlines_resolve_on_poll_without_a_flush() {
        let model = treelstm::tree_lstm(3, LeafInit::Zero);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let clock = TestClock::new();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::from_secs(3600), // poll never flushes
                deadline: Some(Duration::from_millis(10)),
                ..BatcherOptions::default()
            },
        )
        .with_clock(Rc::new(clock.clone()));
        let t = batcher
            .submit(lin(&datasets::random_binary_tree(4, 2)))
            .unwrap();
        assert!(batcher.poll(t).unwrap().is_none(), "within budget: waits");
        clock.advance(Duration::from_millis(11));
        assert_eq!(batcher.poll(t), Err(ServeError::DeadlineExceeded));
        assert!(batcher.is_empty());
    }

    #[test]
    fn an_injected_panic_poisons_only_the_culprit() {
        silence_injected_panics();
        let model = treelstm::tree_lstm(5, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        // Unique node counts identify requests across bisection re-runs.
        let sizes = [5usize, 9, 13, 17];
        let trees: Vec<RecStructure> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| datasets::random_binary_tree(n, i as u64))
            .collect();
        let mut batcher = Batcher::new(&program, model.params.clone(), manual(trees.len()));
        // Panic at every launch of the third request (identified by its
        // unique node count) — sticky: it still faults when bisection
        // re-runs it in smaller chunks.
        let culprit_nodes = lin(&trees[2]).num_nodes();
        let (hook, handle) = FaultInjector::new(77)
            .always(FaultAction::Panic)
            .poison_nodes(culprit_nodes)
            .into_hook();
        batcher.set_fault_hook(Some(hook));
        let tickets: Vec<Ticket> = trees
            .iter()
            .map(|t| batcher.submit(lin(t)).unwrap())
            .collect();
        assert_eq!(batcher.pending(), 0, "batch flushed on the last submit");
        for (i, (t, ticket)) in trees.iter().zip(&tickets).enumerate() {
            if i == 2 {
                assert!(matches!(
                    batcher.poll(*ticket),
                    Err(ServeError::Poisoned { .. })
                ));
                continue;
            }
            // Healthy chunk-mates resolve bit-identically to solo runs
            // even though their first execution attempt was unwound.
            let response = batcher.poll(*ticket).unwrap().expect("isolated and re-run");
            let (solo_out, solo_prof) =
                exec::execute(&program, &lin(t), &model.params, true).unwrap();
            assert_eq!(response.profile, solo_prof);
            for (id, tensor) in &solo_out {
                assert_eq!(&response.outputs[id], tensor);
            }
        }
        assert!(handle.fired() >= 1);
        let stats = batcher.serve_stats();
        assert!(
            stats.panics_contained >= 2,
            "the whole-batch attempt and the bisection re-runs each contained a panic"
        );
        assert_eq!(stats.isolated_faults, 1);
        assert_eq!(stats.resolved_ok, 3);
        assert_eq!(stats.resolved_err, 1);
    }

    #[test]
    fn circuit_breaker_degrades_to_interp_and_recovers_half_open() {
        let model = treelstm::tree_lstm(4, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let clock = TestClock::new();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 1, // every submission flushes alone
                max_delay: Duration::from_secs(3600),
                breaker_threshold: 2,
                breaker_reset: Duration::from_secs(1),
                ..BatcherOptions::default()
            },
        )
        .with_clock(Rc::new(clock.clone()));
        // Launch sites exist only in the lowered-plan runtime, so this
        // emulates a broken ExecPlan whose interp oracle still works.
        let (hook, _handle) = FaultInjector::new(3)
            .always(FaultAction::Err)
            .launches_only()
            .into_hook();
        batcher.set_fault_hook(Some(hook));
        let structure = datasets::random_binary_tree(6, 4);
        let (solo_out, _) = exec::execute(&program, &lin(&structure), &model.params, true).unwrap();

        // Two consecutive plan-path faults trip the breaker...
        for _ in 0..2 {
            let t = batcher.submit(lin(&structure)).unwrap();
            assert!(matches!(
                batcher.poll(t),
                Err(ServeError::EngineFault {
                    source: ExecError::Injected(_)
                })
            ));
        }
        assert!(batcher.degraded(), "threshold reached");
        // ...and traffic keeps flowing on the oracle path, bit-identical.
        let t = batcher.submit(lin(&structure)).unwrap();
        let r = batcher.poll(t).unwrap().expect("degraded but serving");
        assert!(r.degraded);
        for (id, tensor) in &solo_out {
            assert_eq!(&r.outputs[id], tensor, "oracle path is bit-identical");
        }
        assert!(batcher.serve_stats().degraded_runs >= 1);

        // After the reset window the plan path is re-tried (half-open):
        // its first fault re-trips immediately...
        clock.advance(Duration::from_secs(2));
        let t = batcher.submit(lin(&structure)).unwrap();
        assert!(batcher.poll(t).is_err(), "half-open probe faulted");
        assert!(batcher.degraded(), "one fault re-trips a half-open breaker");
        // ...and traffic still flows degraded.
        let t = batcher.submit(lin(&structure)).unwrap();
        assert!(batcher.poll(t).unwrap().is_some());

        // A healed plan path (hook removed) closes the breaker for good.
        clock.advance(Duration::from_secs(2));
        batcher.set_fault_hook(None);
        let t = batcher.submit(lin(&structure)).unwrap();
        let r = batcher.poll(t).unwrap().expect("healed");
        assert!(!r.degraded);
        assert!(!batcher.degraded());
    }

    #[test]
    fn mid_batch_reconfiguration_stays_bit_identical() {
        // Satellite regression: `set_exec_options` while requests are
        // queued (they have not started executing) must either serve
        // them bit-identically under the new configuration or reject
        // them — never corrupt. The engine rebuilds analyses and drops
        // grouping-shaped caches on reconfiguration, so the flush after
        // the switch behaves exactly like a freshly built engine.
        let model = treelstm::tree_lstm(6, LeafInit::Embedding);
        let program = model.lower(&RaSchedule::default()).unwrap();
        let trees: Vec<RecStructure> = (0..4u64)
            .map(|s| datasets::random_binary_tree(5 + 2 * s as usize, 90 + s))
            .collect();
        let flips = [
            ExecOptions {
                gate_stacking: false,
                ..ExecOptions::default()
            },
            ExecOptions {
                bulk: false,
                ..ExecOptions::default()
            },
            ExecOptions {
                interp: true,
                ..ExecOptions::default()
            },
        ];
        for opts in flips {
            let mut batcher = Batcher::new(&program, model.params.clone(), manual(64));
            // Warm the engine under the default configuration first.
            let warm = batcher
                .submit(lin(&datasets::random_binary_tree(8, 1)))
                .unwrap();
            batcher.flush();
            assert!(batcher.poll(warm).unwrap().is_some());
            // Queue a batch, then reconfigure mid-batch.
            let tickets: Vec<Ticket> = trees
                .iter()
                .map(|t| batcher.submit(lin(t)).unwrap())
                .collect();
            assert_eq!(batcher.pending(), trees.len());
            batcher.set_exec_options(opts);
            batcher.flush();
            for (t, ticket) in trees.iter().zip(&tickets) {
                let response = batcher.poll(*ticket).unwrap().expect("served after switch");
                // Oracle: a fresh engine built directly with the new
                // options, run solo.
                let (solo_out, solo_prof) = Engine::with_options(&program, opts)
                    .execute(&lin(t), &model.params, true)
                    .unwrap();
                assert_eq!(response.profile, solo_prof);
                for (id, tensor) in &solo_out {
                    assert_eq!(&response.outputs[id], tensor, "bit-exact after reconfig");
                }
            }
        }
    }

    #[test]
    fn serve_error_display_and_source_chain() {
        let e = ServeError::EngineFault {
            source: ExecError::MissingParam("w".into()),
        };
        assert!(e.to_string().contains("engine fault"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::QueueFull).is_none());
        assert!(ServeError::Shed.to_string().contains("shed"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        let exhausted = ServeError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ServeError::Poisoned {
                message: "boom".into(),
            }),
        };
        assert!(exhausted.to_string().contains("3 attempts"));
        assert!(exhausted.to_string().contains("boom"));
        assert!(
            std::error::Error::source(&exhausted).is_some(),
            "the last attempt's error chains as the source"
        );
        assert!(ServeError::ResultExpired.to_string().contains("retention"));
        assert!(ServeError::Unavailable.to_string().contains("alive"));
        assert!(ServeError::Draining.to_string().contains("draining"));
    }
}

//! Router-level model-based fault-injection suite.
//!
//! Extends the per-shard suite (`model_based.rs`) one topology level
//! up: one [`Router`] serving **three models** (TreeLSTM, TreeGRU,
//! sequence-LSTM) on 2–3 shards each, every shard's engine under its
//! own deterministic fault stream (typed errors *and* panics), while a
//! seeded interleaving of `submit` / `poll` / `flush` / clock advances
//! / **shard kills** / health probes runs against it. The oracle holds
//! the same three invariants, now across retries, failovers, spills and
//! hedges:
//!
//! 1. **Exactly-once resolution** — every accepted router ticket
//!    resolves exactly once, with a [`Response`] or a typed
//!    [`ServeError`]; kills and retries never lose or duplicate one.
//! 2. **Bit-identical survivors** — every `Ok` response equals a solo
//!    run on a clean engine exactly (outputs *and* `Profile`), no
//!    matter which shard served it, how many legs it took, or what
//!    faults its chunk-mates raised.
//! 3. **Accounting** — after a final drain nothing is pending and
//!    `submitted == resolved_ok + resolved_err` in [`RouterStats`].
//!
//! Seeds come from `CORTEX_FAULT_SEEDS` (comma-separated, for CI
//! sweeps) with a fixed default set. A block of deterministic
//! lifecycle tests (spill, failover, exhaustion, shutdown shedding,
//! hedging, AIMD) pins the individual behaviors the random suite
//! exercises in aggregate.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use cortex_backend::exec::{Engine, FaultAction};
use cortex_core::ilir::IlirProgram;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_ds::{datasets, RecStructure};
use cortex_models::{seq, treegru, treelstm, LeafInit, Model};
use cortex_rng::Rng;
use cortex_serve::faults::{silence_injected_panics, FaultInjector};
use cortex_serve::{
    AimdDepth, BatcherOptions, HealthPolicy, HedgePolicy, ModelId, Placement, Response,
    RetryPolicy, Router, RouterOptions, RouterTicket, ServeError, TestClock, WhenFull,
};

/// Seeds to sweep: `CORTEX_FAULT_SEEDS=1,2,3` overrides the default.
fn seeds() -> Vec<u64> {
    match std::env::var("CORTEX_FAULT_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 47],
    }
}

fn the_models() -> Vec<Model> {
    vec![
        treelstm::tree_lstm(16, LeafInit::Embedding),
        treegru::tree_gru(16, LeafInit::Embedding),
        seq::seq_lstm(16),
    ]
}

fn gen_input(model_idx: usize, rng: &mut Rng) -> RecStructure {
    if model_idx == 2 {
        datasets::sequence(3 + rng.below_usize(10), rng.next_u64())
    } else {
        datasets::random_binary_tree(3 + rng.below_usize(8), rng.next_u64())
    }
}

fn lin(s: &RecStructure) -> Linearized {
    Linearizer::new().linearize(s).expect("linearizes")
}

/// The in-memory oracle: which accepted router tickets have not yet
/// resolved, and what (model, input) each carried.
struct Oracle {
    unresolved: HashMap<RouterTicket, (usize, Linearized)>,
    resolutions: u64,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            unresolved: HashMap::new(),
            resolutions: 0,
        }
    }

    fn accept(&mut self, ticket: RouterTicket, model_idx: usize, input: Linearized) {
        let prev = self.unresolved.insert(ticket, (model_idx, input));
        assert!(prev.is_none(), "ticket {ticket:?} accepted twice");
    }

    fn resolve(
        &mut self,
        ticket: RouterTicket,
        outcome: &Result<Response, ServeError>,
        solo_engines: &mut [Engine<'_>],
        models: &[Model],
    ) {
        let (model_idx, input) = self
            .unresolved
            .remove(&ticket)
            .unwrap_or_else(|| panic!("ticket {ticket:?} resolved twice (or never accepted)"));
        self.resolutions += 1;
        match outcome {
            Ok(response) => {
                let (solo_out, solo_prof) = solo_engines[model_idx]
                    .execute(&input, &models[model_idx].params, true)
                    .expect("clean solo run");
                assert_eq!(
                    response.profile, solo_prof,
                    "survivor profile must equal a solo run exactly"
                );
                assert_eq!(solo_out.len(), response.outputs.len());
                for (id, tensor) in &solo_out {
                    assert_eq!(
                        &response.outputs[id], tensor,
                        "survivor outputs must be bit-identical to a solo run"
                    );
                }
            }
            Err(e) => assert!(
                matches!(
                    e,
                    ServeError::DeadlineExceeded | ServeError::RetriesExhausted { .. }
                ),
                "only deadline misses and retry exhaustion are terminal here, got {e}"
            ),
        }
    }
}

/// One random interleaving against the full three-model topology.
fn run_router_interleaving(seed: u64) -> u64 {
    silence_injected_panics();
    let models = the_models();
    let programs: Vec<IlirProgram> = models
        .iter()
        .map(|m| m.lower(&RaSchedule::default()).expect("lowers"))
        .collect();
    let mut rng = Rng::new(seed);
    let clock = TestClock::new();

    // Random (seed-deterministic) topology configuration. Shards
    // reject when full so overload spills across the topology instead
    // of shedding inside a shard.
    let shard_opts = BatcherOptions {
        max_batch: 2 + rng.below_usize(6),
        max_delay: Duration::from_millis(rng.below_usize(8) as u64),
        queue_cap: 2 + rng.below_usize(6),
        when_full: WhenFull::Reject,
        deadline: None,
        breaker_threshold: rng.below_usize(4) as u32, // 0 disables
        breaker_reset: Duration::from_millis(1 + rng.below_usize(50) as u64),
        ..BatcherOptions::default()
    };
    let ropts = RouterOptions {
        placement: *rng.pick(&[
            Placement::LeastLoaded,
            Placement::PowerOfTwo,
            Placement::RoundRobin,
            Placement::PrimarySpill,
        ]),
        seed: seed ^ 0xD117,
        retry: RetryPolicy {
            max_attempts: 1 + rng.below_usize(3) as u32,
            backoff: Duration::from_millis(rng.below_usize(5) as u64),
            max_backoff: Duration::from_millis(100),
        },
        hedge: if rng.bool() {
            Some(HedgePolicy {
                delay: Duration::from_millis(rng.below_usize(6) as u64),
            })
        } else {
            None
        },
        adaptive_depth: if rng.bool() {
            Some(AimdDepth {
                start: 2 + rng.below_usize(8),
                min: 1,
                max: 32,
                window: 4,
            })
        } else {
            None
        },
        health: HealthPolicy::default(),
    };
    let mut router = Router::new(ropts).with_clock(Rc::new(clock.clone()));

    let mut ids: Vec<ModelId> = Vec::new();
    let mut shard_counts: Vec<usize> = Vec::new();
    for (i, (model, program)) in models.iter().zip(&programs).enumerate() {
        let shards = 2 + rng.below_usize(2);
        let id = router.add_model(&model.name, program, &model.params, shards, shard_opts);
        // Each shard gets its own independent fault stream.
        for (s, (hook, _handle)) in FaultInjector::new(seed ^ (0xFA17 + i as u64))
            .with_rates(0.05, 0.03)
            .into_shard_hooks(shards)
            .into_iter()
            .enumerate()
        {
            assert!(router.set_shard_fault_hook(id, s, Some(hook)));
        }
        ids.push(id);
        shard_counts.push(shards);
    }

    let mut solo_engines: Vec<Engine<'_>> = programs.iter().map(Engine::new).collect();
    let mut oracle = Oracle::new();
    let mut known: Vec<RouterTicket> = Vec::new();

    let ops = 80 + rng.below_usize(40);
    for _ in 0..ops {
        match rng.below_usize(10) {
            // submit (heaviest weight: traffic drives everything else)
            0..=3 => {
                let m = rng.below_usize(models.len());
                let input = lin(&gen_input(m, &mut rng));
                let budget = if rng.bool() {
                    Some(Duration::from_millis(5 + rng.below_usize(30) as u64))
                } else {
                    None
                };
                match router.submit_with_deadline(ids[m], input.clone(), budget) {
                    Ok(t) => {
                        oracle.accept(t, m, input);
                        known.push(t);
                    }
                    Err(e) => assert!(
                        matches!(e, ServeError::QueueFull),
                        "only full-topology refusals may come back from submit, got {e}"
                    ),
                }
            }
            // poll a random known ticket
            4..=5 => {
                if known.is_empty() {
                    continue;
                }
                let t = *rng.pick(&known);
                let resolved_before = !oracle.unresolved.contains_key(&t);
                match router.poll(t) {
                    Ok(None) => {}
                    Ok(Some(response)) => {
                        oracle.resolve(t, &Ok(response), &mut solo_engines, &models);
                    }
                    Err(e) => {
                        assert!(
                            !resolved_before,
                            "ticket {t:?} reported an error after already resolving: {e}"
                        );
                        oracle.resolve(t, &Err(e), &mut solo_engines, &models);
                    }
                }
            }
            // flush the whole topology
            6 => router.flush(),
            // advance time (deadlines, backoff, hedge delays, breaker)
            7 => clock.advance(Duration::from_millis(rng.below_usize(12) as u64)),
            // kill a shard — but never a model's last one
            8 => {
                let m = rng.below_usize(models.len());
                if router.alive_shards(ids[m]) > 1 {
                    let alive: Vec<usize> = router
                        .health(ids[m])
                        .iter()
                        .filter(|s| s.alive)
                        .map(|s| s.shard)
                        .collect();
                    let victim = *rng.pick(&alive);
                    assert!(router.kill_shard(ids[m], victim));
                }
            }
            // operator health probe: shape sanity only
            _ => {
                let m = rng.below_usize(models.len());
                let snapshots = router.health(ids[m]);
                assert_eq!(snapshots.len(), shard_counts[m]);
                for snap in &snapshots {
                    assert!(snap.error_rate >= 0.0 && snap.error_rate <= 1.0);
                    assert!(!snap.healthy || snap.alive, "healthy implies alive");
                }
            }
        }
    }

    // Final drain: every still-tracked ticket must resolve here.
    for (t, outcome) in router.drain() {
        oracle.resolve(t, &outcome, &mut solo_engines, &models);
    }
    assert!(
        oracle.unresolved.is_empty(),
        "tickets lost without resolution: {:?}",
        oracle.unresolved.keys().collect::<Vec<_>>()
    );
    assert_eq!(router.pending(), 0, "drain must settle every ticket");
    assert_eq!(router.unclaimed(), 0, "drain must hand every outcome back");
    let stats = router.stats();
    assert_eq!(
        stats.resolved_ok + stats.resolved_err,
        stats.submitted,
        "accounting: every admitted ticket resolves exactly once"
    );
    assert_eq!(
        stats.submitted, oracle.resolutions,
        "oracle saw every ticket"
    );
    oracle.resolutions
}

#[test]
fn random_router_interleavings_hold_invariants() {
    for seed in seeds() {
        let resolved = run_router_interleaving(seed);
        assert!(resolved > 0, "seed {seed}: the run must serve traffic");
    }
}

// ---------------------------------------------------------------------
// Deterministic lifecycle tests: each pins one behavior the random
// suite exercises in aggregate.
// ---------------------------------------------------------------------

/// A (program, model) pair the router can borrow from.
fn one_model() -> (IlirProgram, Model) {
    let model = treelstm::tree_lstm(16, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    (program, model)
}

fn tree_input(seed: u64) -> Linearized {
    lin(&datasets::random_binary_tree(5, seed))
}

/// Shard options for deterministic tests: nothing fires on its own.
fn quiet_opts() -> BatcherOptions {
    BatcherOptions {
        max_batch: 64,
        max_delay: Duration::from_secs(3600),
        queue_cap: 64,
        when_full: WhenFull::Reject,
        breaker_threshold: 0,
        ..BatcherOptions::default()
    }
}

#[test]
fn hot_shard_spills_before_rejecting() {
    let (program, model) = one_model();
    let mut router = Router::new(RouterOptions {
        placement: Placement::PrimarySpill,
        adaptive_depth: None,
        ..RouterOptions::default()
    });
    let opts = BatcherOptions {
        queue_cap: 2,
        ..quiet_opts()
    };
    let id = router.add_model("m", &program, &model.params, 2, opts);
    let mut tickets = Vec::new();
    for i in 0..4 {
        tickets.push(router.submit(id, tree_input(i)).expect("capacity left"));
    }
    assert_eq!(
        router.submit(id, tree_input(9)),
        Err(ServeError::QueueFull),
        "both shards at cap"
    );
    let stats = router.stats();
    assert_eq!(stats.spills, 2, "requests 3 and 4 spilled to shard 1");
    assert_eq!(stats.rejected, 1);
    let outcomes = router.drain();
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
    assert_eq!(router.stats().resolved_ok, 4);
}

#[test]
fn kill_shard_fails_over_without_consuming_retry_budget() {
    let (program, model) = one_model();
    let mut router = Router::new(RouterOptions {
        placement: Placement::PrimarySpill,
        adaptive_depth: None,
        ..RouterOptions::default()
    });
    let id = router.add_model("m", &program, &model.params, 2, quiet_opts());
    for i in 0..5 {
        router.submit(id, tree_input(i)).expect("admitted");
    }
    assert!(router.kill_shard(id, 0), "shard 0 was alive");
    assert!(!router.kill_shard(id, 0), "second kill is a no-op");
    assert_eq!(router.alive_shards(id), 1);
    let stats = router.stats();
    assert_eq!(stats.shard_kills, 1);
    assert_eq!(stats.failovers, 5, "every queued leg moved to shard 1");
    assert_eq!(stats.retries, 0, "failover is free");
    let outcomes = router.drain();
    assert_eq!(outcomes.len(), 5);
    assert!(outcomes.iter().all(|(_, o)| o.is_ok()));
}

#[test]
fn killing_the_last_shard_surfaces_unavailable() {
    let (program, model) = one_model();
    let mut router = Router::new(RouterOptions {
        adaptive_depth: None,
        ..RouterOptions::default()
    });
    let id = router.add_model("m", &program, &model.params, 1, quiet_opts());
    let t = router.submit(id, tree_input(1)).expect("admitted");
    assert!(router.kill_shard(id, 0));
    assert_eq!(router.alive_shards(id), 0);
    assert_eq!(
        router.poll(t),
        Err(ServeError::Unavailable),
        "an orphaned ticket with no shard left resolves Unavailable"
    );
    assert_eq!(
        router.submit(id, tree_input(2)),
        Err(ServeError::Unavailable),
        "a dead model refuses admission"
    );
    let stats = router.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.resolved_err, 1);
    assert_eq!(stats.rejected, 1);
}

#[test]
fn faulted_requests_retry_on_a_sibling_and_exhaust_typed() {
    silence_injected_panics();
    let (program, model) = one_model();
    // Shard 0 faults every launch; shard 1 is clean. One retry
    // rescues the ticket.
    let mut router = Router::new(RouterOptions {
        placement: Placement::PrimarySpill,
        retry: RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        adaptive_depth: None,
        ..RouterOptions::default()
    });
    let id = router.add_model("m", &program, &model.params, 2, quiet_opts());
    let (hook, _h) = FaultInjector::new(7)
        .always(FaultAction::Err)
        .launches_only()
        .into_hook();
    assert!(router.set_shard_fault_hook(id, 0, Some(hook)));
    let t = router.submit(id, tree_input(1)).expect("admitted");
    let outcomes = router.drain();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].0, t);
    assert!(outcomes[0].1.is_ok(), "the retry leg on shard 1 succeeds");
    let stats = router.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.retries_exhausted, 0);

    // Both shards broken: the budget runs out, typed.
    let mut router = Router::new(RouterOptions {
        placement: Placement::PrimarySpill,
        retry: RetryPolicy {
            max_attempts: 2,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        },
        adaptive_depth: None,
        ..RouterOptions::default()
    });
    let id = router.add_model("m", &program, &model.params, 2, quiet_opts());
    for s in 0..2 {
        let (hook, _h) = FaultInjector::new(7)
            .always(FaultAction::Err)
            .launches_only()
            .into_hook();
        assert!(router.set_shard_fault_hook(id, s, Some(hook)));
    }
    router.submit(id, tree_input(1)).expect("admitted");
    let outcomes = router.drain();
    match &outcomes[0].1 {
        Err(ServeError::RetriesExhausted { attempts, last }) => {
            assert_eq!(*attempts, 2);
            assert!(matches!(**last, ServeError::EngineFault { .. }));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(router.stats().retries_exhausted, 1);
}

#[test]
fn shutdown_sheds_the_remainder_typed_and_closes_admission() {
    let (program, model) = one_model();
    let clock = TestClock::new();
    let mut router = Router::new(RouterOptions {
        adaptive_depth: None,
        ..RouterOptions::default()
    })
    .with_clock(Rc::new(clock.clone()));
    let id = router.add_model("m", &program, &model.params, 1, quiet_opts());
    for i in 0..4 {
        router.submit(id, tree_input(i)).expect("admitted");
    }
    // A zero budget sheds everything still in flight — typed, not lost.
    let outcomes = router.shutdown(Duration::ZERO);
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes
        .iter()
        .all(|(_, o)| matches!(o, Err(ServeError::Shed))));
    let stats = router.stats();
    assert_eq!(stats.shed, 4);
    assert_eq!(stats.resolved_ok + stats.resolved_err, stats.submitted);
    assert_eq!(router.pending(), 0);
    assert_eq!(
        router.submit(id, tree_input(9)),
        Err(ServeError::Draining),
        "admission is closed after shutdown"
    );
}

#[test]
fn deadline_misses_resolve_at_the_router() {
    let (program, model) = one_model();
    let clock = TestClock::new();
    let mut router = Router::new(RouterOptions {
        adaptive_depth: None,
        ..RouterOptions::default()
    })
    .with_clock(Rc::new(clock.clone()));
    let id = router.add_model("m", &program, &model.params, 1, quiet_opts());
    let t = router
        .submit_with_deadline(id, tree_input(1), Some(Duration::from_millis(5)))
        .expect("admitted");
    clock.advance(Duration::from_millis(6));
    assert_eq!(router.poll(t), Err(ServeError::DeadlineExceeded));
    assert_eq!(router.stats().deadline_misses, 1);
}

#[test]
fn hedged_dispatch_duplicates_to_a_second_shard() {
    let (program, model) = one_model();
    let clock = TestClock::new();
    let mut router = Router::new(RouterOptions {
        placement: Placement::PrimarySpill,
        hedge: Some(HedgePolicy {
            delay: Duration::ZERO,
        }),
        adaptive_depth: None,
        ..RouterOptions::default()
    })
    .with_clock(Rc::new(clock.clone()));
    let id = router.add_model("m", &program, &model.params, 2, quiet_opts());
    let t = router
        .submit_with_deadline(id, tree_input(1), Some(Duration::from_secs(3600)))
        .expect("admitted");
    assert_eq!(router.poll(t), Ok(None), "still queued; hedge launched");
    let stats = router.stats();
    assert_eq!(stats.hedges_launched, 1);
    let health = router.health(id);
    assert_eq!(health[0].queued, 1, "primary leg on shard 0");
    assert_eq!(health[1].queued, 1, "hedge leg on shard 1");
    let outcomes = router.drain();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].1.is_ok());
    assert_eq!(router.stats().resolved_ok, 1, "one ticket, one resolution");
}

#[test]
fn aimd_depth_halves_on_misses_and_grows_back() {
    let (program, model) = one_model();
    let clock = TestClock::new();
    let mut router = Router::new(RouterOptions {
        adaptive_depth: Some(AimdDepth {
            start: 8,
            min: 1,
            max: 16,
            window: 2,
        }),
        ..RouterOptions::default()
    })
    .with_clock(Rc::new(clock.clone()));
    let id = router.add_model("m", &program, &model.params, 1, quiet_opts());
    assert_eq!(router.health(id)[0].max_batch, 8, "AIMD start overrides");

    // Two deadline misses in one window: multiplicative decrease.
    for i in 0..2 {
        router
            .submit_with_deadline(id, tree_input(i), Some(Duration::from_millis(1)))
            .expect("admitted");
    }
    clock.advance(Duration::from_millis(2));
    router.flush();
    assert_eq!(router.stats().deadline_misses, 2);
    assert_eq!(router.health(id)[0].max_batch, 4, "halved after misses");
    assert_eq!(router.stats().depth_decreases, 1);

    // A clean window: additive increase.
    for i in 0..2 {
        router.submit(id, tree_input(10 + i)).expect("admitted");
    }
    router.flush();
    assert_eq!(router.health(id)[0].max_batch, 5, "grew by one");
    assert_eq!(router.stats().depth_increases, 1);
}

//! Placement independence: the router's topology decisions must never
//! change *what* is computed.
//!
//! The same fixed input set, across three models, runs through
//! structurally different topologies — one shard, three shards
//! least-loaded, power-of-two-choices under two different RNG seeds,
//! round-robin with aggressive hedging, and a primary/spill pair whose
//! primary faults every launch (forcing a retry for every ticket). In
//! every configuration, every ticket must resolve `Ok` with outputs
//! *and* `Profile` bit-identical to a solo run on a clean engine:
//! which shard served a request, whether a hedge raced it, and whether
//! a retry moved it are invisible in the result.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use cortex_backend::exec::{Engine, FaultAction};
use cortex_core::ilir::IlirProgram;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_ds::{datasets, RecStructure};
use cortex_models::{seq, treegru, treelstm, LeafInit, Model};
use cortex_serve::faults::{silence_injected_panics, FaultInjector};
use cortex_serve::{
    BatcherOptions, HedgePolicy, Placement, RetryPolicy, Router, RouterOptions, RouterTicket,
    TestClock, WhenFull,
};

const INPUTS_PER_MODEL: usize = 6;

fn the_models() -> Vec<Model> {
    vec![
        treelstm::tree_lstm(16, LeafInit::Embedding),
        treegru::tree_gru(16, LeafInit::Embedding),
        seq::seq_lstm(16),
    ]
}

/// A fixed, seed-deterministic input set per model.
fn the_inputs() -> Vec<Vec<Linearized>> {
    let gen = |m: usize, j: usize| -> RecStructure {
        let seed = (m as u64) * 100 + j as u64 + 1;
        if m == 2 {
            datasets::sequence(4 + j, seed)
        } else {
            datasets::random_binary_tree(4 + j, seed)
        }
    };
    (0..3)
        .map(|m| {
            (0..INPUTS_PER_MODEL)
                .map(|j| Linearizer::new().linearize(&gen(m, j)).expect("linearizes"))
                .collect()
        })
        .collect()
}

struct Topology {
    label: &'static str,
    opts: RouterOptions,
    shards: usize,
    shard_opts: BatcherOptions,
    /// Submit with this deadline budget (hedging needs one).
    deadline: Option<Duration>,
    /// Poll each ticket once right after submitting it (gives the
    /// hedge timer a pump while the queue is still warm).
    poll_after_submit: bool,
    /// Break shard 0 of every model (always-faulting launches).
    fault_shard0: bool,
}

fn quiet_opts() -> BatcherOptions {
    BatcherOptions {
        max_batch: 64,
        max_delay: Duration::from_secs(3600),
        queue_cap: 64,
        when_full: WhenFull::Reject,
        breaker_threshold: 0,
        ..BatcherOptions::default()
    }
}

/// Runs the fixed input set through one topology and asserts every
/// ticket resolves `Ok`, bit-identical to a clean solo run. Returns the
/// router stats for topology-specific assertions.
fn run_topology(
    topo: &Topology,
    models: &[Model],
    programs: &[IlirProgram],
    inputs: &[Vec<Linearized>],
) -> cortex_serve::RouterStats {
    let clock = TestClock::new();
    let mut router = Router::new(topo.opts).with_clock(Rc::new(clock.clone()));
    let ids: Vec<_> = models
        .iter()
        .zip(programs)
        .map(|(m, p)| router.add_model(&m.name, p, &m.params, topo.shards, topo.shard_opts))
        .collect();
    if topo.fault_shard0 {
        for &id in &ids {
            let (hook, _h) = FaultInjector::new(3)
                .always(FaultAction::Err)
                .launches_only()
                .into_hook();
            assert!(router.set_shard_fault_hook(id, 0, Some(hook)));
        }
    }

    // Interleave submissions across models, remembering what each
    // ticket carried.
    let mut carried: HashMap<RouterTicket, (usize, usize)> = HashMap::new();
    let mut resolved: HashMap<RouterTicket, cortex_serve::Response> = HashMap::new();
    // Submission order interleaves across models on purpose, so both
    // indices stay explicit.
    #[allow(clippy::needless_range_loop)]
    for j in 0..INPUTS_PER_MODEL {
        for m in 0..models.len() {
            let t = router
                .submit_with_deadline(ids[m], inputs[m][j].clone(), topo.deadline)
                .unwrap_or_else(|e| panic!("{}: admission refused: {e}", topo.label));
            carried.insert(t, (m, j));
            if topo.poll_after_submit {
                if let Some(r) = router
                    .poll(t)
                    .unwrap_or_else(|e| panic!("{}: early failure: {e}", topo.label))
                {
                    resolved.insert(t, r);
                }
            }
        }
    }
    for (t, outcome) in router.drain() {
        match outcome {
            Ok(r) => {
                resolved.insert(t, r);
            }
            Err(e) => panic!("{}: ticket {t:?} failed: {e}", topo.label),
        }
    }

    // Every ticket resolved, bit-identical to a clean solo run.
    assert_eq!(resolved.len(), carried.len(), "{}", topo.label);
    let mut solo_engines: Vec<Engine<'_>> = programs.iter().map(Engine::new).collect();
    for (t, response) in &resolved {
        let (m, j) = carried[t];
        let (solo_out, solo_prof) = solo_engines[m]
            .execute(&inputs[m][j], &models[m].params, true)
            .expect("clean solo run");
        assert_eq!(
            response.profile, solo_prof,
            "{}: profile differs for model {m} input {j}",
            topo.label
        );
        assert_eq!(solo_out.len(), response.outputs.len(), "{}", topo.label);
        for (id, tensor) in &solo_out {
            assert_eq!(
                &response.outputs[id], tensor,
                "{}: outputs differ for model {m} input {j}",
                topo.label
            );
        }
    }
    let stats = router.stats();
    assert_eq!(stats.submitted, (models.len() * INPUTS_PER_MODEL) as u64);
    assert_eq!(stats.resolved_ok, stats.submitted, "{}", topo.label);
    assert_eq!(stats.resolved_err, 0, "{}", topo.label);
    stats
}

#[test]
fn results_are_identical_across_placements_hedging_and_retries() {
    silence_injected_panics();
    let models = the_models();
    let programs: Vec<IlirProgram> = models
        .iter()
        .map(|m| m.lower(&RaSchedule::default()).expect("lowers"))
        .collect();
    let inputs = the_inputs();

    let zero_backoff = RetryPolicy {
        max_attempts: 3,
        backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let topologies = vec![
        Topology {
            label: "solo shard, least-loaded",
            opts: RouterOptions {
                placement: Placement::LeastLoaded,
                ..RouterOptions::default()
            },
            shards: 1,
            shard_opts: quiet_opts(),
            deadline: None,
            poll_after_submit: false,
            fault_shard0: false,
        },
        Topology {
            label: "3 shards, least-loaded",
            opts: RouterOptions {
                placement: Placement::LeastLoaded,
                ..RouterOptions::default()
            },
            shards: 3,
            shard_opts: quiet_opts(),
            deadline: None,
            poll_after_submit: false,
            fault_shard0: false,
        },
        Topology {
            label: "3 shards, power-of-two (seed 1)",
            opts: RouterOptions {
                placement: Placement::PowerOfTwo,
                seed: 1,
                ..RouterOptions::default()
            },
            shards: 3,
            shard_opts: quiet_opts(),
            deadline: None,
            poll_after_submit: false,
            fault_shard0: false,
        },
        Topology {
            label: "3 shards, power-of-two (seed 2)",
            opts: RouterOptions {
                placement: Placement::PowerOfTwo,
                seed: 2,
                ..RouterOptions::default()
            },
            shards: 3,
            shard_opts: quiet_opts(),
            deadline: None,
            poll_after_submit: false,
            fault_shard0: false,
        },
        Topology {
            label: "2 shards, round-robin, zero-delay hedging",
            opts: RouterOptions {
                placement: Placement::RoundRobin,
                hedge: Some(HedgePolicy {
                    delay: Duration::ZERO,
                }),
                ..RouterOptions::default()
            },
            shards: 2,
            shard_opts: quiet_opts(),
            deadline: Some(Duration::from_secs(3600)),
            poll_after_submit: true,
            fault_shard0: false,
        },
        Topology {
            label: "primary/spill with a faulting primary (every ticket retries)",
            opts: RouterOptions {
                placement: Placement::PrimarySpill,
                retry: zero_backoff,
                adaptive_depth: None,
                ..RouterOptions::default()
            },
            shards: 2,
            shard_opts: quiet_opts(),
            deadline: None,
            poll_after_submit: false,
            fault_shard0: true,
        },
    ];

    for topo in &topologies {
        let stats = run_topology(topo, &models, &programs, &inputs);
        match topo.label {
            "2 shards, round-robin, zero-delay hedging" => {
                assert!(
                    stats.hedges_launched > 0,
                    "the hedging topology must actually hedge"
                );
            }
            "primary/spill with a faulting primary (every ticket retries)" => {
                assert_eq!(
                    stats.retries,
                    (3 * INPUTS_PER_MODEL) as u64,
                    "every ticket faulted on the primary and retried once"
                );
                assert_eq!(stats.retries_exhausted, 0);
            }
            _ => {}
        }
    }
}

//! Adversarial structure fuzzing, run differentially.
//!
//! [`StructureFuzzer`] cases — hostile forests interleaved with valid
//! controls — drive the whole intake ladder:
//!
//! 1. **Construction** ([`RecStructure::from_parts`]): every malformed
//!    case (cycle, self-loop, dangling child, length mismatch, fan-out
//!    violation, empty) is refused with a typed `StructureError`, never
//!    a panic; every well-formed case constructs.
//! 2. **Engine admission**: structurally valid but hostile inputs
//!    (over-wide arity, over-budget footprints, poisoned parameters)
//!    come back as typed `ExecError`/`ServeError` refusals, and the pc
//!    runtime and the `interp` oracle refuse *identically*.
//! 3. **Execution**: every accepted case produces bit-identical outputs
//!    *and* `Profile` counters on both runtimes.
//!
//! Seeds come from `CORTEX_FUZZ_SEEDS` (comma-separated, for CI sweeps)
//! with a fixed default set, mirroring the fault-injection suite's
//! `CORTEX_FAULT_SEEDS`.

use cortex_backend::exec::{Engine, ExecError, ExecOptions};
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::Linearizer;
use cortex_models::{treelstm, LeafInit, Model};
use cortex_serve::fuzz::{FuzzCase, StructureFuzzer, SHAPES};
use cortex_serve::{Batcher, BatcherOptions, ServeError};

/// Seeds to sweep: `CORTEX_FUZZ_SEEDS=1,2,3` overrides the default.
fn seeds() -> Vec<u64> {
    match std::env::var("CORTEX_FUZZ_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 47],
    }
}

fn model() -> Model {
    treelstm::tree_lstm(8, LeafInit::Embedding)
}

fn linearize(case: &FuzzCase) -> cortex_ds::linearizer::Linearized {
    let structure = case
        .build()
        .unwrap_or_else(|e| panic!("{}: expected well-formed, got {e}", case.label));
    Linearizer::new()
        .linearize(&structure)
        .unwrap_or_else(|e| panic!("{}: linearize failed: {e}", case.label))
}

/// The core differential property: for every fuzzed case, construction
/// either refuses with a typed error (malformed cases, and only those)
/// or yields a structure on which the pc runtime and the interp oracle
/// agree exactly — same admission verdict, same outputs, same profile.
#[test]
fn fuzzed_cases_never_panic_and_accepted_cases_match_the_oracle() {
    let model = model();
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let mut pc = Engine::new(&program);
    let mut oracle = Engine::with_options(&program, ExecOptions::interpreted());

    for seed in seeds() {
        let mut fuzz = StructureFuzzer::new(seed);
        let (mut executed, mut refused_build, mut refused_intake) = (0u32, 0u32, 0u32);
        for case in fuzz.cases(4 * SHAPES) {
            let structure = match case.build() {
                Err(e) => {
                    assert!(
                        case.expect_malformed,
                        "seed {seed}, {}: well-formed case refused: {e}",
                        case.label
                    );
                    refused_build += 1;
                    continue;
                }
                Ok(s) => {
                    assert!(
                        !case.expect_malformed,
                        "seed {seed}, {}: malformed case was accepted",
                        case.label
                    );
                    s
                }
            };
            let lin = Linearizer::new()
                .linearize(&structure)
                .unwrap_or_else(|e| panic!("seed {seed}, {}: linearize failed: {e}", case.label));
            let pc_run = pc.execute(&lin, &model.params, true);
            let oracle_run = oracle.execute(&lin, &model.params, true);
            match (pc_run, oracle_run) {
                (Ok((out, prof)), Ok((oracle_out, oracle_prof))) => {
                    executed += 1;
                    assert_eq!(
                        prof, oracle_prof,
                        "seed {seed}, {}: profiles must be bit-identical",
                        case.label
                    );
                    assert_eq!(out.len(), oracle_out.len());
                    for (id, tensor) in &out {
                        assert_eq!(
                            Some(tensor),
                            oracle_out.get(id),
                            "seed {seed}, {}: outputs must be bit-identical",
                            case.label
                        );
                    }
                }
                (Err(e), Err(oracle_e)) => {
                    refused_intake += 1;
                    assert_eq!(
                        e, oracle_e,
                        "seed {seed}, {}: both runtimes must refuse identically",
                        case.label
                    );
                    assert!(
                        matches!(e, ExecError::InvalidInput(_)),
                        "seed {seed}, {}: admission refusals must be typed InvalidInput, got {e}",
                        case.label
                    );
                }
                (pc_r, oracle_r) => panic!(
                    "seed {seed}, {}: runtimes disagree on admission (pc ok={}, oracle ok={})",
                    case.label,
                    pc_r.is_ok(),
                    oracle_r.is_ok()
                ),
            }
        }
        assert!(
            executed > 0 && refused_build > 0 && refused_intake > 0,
            "seed {seed}: sweep must exercise all three verdicts \
             (executed {executed}, refused at build {refused_build}, at intake {refused_intake})"
        );
    }
}

/// Serve-level admission: hostile inputs are refused at `submit` with
/// the new typed `ServeError` variants and counted in `ServeStats`,
/// while valid traffic keeps flowing on the same batcher.
#[test]
fn batcher_refuses_hostile_admissions_with_typed_errors_and_counters() {
    let model = model();
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let mut batcher = Batcher::new(&program, model.params.clone(), BatcherOptions::default());
    let mut fuzz = StructureFuzzer::new(seeds()[0]);

    // Arity beyond the compiled plan: refused before any ticket exists.
    let err = batcher.submit(linearize(&fuzz.wide_arity())).unwrap_err();
    assert!(
        matches!(err, ServeError::InvalidInput { .. }),
        "wide arity must be InvalidInput, got {err}"
    );

    // A unary chain: TreeLSTM reads both child slots unguarded, so the
    // plan's required arity refuses it before execution.
    let err = batcher.submit(linearize(&fuzz.deep_chain())).unwrap_err();
    assert!(
        matches!(err, ServeError::InvalidInput { .. }),
        "under-arity chain must be InvalidInput, got {err}"
    );

    // A one-byte memory budget: everything is over budget.
    batcher.set_exec_options(ExecOptions {
        memory_budget: Some(1),
        ..ExecOptions::default()
    });
    let tree = linearize(&fuzz.valid_tree());
    let err = batcher.submit(tree.clone()).unwrap_err();
    assert!(
        matches!(err, ServeError::OverBudget { budget: 1, .. }),
        "tiny budget must be OverBudget, got {err}"
    );

    // Refusals must not poison the batcher: the same input is served
    // once the budget is lifted.
    batcher.set_exec_options(ExecOptions::default());
    let ticket = batcher.submit(tree).expect("valid input admits");
    let resolved = batcher.drain();
    let outcome = &resolved
        .iter()
        .find(|(t, _)| *t == ticket)
        .expect("admitted ticket resolves")
        .1;
    assert!(outcome.is_ok(), "valid traffic must still be served");

    let stats = batcher.serve_stats();
    assert_eq!(stats.rejected_invalid, 2);
    assert_eq!(stats.over_budget, 1);
    assert!(stats.rejected >= 3, "every refusal counts as rejected");
    assert_eq!(
        stats.submitted,
        stats.resolved_ok + stats.resolved_err,
        "refused requests never enter the resolution ledger"
    );
}

/// Non-finite parameters — the fuzzer's NaN attack — surface as a typed
/// per-ticket error at batch execution, never a panic, and accounting
/// still balances.
#[test]
fn poisoned_params_fail_typed_not_panicking() {
    let model = model();
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let mut params = model.params.clone();
    let mut poisoned = params.get("U_i").expect("treelstm has U_i").clone();
    poisoned.as_mut_slice()[0] = f32::NAN;
    params.set("U_i", poisoned);

    let mut batcher = Batcher::new(&program, params, BatcherOptions::default());
    let mut fuzz = StructureFuzzer::new(seeds()[0]);
    let ticket = batcher
        .submit(linearize(&fuzz.next_case()))
        .expect("structure itself is valid");
    let resolved = batcher.drain();
    let outcome = &resolved
        .iter()
        .find(|(t, _)| *t == ticket)
        .expect("ticket resolves")
        .1;
    let err = outcome.as_ref().unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::EngineFault { .. } | ServeError::InvalidInput { .. }
        ),
        "NaN params must fail typed, got {err}"
    );
    let stats = batcher.serve_stats();
    assert_eq!(stats.submitted, stats.resolved_ok + stats.resolved_err);
}

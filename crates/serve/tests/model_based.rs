//! Model-based fault-injection suite for the serving front.
//!
//! Random interleavings of `submit` / `submit_many` / `poll` / `flush` /
//! `drain` / clock advances / executor reconfiguration run against a
//! [`Batcher`] whose engine is under deterministic random fault
//! injection (typed errors *and* panics at launch/GEMM sites), checked
//! against an in-memory oracle holding three invariants:
//!
//! 1. **Exactly-once resolution** — every accepted ticket resolves
//!    exactly once: with a [`Response`], a typed [`ServeError`], or a
//!    shed; no ticket is lost, none resolves twice.
//! 2. **Bit-identical survivors** — every `Ok` response (including
//!    responses served while the circuit breaker holds the engine
//!    degraded, and responses re-run after a chunk-mate's contained
//!    panic) equals a solo run on a clean engine exactly: outputs *and*
//!    `Profile` counters.
//! 3. **Accounting** — after a final drain the batcher is empty and
//!    `submitted == resolved_ok + resolved_err` in [`ServeStats`].
//!
//! The same harness runs across three models (TreeLSTM, TreeGRU,
//! sequence-LSTM) so the invariants hold for tree, gated-tree, and
//! width-1 sequence wave shapes alike. Seeds come from
//! `CORTEX_FAULT_SEEDS` (comma-separated, for CI sweeps) with a fixed
//! default set.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use cortex_backend::exec::{Engine, ExecOptions, FaultAction};
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_ds::{datasets, RecStructure};
use cortex_models::{seq, treegru, treelstm, LeafInit, Model};
use cortex_rng::Rng;
use cortex_serve::faults::{silence_injected_panics, FaultInjector};
use cortex_serve::{Batcher, BatcherOptions, Response, ServeError, TestClock, Ticket, WhenFull};

/// Seeds to sweep: `CORTEX_FAULT_SEEDS=1,2,3` overrides the default.
fn seeds() -> Vec<u64> {
    match std::env::var("CORTEX_FAULT_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 47],
    }
}

/// The in-memory oracle: which accepted tickets have not yet resolved,
/// and what input each carried (for the solo-run comparison).
struct Oracle {
    unresolved: HashMap<Ticket, Linearized>,
    resolutions: u64,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            unresolved: HashMap::new(),
            resolutions: 0,
        }
    }

    fn accept(&mut self, ticket: Ticket, lin: Linearized) {
        let prev = self.unresolved.insert(ticket, lin);
        assert!(prev.is_none(), "ticket {ticket:?} accepted twice");
    }

    /// Records a terminal outcome, checking exactly-once resolution and
    /// (for `Ok`) bit-identity against a solo run on the clean engine.
    fn resolve(
        &mut self,
        ticket: Ticket,
        outcome: &Result<Response, ServeError>,
        solo_engine: &mut Engine<'_>,
        model: &Model,
    ) {
        let lin = self
            .unresolved
            .remove(&ticket)
            .unwrap_or_else(|| panic!("ticket {ticket:?} resolved twice (or never accepted)"));
        self.resolutions += 1;
        if let Ok(response) = outcome {
            let (solo_out, solo_prof) = solo_engine
                .execute(&lin, &model.params, true)
                .expect("clean solo run");
            assert_eq!(
                response.profile, solo_prof,
                "survivor profile must equal a solo run exactly"
            );
            assert_eq!(
                solo_out.len(),
                response.outputs.len(),
                "survivor output set must match a solo run"
            );
            for (id, tensor) in &solo_out {
                assert_eq!(
                    &response.outputs[id], tensor,
                    "survivor outputs must be bit-identical to a solo run"
                );
            }
        }
    }
}

/// One random interleaving against one model. Returns the number of
/// tickets resolved, for the smoke assertion that the run did work.
fn run_interleaving(model: &Model, gen_input: &dyn Fn(&mut Rng) -> RecStructure, seed: u64) -> u64 {
    silence_injected_panics();
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let mut rng = Rng::new(seed);

    // Random (but seed-deterministic) serving configuration.
    let when_full = *rng.pick(&[WhenFull::Reject, WhenFull::ShedOldest, WhenFull::ShedNewest]);
    let opts = BatcherOptions {
        max_batch: 2 + rng.below_usize(6),
        max_delay: Duration::from_millis(rng.below_usize(8) as u64),
        queue_cap: 2 + rng.below_usize(6),
        when_full,
        deadline: if rng.bool() {
            Some(Duration::from_millis(1 + rng.below_usize(20) as u64))
        } else {
            None
        },
        breaker_threshold: rng.below_usize(4) as u32, // 0 disables
        breaker_reset: Duration::from_millis(1 + rng.below_usize(50) as u64),
        ..BatcherOptions::default()
    };
    let clock = TestClock::new();
    let mut batcher =
        Batcher::new(&program, model.params.clone(), opts).with_clock(Rc::new(clock.clone()));
    // Background fault pressure at every instrumented site.
    let (hook, _handle) = FaultInjector::new(seed ^ 0xFA17)
        .with_rates(0.06, 0.04)
        .into_hook();
    batcher.set_fault_hook(Some(hook));

    // The bit-identity oracle runs on its own clean engine.
    let mut solo_engine = Engine::new(&program);
    let mut oracle = Oracle::new();
    let mut known: Vec<Ticket> = Vec::new();

    let lin = |s: &RecStructure| Linearizer::new().linearize(s).expect("linearizes");
    let ops = 60 + rng.below_usize(40);
    for _ in 0..ops {
        match rng.below_usize(10) {
            // submit (heaviest weight: traffic drives everything else)
            0..=3 => {
                let input = lin(&gen_input(&mut rng));
                match batcher.submit(input.clone()) {
                    Ok(t) => {
                        oracle.accept(t, input);
                        known.push(t);
                    }
                    Err(e) => assert!(
                        matches!(e, ServeError::QueueFull | ServeError::DeadlineExceeded),
                        "only admission refusals may come back from submit, got {e}"
                    ),
                }
            }
            // submit_many burst
            4 => {
                let inputs: Vec<Linearized> = (0..1 + rng.below_usize(6))
                    .map(|_| lin(&gen_input(&mut rng)))
                    .collect();
                for (input, result) in inputs.iter().zip(batcher.submit_many(inputs.clone())) {
                    if let Ok(t) = result {
                        oracle.accept(t, input.clone());
                        known.push(t);
                    }
                }
            }
            // poll a random known ticket
            5..=6 => {
                if known.is_empty() {
                    continue;
                }
                let t = *rng.pick(&known);
                let result = batcher.poll(t);
                let resolved_before = !oracle.unresolved.contains_key(&t);
                match result {
                    Ok(None) => {
                        // Still queued — or already resolved through a
                        // previous poll (unknown tickets read the same).
                    }
                    Ok(Some(response)) => {
                        oracle.resolve(t, &Ok(response), &mut solo_engine, model);
                    }
                    Err(e) => {
                        assert!(
                            !resolved_before,
                            "ticket {t:?} reported an error after already resolving: {e}"
                        );
                        oracle.resolve(t, &Err(e), &mut solo_engine, model);
                    }
                }
            }
            // flush
            7 => {
                batcher.flush();
            }
            // advance time (drives deadlines, max_delay, breaker reset)
            8 => {
                clock.advance(Duration::from_millis(rng.below_usize(12) as u64));
            }
            // mid-stream executor reconfiguration: results must stay
            // bit-identical under any of these configurations —
            // including dropping from the direct-threaded dispatch
            // table to the pc loop (and back) while faults inject at
            // the same sites in both tiers
            _ => {
                let flip = rng.below_usize(5);
                batcher.set_exec_options(match flip {
                    0 => ExecOptions::default(),
                    1 => ExecOptions {
                        bulk: false,
                        ..ExecOptions::default()
                    },
                    2 => ExecOptions {
                        gate_stacking: false,
                        ..ExecOptions::default()
                    },
                    3 => ExecOptions {
                        threaded: false,
                        ..ExecOptions::default()
                    },
                    _ => ExecOptions {
                        threaded: false,
                        bulk: false,
                        ..ExecOptions::default()
                    },
                });
            }
        }
    }

    // Final drain: every still-tracked ticket must resolve here.
    for (t, outcome) in batcher.drain() {
        oracle.resolve(t, &outcome, &mut solo_engine, model);
    }
    assert!(
        oracle.unresolved.is_empty(),
        "tickets lost without resolution: {:?}",
        oracle.unresolved.keys().collect::<Vec<_>>()
    );
    assert!(batcher.is_empty(), "drain must empty the batcher");
    let stats = batcher.serve_stats();
    assert_eq!(
        stats.resolved_ok + stats.resolved_err,
        stats.submitted,
        "accounting: every admitted ticket resolves exactly once"
    );
    assert_eq!(
        stats.submitted, oracle.resolutions,
        "oracle saw every ticket"
    );
    oracle.resolutions
}

fn small_tree(rng: &mut Rng) -> RecStructure {
    datasets::random_binary_tree(3 + rng.below_usize(8), rng.next_u64())
}

fn small_sequence(rng: &mut Rng) -> RecStructure {
    datasets::sequence(3 + rng.below_usize(10), rng.next_u64())
}

#[test]
fn random_interleavings_hold_invariants_on_treelstm() {
    let model = treelstm::tree_lstm(16, LeafInit::Embedding);
    for seed in seeds() {
        let resolved = run_interleaving(&model, &small_tree, seed);
        assert!(resolved > 0, "seed {seed}: the run must serve traffic");
    }
}

#[test]
fn random_interleavings_hold_invariants_on_treegru() {
    let model = treegru::tree_gru(16, LeafInit::Embedding);
    for seed in seeds() {
        let resolved = run_interleaving(&model, &small_tree, seed);
        assert!(resolved > 0, "seed {seed}: the run must serve traffic");
    }
}

#[test]
fn random_interleavings_hold_invariants_on_seqlstm() {
    let model = seq::seq_lstm(16);
    for seed in seeds() {
        let resolved = run_interleaving(&model, &small_sequence, seed);
        assert!(resolved > 0, "seed {seed}: the run must serve traffic");
    }
}

/// Circuit-breaker demotion must keep serving traffic on every model
/// shape: a totally broken ExecPlan path (every launch errors) trips
/// the breaker after `threshold` consecutive faults, and every request
/// after that resolves `Ok` — degraded, bit-identical — with none
/// dropped.
#[test]
fn breaker_demotion_serves_traffic_on_every_model() {
    type ModelCase = (Model, fn(&mut Rng) -> RecStructure);
    let models: Vec<ModelCase> = vec![
        (treelstm::tree_lstm(16, LeafInit::Embedding), small_tree),
        (treegru::tree_gru(16, LeafInit::Embedding), small_tree),
        (seq::seq_lstm(16), small_sequence),
    ];
    for (model, gen_input) in &models {
        let program = model.lower(&RaSchedule::default()).expect("lowers");
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 1,
                max_delay: Duration::from_secs(3600),
                breaker_threshold: 3,
                breaker_reset: Duration::from_secs(3600),
                ..BatcherOptions::default()
            },
        );
        let (hook, _handle) = FaultInjector::new(5)
            .always(FaultAction::Err)
            .launches_only()
            .into_hook();
        batcher.set_fault_hook(Some(hook));
        let mut rng = Rng::new(99);
        let mut solo_engine = Engine::new(&program);
        for i in 0..10 {
            let structure = gen_input(&mut rng);
            let input = Linearizer::new().linearize(&structure).expect("linearizes");
            let t = batcher.submit(input.clone()).expect("admitted");
            match batcher.poll(t).transpose().expect("resolved on flush") {
                Ok(response) if i >= 3 => {
                    assert!(response.degraded, "{}: past the threshold", model.name);
                    let (solo_out, _) = solo_engine
                        .execute(&input, &model.params, true)
                        .expect("solo");
                    for (id, tensor) in &solo_out {
                        assert_eq!(&response.outputs[id], tensor, "{}", model.name);
                    }
                }
                Ok(_) => panic!("{}: the first 3 requests hit the broken plan", model.name),
                Err(e) if i < 3 => {
                    assert!(
                        matches!(&e, ServeError::EngineFault { .. }),
                        "{}: typed plan fault, got {e}",
                        model.name
                    );
                }
                Err(e) => panic!("{}: demoted traffic must not fail: {e}", model.name),
            }
        }
        let stats = batcher.serve_stats();
        assert_eq!(stats.submitted, 10, "{}", model.name);
        assert_eq!(stats.resolved_err, 3, "{}", model.name);
        assert_eq!(stats.resolved_ok, 7, "{}: no traffic dropped", model.name);
        assert_eq!(stats.degraded_runs, 7, "{}", model.name);
    }
}

//! # Cortex — a compiler for recursive deep learning models
//!
//! A from-scratch Rust reproduction of *"Cortex: A Compiler for Recursive
//! Deep Learning Models"* (Fegade, Chen, Gibbons, Mowry — MLSys 2021).
//!
//! Cortex takes a recursive model computation (TreeLSTM, TreeGRU, MV-RNN,
//! DAG-RNN, …) expressed in a **Recursive API**, lowers the recursion to
//! loop-based iterative code over *linearized* data structures, and
//! applies end-to-end optimizations — dynamic batching, specialization,
//! kernel fusion, computation hoisting, model persistence, unrolling and
//! recursive refactoring — that per-operator frameworks built on vendor
//! libraries cannot perform.
//!
//! This crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! | --- | --- | --- |
//! | [`tensor`] | `cortex-tensor` | dense tensors, layouts, kernels |
//! | [`ds`] | `cortex-ds` | recursive structures, datasets, the linearizer |
//! | [`core`] | `cortex-core` | the RA, the ILIR, lowering and passes |
//! | [`backend`] | `cortex-backend` | executor, device models, profiling |
//! | [`models`] | `cortex-models` | the paper's models + references |
//! | [`baselines`] | `cortex-baselines` | PyTorch/DyNet/Cavs/GRNN execution models |
//!
//! # Quickstart
//!
//! Run the Fig. 1 model on a parse tree (see `examples/quickstart.rs` for
//! the narrated version):
//!
//! ```
//! use cortex::prelude::*;
//!
//! // 1. Express the model in the Recursive API (Listing 1).
//! let h = 16;
//! let mut g = RaGraph::new();
//! let emb = g.input("Emb", &[cortex::ds::datasets::VOCAB_SIZE as usize, h]);
//! let ph = g.placeholder("rnn_ph", &[h]);
//! let leaf = g.compute("leaf", &[h], |c| c.read(emb, &[c.node().word(), c.axis(0)]));
//! let lh = g.compute("lh", &[h], |c| c.read(ph, &[c.node().child(0), c.axis(0)]));
//! let rh = g.compute("rh", &[h], |c| c.read(ph, &[c.node().child(1), c.axis(0)]));
//! let rec = g.compute("rec", &[h], |c| {
//!     c.read(lh, &[c.node(), c.axis(0)]).add(c.read(rh, &[c.node(), c.axis(0)])).tanh()
//! });
//! let body = g.if_then_else("body", leaf, rec)?;
//! let rnn = g.recursion(ph, body)?;
//! g.mark_output(rnn);
//!
//! // 2. Lower with the default schedule (dynamic batching +
//! //    specialization + maximal fusion + persistence).
//! let program = lower(&g, &RaSchedule::default(), StructureInfo { max_children: 2 })?;
//!
//! // 3. Linearize an input tree and execute.
//! let tree = cortex::ds::datasets::random_binary_tree(19, 7);
//! let lin = Linearizer::new().linearize(&tree)?;
//! let mut params = Params::new();
//! params.set("Emb", Tensor::random(&[cortex::ds::datasets::VOCAB_SIZE as usize, h], 0.5, 1));
//! let result = cortex::backend::exec::run(&program, &lin, &params, &DeviceSpec::v100())?;
//!
//! assert_eq!(result.outputs[&rnn.id()].shape().dims(), &[tree.num_nodes(), h]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use cortex_backend as backend;
pub use cortex_baselines as baselines;
pub use cortex_core as core;
pub use cortex_ds as ds;
pub use cortex_models as models;
pub use cortex_serve as serve;
pub use cortex_tensor as tensor;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use cortex_backend::device::DeviceSpec;
    pub use cortex_backend::params::Params;
    pub use cortex_core::lower::{lower, StructureInfo};
    pub use cortex_core::ra::{RaGraph, RaSchedule};
    pub use cortex_ds::linearizer::Linearizer;
    pub use cortex_ds::{RecStructure, StructureBuilder, StructureKind};
    pub use cortex_models::{LeafInit, Model};
    pub use cortex_tensor::Tensor;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_pipeline() {
        use crate::prelude::*;
        let s = RaSchedule::default();
        assert!(s.dynamic_batch);
        let d = DeviceSpec::v100();
        assert!(d.is_gpu);
    }
}

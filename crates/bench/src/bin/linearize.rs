//! Prints the linearize reproduction (see `cortex_bench_harness::experiments`).

fn main() {
    let scale = cortex_bench_harness::Scale::from_env();
    println!(
        "{}",
        cortex_bench_harness::experiments::linearize::run(scale)
    );
}

//! Prints the table5 reproduction (see `cortex_bench_harness::experiments`).

fn main() {
    let scale = cortex_bench_harness::Scale::from_env();
    println!("{}", cortex_bench_harness::experiments::table5::run(scale));
}

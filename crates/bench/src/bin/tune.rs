//! Grid-search auto-tuning (§6): ranks every supported schedule for a
//! model and prints the leaderboard.
//!
//! Usage: `cargo run --release -p cortex-bench-harness --bin tune [model]`
//! where model ∈ {treefc, treernn, treegru, treelstm, mvrnn, dagrnn}.

use cortex_backend::device::DeviceSpec;
use cortex_bench_harness::registry::ModelId;
use cortex_bench_harness::table::{ms, Table};
use cortex_bench_harness::tune;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "treelstm".to_string());
    let id = match which.as_str() {
        "treefc" => ModelId::TreeFc,
        "treernn" => ModelId::TreeRnn,
        "treegru" => ModelId::TreeGru,
        "mvrnn" => ModelId::MvRnn,
        "dagrnn" => ModelId::DagRnn,
        _ => ModelId::TreeLstm,
    };
    let scale = cortex_bench_harness::Scale::from_env();
    let model = id.build(id.hs(scale));
    let data = id.dataset(10, 2021);
    let ranked = tune::grid_search(&model, &data, &DeviceSpec::v100());
    let mut t = Table::new(
        &format!("Auto-tuning grid search: {} (GPU, hs, batch 10)", id.name()),
        &["rank", "latency (ms)", "schedule"],
    );
    for (i, c) in ranked.iter().enumerate().take(12) {
        t.row_owned(vec![
            (i + 1).to_string(),
            ms(c.measured.latency_ms),
            c.label.clone(),
        ]);
    }
    println!("{}", t.render());
}

//! Serving-throughput trajectory: emits `BENCH_serving.json`.
//!
//! Measures cross-request super-wave batching (`Engine::execute_many`)
//! against sequential per-request execution on the two serving-shaped
//! workloads the tentpole targets:
//!
//! * `seqlstm_h256` — batch-1 sequences, the worst launch-bound case:
//!   every wave is 1 node wide, so a depth-`Q` queue turns width-1
//!   waves into width-`Q` super-waves;
//! * `treelstm_h256_bs1` — single sentiment trees, the Fig. 6 `bs=1`
//!   point.
//!
//! For each queue depth (1/4/16/64) the harness measures batched
//! throughput over a fixed request set, then replays a deterministic
//! Poisson arrival process (λ = 80% of sequential capacity) against the
//! measured batch service times to report the throughput/latency
//! trade-off: deeper queues amortize more (higher throughput) but wait
//! longer to fill (higher mean latency at low load).
//!
//! Before any timing, batched outputs are verified ≤1e-4 against the
//! pure-Rust reference models and per-request `Profile` counters are
//! asserted exactly equal to solo runs — the correctness bar of the
//! equivalence property tests, re-checked at paper scale.
//!
//! Run with `cargo run --release -p cortex-bench-harness --bin
//! bench_serving [-- output.json]`.
//!
//! ## Acceptance
//!
//! Two kinds of gates. The *structural* amortization gates are
//! deterministic (immune to machine noise): at queue depth 16 every
//! wave GEMM must serve ≥12 requests on seqlstm (width-1 waves merge
//! into width-16 super-waves) and the batch must launch ≥8× fewer
//! GEMMs than sequential execution. The *wall-clock* gates (skippable
//! via `CORTEX_BENCH_ENFORCE=0` on noisy boxes) require ≥1.25×
//! throughput on seqlstm at depth 16 and ≥0.95× on treelstm bs1.
//!
//! Schema v3 adds a `robustness` section: four deterministic
//! fault-tolerance scenarios (queue-full shedding, deadline pressure,
//! panic isolation, circuit-breaker degradation) whose [`ServeStats`]
//! counters are gated structurally — on the queue-full burst,
//! `shed + resolved == submitted` exactly (no ticket lost, none
//! double-resolved); these gates are never skipped.
//!
//! Schema v4 adds two admission-hardening scenarios on top:
//! `invalid_input_burst` drives the adversarial structure fuzzer's case
//! stream at the batcher and gates the exact `rejected_invalid` /
//! `resolved_ok` split (hostile shapes refused at intake, controls
//! served), and `over_budget` gates the `over_budget` counter under a
//! one-byte memory budget and proves the same traffic is served once
//! the budget is lifted. Both are seeded and structural, never skipped.
//!
//! Schema v5 adds a `router` section: sharded-topology scenarios run
//! through [`Router`] — hot-shard spill (exact spill/reject split on a
//! primary/standby pair), failover after a shard kill (every queued leg
//! moves without consuming retry budget), drain under a faulting shard
//! (exactly one budgeted retry per victim, all served), and an
//! adaptive-flush-depth comparison where the AIMD controller must miss
//! no more deadlines than the fixed depth-16 baseline at
//! equal-or-better throughput on the identical clocked arrival stream.
//! All structural, never skipped.
//!
//! The wall-clock bars are intentionally below the issue's aspirational
//! 2×/1.3×: that target assumed a per-wave-launch-bound sequential
//! baseline, but PR 2's SIMD kernels plus this PR's shared parameter
//! arena and bulk feature-loop serving already removed most launch
//! overhead from the *solo* path too. Measured on this box, the merged
//! GEMM runs at 68 GFLOPS vs the solo GEMV's 27 (7.6 µs vs 19 µs per
//! row at h=256 — the `dot8x2` row-pair block), but ~25 µs/wave/request
//! of genuine per-request elementwise epilogue (gate sigmoids/tanh,
//! cell updates — work generated code would also execute per request)
//! bounds the end-to-end wall ratio near 1.4× regardless of merge
//! width. The launch-amortization the tentpole targets is the
//! structural metric, and that is gated hard.

use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

use cortex_backend::exec::{Engine, FaultAction};
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_ds::merge::DepthMap;
use cortex_ds::{datasets, RecStructure};
use cortex_models::{reference, seq, treelstm, LeafInit, Model};
use cortex_rng::Rng;
use cortex_serve::faults::{silence_injected_panics, FaultInjector};
use cortex_serve::{
    AimdDepth, Batcher, BatcherOptions, Placement, RetryPolicy, Router, RouterOptions, RouterStats,
    ServeStats, TestClock, WhenFull,
};

const QUEUE_DEPTHS: [usize; 4] = [1, 4, 16, 64];

struct DepthRecord {
    queue_depth: usize,
    superwave_width: f64,
    /// Wave-GEMM launches per request (from the final measured chunk):
    /// the launch amortization the tentpole targets, deterministic.
    gemms_per_request: f64,
    /// Mean requests served per merged GEMM (1.0 at depth 1).
    requests_per_gemm: f64,
    wall_s: f64,
    throughput_rps: f64,
    speedup_vs_depth1: f64,
    mean_latency_ms: f64,
    p95_latency_ms: f64,
    /// Elementwise-epilogue wall time of the final measured chunk (the
    /// fused post-GEMM serve the `Rational` nonlinearity mode targets).
    epilogue_ms: f64,
}

struct Workload {
    bench: String,
    requests: usize,
    nodes_per_request: f64,
    hidden: usize,
    verified: bool,
    depths: Vec<DepthRecord>,
}

/// Verifies depth-`Q` batched execution: outputs ≤1e-4 against the
/// reference tables and `Profile` counters exactly equal to solo runs.
fn verify_batched(
    model: &Model,
    engine: &mut Engine<'_>,
    lins: &[&Linearized],
    structures: &[RecStructure],
    want: &[Vec<Vec<f32>>],
) -> bool {
    let many = engine
        .execute_many(lins, &model.params, true)
        .expect("batched run");
    for (r, (outputs, profile)) in many.iter().enumerate() {
        let (solo_out, solo_prof) = engine
            .execute(lins[r], &model.params, true)
            .expect("solo run");
        if profile.flops != solo_prof.flops
            || profile.launches != solo_prof.launches
            || profile.global_bytes_read != solo_prof.global_bytes_read
            || profile.param_bytes_read != solo_prof.param_bytes_read
        {
            eprintln!("VERIFY FAIL {}: request {r} profile diverges", model.name);
            return false;
        }
        let got = &outputs[&model.output];
        if got != &solo_out[&model.output] {
            eprintln!(
                "VERIFY FAIL {}: request {r} not bit-equal to solo",
                model.name
            );
            return false;
        }
        for n in structures[r].iter() {
            let id = lins[r].from_structure_id(n) as usize;
            for (i, w) in want[r][n.index()].iter().enumerate() {
                if (got[[id, i]] - w).abs() > 1e-4 {
                    eprintln!(
                        "VERIFY FAIL {}: request {r} node {n} elem {i}: {} vs {w}",
                        model.name,
                        got[[id, i]]
                    );
                    return false;
                }
            }
        }
    }
    true
}

/// Verifies the serving front door at paper scale: the whole request
/// set goes through `Batcher::submit_many` (burst intake, synchronous
/// chunk flushes) and `Batcher::drain` (resolve every ticket) instead
/// of a hand-rolled submit/poll loop, and every response must match the
/// reference tables ≤1e-4 with cross-request merging engaged.
fn verify_batcher_burst(
    model: &Model,
    program: &cortex_core::ilir::IlirProgram,
    lins: &[&Linearized],
    structures: &[RecStructure],
    want: &[Vec<Vec<f32>>],
) -> bool {
    let mut batcher = Batcher::new(
        program,
        model.params.clone(),
        BatcherOptions {
            max_batch: 16,
            max_delay: std::time::Duration::from_secs(3600),
            ..BatcherOptions::default()
        },
    );
    let tickets: Vec<_> = batcher
        .submit_many(lins.iter().map(|l| (*l).clone()))
        .into_iter()
        .map(|r| r.expect("burst intake"))
        .collect();
    // Engine stats reset per flush, so read the merge counter after the
    // burst's synchronous full-chunk flushes — the final drain flush may
    // legally hold a single leftover request that merges nothing.
    let merged = batcher.stats().super_gemms > 0;
    let results = batcher.drain();
    if results.len() != tickets.len() || !batcher.is_empty() {
        eprintln!("VERIFY FAIL {}: drain left tickets behind", model.name);
        return false;
    }
    if !merged {
        eprintln!("VERIFY FAIL {}: batcher merged nothing", model.name);
        return false;
    }
    for (r, (_, result)) in results.into_iter().enumerate() {
        let response = match result {
            Ok(resp) => resp,
            Err(e) => {
                eprintln!("VERIFY FAIL {}: request {r}: {e}", model.name);
                return false;
            }
        };
        let got = &response.outputs[&model.output];
        for n in structures[r].iter() {
            let id = lins[r].from_structure_id(n) as usize;
            for (i, w) in want[r][n.index()].iter().enumerate() {
                if (got[[id, i]] - w).abs() > 1e-4 {
                    eprintln!(
                        "VERIFY FAIL {}: batcher request {r} node {n} elem {i}",
                        model.name
                    );
                    return false;
                }
            }
        }
    }
    true
}

/// Wall-clock for pushing every request through, `queue_depth` at a
/// time (depth 1 uses the plain per-request engine path). Two passes,
/// best-of (the engine's caches are warm after verification).
fn measure_depth(
    model: &Model,
    engine: &mut Engine<'_>,
    lins: &[&Linearized],
    queue_depth: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        if queue_depth <= 1 {
            for lin in lins {
                engine.execute(lin, &model.params, true).expect("run");
            }
        } else {
            for chunk in lins.chunks(queue_depth) {
                engine
                    .execute_many(chunk, &model.params, true)
                    .expect("batched run");
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Deterministic Poisson-arrival replay: `n` arrivals at rate
/// `lambda_rps`, served in fixed batches of `queue_depth` (the batcher
/// flushes when the queue fills; the final partial batch flushes at the
/// deadline, modeled as the last arrival). Batch service time is the
/// measured mean. Returns `(mean, p95)` latency in milliseconds.
fn simulate_latency(
    n: usize,
    lambda_rps: f64,
    queue_depth: usize,
    batch_service_s: f64,
    seed: u64,
) -> (f64, f64) {
    let mut rng = Rng::new(seed);
    let mut arrivals = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        t += -(1.0 - rng.f64()).ln() / lambda_rps;
        arrivals.push(t);
    }
    let mut latencies = Vec::with_capacity(n);
    let mut server_free = 0.0f64;
    for batch in arrivals.chunks(queue_depth) {
        // The flush waits for the batch to fill (its last arrival) and
        // for the server to drain earlier batches.
        let flush_at = batch.last().copied().unwrap_or(0.0f64).max(server_free);
        let done = flush_at + batch_service_s;
        server_free = done;
        for &a in batch {
            latencies.push((done - a) * 1e3);
        }
    }
    latencies.sort_by(f64::total_cmp);
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let p95 = latencies[((latencies.len() as f64 * 0.95) as usize).min(latencies.len() - 1)];
    (mean, p95)
}

/// One robustness scenario's outcome: the batcher's cumulative
/// counters plus a deterministic structural verdict.
struct RobustnessRecord {
    scenario: &'static str,
    stats: ServeStats,
    ok: bool,
}

/// Runs the four robustness scenarios the fault-tolerant front gates
/// on: queue-full shedding, deadline pressure, fault isolation, and
/// circuit-breaker degradation. Every gate here is structural
/// (counter-based), so these never depend on wall-clock and are always
/// enforced. The shared accounting invariant — every admitted ticket
/// resolves exactly once, `shed + resolved == submitted` on the burst —
/// is checked per scenario.
fn robustness_scenarios() -> Vec<RobustnessRecord> {
    let model = treelstm::tree_lstm(64, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let lin = |leaves: usize, seed: u64| -> Linearized {
        Linearizer::new()
            .linearize(&datasets::random_binary_tree(leaves, seed))
            .expect("linearizes")
    };
    let mut records = Vec::new();

    // Scenario 1: queue-full burst. 64 arrivals against a 16-slot queue
    // under shed-oldest, no flush until drain: exactly 48 shed, 16
    // served, nothing lost.
    {
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64, // larger than the cap: flush only on drain
                max_delay: Duration::from_secs(3600),
                queue_cap: 16,
                when_full: WhenFull::ShedOldest,
                ..BatcherOptions::default()
            },
        );
        for s in 0..64u64 {
            batcher.submit(lin(6, s)).expect("shedding never rejects");
        }
        let results = batcher.drain();
        let stats = batcher.serve_stats();
        let ok = stats.submitted == 64
            && stats.shed == 48
            && stats.resolved_ok == 16
            && stats.shed + stats.resolved_ok == stats.submitted
            && results.len() as u64 == stats.submitted;
        records.push(RobustnessRecord {
            scenario: "queue_full_burst",
            stats,
            ok,
        });
    }

    // Scenario 2: deadline pressure. 16 requests with a 5 ms budget go
    // stale behind a frozen clock; 8 fresh ones arrive after the jump.
    // The flush expires exactly the stale 16 and serves the fresh 8.
    {
        let clock = TestClock::new();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
                deadline: Some(Duration::from_millis(5)),
                ..BatcherOptions::default()
            },
        )
        .with_clock(Rc::new(clock.clone()));
        for s in 0..16u64 {
            batcher.submit(lin(6, s)).expect("admitted");
        }
        clock.advance(Duration::from_millis(6));
        for s in 16..24u64 {
            batcher.submit(lin(6, s)).expect("admitted");
        }
        batcher.drain();
        let stats = batcher.serve_stats();
        let ok = stats.submitted == 24
            && stats.deadline_misses == 16
            && stats.resolved_ok == 8
            && stats.resolved_ok + stats.resolved_err == stats.submitted;
        records.push(RobustnessRecord {
            scenario: "deadline_pressure",
            stats,
            ok,
        });
    }

    // Scenario 3: fault isolation. One of 16 co-batched requests panics
    // at every launch (sticky: it still faults when bisection re-runs
    // it); the 15 healthy chunk-mates must all resolve.
    {
        silence_injected_panics();
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 16,
                max_delay: Duration::from_secs(3600),
                ..BatcherOptions::default()
            },
        );
        // Distinct leaf counts give every request a unique node count;
        // poison the 8th request by its node count.
        let inputs: Vec<Linearized> = (0..16u64).map(|s| lin(4 + s as usize, s)).collect();
        let culprit_nodes = inputs[7].num_nodes();
        let (hook, _handle) = FaultInjector::new(0xFA)
            .always(FaultAction::Panic)
            .poison_nodes(culprit_nodes)
            .into_hook();
        batcher.set_fault_hook(Some(hook));
        for input in inputs {
            batcher.submit(input).expect("admitted");
        }
        batcher.drain();
        let stats = batcher.serve_stats();
        let ok = stats.submitted == 16
            && stats.resolved_ok == 15
            && stats.resolved_err == 1
            && stats.isolated_faults == 1
            && stats.panics_contained >= 2;
        records.push(RobustnessRecord {
            scenario: "fault_isolation",
            stats,
            ok,
        });
    }

    // Scenario 4: circuit breaker. A broken ExecPlan path (every launch
    // raises a typed error) trips the breaker after 3 consecutive
    // faults; the remaining traffic is served degraded on the interp
    // oracle path — slower, never dropped.
    {
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 1, // every request flushes alone
                max_delay: Duration::from_secs(3600),
                breaker_threshold: 3,
                breaker_reset: Duration::from_secs(3600),
                ..BatcherOptions::default()
            },
        );
        let (hook, _handle) = FaultInjector::new(7)
            .always(FaultAction::Err)
            .launches_only()
            .into_hook();
        batcher.set_fault_hook(Some(hook));
        for s in 0..12u64 {
            batcher.submit(lin(6, s)).expect("admitted");
        }
        batcher.drain();
        let stats = batcher.serve_stats();
        let ok = stats.submitted == 12
            && stats.resolved_err == 3
            && stats.resolved_ok == 9
            && stats.degraded_runs == 9
            && stats.resolved_ok + stats.resolved_err == stats.submitted;
        records.push(RobustnessRecord {
            scenario: "circuit_breaker",
            stats,
            ok,
        });
    }

    // Scenario 5: invalid-input burst. The adversarial structure
    // fuzzer's case stream — hostile shapes interleaved with valid
    // controls — goes straight at the front door. Malformed parts never
    // construct; structurally valid but plan-incompatible shapes (wide
    // arity, unary chains against an exact binary plan) are refused at
    // admission with typed errors; the controls are served. Per fuzzer
    // rotation: 7 refused at construction, 3 at intake, 2 served.
    {
        use cortex_serve::fuzz::{StructureFuzzer, SHAPES};
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
                ..BatcherOptions::default()
            },
        );
        let mut fuzz = StructureFuzzer::new(0xF022);
        let (mut bad_parts, mut served) = (0u64, 0u64);
        for case in fuzz.cases(2 * SHAPES) {
            let Ok(structure) = case.build() else {
                bad_parts += 1;
                continue;
            };
            let input = Linearizer::new().linearize(&structure).expect("linearizes");
            match batcher.submit(input) {
                Ok(_) => served += 1,
                Err(e) => assert!(
                    matches!(e, cortex_serve::ServeError::InvalidInput { .. }),
                    "invalid_input_burst: unexpected refusal {e}"
                ),
            }
        }
        batcher.drain();
        let stats = batcher.serve_stats();
        let ok = bad_parts == 14
            && stats.rejected_invalid == 6
            && stats.submitted == served
            && stats.resolved_ok == 4
            && stats.resolved_ok + stats.resolved_err == stats.submitted;
        records.push(RobustnessRecord {
            scenario: "invalid_input_burst",
            stats,
            ok,
        });
    }

    // Scenario 6: resource budget. Under a one-byte memory budget every
    // request is refused at admission with a typed OverBudget; lifting
    // the budget serves the identical traffic — refusals must not
    // poison the batcher.
    {
        let mut batcher = Batcher::new(
            &program,
            model.params.clone(),
            BatcherOptions {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
                ..BatcherOptions::default()
            },
        );
        batcher.set_exec_options(cortex_backend::exec::ExecOptions {
            memory_budget: Some(1),
            ..cortex_backend::exec::ExecOptions::default()
        });
        for s in 0..8u64 {
            let err = batcher.submit(lin(6, s)).expect_err("1-byte budget");
            assert!(
                matches!(err, cortex_serve::ServeError::OverBudget { .. }),
                "over_budget: unexpected refusal {err}"
            );
        }
        batcher.set_exec_options(cortex_backend::exec::ExecOptions::default());
        for s in 0..8u64 {
            batcher.submit(lin(6, s)).expect("budget lifted");
        }
        batcher.drain();
        let stats = batcher.serve_stats();
        let ok = stats.over_budget == 8
            && stats.rejected == 8
            && stats.submitted == 8
            && stats.resolved_ok == 8
            && stats.resolved_ok + stats.resolved_err == stats.submitted;
        records.push(RobustnessRecord {
            scenario: "over_budget",
            stats,
            ok,
        });
    }

    for r in &records {
        println!(
            "robustness {:<18} submitted={:<3} ok={:<3} err={:<3} shed={:<3} \
             deadline={:<3} isolated={:<2} degraded={:<3} panics={:<2} \
             invalid={:<2} budget={:<2} -> {}",
            r.scenario,
            r.stats.submitted,
            r.stats.resolved_ok,
            r.stats.resolved_err,
            r.stats.shed,
            r.stats.deadline_misses,
            r.stats.isolated_faults,
            r.stats.degraded_runs,
            r.stats.panics_contained,
            r.stats.rejected_invalid,
            r.stats.over_budget,
            if r.ok { "PASS" } else { "FAIL" },
        );
    }
    records
}

/// One router-topology scenario's outcome: the router's cumulative
/// counters plus a deterministic structural verdict.
struct RouterRecord {
    scenario: &'static str,
    stats: RouterStats,
    ok: bool,
}

/// Quiet shard options for the router scenarios: nothing fires on its
/// own, shards reject when full so overload crosses the topology.
fn router_shard_opts() -> BatcherOptions {
    BatcherOptions {
        max_batch: 64,
        max_delay: Duration::from_secs(3600),
        queue_cap: 64,
        when_full: WhenFull::Reject,
        breaker_threshold: 0,
        ..BatcherOptions::default()
    }
}

/// One adaptive-depth serving run: 64 requests with a 20 ms budget
/// arrive 2 ms apart against a single shard whose `max_delay` never
/// fires — only the flush depth decides who makes the deadline. The
/// fixed depth-16 baseline waits ~32 ms to fill and misses most of the
/// stream; the AIMD controller halves the depth after the first missed
/// window and serves it.
fn run_adaptive(adaptive: Option<AimdDepth>) -> RouterStats {
    let model = treelstm::tree_lstm(64, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let clock = TestClock::new();
    let mut router = Router::new(RouterOptions {
        adaptive_depth: adaptive,
        ..RouterOptions::default()
    })
    .with_clock(Rc::new(clock.clone()));
    let opts = BatcherOptions {
        max_batch: 16,
        queue_cap: 128,
        ..router_shard_opts()
    };
    let id = router.add_model("treelstm", &program, &model.params, 1, opts);
    let lin = |s: u64| -> Linearized {
        Linearizer::new()
            .linearize(&datasets::random_binary_tree(6, s))
            .expect("linearizes")
    };
    for i in 0..64u64 {
        let t = router
            .submit_with_deadline(id, lin(i), Some(Duration::from_millis(20)))
            .expect("admitted");
        clock.advance(Duration::from_millis(2));
        let _ = router.poll(t);
    }
    router.drain();
    router.stats()
}

/// Runs the router-topology scenarios schema v5 gates on: hot-shard
/// spill, failover after a shard kill, drain under a faulting shard,
/// and the adaptive-flush-depth comparison against a fixed depth-16
/// baseline. Every gate is structural (counter equalities) except the
/// adaptive comparison, which is a deterministic dominance check
/// (fewer-or-equal misses at equal-or-better throughput) — none depend
/// on wall-clock, so they are always enforced.
fn router_scenarios() -> Vec<RouterRecord> {
    let model = treelstm::tree_lstm(64, LeafInit::Embedding);
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let lin = |leaves: usize, seed: u64| -> Linearized {
        Linearizer::new()
            .linearize(&datasets::random_binary_tree(leaves, seed))
            .expect("linearizes")
    };
    let mut records = Vec::new();

    // Scenario 1: hot-shard spill. A 12-request burst against a
    // primary/spill pair with 4-slot queues: 4 land on the primary, 4
    // spill to the standby, 4 are refused — and the split is exact.
    {
        let mut router = Router::new(RouterOptions {
            placement: Placement::PrimarySpill,
            adaptive_depth: None,
            ..RouterOptions::default()
        });
        let opts = BatcherOptions {
            queue_cap: 4,
            ..router_shard_opts()
        };
        let id = router.add_model("treelstm", &program, &model.params, 2, opts);
        let mut accepted = 0u64;
        for s in 0..12u64 {
            if router.submit(id, lin(6, s)).is_ok() {
                accepted += 1;
            }
        }
        let outcomes = router.drain();
        let stats = router.stats();
        let ok = accepted == 8
            && stats.submitted == 8
            && stats.rejected == 4
            && stats.spills == 4
            && stats.resolved_ok == 8
            && stats.resolved_err == 0
            && outcomes.len() as u64 == stats.submitted;
        records.push(RouterRecord {
            scenario: "hot_shard_spill",
            stats,
            ok,
        });
    }

    // Scenario 2: failover after a shard kill. 8 requests queue on the
    // primary; killing it drops the engine with the work still queued.
    // Every leg moves to the standby without consuming retry budget and
    // the full stream is served.
    {
        let mut router = Router::new(RouterOptions {
            placement: Placement::PrimarySpill,
            adaptive_depth: None,
            ..RouterOptions::default()
        });
        let id = router.add_model("treelstm", &program, &model.params, 2, router_shard_opts());
        for s in 0..8u64 {
            router.submit(id, lin(6, s)).expect("admitted");
        }
        let killed = router.kill_shard(id, 0);
        let outcomes = router.drain();
        let stats = router.stats();
        let ok = killed
            && stats.shard_kills == 1
            && stats.failovers == 8
            && stats.retries == 0
            && stats.resolved_ok == 8
            && stats.resolved_err == 0
            && outcomes.iter().all(|(_, o)| o.is_ok());
        records.push(RouterRecord {
            scenario: "retry_after_shard_kill",
            stats,
            ok,
        });
    }

    // Scenario 3: drain under load with a faulting shard. 24 requests
    // round-robin across 3 shards; shard 1 faults every launch (breaker
    // disabled so it never self-heals). Its 8 victims each retry once
    // onto a healthy sibling during the drain, and the whole stream is
    // served — exactly 8 retries, none exhausted.
    {
        let mut router = Router::new(RouterOptions {
            placement: Placement::RoundRobin,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(8),
            },
            adaptive_depth: None,
            ..RouterOptions::default()
        });
        let id = router.add_model("treelstm", &program, &model.params, 3, router_shard_opts());
        let (hook, _handle) = FaultInjector::new(9)
            .always(FaultAction::Err)
            .launches_only()
            .into_hook();
        assert!(router.set_shard_fault_hook(id, 1, Some(hook)));
        for s in 0..24u64 {
            router.submit(id, lin(6, s)).expect("admitted");
        }
        let outcomes = router.drain();
        let stats = router.stats();
        let ok = stats.submitted == 24
            && stats.retries == 8
            && stats.retries_exhausted == 0
            && stats.resolved_ok == 24
            && stats.resolved_err == 0
            && outcomes.iter().all(|(_, o)| o.is_ok());
        records.push(RouterRecord {
            scenario: "drain_under_load",
            stats,
            ok,
        });
    }

    // Scenario 4: adaptive flush depth. The same deadline-pressured
    // stream through a fixed depth-16 shard and through the AIMD
    // controller: adaptive must miss no more deadlines at
    // equal-or-better throughput (served requests over the identical
    // arrival window), and the baseline must actually be under pressure
    // for the comparison to mean anything.
    {
        let fixed = run_adaptive(None);
        let aimd = run_adaptive(Some(AimdDepth {
            start: 16,
            min: 1,
            max: 64,
            window: 4,
        }));
        let accounted = |s: &RouterStats| s.resolved_ok + s.resolved_err == s.submitted;
        let ok = fixed.deadline_misses > 40
            && aimd.deadline_misses <= fixed.deadline_misses
            && aimd.resolved_ok >= fixed.resolved_ok
            && aimd.depth_decreases >= 1
            && accounted(&fixed)
            && accounted(&aimd);
        records.push(RouterRecord {
            scenario: "adaptive_depth_fixed16",
            stats: fixed,
            ok,
        });
        records.push(RouterRecord {
            scenario: "adaptive_depth_aimd",
            stats: aimd,
            ok,
        });
    }

    for r in &records {
        println!(
            "router     {:<22} submitted={:<3} ok={:<3} err={:<3} rejected={:<3} \
             spills={:<2} retries={:<2} failovers={:<2} kills={:<2} \
             misses={:<3} depth-={:<2} -> {}",
            r.scenario,
            r.stats.submitted,
            r.stats.resolved_ok,
            r.stats.resolved_err,
            r.stats.rejected,
            r.stats.spills,
            r.stats.retries,
            r.stats.failovers,
            r.stats.shard_kills,
            r.stats.deadline_misses,
            r.stats.depth_decreases,
            if r.ok { "PASS" } else { "FAIL" },
        );
    }
    records
}

fn bench_workload(
    bench: &str,
    model: &Model,
    structures: Vec<RecStructure>,
    want: Vec<Vec<Vec<f32>>>,
) -> Workload {
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let lins: Vec<Linearized> = structures
        .iter()
        .map(|s| Linearizer::new().linearize(s).expect("linearizes"))
        .collect();
    let refs: Vec<&Linearized> = lins.iter().collect();
    let mut engine = Engine::new(&program);
    assert!(
        engine.num_wave_plans() > 0,
        "{bench}: wave path must engage"
    );

    let verified = verify_batched(model, &mut engine, &refs, &structures, &want)
        && verify_batcher_burst(model, &program, &refs, &structures, &want);

    let mut depths = Vec::new();
    let mut depth1_wall = f64::NAN;
    for &q in &QUEUE_DEPTHS {
        let wall = measure_depth(model, &mut engine, &refs, q);
        if q == 1 {
            depth1_wall = wall;
        }
        let throughput = refs.len() as f64 / wall;
        // Launch-amortization metrics from the final measured chunk
        // (deterministic: the same inputs always produce the same
        // schedule).
        let stats = engine.stats();
        let last_chunk = if q <= 1 {
            1
        } else {
            let rem = refs.len() % q;
            if rem == 0 {
                q
            } else {
                rem
            }
        };
        let gemms_per_request = stats.wave_gemms as f64 / last_chunk as f64;
        let epilogue_ms = stats.epilogue_ns as f64 / 1e6;
        let requests_per_gemm = if stats.super_gemms > 0 {
            stats.super_gemm_requests as f64 / stats.super_gemms as f64
        } else {
            1.0
        };
        let superwave_width: f64 = if q <= 1 {
            let map = DepthMap::build(&refs[..1]);
            map.mean_super_width()
        } else {
            // Mean over the chunks actually flushed.
            let mut total = 0.0;
            let mut chunks = 0.0;
            for chunk in refs.chunks(q) {
                total += DepthMap::build(chunk).mean_super_width();
                chunks += 1.0;
            }
            total / chunks
        };
        // Poisson replay at 80% of sequential capacity: all depths are
        // stable, so the latency column isolates the fill-the-queue
        // wait against the amortized service time.
        let lambda = 0.8 * (refs.len() as f64 / depth1_wall);
        let batch_service = wall / (refs.len() as f64 / q as f64).ceil();
        let (mean_ms, p95_ms) = simulate_latency(512, lambda, q, batch_service, 0xC0FFEE);
        depths.push(DepthRecord {
            queue_depth: q,
            superwave_width,
            gemms_per_request,
            requests_per_gemm,
            wall_s: wall,
            throughput_rps: throughput,
            speedup_vs_depth1: depth1_wall / wall,
            mean_latency_ms: mean_ms,
            p95_latency_ms: p95_ms,
            epilogue_ms,
        });
        println!(
            "{bench:<20} depth={q:<3} superwave={superwave_width:7.1} \
             gemms/req={gemms_per_request:7.1} req/gemm={requests_per_gemm:5.1} \
             wall={:8.1}ms throughput={throughput:8.1} req/s speedup={:5.2}x \
             latency mean={mean_ms:8.2}ms p95={p95_ms:8.2}ms",
            wall * 1e3,
            depth1_wall / wall,
        );
    }
    let nodes: usize = structures.iter().map(RecStructure::num_nodes).sum();
    Workload {
        bench: bench.to_string(),
        requests: structures.len(),
        nodes_per_request: nodes as f64 / structures.len() as f64,
        hidden: model.hidden,
        verified,
        depths,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let mut workloads = Vec::new();

    // Acceptance workload 1: batch-1 sequences through a 256-wide LSTM.
    {
        let h = 256;
        let model = seq::seq_lstm(h);
        let structures: Vec<RecStructure> = (0..64u64)
            .map(|s| datasets::sequence(48 + (s % 5) as usize * 8, 100 + s))
            .collect();
        let want: Vec<_> = structures
            .iter()
            .map(|s| reference::tree_lstm(s, &model.params, h, LeafInit::Embedding).h)
            .collect();
        workloads.push(bench_workload("seqlstm_h256", &model, structures, want));
    }
    // Acceptance workload 2: single sentiment trees (Fig. 6 bs=1).
    {
        let h = 256;
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let corpus = datasets::sentiment_treebank(64, 45);
        let want: Vec<_> = corpus
            .iter()
            .map(|s| reference::tree_lstm(s, &model.params, h, LeafInit::Embedding).h)
            .collect();
        workloads.push(bench_workload("treelstm_h256_bs1", &model, corpus, want));
    }

    let robustness = robustness_scenarios();
    let router = router_scenarios();

    let mut json =
        String::from("{\n  \"schema\": \"cortex-bench-serving/v5\",\n  \"results\": [\n");
    let mut first = true;
    for w in &workloads {
        for d in &w.depths {
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"bench\": \"{}\", \"requests\": {}, \"nodes_per_request\": {:.1}, \
                 \"hidden\": {}, \"queue_depth\": {}, \"requests_per_batch\": {}, \
                 \"superwave_width\": {:.2}, \"gemms_per_request\": {:.2}, \
                 \"requests_per_gemm\": {:.2}, \"wall_ms\": {:.4}, \"throughput_rps\": {:.3}, \
                 \"speedup_vs_depth1\": {:.3}, \"mean_latency_ms\": {:.3}, \
                 \"p95_latency_ms\": {:.3}, \"epilogue_ms\": {:.4}, \"verified\": {}}}",
                w.bench,
                w.requests,
                w.nodes_per_request,
                w.hidden,
                d.queue_depth,
                d.queue_depth,
                d.superwave_width,
                d.gemms_per_request,
                d.requests_per_gemm,
                d.wall_s * 1e3,
                d.throughput_rps,
                d.speedup_vs_depth1,
                d.mean_latency_ms,
                d.p95_latency_ms,
                d.epilogue_ms,
                w.verified
            );
        }
    }
    json.push_str("\n  ],\n  \"robustness\": [\n");
    for (i, r) in robustness.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"submitted\": {}, \"resolved_ok\": {}, \
             \"resolved_err\": {}, \"shed\": {}, \"deadline_misses\": {}, \
             \"isolated_faults\": {}, \"degraded_runs\": {}, \
             \"panics_contained\": {}, \"rejected_invalid\": {}, \
             \"over_budget\": {}, \"ok\": {}}}",
            r.scenario,
            r.stats.submitted,
            r.stats.resolved_ok,
            r.stats.resolved_err,
            r.stats.shed,
            r.stats.deadline_misses,
            r.stats.isolated_faults,
            r.stats.degraded_runs,
            r.stats.panics_contained,
            r.stats.rejected_invalid,
            r.stats.over_budget,
            r.ok
        );
    }
    json.push_str("\n  ],\n  \"router\": [\n");
    for (i, r) in router.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"submitted\": {}, \"rejected\": {}, \
             \"resolved_ok\": {}, \"resolved_err\": {}, \"spills\": {}, \
             \"retries\": {}, \"retries_exhausted\": {}, \"failovers\": {}, \
             \"shard_kills\": {}, \"deadline_misses\": {}, \"shed\": {}, \
             \"hedges_launched\": {}, \"depth_increases\": {}, \
             \"depth_decreases\": {}, \"ok\": {}}}",
            r.scenario,
            r.stats.submitted,
            r.stats.rejected,
            r.stats.resolved_ok,
            r.stats.resolved_err,
            r.stats.spills,
            r.stats.retries,
            r.stats.retries_exhausted,
            r.stats.failovers,
            r.stats.shard_kills,
            r.stats.deadline_misses,
            r.stats.shed,
            r.stats.hedges_launched,
            r.stats.depth_increases,
            r.stats.depth_decreases,
            r.ok
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("\nwrote {out_path}");

    for w in &workloads {
        assert!(w.verified, "{}: verification failed", w.bench);
    }
    // Robustness gates — structural (counter equalities), never skipped.
    for r in &robustness {
        assert!(
            r.ok,
            "robustness: scenario {} failed its accounting gate \
             (shed + resolved must equal submitted, with the expected split)",
            r.scenario
        );
    }
    // Router-topology gates — structural and deterministic (counter
    // equalities; the adaptive comparison is a dominance check on two
    // runs of the same clocked stream), never skipped.
    for r in &router {
        assert!(
            r.ok,
            "router: scenario {} failed its structural gate \
             (exact spill/retry/failover splits, every ticket resolved once, \
             adaptive depth dominating the fixed baseline)",
            r.scenario
        );
    }
    let at = |bench: &str, depth: usize| -> &DepthRecord {
        workloads
            .iter()
            .find(|w| w.bench == bench)
            .unwrap()
            .depths
            .iter()
            .find(|d| d.queue_depth == depth)
            .unwrap()
    };

    // Structural amortization gates — deterministic, never skipped.
    let seq1 = at("seqlstm_h256", 1);
    let seq16 = at("seqlstm_h256", 16);
    assert!(
        seq16.requests_per_gemm >= 12.0,
        "amortization: every merged GEMM must serve ~all 16 queued sequences, \
         got {:.1} requests/GEMM",
        seq16.requests_per_gemm
    );
    assert!(
        seq16.gemms_per_request * 8.0 <= seq1.gemms_per_request,
        "amortization: depth-16 must launch ≥8x fewer GEMMs per request \
         ({:.1} vs {:.1})",
        seq16.gemms_per_request,
        seq1.gemms_per_request
    );
    assert!(
        seq16.superwave_width >= 10.0,
        "amortization: width-1 sequence waves must merge into ≥10-wide \
         super-waves, got {:.1}",
        seq16.superwave_width
    );

    // Wall-clock gates (machine-dependent; ratio of two same-box runs).
    let seq_speedup = seq16.speedup_vs_depth1;
    let tree_speedup = at("treelstm_h256_bs1", 16).speedup_vs_depth1;
    if std::env::var("CORTEX_BENCH_ENFORCE").as_deref() == Ok("0") {
        println!(
            "acceptance: seqlstm {seq_speedup:.2}x, treelstm bs1 {tree_speedup:.2}x \
             (wall-clock enforcement disabled)"
        );
    } else {
        assert!(
            seq_speedup >= 1.25,
            "acceptance: seqlstm depth-16 throughput must be ≥1.25x depth-1, \
             got {seq_speedup:.2}x"
        );
        assert!(
            tree_speedup >= 0.9,
            "acceptance: treelstm bs1 depth-16 batching must never cost >10% \
             throughput (typically it gains ~10%; single-core wall noise on \
             this workload is ±10%), got {tree_speedup:.2}x"
        );
        println!(
            "acceptance: seqlstm {seq_speedup:.2}x ≥ 1.25x ✓, treelstm bs1 \
             {tree_speedup:.2}x ≥ 0.9x ✓"
        );
    }
}

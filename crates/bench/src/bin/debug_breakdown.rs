use cortex_backend::device::DeviceSpec;
use cortex_bench_harness::registry::ModelId;
use cortex_bench_harness::runner::{baseline, cortex, Baseline};
use cortex_core::ra::RaSchedule;

fn main() {
    let gpu = DeviceSpec::v100();
    let id = ModelId::SeqLstm;
    let model = id.build(32);
    let data = id.dataset(10, 2021);
    let m = cortex(&model, &data, &RaSchedule::default(), &gpu);
    println!("cortex seqlstm: total={:.4}ms launch={:.4} barrier={:.4} compute={:.4} mem={:.4} host={:.4}",
        m.latency_ms, m.breakdown.launch_s*1e3, m.breakdown.barrier_s*1e3,
        m.breakdown.compute_s*1e3, m.breakdown.mem_s*1e3, m.breakdown.host_s*1e3);
    println!(
        "  launches={} barriers={} flops={} waves={} bytes_r={} bytes_w={} param={}",
        m.profile.launches,
        m.profile.barriers_global,
        m.profile.flops,
        m.profile.waves.len(),
        m.profile.global_bytes_read,
        m.profile.global_bytes_written,
        m.profile.param_bytes_read
    );
    let w0: Vec<_> = m.profile.waves.iter().take(8).collect();
    println!("  first waves: {:?}", w0);

    let id = ModelId::TreeFc;
    let model = id.build_recursive_only(32);
    let data = id.dataset(10, 2021);
    let m = cortex(&model, &data, &RaSchedule::default(), &gpu);
    println!("cortex treefc: total={:.4}ms launch={:.4} barrier={:.4} compute={:.4} mem={:.4} host={:.4}",
        m.latency_ms, m.breakdown.launch_s*1e3, m.breakdown.barrier_s*1e3,
        m.breakdown.compute_s*1e3, m.breakdown.mem_s*1e3, m.breakdown.host_s*1e3);
    println!(
        "  launches={} barriers={} flops={} waves={}",
        m.profile.launches,
        m.profile.barriers_global,
        m.profile.flops,
        m.profile.waves.len()
    );
    println!(
        "  first waves: {:?}",
        m.profile.waves.iter().take(10).collect::<Vec<_>>()
    );
    let c = baseline(Baseline::Cavs, &model, &data, &gpu);
    println!(
        "cavs treefc: total={:.4}ms launches={} flops={}",
        c.latency_ms, c.profile.launches, c.profile.flops
    );
}

//! Machine-readable perf trajectory: emits `BENCH_pipeline.json`.
//!
//! Measures end-to-end Cortex pipeline wall-clock (fig6/fig9-style runs)
//! under the three executor configurations — generic interpreter, scalar
//! `eval_dot` (the pre-batching "before"), and the batched wavefront GEMM
//! engine (the "after") — on TreeLSTM and TreeGRU at paper hidden sizes
//! over ≥256-node sentiment-treebank forests, plus the Fig. 9 sequential
//! LSTM. Outputs are cross-checked against the pure-Rust reference models
//! (≤ 1e-4 per element, the repo-wide verification bar which subsumes the
//! 1e-5 relative bar at these magnitudes) before any timing is recorded.
//!
//! Run with `cargo run --release -p cortex-bench-harness --bin
//! bench_pipeline [-- output.json]`. The JSON is a flat list of records:
//!
//! ```json
//! {
//!   "schema": "cortex-bench-pipeline/v6",
//!   "results": [
//!     {"bench": "treelstm_h256_bs16", "nodes": 1234, "hidden": 256,
//!      "scalar_ms": 12.3, "batched_ms": 3.2, "generic_ms": 88.0,
//!      "speedup_batched_vs_scalar": 3.84, "verified": true,
//!      "wave_gemms": 120, "waves_batched": 60, "gemms_per_wave": 2.0,
//!      "gemm_rows": 1800, "stacked_groups": 60, "stacked_sites": 180,
//!      "requests_per_batch": 1, "superwave_width": 15.0,
//!      "throughput_rps": 312.5, "epilogue_ms": 1.9, "fused_waves": 60,
//!      "nonlinearity": "exact"}
//!   ]
//! }
//! ```
//!
//! The `wave_gemms`/`stacked_*` fields are [`ExecStats`] from one batched
//! run: how many GEMM launches served the program, how many waves
//! batched, and how much gate stacking engaged (`gemms_per_wave` is the
//! stacking headline — TreeLSTM's five reduction sites run as two GEMMs
//! per wave). Schema v3 adds the serving-side fields shared with
//! `bench_serving`: `requests_per_batch` (1 here — these are single-run
//! benches; the serving bench sweeps queue depths), `superwave_width`
//! (mean GEMM rows per launch) and `throughput_rps` (runs per second of
//! the batched engine), so the two trajectories join on one schema.
//! Schema v4 adds the epilogue trajectory: `epilogue_ms` (wall time in
//! the elementwise epilogue — fused wave passes + bulk feature loops —
//! of one batched run), `fused_waves`, and `nonlinearity` ("exact" or
//! "rational"), plus the `dagrnn_h256` row (Select-guarded DAG serving,
//! CI-gated ≥10× batched/scalar) and a rational-mode seqlstm row whose
//! outputs are verified ≤1e-4 against the exact references.
//! Schema v6 adds the static-analysis trajectory to each lowering
//! entry: `dead_ops_eliminated` / `slots_coalesced` (the dataflow
//! optimizer's work) and `par_safe_waves` / `par_unsafe_waves` (the
//! parallel-safety certifier's verdict counts).

use std::fmt::Write as _;

use cortex_backend::exec::{Engine, ExecOptions, ExecStats, PlanStats};
use cortex_bench_harness::timing::median_run;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_ds::{datasets, RecStructure};
use cortex_models::{
    dagrnn, mvrnn, reference, seq, treefc, treegru, treelstm, treernn, LeafInit, Model,
};
use cortex_tensor::approx::NonlinearityMode;

struct Record {
    bench: String,
    nodes: usize,
    hidden: usize,
    generic_ms: f64,
    scalar_ms: f64,
    batched_ms: f64,
    verified: bool,
    nonlinearity: NonlinearityMode,
    stats: ExecStats,
    plan: PlanStats,
}

fn median_ms(samples: u32, f: impl FnMut()) -> f64 {
    median_run(samples, f).as_secs_f64() * 1e3
}

/// Verifies the batched engine against a per-node reference table.
fn verify(
    model: &Model,
    lin: &Linearized,
    structure: &RecStructure,
    engine: &mut Engine<'_>,
    want: &[Vec<f32>],
    tol: f32,
) -> bool {
    let (outputs, _) = engine
        .execute(lin, &model.params, true)
        .expect("verified run");
    let got = &outputs[&model.output];
    for n in structure.iter() {
        let id = lin.from_structure_id(n) as usize;
        for (i, w) in want[n.index()].iter().enumerate() {
            if (got[[id, i]] - w).abs() > tol {
                eprintln!(
                    "VERIFY FAIL {}: node {n} elem {i}: {} vs {w}",
                    model.name,
                    got[[id, i]]
                );
                return false;
            }
        }
    }
    true
}

fn bench_model(
    name: &str,
    model: &Model,
    structure: &RecStructure,
    want: &[Vec<f32>],
    samples: u32,
) -> Record {
    bench_model_mode(
        name,
        model,
        structure,
        want,
        samples,
        NonlinearityMode::Exact,
    )
}

/// Like [`bench_model`], with an explicit nonlinearity mode: `Rational`
/// rows verify against the same exact references (the ≤1e-4 bar covers
/// the substitution error end-to-end, the paper's App. A.5 claim).
fn bench_model_mode(
    name: &str,
    model: &Model,
    structure: &RecStructure,
    want: &[Vec<f32>],
    samples: u32,
    nonlinearity: NonlinearityMode,
) -> Record {
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let lin = Linearizer::new().linearize(structure).expect("linearizes");

    let mut batched = Engine::with_options(
        &program,
        ExecOptions {
            nonlinearity,
            ..ExecOptions::default()
        },
    );
    assert!(
        batched.num_wave_plans() > 0,
        "{name}: batched path must engage"
    );
    let verified = verify(model, &lin, structure, &mut batched, want, 1e-4);
    // Executor-strategy counters from the verified run (deterministic
    // except the `*_ns` phase timers, which are wall time; every run of
    // this engine on this input reports the same schedule counters).
    let stats = batched.stats();
    let plan = batched.plan_stats();

    let mut scalar = Engine::with_options(&program, ExecOptions::scalar());
    let mut generic = Engine::with_options(&program, ExecOptions::generic());

    let batched_ms = median_ms(samples, || {
        batched
            .execute(&lin, &model.params, true)
            .expect("batched run");
    });
    let scalar_ms = median_ms(samples, || {
        scalar
            .execute(&lin, &model.params, true)
            .expect("scalar run");
    });
    // The generic interpreter is orders of magnitude slower; sample less.
    let generic_ms = median_ms(samples.min(3), || {
        generic
            .execute(&lin, &model.params, true)
            .expect("generic run");
    });

    println!(
        "{name:<28} nodes={:<5} h={:<4} generic={generic_ms:9.2}ms scalar={scalar_ms:9.2}ms \
         batched={batched_ms:9.2}ms speedup(batched/scalar)={:.2}x gemms/wave={:.2} \
         stacked={}/{} plan_ops={} gather={:.2}ms gemm={:.2}ms serve={:.2}ms \
         epilogue={:.2}ms fused_waves={} verified={verified}",
        structure.num_nodes(),
        model.hidden,
        scalar_ms / batched_ms,
        stats.wave_gemms as f64 / stats.waves_batched.max(1) as f64,
        stats.stacked_sites,
        stats.sites_batched,
        plan.plan_ops,
        stats.gather_ns as f64 / 1e6,
        stats.gemm_ns as f64 / 1e6,
        stats.serve_ns as f64 / 1e6,
        stats.epilogue_ns as f64 / 1e6,
        stats.fused_waves,
    );
    Record {
        bench: name.to_string(),
        nodes: structure.num_nodes(),
        hidden: model.hidden,
        generic_ms,
        scalar_ms,
        batched_ms,
        verified,
        nonlinearity,
        stats,
        plan,
    }
}

fn sst_forest(sentences: usize, seed: u64) -> RecStructure {
    let corpus = datasets::sentiment_treebank(sentences, seed);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    RecStructure::merge(&refs)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    // Fail fast on an unwritable destination instead of discovering it
    // after minutes of benchmarking.
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    let mut records = Vec::new();

    // Acceptance workload: TreeLSTM h=256 over a ≥256-node forest.
    {
        let h = 256;
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let forest = sst_forest(16, 42);
        assert!(
            forest.num_nodes() >= 256,
            "forest has {} nodes",
            forest.num_nodes()
        );
        let want = reference::tree_lstm(&forest, &model.params, h, LeafInit::Embedding);
        records.push(bench_model(
            "treelstm_h256_bs16",
            &model,
            &forest,
            &want.h,
            5,
        ));
    }
    // Fig. 6-style batch-size-1 point.
    {
        let h = 256;
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let tree = datasets::random_binary_tree(160, 7); // 319 nodes
        let want = reference::tree_lstm(&tree, &model.params, h, LeafInit::Embedding);
        records.push(bench_model("treelstm_h256_bs1", &model, &tree, &want.h, 5));
    }
    // TreeGRU at the larger hidden size.
    {
        let h = 512;
        let model = treegru::tree_gru(h, LeafInit::Embedding);
        let forest = sst_forest(10, 43);
        let want = reference::tree_gru(&forest, &model.params, h, LeafInit::Embedding, false);
        records.push(bench_model("treegru_h512_bs10", &model, &forest, &want, 3));
    }
    // Fig. 9-style sequential LSTM (GRNN comparison workload), in both
    // nonlinearity modes: the rational row verifies ≤1e-4 against the
    // same exact references and isolates the epilogue win.
    {
        let h = 256;
        let model = seq::seq_lstm(h);
        let seqs = datasets::batch_of(|s| datasets::sequence(100, s), 10, 44);
        let want = reference::tree_lstm(&seqs, &model.params, h, LeafInit::Embedding);
        records.push(bench_model("seqlstm_h256_bs10", &model, &seqs, &want.h, 5));
        records.push(bench_model_mode(
            "seqlstm_h256_bs10_rational",
            &model,
            &seqs,
            &want.h,
            5,
            NonlinearityMode::Rational,
        ));
    }
    // Select-guarded DAG serving (Table 2's scene-labeling workload):
    // ten 10x10 grid "images" at h=256. Every recursive value is
    // guarded by the border-node child count, so this row gates the
    // Select-guarded bulk path.
    {
        let h = 256;
        let model = dagrnn::dag_rnn(h);
        let grids = datasets::batch_of(|s| datasets::grid_dag(10, 10, s), 10, 7);
        let want = reference::dag_rnn(&grids, &model.params, h);
        records.push(bench_model("dagrnn_h256", &model, &grids, &want, 5));
    }

    // Lowering coverage across the whole model zoo: every model —
    // benchmarked here or not — must lower fully to a plan.
    let zoo: Vec<(&str, Model)> = vec![
        ("treernn", treernn::tree_rnn(64, LeafInit::Embedding)),
        ("treefc", treefc::tree_fc(64, LeafInit::Embedding)),
        ("treegru", treegru::tree_gru(64, LeafInit::Embedding)),
        ("treelstm", treelstm::tree_lstm(64, LeafInit::Zero)),
        ("mvrnn", mvrnn::mv_rnn(16)),
        ("dagrnn", dagrnn::dag_rnn(64)),
        ("seqlstm", seq::seq_lstm(64)),
    ];
    let lowering: Vec<(&str, PlanStats)> = zoo
        .iter()
        .map(|(name, model)| {
            let program = model.lower(&RaSchedule::default()).expect("lowers");
            let plan = Engine::new(&program).plan_stats();
            println!(
                "lowering {name:<10} plan_ops={:<5} lower={:.3}ms fallback_stmts={} \
                 dead_ops={} coalesced={} par_safe={} par_unsafe={}",
                plan.plan_ops,
                plan.lower_ns as f64 / 1e6,
                plan.interp_fallback_stmts,
                plan.dead_ops_eliminated,
                plan.slots_coalesced,
                plan.par_safe_waves,
                plan.par_unsafe_waves
            );
            (*name, plan)
        })
        .collect();

    let mut json =
        String::from("{\n  \"schema\": \"cortex-bench-pipeline/v6\",\n  \"lowering\": [\n");
    for (i, (name, plan)) in lowering.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"model\": \"{}\", \"plan_ops\": {}, \"lower_ms\": {:.4}, \
             \"interp_fallback_stmts\": {}, \"dead_ops_eliminated\": {}, \
             \"slots_coalesced\": {}, \"par_safe_waves\": {}, \
             \"par_unsafe_waves\": {}}}{}",
            name,
            plan.plan_ops,
            plan.lower_ns as f64 / 1e6,
            plan.interp_fallback_stmts,
            plan.dead_ops_eliminated,
            plan.slots_coalesced,
            plan.par_safe_waves,
            plan.par_unsafe_waves,
            if i + 1 < lowering.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"nodes\": {}, \"hidden\": {}, \
             \"generic_ms\": {:.4}, \"scalar_ms\": {:.4}, \"batched_ms\": {:.4}, \
             \"speedup_batched_vs_scalar\": {:.3}, \"verified\": {}, \
             \"wave_gemms\": {}, \"waves_batched\": {}, \"gemms_per_wave\": {:.3}, \
             \"gemm_rows\": {}, \"stacked_groups\": {}, \"stacked_sites\": {}, \
             \"requests_per_batch\": 1, \"superwave_width\": {:.3}, \
             \"throughput_rps\": {:.3}, \"plan_ops\": {}, \"lower_ms\": {:.4}, \
             \"interp_fallback_stmts\": {}, \"gather_ms\": {:.4}, \
             \"gemm_ms\": {:.4}, \"serve_ms\": {:.4}, \"epilogue_ms\": {:.4}, \
             \"fused_waves\": {}, \"nonlinearity\": \"{}\"}}{}",
            r.bench,
            r.nodes,
            r.hidden,
            r.generic_ms,
            r.scalar_ms,
            r.batched_ms,
            r.scalar_ms / r.batched_ms,
            r.verified,
            r.stats.wave_gemms,
            r.stats.waves_batched,
            r.stats.wave_gemms as f64 / r.stats.waves_batched.max(1) as f64,
            r.stats.gemm_rows,
            r.stats.stacked_groups,
            r.stats.stacked_sites,
            r.stats.gemm_rows as f64 / r.stats.wave_gemms.max(1) as f64,
            1e3 / r.batched_ms,
            r.plan.plan_ops,
            r.plan.lower_ns as f64 / 1e6,
            r.plan.interp_fallback_stmts,
            r.stats.gather_ns as f64 / 1e6,
            r.stats.gemm_ns as f64 / 1e6,
            r.stats.serve_ns as f64 / 1e6,
            r.stats.epilogue_ns as f64 / 1e6,
            r.stats.fused_waves,
            match r.nonlinearity {
                NonlinearityMode::Exact => "exact",
                NonlinearityMode::Rational => "rational",
            },
            if i + 1 < records.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("\nwrote {out_path}");

    let acceptance = &records[0];
    assert!(
        acceptance.verified,
        "acceptance workload failed verification"
    );
    // Gate stacking must engage on TreeLSTM regardless of wall-clock
    // noise: five reduction sites (i/o/u + two forget gates) per wave
    // collapse into two GEMMs.
    let gemms_per_wave =
        acceptance.stats.wave_gemms as f64 / acceptance.stats.waves_batched.max(1) as f64;
    assert!(
        gemms_per_wave < 2.5,
        "gate stacking must collapse TreeLSTM's 5 sites to ~2 GEMMs/wave, got {gemms_per_wave:.2}"
    );
    // Correctness gates — always enforced. The rational row must verify
    // against the exact references (the ≤1e-4 end-to-end substitution
    // bound), every row must have taken the batched path, and every
    // model — benchmarked or not — must lower fully to the plan IR.
    for r in &records {
        assert!(r.verified, "{}: verification failed", r.bench);
        assert!(r.plan.plan_ops > 0, "{}: kernels must lower", r.bench);
        assert_eq!(
            r.plan.interp_fallback_stmts, 0,
            "{}: lowering must be total",
            r.bench
        );
    }
    for (name, plan) in &lowering {
        assert!(plan.plan_ops > 0, "{name}: kernels must lower");
        assert_eq!(
            plan.interp_fallback_stmts, 0,
            "{name}: lowering must be total"
        );
    }
    let by_name = |name: &str| -> &Record {
        records
            .iter()
            .find(|r| r.bench == name)
            .expect("known bench")
    };
    let dag = by_name("dagrnn_h256");
    assert!(
        dag.stats.fused_waves > 0,
        "dagrnn: the Select-guarded epilogue must run as fused bulk passes"
    );

    let speedup = acceptance.scalar_ms / acceptance.batched_ms;
    let dag_speedup = dag.scalar_ms / dag.batched_ms;
    let seq_exact = by_name("seqlstm_h256_bs10");
    let seq_rational = by_name("seqlstm_h256_bs10_rational");
    let (epi_exact, epi_rational) = (
        seq_exact.stats.epilogue_ns as f64 / 1e6,
        seq_rational.stats.epilogue_ns as f64 / 1e6,
    );
    // Wall-clock bars are skippable for noisy shared CI runners
    // (CORTEX_BENCH_ENFORCE=0) — the JSON still records the measured
    // ratios either way.
    if std::env::var("CORTEX_BENCH_ENFORCE").as_deref() == Ok("0") {
        println!(
            "acceptance: treelstm {speedup:.2}x, dagrnn {dag_speedup:.2}x, \
             seqlstm epilogue {epi_exact:.2}ms exact vs {epi_rational:.2}ms \
             rational (enforcement disabled)"
        );
    } else {
        assert!(
            speedup >= 15.0,
            "acceptance: batched wave engine must be ≥15x over scalar eval_dot \
             (bulk feature-loop serving raised the PR-2 floor of 3.5x; measured \
             42x on the dev box), got {speedup:.2}x"
        );
        assert!(
            dag_speedup >= 10.0,
            "acceptance: Select-guarded DAG-RNN must be ≥10x over scalar on the \
             bulk path (measured ~12x on the dev box), got {dag_speedup:.2}x"
        );
        assert!(
            epi_rational < epi_exact,
            "acceptance: the rational epilogue must beat libm-exact on seqlstm \
             ({epi_rational:.2}ms vs {epi_exact:.2}ms)"
        );
        println!(
            "acceptance: treelstm {speedup:.2}x ≥ 15x ✓, dagrnn {dag_speedup:.2}x ≥ 10x ✓, \
             rational epilogue {epi_rational:.2}ms < exact {epi_exact:.2}ms ✓"
        );
    }
}

//! Machine-readable perf trajectory: emits `BENCH_pipeline.json`.
//!
//! Measures end-to-end Cortex pipeline wall-clock (fig6/fig9-style runs)
//! under the three executor configurations — generic interpreter, scalar
//! `eval_dot` (the pre-batching "before"), and the batched wavefront GEMM
//! engine (the "after") — on TreeLSTM and TreeGRU at paper hidden sizes
//! over ≥256-node sentiment-treebank forests, plus the Fig. 9 sequential
//! LSTM. Outputs are cross-checked against the pure-Rust reference models
//! (≤ 1e-4 per element, the repo-wide verification bar which subsumes the
//! 1e-5 relative bar at these magnitudes) before any timing is recorded.
//!
//! Run with `cargo run --release -p cortex-bench-harness --bin
//! bench_pipeline [-- output.json]`. The JSON is a flat list of records:
//!
//! ```json
//! {
//!   "schema": "cortex-bench-pipeline/v6",
//!   "results": [
//!     {"bench": "treelstm_h256_bs16", "nodes": 1234, "hidden": 256,
//!      "scalar_ms": 12.3, "batched_ms": 3.2, "generic_ms": 88.0,
//!      "speedup_batched_vs_scalar": 3.84, "verified": true,
//!      "wave_gemms": 120, "waves_batched": 60, "gemms_per_wave": 2.0,
//!      "gemm_rows": 1800, "stacked_groups": 60, "stacked_sites": 180,
//!      "requests_per_batch": 1, "superwave_width": 15.0,
//!      "throughput_rps": 312.5, "epilogue_ms": 1.9, "fused_waves": 60,
//!      "nonlinearity": "exact"}
//!   ]
//! }
//! ```
//!
//! The `wave_gemms`/`stacked_*` fields are [`ExecStats`] from one batched
//! run: how many GEMM launches served the program, how many waves
//! batched, and how much gate stacking engaged (`gemms_per_wave` is the
//! stacking headline — TreeLSTM's five reduction sites run as two GEMMs
//! per wave). Schema v3 adds the serving-side fields shared with
//! `bench_serving`: `requests_per_batch` (1 here — these are single-run
//! benches; the serving bench sweeps queue depths), `superwave_width`
//! (mean GEMM rows per launch) and `throughput_rps` (runs per second of
//! the batched engine), so the two trajectories join on one schema.
//! Schema v4 adds the epilogue trajectory: `epilogue_ms` (wall time in
//! the elementwise epilogue — fused wave passes + bulk feature loops —
//! of one batched run), `fused_waves`, and `nonlinearity` ("exact" or
//! "rational"), plus the `dagrnn_h256` row (Select-guarded DAG serving,
//! CI-gated ≥10× batched/scalar) and a rational-mode seqlstm row whose
//! outputs are verified ≤1e-4 against the exact references.
//! Schema v6 adds the static-analysis trajectory to each lowering
//! entry: `dead_ops_eliminated` / `slots_coalesced` (the dataflow
//! optimizer's work) and `par_safe_waves` / `par_unsafe_waves` (the
//! parallel-safety certifier's verdict counts).
//! Schema v7 adds the direct-threaded specialization trajectory:
//! each lowering entry gains `threaded_ops` (specialized closure-table
//! length), `fused_scalar_runs` (peephole-fused straight-line runs +
//! natively fused loops), and `specialize_ms`; and a new `solo_small`
//! section measures solo small-structure latency (depth-1 and depth-4
//! seqlstm/treelstm rows at h=16) of the threaded tier against the pc
//! runtime and the interp oracle, under both the default schedule and
//! the scalar "no fusion" schedule. The scalar rows are the
//! dispatch-bound configuration the specializer targets (under the
//! default schedule this work rides the shared fused-wave bulk path,
//! so the tiers measure equal by construction); ratios use paired
//! alternating-block medians ([`paired_compare`]) so CPU frequency
//! drift between the two engines' measurement windows cancels.

use std::fmt::Write as _;

use cortex_backend::exec::{Engine, ExecOptions, ExecStats, PlanStats};
use cortex_bench_harness::timing::{median_run, paired_compare, time_once};
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::{Linearized, Linearizer};
use cortex_ds::{datasets, RecStructure};
use cortex_models::{
    dagrnn, mvrnn, reference, seq, treefc, treegru, treelstm, treernn, LeafInit, Model,
};
use cortex_tensor::approx::NonlinearityMode;

struct Record {
    bench: String,
    nodes: usize,
    hidden: usize,
    generic_ms: f64,
    scalar_ms: f64,
    batched_ms: f64,
    verified: bool,
    nonlinearity: NonlinearityMode,
    stats: ExecStats,
    plan: PlanStats,
}

fn median_ms(samples: u32, f: impl FnMut()) -> f64 {
    median_run(samples, f).as_secs_f64() * 1e3
}

/// Verifies the batched engine against a per-node reference table.
fn verify(
    model: &Model,
    lin: &Linearized,
    structure: &RecStructure,
    engine: &mut Engine<'_>,
    want: &[Vec<f32>],
    tol: f32,
) -> bool {
    let (outputs, _) = engine
        .execute(lin, &model.params, true)
        .expect("verified run");
    let got = &outputs[&model.output];
    for n in structure.iter() {
        let id = lin.from_structure_id(n) as usize;
        for (i, w) in want[n.index()].iter().enumerate() {
            if (got[[id, i]] - w).abs() > tol {
                eprintln!(
                    "VERIFY FAIL {}: node {n} elem {i}: {} vs {w}",
                    model.name,
                    got[[id, i]]
                );
                return false;
            }
        }
    }
    true
}

fn bench_model(
    name: &str,
    model: &Model,
    structure: &RecStructure,
    want: &[Vec<f32>],
    samples: u32,
) -> Record {
    bench_model_mode(
        name,
        model,
        structure,
        want,
        samples,
        NonlinearityMode::Exact,
    )
}

/// Like [`bench_model`], with an explicit nonlinearity mode: `Rational`
/// rows verify against the same exact references (the ≤1e-4 bar covers
/// the substitution error end-to-end, the paper's App. A.5 claim).
fn bench_model_mode(
    name: &str,
    model: &Model,
    structure: &RecStructure,
    want: &[Vec<f32>],
    samples: u32,
    nonlinearity: NonlinearityMode,
) -> Record {
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let lin = Linearizer::new().linearize(structure).expect("linearizes");

    let mut batched = Engine::with_options(
        &program,
        ExecOptions {
            nonlinearity,
            ..ExecOptions::default()
        },
    );
    assert!(
        batched.num_wave_plans() > 0,
        "{name}: batched path must engage"
    );
    let verified = verify(model, &lin, structure, &mut batched, want, 1e-4);
    // Executor-strategy counters from the verified run (deterministic
    // except the `*_ns` phase timers, which are wall time; every run of
    // this engine on this input reports the same schedule counters).
    let stats = batched.stats();
    let plan = batched.plan_stats();

    let mut scalar = Engine::with_options(&program, ExecOptions::scalar());
    let mut generic = Engine::with_options(&program, ExecOptions::generic());

    let batched_ms = median_ms(samples, || {
        batched
            .execute(&lin, &model.params, true)
            .expect("batched run");
    });
    let scalar_ms = median_ms(samples, || {
        scalar
            .execute(&lin, &model.params, true)
            .expect("scalar run");
    });
    // The generic interpreter is orders of magnitude slower; sample less.
    let generic_ms = median_ms(samples.min(3), || {
        generic
            .execute(&lin, &model.params, true)
            .expect("generic run");
    });

    println!(
        "{name:<28} nodes={:<5} h={:<4} generic={generic_ms:9.2}ms scalar={scalar_ms:9.2}ms \
         batched={batched_ms:9.2}ms speedup(batched/scalar)={:.2}x gemms/wave={:.2} \
         stacked={}/{} plan_ops={} gather={:.2}ms gemm={:.2}ms serve={:.2}ms \
         epilogue={:.2}ms fused_waves={} verified={verified}",
        structure.num_nodes(),
        model.hidden,
        scalar_ms / batched_ms,
        stats.wave_gemms as f64 / stats.waves_batched.max(1) as f64,
        stats.stacked_sites,
        stats.sites_batched,
        plan.plan_ops,
        stats.gather_ns as f64 / 1e6,
        stats.gemm_ns as f64 / 1e6,
        stats.serve_ns as f64 / 1e6,
        stats.epilogue_ns as f64 / 1e6,
        stats.fused_waves,
    );
    Record {
        bench: name.to_string(),
        nodes: structure.num_nodes(),
        hidden: model.hidden,
        generic_ms,
        scalar_ms,
        batched_ms,
        verified,
        nonlinearity,
        stats,
        plan,
    }
}

struct SoloRecord {
    bench: &'static str,
    schedule: &'static str,
    depth: usize,
    nodes: usize,
    hidden: usize,
    threaded_us: f64,
    pc_us: f64,
    interp_us: f64,
    /// Median of per-block-pair pc/threaded time ratios (paired blocks).
    speedup_threaded_vs_pc: f64,
    threaded_ops: usize,
    fused_scalar_runs: usize,
    specialize_ms: f64,
}

/// Solo small-structure latency: the serving shape where per-op dispatch
/// overhead is proportionally largest. Before timing, one run of each
/// tier is cross-checked bit-identical on outputs and `Profile` — the
/// same invariant the three-way property tests enforce, re-asserted here
/// so a timing row can never come from diverging executions.
fn solo_small() -> Vec<SoloRecord> {
    let h = 16;
    let pc_opts = ExecOptions {
        threaded: false,
        ..ExecOptions::default()
    };
    let mut rows = Vec::new();
    for (name, depth, model, structure) in [
        (
            "treelstm_d1",
            1,
            treelstm::tree_lstm(h, LeafInit::Embedding),
            datasets::random_binary_tree(2, 1),
        ),
        (
            "treelstm_d4",
            4,
            treelstm::tree_lstm(h, LeafInit::Embedding),
            datasets::random_binary_tree(8, 2),
        ),
        ("seqlstm_d1", 1, seq::seq_lstm(h), datasets::sequence(2, 3)),
        ("seqlstm_d4", 4, seq::seq_lstm(h), datasets::sequence(5, 4)),
    ] {
        for (sched, schedule) in [
            ("default", RaSchedule::default()),
            ("scalar", RaSchedule::unoptimized()),
        ] {
            let program = model.lower(&schedule).expect("lowers");
            let lin = Linearizer::new().linearize(&structure).expect("linearizes");
            let mut threaded = Engine::new(&program);
            let mut pc = Engine::with_options(&program, pc_opts);
            let mut interp = Engine::with_options(&program, ExecOptions::interpreted());
            let run = |e: &mut Engine<'_>| e.execute(&lin, &model.params, true).expect("solo run");
            let (out_t, prof_t) = run(&mut threaded);
            let (out_p, prof_p) = run(&mut pc);
            let (out_i, prof_i) = run(&mut interp);
            assert_eq!(
                prof_t, prof_p,
                "{name}[{sched}]: threaded/pc Profile diverged"
            );
            assert_eq!(
                prof_t, prof_i,
                "{name}[{sched}]: threaded/interp Profile diverged"
            );
            let bits = out_t[&model.output].as_slice();
            assert_eq!(
                bits,
                out_p[&model.output].as_slice(),
                "{name}[{sched}]: threaded/pc outputs diverged"
            );
            assert_eq!(
                bits,
                out_i[&model.output].as_slice(),
                "{name}[{sched}]: threaded/interp outputs diverged"
            );
            // Calibrate block size to ~500us so a paired block is long
            // enough to time but short enough that frequency state is
            // shared between the adjacent threaded and pc blocks.
            let (_, once) = time_once(|| run(&mut threaded));
            let iters = ((500e-6 / once.as_secs_f64().max(1e-9)) as u32).clamp(1, 4096);
            let rep = paired_compare(21, iters, || run(&mut threaded), || run(&mut pc));
            let rep_i = paired_compare(7, iters, || run(&mut interp), || run(&mut pc));
            let plan = threaded.plan_stats();
            let rec = SoloRecord {
                bench: name,
                schedule: sched,
                depth,
                nodes: structure.num_nodes(),
                hidden: h,
                threaded_us: rep.a_s * 1e6,
                pc_us: rep.b_s * 1e6,
                interp_us: rep_i.a_s * 1e6,
                speedup_threaded_vs_pc: rep.speedup,
                threaded_ops: plan.threaded_ops,
                fused_scalar_runs: plan.fused_scalar_runs,
                specialize_ms: plan.specialize_ns as f64 / 1e6,
            };
            println!(
                "solo {name:<14} [{sched:<7}] nodes={:<3} h={h:<3} threaded={:8.2}us \
                 pc={:8.2}us interp={:8.2}us speedup(threaded/pc)={:.3}x \
                 threaded_ops={} fused_runs={} specialize={:.3}ms",
                rec.nodes,
                rec.threaded_us,
                rec.pc_us,
                rec.interp_us,
                rec.speedup_threaded_vs_pc,
                rec.threaded_ops,
                rec.fused_scalar_runs,
                rec.specialize_ms,
            );
            rows.push(rec);
        }
    }
    rows
}

fn sst_forest(sentences: usize, seed: u64) -> RecStructure {
    let corpus = datasets::sentiment_treebank(sentences, seed);
    let refs: Vec<&RecStructure> = corpus.iter().collect();
    RecStructure::merge(&refs)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    // Fail fast on an unwritable destination instead of discovering it
    // after minutes of benchmarking.
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    let mut records = Vec::new();

    // Acceptance workload: TreeLSTM h=256 over a ≥256-node forest.
    {
        let h = 256;
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let forest = sst_forest(16, 42);
        assert!(
            forest.num_nodes() >= 256,
            "forest has {} nodes",
            forest.num_nodes()
        );
        let want = reference::tree_lstm(&forest, &model.params, h, LeafInit::Embedding);
        records.push(bench_model(
            "treelstm_h256_bs16",
            &model,
            &forest,
            &want.h,
            5,
        ));
    }
    // Fig. 6-style batch-size-1 point.
    {
        let h = 256;
        let model = treelstm::tree_lstm(h, LeafInit::Embedding);
        let tree = datasets::random_binary_tree(160, 7); // 319 nodes
        let want = reference::tree_lstm(&tree, &model.params, h, LeafInit::Embedding);
        records.push(bench_model("treelstm_h256_bs1", &model, &tree, &want.h, 5));
    }
    // TreeGRU at the larger hidden size.
    {
        let h = 512;
        let model = treegru::tree_gru(h, LeafInit::Embedding);
        let forest = sst_forest(10, 43);
        let want = reference::tree_gru(&forest, &model.params, h, LeafInit::Embedding, false);
        records.push(bench_model("treegru_h512_bs10", &model, &forest, &want, 3));
    }
    // Fig. 9-style sequential LSTM (GRNN comparison workload), in both
    // nonlinearity modes: the rational row verifies ≤1e-4 against the
    // same exact references and isolates the epilogue win.
    {
        let h = 256;
        let model = seq::seq_lstm(h);
        let seqs = datasets::batch_of(|s| datasets::sequence(100, s), 10, 44);
        let want = reference::tree_lstm(&seqs, &model.params, h, LeafInit::Embedding);
        records.push(bench_model("seqlstm_h256_bs10", &model, &seqs, &want.h, 5));
        records.push(bench_model_mode(
            "seqlstm_h256_bs10_rational",
            &model,
            &seqs,
            &want.h,
            5,
            NonlinearityMode::Rational,
        ));
    }
    // Select-guarded DAG serving (Table 2's scene-labeling workload):
    // ten 10x10 grid "images" at h=256. Every recursive value is
    // guarded by the border-node child count, so this row gates the
    // Select-guarded bulk path.
    {
        let h = 256;
        let model = dagrnn::dag_rnn(h);
        let grids = datasets::batch_of(|s| datasets::grid_dag(10, 10, s), 10, 7);
        let want = reference::dag_rnn(&grids, &model.params, h);
        records.push(bench_model("dagrnn_h256", &model, &grids, &want, 5));
    }

    // Lowering coverage across the whole model zoo: every model —
    // benchmarked here or not — must lower fully to a plan.
    let zoo: Vec<(&str, Model)> = vec![
        ("treernn", treernn::tree_rnn(64, LeafInit::Embedding)),
        ("treefc", treefc::tree_fc(64, LeafInit::Embedding)),
        ("treegru", treegru::tree_gru(64, LeafInit::Embedding)),
        ("treelstm", treelstm::tree_lstm(64, LeafInit::Zero)),
        ("mvrnn", mvrnn::mv_rnn(16)),
        ("dagrnn", dagrnn::dag_rnn(64)),
        ("seqlstm", seq::seq_lstm(64)),
    ];
    let lowering: Vec<(&str, PlanStats)> = zoo
        .iter()
        .map(|(name, model)| {
            let program = model.lower(&RaSchedule::default()).expect("lowers");
            let plan = Engine::new(&program).plan_stats();
            println!(
                "lowering {name:<10} plan_ops={:<5} lower={:.3}ms fallback_stmts={} \
                 dead_ops={} coalesced={} par_safe={} par_unsafe={} \
                 threaded_ops={} fused_runs={} specialize={:.3}ms",
                plan.plan_ops,
                plan.lower_ns as f64 / 1e6,
                plan.interp_fallback_stmts,
                plan.dead_ops_eliminated,
                plan.slots_coalesced,
                plan.par_safe_waves,
                plan.par_unsafe_waves,
                plan.threaded_ops,
                plan.fused_scalar_runs,
                plan.specialize_ns as f64 / 1e6,
            );
            (*name, plan)
        })
        .collect();

    let solo = solo_small();

    let mut json =
        String::from("{\n  \"schema\": \"cortex-bench-pipeline/v7\",\n  \"lowering\": [\n");
    for (i, (name, plan)) in lowering.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"model\": \"{}\", \"plan_ops\": {}, \"lower_ms\": {:.4}, \
             \"interp_fallback_stmts\": {}, \"dead_ops_eliminated\": {}, \
             \"slots_coalesced\": {}, \"par_safe_waves\": {}, \
             \"par_unsafe_waves\": {}, \"threaded_ops\": {}, \
             \"fused_scalar_runs\": {}, \"specialize_ms\": {:.4}}}{}",
            name,
            plan.plan_ops,
            plan.lower_ns as f64 / 1e6,
            plan.interp_fallback_stmts,
            plan.dead_ops_eliminated,
            plan.slots_coalesced,
            plan.par_safe_waves,
            plan.par_unsafe_waves,
            plan.threaded_ops,
            plan.fused_scalar_runs,
            plan.specialize_ns as f64 / 1e6,
            if i + 1 < lowering.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ],\n  \"solo_small\": [\n");
    for (i, s) in solo.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"schedule\": \"{}\", \"depth\": {}, \
             \"nodes\": {}, \"hidden\": {}, \"threaded_us\": {:.3}, \
             \"pc_us\": {:.3}, \"interp_us\": {:.3}, \
             \"speedup_threaded_vs_pc\": {:.4}, \"threaded_ops\": {}, \
             \"fused_scalar_runs\": {}, \"specialize_ms\": {:.4}}}{}",
            s.bench,
            s.schedule,
            s.depth,
            s.nodes,
            s.hidden,
            s.threaded_us,
            s.pc_us,
            s.interp_us,
            s.speedup_threaded_vs_pc,
            s.threaded_ops,
            s.fused_scalar_runs,
            s.specialize_ms,
            if i + 1 < solo.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"nodes\": {}, \"hidden\": {}, \
             \"generic_ms\": {:.4}, \"scalar_ms\": {:.4}, \"batched_ms\": {:.4}, \
             \"speedup_batched_vs_scalar\": {:.3}, \"verified\": {}, \
             \"wave_gemms\": {}, \"waves_batched\": {}, \"gemms_per_wave\": {:.3}, \
             \"gemm_rows\": {}, \"stacked_groups\": {}, \"stacked_sites\": {}, \
             \"requests_per_batch\": 1, \"superwave_width\": {:.3}, \
             \"throughput_rps\": {:.3}, \"plan_ops\": {}, \"lower_ms\": {:.4}, \
             \"interp_fallback_stmts\": {}, \"gather_ms\": {:.4}, \
             \"gemm_ms\": {:.4}, \"serve_ms\": {:.4}, \"epilogue_ms\": {:.4}, \
             \"fused_waves\": {}, \"nonlinearity\": \"{}\"}}{}",
            r.bench,
            r.nodes,
            r.hidden,
            r.generic_ms,
            r.scalar_ms,
            r.batched_ms,
            r.scalar_ms / r.batched_ms,
            r.verified,
            r.stats.wave_gemms,
            r.stats.waves_batched,
            r.stats.wave_gemms as f64 / r.stats.waves_batched.max(1) as f64,
            r.stats.gemm_rows,
            r.stats.stacked_groups,
            r.stats.stacked_sites,
            r.stats.gemm_rows as f64 / r.stats.wave_gemms.max(1) as f64,
            1e3 / r.batched_ms,
            r.plan.plan_ops,
            r.plan.lower_ns as f64 / 1e6,
            r.plan.interp_fallback_stmts,
            r.stats.gather_ns as f64 / 1e6,
            r.stats.gemm_ns as f64 / 1e6,
            r.stats.serve_ns as f64 / 1e6,
            r.stats.epilogue_ns as f64 / 1e6,
            r.stats.fused_waves,
            match r.nonlinearity {
                NonlinearityMode::Exact => "exact",
                NonlinearityMode::Rational => "rational",
            },
            if i + 1 < records.len() { ",\n" } else { "\n" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("\nwrote {out_path}");

    let acceptance = &records[0];
    assert!(
        acceptance.verified,
        "acceptance workload failed verification"
    );
    // Gate stacking must engage on TreeLSTM regardless of wall-clock
    // noise: five reduction sites (i/o/u + two forget gates) per wave
    // collapse into two GEMMs.
    let gemms_per_wave =
        acceptance.stats.wave_gemms as f64 / acceptance.stats.waves_batched.max(1) as f64;
    assert!(
        gemms_per_wave < 2.5,
        "gate stacking must collapse TreeLSTM's 5 sites to ~2 GEMMs/wave, got {gemms_per_wave:.2}"
    );
    // Correctness gates — always enforced. The rational row must verify
    // against the exact references (the ≤1e-4 end-to-end substitution
    // bound), every row must have taken the batched path, and every
    // model — benchmarked or not — must lower fully to the plan IR.
    for r in &records {
        assert!(r.verified, "{}: verification failed", r.bench);
        assert!(r.plan.plan_ops > 0, "{}: kernels must lower", r.bench);
        assert_eq!(
            r.plan.interp_fallback_stmts, 0,
            "{}: lowering must be total",
            r.bench
        );
    }
    for (name, plan) in &lowering {
        assert!(plan.plan_ops > 0, "{name}: kernels must lower");
        assert_eq!(
            plan.interp_fallback_stmts, 0,
            "{name}: lowering must be total"
        );
    }
    let by_name = |name: &str| -> &Record {
        records
            .iter()
            .find(|r| r.bench == name)
            .expect("known bench")
    };
    let dag = by_name("dagrnn_h256");
    assert!(
        dag.stats.fused_waves > 0,
        "dagrnn: the Select-guarded epilogue must run as fused bulk passes"
    );

    let speedup = acceptance.scalar_ms / acceptance.batched_ms;
    let dag_speedup = dag.scalar_ms / dag.batched_ms;
    let seq_exact = by_name("seqlstm_h256_bs10");
    let seq_rational = by_name("seqlstm_h256_bs10_rational");
    let (epi_exact, epi_rational) = (
        seq_exact.stats.epilogue_ns as f64 / 1e6,
        seq_rational.stats.epilogue_ns as f64 / 1e6,
    );
    // Wall-clock bars are skippable for noisy shared CI runners
    // (CORTEX_BENCH_ENFORCE=0) — the JSON still records the measured
    // ratios either way.
    // The threaded tier's specialization must have engaged on every
    // solo row regardless of wall-clock: a non-empty closure table with
    // at least one fused run, built in bounded time. (Structural, not
    // timing — always enforced.)
    for s in &solo {
        assert!(
            s.threaded_ops > 0,
            "{}[{}]: specialization produced an empty table",
            s.bench,
            s.schedule
        );
        assert!(
            s.fused_scalar_runs > 0,
            "{}[{}]: peephole fusion found no runs",
            s.bench,
            s.schedule
        );
        assert!(
            s.specialize_ms < 100.0,
            "{}[{}]: specialization took {:.1}ms",
            s.bench,
            s.schedule,
            s.specialize_ms
        );
    }
    let solo_line = solo
        .iter()
        .filter(|s| s.schedule == "scalar")
        .map(|s| format!("{} {:.2}x", s.bench, s.speedup_threaded_vs_pc))
        .collect::<Vec<_>>()
        .join(", ");
    if std::env::var("CORTEX_BENCH_ENFORCE").as_deref() == Ok("0") {
        println!(
            "acceptance: treelstm {speedup:.2}x, dagrnn {dag_speedup:.2}x, \
             seqlstm epilogue {epi_exact:.2}ms exact vs {epi_rational:.2}ms \
             rational, solo threaded/pc [{solo_line}] (enforcement disabled)"
        );
    } else {
        // Dispatch-elimination gate, on the scalar-schedule rows — the
        // configuration where per-op dispatch is the hot path (under
        // the default schedule both tiers ride the same fused-wave bulk
        // code and measure equal by construction). seqlstm rows gate at
        // the headline 1.15x (measured 1.15-1.27x on the dev box);
        // treelstm rows are dot-product-dominated at h=16 and gate as a
        // no-regression floor (measured 1.08-1.22x).
        for s in solo.iter().filter(|s| s.schedule == "scalar") {
            let floor = if s.bench.starts_with("seqlstm") {
                1.15
            } else {
                1.05
            };
            assert!(
                s.speedup_threaded_vs_pc >= floor,
                "solo gate: {} scalar-schedule threaded/pc must be ≥{floor}x, \
                 got {:.3}x",
                s.bench,
                s.speedup_threaded_vs_pc
            );
        }
        println!("solo dispatch gate: [{solo_line}] ✓");
        assert!(
            speedup >= 15.0,
            "acceptance: batched wave engine must be ≥15x over scalar eval_dot \
             (bulk feature-loop serving raised the PR-2 floor of 3.5x; measured \
             42x on the dev box), got {speedup:.2}x"
        );
        assert!(
            dag_speedup >= 10.0,
            "acceptance: Select-guarded DAG-RNN must be ≥10x over scalar on the \
             bulk path (measured ~12x on the dev box), got {dag_speedup:.2}x"
        );
        assert!(
            epi_rational < epi_exact,
            "acceptance: the rational epilogue must beat libm-exact on seqlstm \
             ({epi_rational:.2}ms vs {epi_exact:.2}ms)"
        );
        println!(
            "acceptance: treelstm {speedup:.2}x ≥ 15x ✓, dagrnn {dag_speedup:.2}x ≥ 10x ✓, \
             rational epilogue {epi_rational:.2}ms < exact {epi_exact:.2}ms ✓"
        );
    }
}

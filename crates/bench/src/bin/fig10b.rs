//! Prints the Fig. 10b reproduction (unrolling; includes Fig. 11 barrier counts).

fn main() {
    let scale = cortex_bench_harness::Scale::from_env();
    println!("{}", cortex_bench_harness::experiments::fig10::run_b(scale));
}

//! Prints the Fig. 10c reproduction (recursive refactoring).

fn main() {
    let scale = cortex_bench_harness::Scale::from_env();
    println!("{}", cortex_bench_harness::experiments::fig10::run_c(scale));
}

//! Sweeps [`ExecOptions::min_wave_width`] over narrow-wave workloads.
//!
//! The min-wave-width heuristic decides when a wave is too narrow for
//! the gather/pack phase to pay for itself and should stay on the scalar
//! fastdot path instead. This sweep times the workloads that actually
//! have narrow waves — sequences (every wave is the batch size) and
//! single trees (late waves approach width 1) — across thresholds, to
//! pick the default ([`cortex_backend::exec::MIN_WAVE_WIDTH`]). Re-run
//! when moving to new hardware.
//!
//! Usage: `cargo run --release -p cortex-bench-harness --bin
//! tune_wave_width`

use cortex_backend::exec::{Engine, ExecOptions};
use cortex_bench_harness::timing::median_run;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::Linearizer;
use cortex_ds::{datasets, RecStructure};
use cortex_models::{seq, treelstm, LeafInit, Model};

fn time_ms(model: &Model, structure: &RecStructure, width: usize, samples: u32) -> f64 {
    let program = model.lower(&RaSchedule::default()).expect("lowers");
    let lin = Linearizer::new().linearize(structure).expect("linearizes");
    let mut engine = Engine::with_options(
        &program,
        ExecOptions {
            min_wave_width: width,
            ..ExecOptions::default()
        },
    );
    median_run(samples, || {
        engine.execute(&lin, &model.params, true).expect("runs");
    })
    .as_secs_f64()
        * 1e3
}

fn main() {
    let widths = [0usize, 2, 4, 8, 16, 32, usize::MAX];
    let cases: Vec<(&str, Model, RecStructure)> = vec![
        (
            "seqlstm_h256_bs1",
            seq::seq_lstm(256),
            datasets::sequence(100, 3),
        ),
        (
            "seqlstm_h256_bs10",
            seq::seq_lstm(256),
            datasets::batch_of(|s| datasets::sequence(100, s), 10, 44),
        ),
        (
            "treelstm_h256_bs1",
            treelstm::tree_lstm(256, LeafInit::Embedding),
            datasets::random_binary_tree(160, 7),
        ),
    ];
    println!("{:<20} batched ms by min_wave_width", "workload");
    for (name, model, structure) in &cases {
        print!("{name:<20}");
        for &w in &widths {
            let label = if w == usize::MAX {
                "off".to_string()
            } else {
                w.to_string()
            };
            let ms = time_ms(model, structure, w, 5);
            print!(" {label}:{ms:.1}");
        }
        println!();
    }
}

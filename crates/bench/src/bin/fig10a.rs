//! Prints the Fig. 10a reproduction (fusion/specialization/persistence).

fn main() {
    let scale = cortex_bench_harness::Scale::from_env();
    println!("{}", cortex_bench_harness::experiments::fig10::run_a(scale));
}

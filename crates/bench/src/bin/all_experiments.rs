//! Regenerates every table and figure in one run (used to fill
//! EXPERIMENTS.md).

use cortex_bench_harness::experiments as e;

fn main() {
    let scale = cortex_bench_harness::Scale::from_env();
    println!("{}", e::fig6::run(scale));
    println!("{}", e::fig7::run(scale));
    println!("{}", e::fig9::run(scale));
    println!("{}", e::fig10::run_a(scale));
    println!("{}", e::fig10::run_b(scale));
    println!("{}", e::fig10::run_c(scale));
    println!("{}", e::fig12::run(scale));
    println!("{}", e::table4::run(scale));
    println!("{}", e::table5::run(scale));
    println!("{}", e::table6::run(scale));
    println!("{}", e::linearize::run(scale));
    println!("{}", e::roofline::run(scale));
}

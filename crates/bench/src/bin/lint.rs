//! Workspace lint: mechanical invariants `clippy` does not enforce.
//!
//! Scans every `crates/**/*.rs` source file (comments and string
//! literals stripped, so prose never trips a rule) and fails the build
//! on:
//!
//! 1. **`unsafe`** outside the allowlist in `lint-allow.txt` — every
//!    `unsafe` block in this repo carries a verifier- or
//!    analysis-backed invariant; new ones must be added to the
//!    allowlist deliberately, in the same PR that argues their safety.
//! 2. **Raw clock reads** (`Instant::now()` / `SystemTime::now()`)
//!    outside the allowlist — serving code must go through the `Clock`
//!    abstraction so tests and replay stay deterministic; the allowlist
//!    names the `Clock` impls and the measurement-only crates.
//! 3. **`.unwrap()` in `cortex-serve` non-test code** — the serving
//!    front returns typed errors; a panic in the request path defeats
//!    its fault containment. Test modules (after the file's first
//!    `#[cfg(test)]`) are exempt.
//!
//! Run with `cargo run --release -p cortex-bench-harness --bin lint`;
//! CI runs it as part of the `analysis-gates` job. Exit code 1 on any
//! violation, each reported as `path:line: rule`.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Replaces comments, string literals, and char literals with spaces,
/// preserving newlines so reported line numbers match the source.
fn strip(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1;
                out.push_str("  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Raw string r"..." / r#"..."# (any hash depth).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    out.push(' ');
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while k < b.len() && b[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                for _ in 0..=hashes {
                                    out.push(' ');
                                }
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' {
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '"' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes within a
                // couple of characters ('x', '\n', '\u{...}').
                let close = (i + 2..(i + 12).min(b.len())).find(|&k| b[k] == '\'');
                let is_char = match close {
                    Some(k) => b[i + 1] == '\\' || k == i + 2,
                    None => false,
                };
                if let (true, Some(k)) = (is_char, close) {
                    for _ in i..=k {
                        out.push(' ');
                    }
                    i = k + 1;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Whether `hay[at..]` starts a standalone occurrence of `word`.
fn word_at(hay: &[char], at: usize, word: &str) -> bool {
    let w: Vec<char> = word.chars().collect();
    if at + w.len() > hay.len() || hay[at..at + w.len()] != w[..] {
        return false;
    }
    let wordish = |c: char| c.is_alphanumeric() || c == '_';
    let before_ok = at == 0 || !wordish(hay[at - 1]);
    let after_ok = at + w.len() == hay.len() || !wordish(hay[at + w.len()]);
    before_ok && after_ok
}

/// Lines (1-based) on which `needle` occurs in the stripped text;
/// `word` restricts matches to identifier boundaries.
fn find_lines(stripped: &str, needle: &str, word: bool) -> Vec<usize> {
    let chars: Vec<char> = stripped.chars().collect();
    let first: Vec<char> = needle.chars().collect();
    let mut line = 1;
    let mut out = Vec::new();
    for at in 0..chars.len() {
        if chars[at] == '\n' {
            line += 1;
            continue;
        }
        let hit = if word {
            word_at(&chars, at, needle)
        } else {
            at + first.len() <= chars.len() && chars[at..at + first.len()] == first[..]
        };
        if hit {
            out.push(line);
        }
    }
    out
}

/// The `[section]`-keyed allowlist of repo-relative paths.
fn load_allowlist(path: &Path) -> std::collections::HashMap<String, HashSet<String>> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut out: std::collections::HashMap<String, HashSet<String>> = Default::default();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.to_string();
        } else {
            assert!(!section.is_empty(), "allowlist entry before any [section]");
            out.entry(section.clone())
                .or_default()
                .insert(line.to_string());
        }
    }
    out
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    // crates/bench -> crates -> repo root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("repo root")
        .to_path_buf();
    let allow = load_allowlist(&root.join("lint-allow.txt"));
    let empty = HashSet::new();
    let allow_unsafe = allow.get("unsafe").unwrap_or(&empty);
    let allow_clock = allow.get("clock").unwrap_or(&empty);

    let mut sources = Vec::new();
    rust_sources(&root.join("crates"), &mut sources);
    sources.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &sources {
        let rel = path
            .strip_prefix(&root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(path).expect("readable source");
        let stripped = strip(&text);
        scanned += 1;

        if !allow_unsafe.contains(&rel) {
            for line in find_lines(&stripped, "unsafe", true) {
                violations.push(format!(
                    "{rel}:{line}: `unsafe` outside the allowlist (add the file to \
                     lint-allow.txt [unsafe] with a safety argument, or remove it)"
                ));
            }
        }
        if !allow_clock.contains(&rel) {
            for needle in ["Instant::now()", "SystemTime::now()"] {
                for line in find_lines(&stripped, needle, false) {
                    violations.push(format!(
                        "{rel}:{line}: raw `{needle}` outside a Clock impl (inject a \
                         `Clock`, or allowlist under [clock])"
                    ));
                }
            }
        }
        if rel.starts_with("crates/serve/src/") {
            // Everything after the file's first `#[cfg(test)]` is test
            // code; the request path above it must not panic.
            let test_start = text
                .lines()
                .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
                .map(|i| i + 1)
                .unwrap_or(usize::MAX);
            for line in find_lines(&stripped, ".unwrap()", false) {
                if line < test_start {
                    violations.push(format!(
                        "{rel}:{line}: `.unwrap()` in cortex-serve request-path code \
                         (return a typed error instead)"
                    ));
                }
            }
        }
    }

    if violations.is_empty() {
        println!("lint: {scanned} files clean");
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("lint: {} violation(s) in {scanned} files", violations.len());
        std::process::exit(1);
    }
}

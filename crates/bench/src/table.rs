//! A small aligned-column table printer for experiment output.

use std::fmt::Write as _;

/// Builds an aligned text table with a title, headers and rows.
///
/// # Example
///
/// ```
/// use cortex_bench_harness::table::Table;
///
/// let mut t = Table::new("Demo", &["model", "ms"]);
/// t.row(&["TreeLSTM", "0.39"]);
/// let s = t.render();
/// assert!(s.contains("TreeLSTM"));
/// assert!(s.starts_with("## Demo"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len().min(120)));
        for row in &self.rows {
            let mut line = String::new();
            for (w, c) in widths.iter().zip(row) {
                let _ = write!(line, "{c:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v < 0.01 {
        format!("{v:.4}")
    } else if v < 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a speedup ratio.
pub fn speedup(baseline_ms: f64, ours_ms: f64) -> String {
    format!("{:.2}", baseline_ms / ours_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["xx", "y"]);
        t.row(&["x", "yyyyy"]);
        let s = t.render();
        assert!(s.contains("## T"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new("T", &["a", "b"]).row(&["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.0042), "0.0042");
        assert_eq!(ms(0.39), "0.390");
        assert_eq!(ms(12.3456), "12.35");
        assert_eq!(speedup(10.0, 2.0), "5.00");
    }
}

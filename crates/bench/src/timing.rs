//! A tiny self-contained timing harness (no external bench framework).
//!
//! `cargo bench` binaries in this workspace use [`Bench`] to sample
//! wall-clock timings: a short calibration pass picks an iteration count
//! per sample, then the median over a fixed number of samples is
//! reported. Medians are robust against scheduler noise, and everything
//! is plain `std::time`, so the harness works offline and in CI.

use std::time::{Duration, Instant};

/// One measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Minimum observed time per iteration.
    pub min: Duration,
    /// Maximum observed time per iteration.
    pub max: Duration,
    /// Iterations per sample used.
    pub iters_per_sample: u32,
}

impl Measurement {
    /// Median seconds per iteration.
    pub fn median_s(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// A benchmark runner with a fixed sample budget.
#[derive(Debug, Clone)]
pub struct Bench {
    samples: u32,
    target_sample_time: Duration,
    results: Vec<Measurement>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new(12, Duration::from_millis(60))
    }
}

impl Bench {
    /// Creates a runner taking `samples` samples of roughly
    /// `target_sample_time` each.
    pub fn new(samples: u32, target_sample_time: Duration) -> Self {
        Bench {
            samples: samples.max(3),
            target_sample_time,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing and recording the result.
    pub fn run<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Measurement {
        // Calibrate: how many iterations fit in the target sample time?
        let mut iters: u32 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.target_sample_time / 2 || iters >= 1 << 20 {
                break;
            }
            // Aim past the target; the loop re-checks.
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                // Sub-nanosecond bodies (tiny closures at the 2^20-iter
                // calibration cap in release builds) truncate to 0 under
                // integer division; floor at the 1 ns resolution of
                // `Duration` so timings stay non-zero.
                (t.elapsed() / iters).max(Duration::from_nanos(1))
            })
            .collect();
        per_iter.sort_unstable();
        let m = Measurement {
            name: name.to_string(),
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            max: per_iter[per_iter.len() - 1],
            iters_per_sample: iters,
        };
        println!(
            "{:<44} {:>12} /iter  (min {:?}, max {:?}, {} iters/sample)",
            m.name,
            format!("{:?}", m.median),
            m.min,
            m.max,
            m.iters_per_sample
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Times a single closure once, returning its result and the elapsed time.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// The result of a paired A/B comparison (see [`paired_compare`]).
#[derive(Debug, Clone, Copy)]
pub struct PairedReport {
    /// Median seconds per iteration of `a` across blocks.
    pub a_s: f64,
    /// Median seconds per iteration of `b` across blocks.
    pub b_s: f64,
    /// Median of the per-block `b/a` time ratios — the speedup of `a`
    /// over `b`, robust to frequency drift between blocks.
    pub speedup: f64,
}

/// Compares two workloads by alternating timed blocks — `iters` runs of
/// `a`, then `iters` of `b`, repeated `blocks` times — and reporting the
/// median of the **per-block-pair** time ratios. Separately-measured
/// medians (as [`Bench`] produces) are vulnerable to CPU frequency drift
/// between the two measurement windows; pairing each `a` block with the
/// `b` block measured microseconds later cancels that drift, which
/// matters when the claimed difference is tens of percent and the noise
/// floor is larger. One calibration/warm-up block of each runs first.
pub fn paired_compare<R, S>(
    blocks: u32,
    iters: u32,
    mut a: impl FnMut() -> R,
    mut b: impl FnMut() -> S,
) -> PairedReport {
    let blocks = blocks.max(3) as usize;
    let iters = iters.max(1);
    let time_block = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        (t.elapsed().max(Duration::from_nanos(1))).as_secs_f64() / f64::from(iters)
    };
    let mut fa = || {
        std::hint::black_box(a());
    };
    let mut fb = || {
        std::hint::black_box(b());
    };
    time_block(&mut fa);
    time_block(&mut fb);
    let mut ta = Vec::with_capacity(blocks);
    let mut tb = Vec::with_capacity(blocks);
    let mut ratios = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        let x = time_block(&mut fa);
        let y = time_block(&mut fb);
        ta.push(x);
        tb.push(y);
        ratios.push(y / x);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_unstable_by(|p, q| p.partial_cmp(q).expect("finite timings"));
        v[v.len() / 2]
    };
    PairedReport {
        a_s: med(&mut ta),
        b_s: med(&mut tb),
        speedup: med(&mut ratios),
    }
}

/// One warm-up run, then the median wall-clock of `samples` single
/// executions of `f`. For workloads that take milliseconds or more per
/// run, where [`Bench`]'s iteration calibration is unnecessary.
pub fn median_run(samples: u32, mut f: impl FnMut()) -> Duration {
    f();
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bench::new(3, Duration::from_micros(200));
        let m = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.median > Duration::ZERO);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(5));
    }
}

//! Schedule auto-tuning by grid search (§6 of the paper).
//!
//! *"Our current prototype implementation does not perform auto-scheduling
//! on the generated ILIR. Therefore, the model implementations used for
//! evaluation were based on manually-defined schedules. We then performed
//! auto-tuning via grid search to search the space of certain schedule
//! parameters."*
//!
//! [`grid_search`] enumerates the supported schedule-parameter grid for a
//! model (fusion granularity, specialization, dense intermediate indexing,
//! persistence, peeling factors, and — where legal — unrolling and
//! refactoring), runs each candidate on a representative input, and
//! returns the candidates ranked by device-model latency. Infeasible
//! combinations are skipped via the lowering's own validation, exactly how
//! a grid search over a real compiler prunes its space.

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::{FusionMode, RaSchedule};
use cortex_ds::{RecStructure, StructureKind};
use cortex_models::Model;

use crate::runner::{cortex, Measured};

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Human-readable description of the schedule knobs.
    pub label: String,
    /// The schedule.
    pub schedule: RaSchedule,
    /// Its measurement.
    pub measured: Measured,
}

/// The tuning grid for a model on a structure kind.
pub fn grid(model: &Model, kind: StructureKind) -> Vec<(String, RaSchedule)> {
    let mut out = Vec::new();
    for fusion in [FusionMode::Maximal, FusionMode::None] {
        for specialize in [true, false] {
            for persist in [true, false] {
                for dense in [true, false] {
                    for peel in [None, Some(4)] {
                        out.push((
                            format!(
                                "fusion={fusion:?} spec={specialize} persist={persist} \
                                 dense={dense} peel={peel:?}"
                            ),
                            RaSchedule {
                                fusion,
                                specialize,
                                persist,
                                dense_intermediates: dense,
                                peel,
                                ..RaSchedule::default()
                            },
                        ));
                    }
                }
            }
        }
    }
    // Tree/sequence-only primitives.
    if kind != StructureKind::Dag {
        for (block_local, tag) in [(false, "global"), (true, "block-local")] {
            out.push((
                format!("unroll=2 ({tag} sync)"),
                RaSchedule {
                    unroll: Some(2),
                    unroll_block_local: block_local,
                    ..RaSchedule::default()
                },
            ));
        }
        if model.refactor_split.is_some() {
            out.push(("refactored".to_string(), model.refactored_schedule()));
        }
    }
    out
}

/// Runs the grid and returns candidates sorted by ascending latency.
/// Unsupported combinations (rejected by lowering or the runtime) are
/// pruned silently.
pub fn grid_search(model: &Model, structure: &RecStructure, device: &DeviceSpec) -> Vec<Candidate> {
    let mut results: Vec<Candidate> = grid(model, structure.kind())
        .into_iter()
        .filter_map(|(label, schedule)| {
            // Validate by lowering + running; prune failures.
            model.lower(&schedule).ok()?;
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cortex(model, structure, &schedule, device)
            }))
            .ok()?;
            Some(Candidate {
                label,
                schedule,
                measured: run,
            })
        })
        .collect();
    results.sort_by(|a, b| a.measured.latency_ms.total_cmp(&b.measured.latency_ms));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelId;

    #[test]
    fn grid_covers_the_documented_space() {
        let m = ModelId::TreeGru.build(8);
        let g = grid(&m, StructureKind::Tree);
        // 2×2×2×2×2 core grid + 2 unroll + 1 refactor.
        assert_eq!(g.len(), 32 + 3);
        let dag = grid(&m, StructureKind::Dag);
        assert_eq!(dag.len(), 32, "tree-only primitives pruned for DAGs");
    }

    #[test]
    fn best_candidate_beats_the_unoptimized_one() {
        let m = ModelId::TreeLstm.build(16);
        let data = ModelId::TreeLstm.dataset(4, 99);
        let gpu = DeviceSpec::v100();
        let ranked = grid_search(&m, &data, &gpu);
        assert!(ranked.len() > 20, "most grid points must be feasible");
        let best = &ranked[0];
        let worst = ranked.last().unwrap();
        assert!(
            best.measured.latency_ms < worst.measured.latency_ms,
            "grid must discriminate: {} vs {}",
            best.label,
            worst.label
        );
        // The winner must use fusion — the paper's headline optimization.
        assert_eq!(
            best.schedule.fusion,
            FusionMode::Maximal,
            "winner: {}",
            best.label
        );
    }

    #[test]
    fn tuner_prunes_illegal_combinations_on_dags() {
        let m = ModelId::DagRnn.build(8);
        let data = ModelId::DagRnn.dataset(2, 98);
        let gpu = DeviceSpec::v100();
        let ranked = grid_search(&m, &data, &gpu);
        assert!(ranked.iter().all(|c| c.schedule.unroll.is_none()));
    }
}

//! Benchmark harness reproducing every table and figure of the Cortex
//! paper's evaluation (§7 and appendices).
//!
//! Each experiment is a library function returning the formatted table
//! (so integration tests can assert on its contents) with a thin binary
//! wrapper printing it:
//!
//! | Binary | Paper artifact |
//! | --- | --- |
//! | `fig6` | Fig. 6 — speedup over PyTorch vs batch size |
//! | `fig7` | Fig. 7 — latency vs hidden size (DyNet/Cavs overheads) |
//! | `fig9` | Fig. 9 — Cortex vs hand-optimized GRNN |
//! | `fig10a` | Fig. 10a — fusion / specialization / persistence ablation |
//! | `fig10b` | Fig. 10b + Fig. 11 — unrolling (barrier counts) |
//! | `fig10c` | Fig. 10c — recursive refactoring |
//! | `fig12` | Fig. 12 — peak memory across frameworks |
//! | `table4` | Table 4 — Cavs vs Cortex |
//! | `table5` | Table 5 — DyNet vs Cortex on three backends |
//! | `table6` | Table 6 — runtime-activity breakdown |
//! | `linearize` | §7.5 — linearization overheads |
//! | `roofline` | Appendix C — operational intensities for TreeFC |
//!
//! Workload configurations follow Table 2: perfect binary trees of height
//! 7 for TreeFC, 10×10 grid DAGs for DAG-RNN, a synthetic
//! sentiment-treebank for the Tree* and MV-RNN models, and length-100
//! sequences for the Fig. 9 RNNs. Hidden sizes are hs/hl = 256/512
//! (64/128 for MV-RNN); batch sizes are 1 and 10.
//!
//! Experiments accept a [`Scale`] so integration tests and criterion
//! benches can run the identical code at reduced hidden sizes.

pub mod experiments;
pub mod registry;
pub mod runner;
pub mod table;
pub mod timing;
pub mod tune;

/// Scaling knob for experiments: `Paper` uses the exact paper
/// configuration; `Smoke` shrinks hidden sizes (÷8) for tests and
/// criterion benches while preserving every structural property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration.
    Paper,
    /// Reduced hidden sizes for fast runs.
    Smoke,
}

impl Scale {
    /// Applies the scale to a hidden size.
    pub fn hidden(self, h: usize) -> usize {
        match self {
            Scale::Paper => h,
            Scale::Smoke => (h / 8).max(4),
        }
    }

    /// Reads the scale from the `CORTEX_BENCH_SCALE` environment variable
    /// (`smoke` selects [`Scale::Smoke`]; anything else is `Paper`).
    pub fn from_env() -> Self {
        match std::env::var("CORTEX_BENCH_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Paper,
        }
    }
}

//! Shared measurement helpers: run Cortex or a baseline framework over a
//! workload and summarize the result.

use cortex_backend::device::{DeviceSpec, LatencyEstimate};
use cortex_backend::profile::Profile;
use cortex_baselines::dynet::DynetOptions;
use cortex_baselines::{cavs, dynet, eager, grnn};
use cortex_core::ra::RaSchedule;
use cortex_ds::RecStructure;
use cortex_models::Model;

/// A summarized measurement.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Total estimated latency in milliseconds.
    pub latency_ms: f64,
    /// Latency breakdown.
    pub breakdown: LatencyEstimate,
    /// The raw profile.
    pub profile: Profile,
}

impl Measured {
    fn new(profile: Profile, latency: LatencyEstimate) -> Self {
        Measured {
            latency_ms: latency.total_ms(),
            breakdown: latency,
            profile,
        }
    }

    /// The device-side latency in ms (everything except measured host
    /// time). Deterministic (purely counter-derived), so ablation
    /// experiments that hold host work constant compare on this.
    pub fn device_ms(&self) -> f64 {
        (self.breakdown.total_s - self.breakdown.host_s) * 1e3
    }
}

/// Runs the Cortex pipeline (linearize → execute → device model).
///
/// # Panics
///
/// Panics on lowering/execution failures (experiment configurations are
/// all supported schedules).
pub fn cortex(
    model: &Model,
    structure: &RecStructure,
    schedule: &RaSchedule,
    device: &DeviceSpec,
) -> Measured {
    let (result, _lin) = model
        .run(structure, schedule, device)
        .unwrap_or_else(|e| panic!("cortex run failed for {}: {e}", model.name));
    Measured::new(result.profile, result.latency)
}

/// The baseline frameworks of §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// PyTorch-like eager execution.
    PyTorch,
    /// DyNet-like graph construction + operator batching.
    DyNet,
    /// DyNet with simulated inference-mode deallocation (Fig. 12).
    DyNetInference,
    /// Cavs-like vertex batching.
    Cavs,
    /// GRNN's persistent kernels (sequences only); lock-free barrier.
    GrnnLockFree,
    /// GRNN with the lock-based barrier variant.
    GrnnLockBased,
}

impl Baseline {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::PyTorch => "PyTorch",
            Baseline::DyNet => "DyNet",
            Baseline::DyNetInference => "DyNet (inference)",
            Baseline::Cavs => "Cavs",
            Baseline::GrnnLockFree => "GRNN",
            Baseline::GrnnLockBased => "GRNN (lock-based barrier)",
        }
    }
}

/// Runs a baseline framework over a workload.
pub fn baseline(
    which: Baseline,
    model: &Model,
    structure: &RecStructure,
    device: &DeviceSpec,
) -> Measured {
    let run = match which {
        Baseline::PyTorch => eager::run(model, structure, device),
        Baseline::DyNet => dynet::run(model, structure, device, DynetOptions::default()),
        Baseline::DyNetInference => dynet::run(
            model,
            structure,
            device,
            DynetOptions {
                inference_mode: true,
            },
        ),
        Baseline::Cavs => cavs::run(model, structure, device),
        Baseline::GrnnLockFree => grnn::run(model, structure, &lockfree_variant(device)),
        Baseline::GrnnLockBased => grnn::run(model, structure, device),
    };
    Measured::new(run.profile, run.latency)
}

fn lockfree_variant(device: &DeviceSpec) -> DeviceSpec {
    DeviceSpec {
        global_barrier_s: DeviceSpec::v100_lockfree_barrier().global_barrier_s,
        name: format!("{} (lock-free barrier)", device.name),
        ..device.clone()
    }
}

/// The three evaluation backends of Table 3.
pub fn devices() -> [DeviceSpec; 3] {
    [
        DeviceSpec::v100(),
        DeviceSpec::intel_cascadelake(),
        DeviceSpec::arm_graviton2(),
    ]
}

/// Runs Cortex once per distinct persistence decision and prices the
/// same profile on every device — numerics are device-independent, so
/// this avoids re-executing per backend (Table 5's 3-device grid).
///
/// # Panics
///
/// Panics on lowering/linearization/execution failures.
pub fn cortex_multi(
    model: &Model,
    structure: &RecStructure,
    schedule: &RaSchedule,
    devices: &[DeviceSpec],
) -> Vec<Measured> {
    use cortex_backend::{exec, persist};
    use cortex_ds::linearizer::Linearizer;

    let program = model
        .lower(schedule)
        .unwrap_or_else(|e| panic!("lowering failed for {}: {e}", model.name));
    let (lin, lin_time) = Linearizer::new()
        .linearize_timed(structure)
        .unwrap_or_else(|e| panic!("linearization failed: {e}"));
    let mut cache: std::collections::HashMap<bool, Profile> = std::collections::HashMap::new();
    devices
        .iter()
        .map(|device| {
            let decision = persist::check_persistence(&program, device);
            let profile = cache.entry(decision.active()).or_insert_with(|| {
                let (_, mut p) = exec::execute(&program, &lin, &model.params, decision.active())
                    .unwrap_or_else(|e| panic!("execution failed for {}: {e}", model.name));
                p.linearize_time = lin_time;
                p
            });
            Measured::new(profile.clone(), device.latency(profile))
        })
        .collect()
}

/// Runs a baseline once and prices it on every device (baseline profiles
/// are device-independent).
pub fn baseline_multi(
    which: Baseline,
    model: &Model,
    structure: &RecStructure,
    devices: &[DeviceSpec],
) -> Vec<Measured> {
    let first = baseline(which, model, structure, &devices[0]);
    devices
        .iter()
        .map(|d| Measured::new(first.profile.clone(), d.latency(&first.profile)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelId;

    #[test]
    fn cortex_beats_eager_on_batched_trees() {
        let model = ModelId::TreeLstm.build(16);
        let data = ModelId::TreeLstm.dataset(4, 7);
        let gpu = DeviceSpec::v100();
        let c = cortex(&model, &data, &RaSchedule::default(), &gpu);
        let p = baseline(Baseline::PyTorch, &model, &data, &gpu);
        assert!(
            c.latency_ms < p.latency_ms,
            "cortex {} ms vs pytorch {} ms",
            c.latency_ms,
            p.latency_ms
        );
    }

    #[test]
    fn framework_latency_ordering_matches_paper() {
        // PyTorch > DyNet > Cortex on the GPU for batched recursive models.
        let model = ModelId::TreeGru.build(16);
        let data = ModelId::TreeGru.dataset(4, 8);
        let gpu = DeviceSpec::v100();
        let c = cortex(&model, &data, &RaSchedule::default(), &gpu);
        let d = baseline(Baseline::DyNet, &model, &data, &gpu);
        let p = baseline(Baseline::PyTorch, &model, &data, &gpu);
        assert!(
            p.latency_ms > d.latency_ms,
            "pytorch {} vs dynet {}",
            p.latency_ms,
            d.latency_ms
        );
        assert!(
            d.latency_ms > c.latency_ms,
            "dynet {} vs cortex {}",
            d.latency_ms,
            c.latency_ms
        );
    }
}

//! Fig. 9 — Cortex vs GRNN's hand-optimized sequential LSTM/GRU kernels
//! (sequence length 100, hidden/input 256, batch sizes 1 and 10).

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;

use crate::registry::ModelId;
use crate::runner::{baseline, cortex, Baseline};
use crate::table::{ms, Table};
use crate::Scale;

/// Regenerates Fig. 9.
pub fn run(scale: Scale) -> String {
    let gpu = DeviceSpec::v100();
    let mut t = Table::new(
        "Fig. 9: Cortex vs hand-optimized GRNN (seq len 100, H=256)",
        &[
            "model",
            "batch",
            "GRNN (ms)",
            "GRNN lock-based (ms)",
            "Cortex (ms)",
        ],
    );
    for id in [ModelId::SeqLstm, ModelId::SeqGru] {
        let model = id.build(scale.hidden(256));
        for bs in [1usize, 10] {
            let data = id.dataset(bs, super::SEED);
            let lock_free = baseline(Baseline::GrnnLockFree, &model, &data, &gpu);
            let lock_based = baseline(Baseline::GrnnLockBased, &model, &data, &gpu);
            // §7.4: Cortex's sequential GRU uses recursive refactoring,
            // like GRNN's GRU implementation.
            let schedule = if id == ModelId::SeqGru {
                model.refactored_schedule()
            } else {
                RaSchedule::default()
            };
            let ours = cortex(&model, &data, &schedule, &gpu);
            t.row_owned(vec![
                id.name().to_string(),
                bs.to_string(),
                ms(lock_free.latency_ms),
                ms(lock_based.latency_ms),
                ms(ours.latency_ms),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cortex_is_competitive_with_hand_optimized_code() {
        // Fig. 9's claim: Cortex-generated code performs competitively
        // with GRNN. Cortex uses the lock-based barrier, so the fair
        // anchor is the lock-based GRNN variant (the paper adds it for
        // exactly this comparison).
        let gpu = DeviceSpec::v100();
        let model = ModelId::SeqLstm.build(32);
        let data = ModelId::SeqLstm.dataset(10, super::super::SEED);
        let grnn = baseline(Baseline::GrnnLockBased, &model, &data, &gpu);
        let ours = cortex(&model, &data, &RaSchedule::default(), &gpu);
        assert!(
            ours.latency_ms < 3.0 * grnn.latency_ms,
            "cortex {} ms should be within 3x of hand-optimized {} ms",
            ours.latency_ms,
            grnn.latency_ms
        );
    }

    #[test]
    fn lock_based_variant_is_slower() {
        let gpu = DeviceSpec::v100();
        let model = ModelId::SeqGru.build(32);
        let data = ModelId::SeqGru.dataset(1, super::super::SEED);
        let free = baseline(Baseline::GrnnLockFree, &model, &data, &gpu);
        let locked = baseline(Baseline::GrnnLockBased, &model, &data, &gpu);
        assert!(locked.latency_ms > free.latency_ms);
    }

    #[test]
    fn renders_four_rows() {
        let out = run(Scale::Smoke);
        assert_eq!(out.lines().count(), 3 + 4, "{out}");
    }
}

//! Table 4 — Cavs vs Cortex inference latencies and speedups on the GPU.
//!
//! Following the paper's fairness protocol for the open-source Cavs
//! (§7.2): TreeFC, TreeGRU and TreeLSTM only, specialization *disabled*
//! in Cortex, and input matrix–vector products excluded from both
//! (recursive-portion models with zero leaf states).

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;

use crate::registry::ModelId;
use crate::runner::{baseline, cortex, Baseline};
use crate::table::{ms, speedup, Table};
use crate::Scale;

/// The models Table 4 covers.
pub const MODELS: [ModelId; 3] = [ModelId::TreeFc, ModelId::TreeGru, ModelId::TreeLstm];

/// The Cortex schedule for the Cavs comparison: specialization off.
pub fn fair_schedule() -> RaSchedule {
    RaSchedule {
        specialize: false,
        ..RaSchedule::default()
    }
}

/// Measures one Table 4 cell: (cavs_ms, cortex_ms).
pub fn measure(id: ModelId, h: usize, bs: usize) -> (f64, f64) {
    let gpu = DeviceSpec::v100();
    let model = id.build_recursive_only(h);
    let data = id.dataset(bs, super::SEED);
    let cavs = baseline(Baseline::Cavs, &model, &data, &gpu);
    let ours = cortex(&model, &data, &fair_schedule(), &gpu);
    (cavs.latency_ms, ours.latency_ms)
}

/// Regenerates Table 4.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Table 4: Cavs vs Cortex on the GPU (Cavs ms / Cortex ms, speedup)",
        &["hidden", "batch", "TreeFC", "TreeGRU", "TreeLSTM"],
    );
    for (hname, pick) in [("hs", 0usize), ("hl", 1usize)] {
        for bs in [1usize, 10] {
            let mut cells = vec![hname.to_string(), bs.to_string()];
            for id in MODELS {
                let sizes = id.hidden_sizes();
                let h = scale.hidden(if pick == 0 { sizes.0 } else { sizes.1 });
                let (cavs_ms, cortex_ms) = measure(id, h, bs);
                cells.push(format!(
                    "{}/{} ({}x)",
                    ms(cavs_ms),
                    ms(cortex_ms),
                    speedup(cavs_ms, cortex_ms)
                ));
            }
            t.row_owned(cells);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cortex_beats_cavs_across_the_grid() {
        // Table 4: every speedup is > 1 (4.9x – 14x in the paper). The
        // modeled latencies include *measured* host-side wall-clock
        // (graph construction/batching timers), so a loaded machine can
        // transiently flip the tightest margins — retry before failing.
        for id in MODELS {
            for bs in [1usize, 10] {
                let mut last = (0.0, 0.0);
                let ok = (0..3).any(|_| {
                    last = measure(id, 32, bs);
                    last.0 > last.1
                });
                assert!(
                    ok,
                    "{} bs={bs}: cavs {} vs cortex {} (3 attempts)",
                    id.name(),
                    last.0,
                    last.1
                );
            }
        }
    }

    #[test]
    fn renders_full_grid() {
        let out = run(Scale::Smoke);
        assert_eq!(out.lines().count(), 3 + 4, "{out}");
        assert!(out.contains("x)"), "{out}");
    }
}

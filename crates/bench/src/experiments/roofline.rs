//! Appendix C — roofline operational intensities for the TreeFC model.
//!
//! Fig. 14 derives analytic intensities; here we *measure* them from the
//! executed profiles (flops ÷ global bytes) and also print the paper's
//! analytic approximations for comparison:
//!
//! ```text
//! O_cortex  ≈ B·N0 / (3B + 2)
//! O_dynet   ≈ B·N0 / (5B + 8·log2(N0))
//! O_pytorch ≈ 0.5
//! ```

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;

use crate::registry::ModelId;
use crate::runner::{baseline, cortex, Baseline};
use crate::table::Table;
use crate::Scale;

/// Measured operational intensities `(cortex, dynet, pytorch)`.
pub fn measure(scale: Scale, bs: usize) -> (f64, f64, f64) {
    let gpu = DeviceSpec::v100();
    let id = ModelId::TreeFc;
    let model = id.build_recursive_only(id.hs(scale));
    let data = id.dataset(bs, super::SEED);
    let ours = cortex(&model, &data, &RaSchedule::default(), &gpu);
    let dynet = baseline(Baseline::DyNet, &model, &data, &gpu);
    let torch = baseline(Baseline::PyTorch, &model, &data, &gpu);
    (
        ours.profile.operational_intensity(),
        dynet.profile.operational_intensity(),
        torch.profile.operational_intensity(),
    )
}

/// The paper's analytic approximations (Fig. 14 with N ≈ H = N0).
pub fn analytic(n0: f64, b: f64) -> (f64, f64, f64) {
    (
        b * n0 / (3.0 * b + 2.0),
        b * n0 / (5.0 * b + 8.0 * n0.log2()),
        0.5,
    )
}

/// Regenerates the Appendix C comparison.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Appendix C: operational intensity (flops/byte), TreeFC, hidden hs",
        &[
            "batch",
            "Cortex (measured)",
            "DyNet (measured)",
            "PyTorch (measured)",
            "analytic (C/D/P)",
        ],
    );
    let n0 = ModelId::TreeFc.hs(scale) as f64;
    for bs in [1usize, 10] {
        let (c, d, p) = measure(scale, bs);
        let (ac, ad, ap) = analytic(n0, bs as f64);
        t.row_owned(vec![
            bs.to_string(),
            format!("{c:.2}"),
            format!("{d:.2}"),
            format!("{p:.2}"),
            format!("{ac:.1}/{ad:.1}/{ap:.1}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_ordering_matches_appendix_c() {
        // O_cortex > O_dynet > O_pytorch.
        let (c, d, p) = measure(Scale::Smoke, 10);
        assert!(c > d, "cortex {c:.2} vs dynet {d:.2}");
        assert!(d > p, "dynet {d:.2} vs pytorch {p:.2}");
    }

    #[test]
    fn pytorch_intensity_is_near_half() {
        // Appendix C: O_pytorch ≈ 0.5 — parameters re-read per node kill
        // all reuse.
        let (_, _, p) = measure(Scale::Smoke, 10);
        assert!(p < 2.0, "pytorch intensity {p:.2} should be O(1)");
    }

    #[test]
    fn analytic_formulas_are_ordered_too() {
        let (c, d, p) = analytic(256.0, 10.0);
        assert!(c > d && d > p);
    }
}

//! §7.5 — data-structure linearization overheads.
//!
//! The paper reports linearization times in microseconds for each dataset
//! (grouped: the SST-based models share inputs), and overhead percentages
//! of total GPU runtime between 1.2% (MV-RNN) and 24.4% (DAG-RNN).

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;
use cortex_ds::linearizer::Linearizer;

use crate::registry::ModelId;
use crate::runner::cortex;
use crate::table::Table;
use crate::Scale;

/// Measured linearization time in microseconds for a model's dataset at a
/// batch size (median of `reps` runs for stability).
pub fn linearize_us(id: ModelId, bs: usize, reps: usize) -> f64 {
    let data = id.dataset(bs, super::SEED);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let (_, d) = Linearizer::new()
                .linearize_timed(&data)
                .expect("linearizable");
            d.as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Regenerates the §7.5 table.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Sec. 7.5: linearization times (µs) and share of GPU runtime (batch 10, hs)",
        &[
            "dataset",
            "batch 1 (µs)",
            "batch 10 (µs)",
            "% of runtime (bs 10)",
        ],
    );
    let gpu = DeviceSpec::v100();
    for (label, id) in [
        ("TreeLSTM/TreeGRU/MV-RNN (treebank)", ModelId::TreeLstm),
        ("DAG-RNN (10x10 grids)", ModelId::DagRnn),
        ("TreeFC (perfect trees)", ModelId::TreeFc),
    ] {
        let t1 = linearize_us(id, 1, 5);
        let t10 = linearize_us(id, 10, 5);
        let model = id.build(id.hs(scale));
        let data = id.dataset(10, super::SEED);
        let m = cortex(&model, &data, &RaSchedule::default(), &gpu);
        let pct = 100.0 * (t10 / 1e6) / m.breakdown.total_s.max(1e-12);
        t.row_owned(vec![
            label.to_string(),
            format!("{t1:.1}"),
            format!("{t10:.1}"),
            format!("{pct:.1}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearization_scales_with_input_size() {
        let small = linearize_us(ModelId::TreeFc, 1, 5);
        let large = linearize_us(ModelId::TreeFc, 10, 5);
        assert!(
            large > small,
            "batch 10 must take longer: {large} vs {small}"
        );
    }

    #[test]
    fn linearization_is_microseconds_not_milliseconds() {
        // §7.5: 1.31–95 µs across datasets — small by construction.
        let t = linearize_us(ModelId::TreeLstm, 10, 5);
        assert!(t < 10_000.0, "linearization took {t} µs");
    }

    #[test]
    fn renders_three_dataset_groups() {
        let out = run(Scale::Smoke);
        assert_eq!(out.lines().count(), 3 + 3, "{out}");
    }
}

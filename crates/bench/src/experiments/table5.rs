//! Table 5 — DyNet vs Cortex inference latencies and speedups across the
//! GPU, Intel and ARM backends, for all five models, both hidden sizes
//! and batch sizes 1 and 10.

use cortex_core::ra::RaSchedule;

use crate::registry::{ModelId, MAIN_MODELS};
use crate::runner::{baseline_multi, cortex_multi, devices};
use crate::table::{ms, speedup, Table};
use crate::Scale;

/// One Table 5 cell: latencies for (DyNet, Cortex) on one device.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// DyNet latency (ms).
    pub dynet_ms: f64,
    /// Cortex latency (ms).
    pub cortex_ms: f64,
}

/// Measures a full row (all three devices) for one configuration.
pub fn measure(id: ModelId, h: usize, bs: usize) -> [Cell; 3] {
    let devs = devices();
    let model = id.build(h);
    let data = id.dataset(bs, super::SEED);
    let ours = cortex_multi(&model, &data, &RaSchedule::default(), &devs);
    let dynet = baseline_multi(crate::runner::Baseline::DyNet, &model, &data, &devs);
    [0, 1, 2].map(|i| Cell {
        dynet_ms: dynet[i].latency_ms,
        cortex_ms: ours[i].latency_ms,
    })
}

/// Regenerates Table 5.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Table 5: DyNet vs Cortex (DyNet ms / Cortex ms, speedup)",
        &[
            "backend", "hidden", "batch", "TreeFC", "DAG-RNN", "TreeGRU", "TreeLSTM", "MV-RNN",
        ],
    );
    // Gather all cells first (execution is device-independent).
    let mut rows: Vec<Vec<String>> = Vec::new();
    for backend in 0..3usize {
        for (hname, _pick) in [("hs", 0usize), ("hl", 1usize)] {
            for bs in [1usize, 10] {
                rows.push(vec![
                    ["GPU", "Intel", "ARM"][backend].to_string(),
                    hname.to_string(),
                    bs.to_string(),
                ]);
            }
        }
        let _ = backend;
    }
    for id in MAIN_MODELS {
        let mut row_idx = 0usize;
        // Measure per (h, bs) once; reuse across backends.
        let mut per_cfg: Vec<[Cell; 3]> = Vec::new();
        for pick in [0usize, 1] {
            for bs in [1usize, 10] {
                let sizes = id.hidden_sizes();
                let h = scale.hidden(if pick == 0 { sizes.0 } else { sizes.1 });
                per_cfg.push(measure(id, h, bs));
            }
        }
        for backend in 0..3usize {
            for cfg in &per_cfg {
                let cell = cfg[backend];
                rows[row_idx].push(format!(
                    "{}/{} ({}x)",
                    ms(cell.dynet_ms),
                    ms(cell.cortex_ms),
                    speedup(cell.dynet_ms, cell.cortex_ms)
                ));
                row_idx += 1;
            }
        }
    }
    for r in rows {
        t.row_owned(r);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cortex_beats_dynet_on_gpu_everywhere() {
        for id in MAIN_MODELS {
            let cells = measure(id, 16, 10);
            assert!(
                cells[0].dynet_ms > cells[0].cortex_ms,
                "{}: {:?}",
                id.name(),
                cells[0]
            );
        }
    }

    #[test]
    fn speedups_are_larger_on_gpu_than_arm() {
        // Table 5 shape: GPU speedups (up to 13.6x) exceed ARM ones
        // (roughly 1–9x) — kernel-call overheads are the GPU's burden.
        let cells = measure(ModelId::TreeLstm, 16, 10);
        let gpu = cells[0].dynet_ms / cells[0].cortex_ms;
        let arm = cells[2].dynet_ms / cells[2].cortex_ms;
        assert!(gpu > arm, "GPU {gpu:.2}x vs ARM {arm:.2}x");
    }

    #[test]
    fn renders_twelve_rows() {
        let out = run(Scale::Smoke);
        assert_eq!(out.lines().count(), 3 + 12, "{out}");
    }
}

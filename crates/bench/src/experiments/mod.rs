//! One module per paper table/figure; every function returns the
//! formatted output so tests and binaries share the code path.

pub mod fig10;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod linearize;
pub mod roofline;
pub mod table4;
pub mod table5;
pub mod table6;

/// Fixed workload seed so all experiments see the same inputs.
pub const SEED: u64 = 2021;

//! Fig. 12 — peak memory consumption across frameworks (batch 10, hs).

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;

use crate::registry::{ModelId, MAIN_MODELS};
use crate::runner::{baseline, cortex, Baseline};
use crate::table::Table;
use crate::Scale;

fn kb(bytes: u64) -> String {
    format!("{}", bytes / 1024)
}

/// Regenerates Fig. 12.
pub fn run(scale: Scale) -> String {
    let gpu = DeviceSpec::v100();
    let mut t = Table::new(
        "Fig. 12: peak memory (KB), batch 10, hidden hs",
        &[
            "model",
            "PyTorch",
            "DyNet",
            "DyNet (inference)",
            "Cavs",
            "Cortex",
        ],
    );
    for id in MAIN_MODELS {
        let model = id.build(id.hs(scale));
        let data = id.dataset(10, super::SEED);
        let torch = baseline(Baseline::PyTorch, &model, &data, &gpu);
        let dynet = baseline(Baseline::DyNet, &model, &data, &gpu);
        let dynet_inf = baseline(Baseline::DyNetInference, &model, &data, &gpu);
        let cavs = baseline(Baseline::Cavs, &model, &data, &gpu);
        let ours = cortex(&model, &data, &RaSchedule::default(), &gpu);
        t.row_owned(vec![
            id.name().to_string(),
            kb(torch.profile.allocated_bytes),
            kb(dynet.profile.allocated_bytes),
            kb(dynet_inf.profile.allocated_bytes),
            kb(cavs.profile.allocated_bytes),
            kb(ours.profile.allocated_bytes),
        ]);
    }
    t.render()
}

/// Peak bytes per framework for one model (used by tests).
pub fn peaks(id: ModelId, scale: Scale) -> [u64; 5] {
    let gpu = DeviceSpec::v100();
    let model = id.build(id.hs(scale));
    let data = id.dataset(10, super::SEED);
    [
        baseline(Baseline::PyTorch, &model, &data, &gpu)
            .profile
            .allocated_bytes,
        baseline(Baseline::DyNet, &model, &data, &gpu)
            .profile
            .allocated_bytes,
        baseline(Baseline::DyNetInference, &model, &data, &gpu)
            .profile
            .allocated_bytes,
        baseline(Baseline::Cavs, &model, &data, &gpu)
            .profile
            .allocated_bytes,
        cortex(&model, &data, &RaSchedule::default(), &gpu)
            .profile
            .allocated_bytes,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ordering_matches_paper() {
        // Fig. 12: PyTorch lowest; DyNet/Cavs highest (keep intermediates
        // for training); DyNet-inference in between but still above
        // Cortex, which materializes fewer intermediates due to fusion.
        let [torch, dynet, dynet_inf, cavs, ours] = peaks(ModelId::TreeGru, Scale::Smoke);
        assert!(torch < ours, "PyTorch frees everything: {torch} vs {ours}");
        assert!(
            dynet > dynet_inf,
            "training mode keeps more: {dynet} vs {dynet_inf}"
        );
        assert!(
            dynet_inf > ours,
            "even inference DyNet materializes more: {dynet_inf} vs {ours}"
        );
        assert!(cavs > ours);
    }

    #[test]
    fn renders_all_models() {
        let out = run(Scale::Smoke);
        assert!(out.contains("MV-RNN"));
        assert_eq!(out.lines().count(), 3 + 5);
    }
}

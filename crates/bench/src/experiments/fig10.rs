//! Fig. 10 — the benefits of Cortex's optimizations on the GPU backend
//! (hidden size 256): (a) fusion / specialization / persistence,
//! (b) unrolling (with Fig. 11's barrier counts), (c) recursive
//! refactoring.

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::{FusionMode, RaSchedule};

use crate::registry::ModelId;
use crate::runner::cortex;
use crate::table::{ms, Table};
use crate::Scale;

/// The four cumulative configurations of Fig. 10a.
pub fn ablation_schedules() -> [(&'static str, RaSchedule); 4] {
    [
        ("no fusion", RaSchedule::unoptimized()),
        (
            "max fusion",
            RaSchedule {
                fusion: FusionMode::Maximal,
                specialize: false,
                persist: false,
                dense_intermediates: true,
                ..RaSchedule::default()
            },
        ),
        (
            "+specialization",
            RaSchedule {
                persist: false,
                ..RaSchedule::default()
            },
        ),
        ("+persistence", RaSchedule::default()),
    ]
}

/// Regenerates Fig. 10a.
pub fn run_a(scale: Scale) -> String {
    let gpu = DeviceSpec::v100();
    let mut t = Table::new(
        "Fig. 10a: kernel fusion, specialization and persistence (GPU, H=256)",
        &[
            "model",
            "batch",
            "no fusion",
            "max fusion",
            "+specialization",
            "+persistence",
        ],
    );
    for id in [
        ModelId::TreeFc,
        ModelId::DagRnn,
        ModelId::TreeGru,
        ModelId::TreeLstm,
    ] {
        let model = id.build_recursive_only(scale.hidden(256));
        for bs in [1usize, 10] {
            let data = id.dataset(bs, super::SEED);
            let mut cells = vec![id.name().to_string(), bs.to_string()];
            for (_, schedule) in ablation_schedules() {
                let m = cortex(&model, &data, &schedule, &gpu);
                cells.push(ms(m.device_ms()));
            }
            t.row_owned(cells);
        }
    }
    t.render()
}

/// Regenerates Fig. 10b (plus the Fig. 11 barrier counts).
pub fn run_b(scale: Scale) -> String {
    let gpu = DeviceSpec::v100();
    let mut t = Table::new(
        "Fig. 10b: unrolling (GPU, H=256); barrier counts illustrate Fig. 11",
        &[
            "model",
            "batch",
            "not unrolled (ms)",
            "unrolled (ms)",
            "barriers",
            "barriers unrolled",
        ],
    );
    for (id, block_local) in [(ModelId::TreeRnn, true), (ModelId::TreeLstm, false)] {
        let model = id.build_recursive_only(scale.hidden(256));
        for bs in [1usize, 10] {
            let data = id.dataset(bs, super::SEED);
            let plain = cortex(&model, &data, &RaSchedule::default(), &gpu);
            let unrolled_schedule = RaSchedule {
                unroll: Some(2),
                unroll_block_local: block_local,
                ..RaSchedule::default()
            };
            let unrolled = cortex(&model, &data, &unrolled_schedule, &gpu);
            t.row_owned(vec![
                id.name().to_string(),
                bs.to_string(),
                ms(plain.device_ms()),
                ms(unrolled.device_ms()),
                plain.profile.barriers_global.to_string(),
                unrolled.profile.barriers_global.to_string(),
            ]);
        }
    }
    t.render()
}

/// Regenerates Fig. 10c ("Unhoisted" = default, "Hoisted" = refactored).
pub fn run_c(scale: Scale) -> String {
    let gpu = DeviceSpec::v100();
    let mut t = Table::new(
        "Fig. 10c: recursive refactoring (GPU, H=256)",
        &[
            "model",
            "batch",
            "unhoisted (ms)",
            "hoisted (ms)",
            "improvement %",
        ],
    );
    for id in [ModelId::SimpleTreeGru, ModelId::TreeGru] {
        let model = id.build_recursive_only(scale.hidden(256));
        for bs in [1usize, 10] {
            let data = id.dataset(bs, super::SEED);
            let plain = cortex(&model, &data, &RaSchedule::default(), &gpu);
            let refactored = cortex(&model, &data, &model.refactored_schedule(), &gpu);
            let improvement =
                100.0 * (plain.device_ms() - refactored.device_ms()) / plain.device_ms();
            t.row_owned(vec![
                id.name().to_string(),
                bs.to_string(),
                ms(plain.device_ms()),
                ms(refactored.device_ms()),
                format!("{improvement:.1}"),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies_for(id: ModelId, bs: usize) -> Vec<f64> {
        let gpu = DeviceSpec::v100();
        let model = id.build_recursive_only(32);
        let data = id.dataset(bs, super::super::SEED);
        ablation_schedules()
            .iter()
            .map(|(_, s)| cortex(&model, &data, s, &gpu).device_ms())
            .collect()
    }

    #[test]
    fn fusion_provides_significant_benefits_for_all_models() {
        // Fig. 10a: "Kernel fusion provides significant benefits for all
        // models."
        for id in [ModelId::TreeFc, ModelId::TreeGru, ModelId::TreeLstm] {
            let l = latencies_for(id, 10);
            assert!(
                l[1] < 0.7 * l[0],
                "{}: fusion should cut latency substantially ({} -> {})",
                id.name(),
                l[0],
                l[1]
            );
        }
    }

    #[test]
    fn specialization_helps_trees_not_dags() {
        // Fig. 10a: specialization (leaf hoisting) helps tree models;
        // DAG-RNN "does not lead to any speedup as expected" (its leaf is
        // a single node and nothing hoists).
        let tree = latencies_for(ModelId::TreeLstm, 10);
        assert!(tree[2] < tree[1], "TreeLSTM: {} -> {}", tree[1], tree[2]);
        let dag = latencies_for(ModelId::DagRnn, 10);
        let change = (dag[1] - dag[2]).abs() / dag[1];
        assert!(
            change < 0.25,
            "DAG-RNN should be roughly flat, changed {change:.2}"
        );
    }

    #[test]
    fn persistence_gives_nonnegligible_improvement() {
        let l = latencies_for(ModelId::TreeLstm, 10);
        assert!(l[3] < l[2], "persistence: {} -> {}", l[2], l[3]);
    }

    #[test]
    fn unrolling_slows_treelstm_and_helps_treernn() {
        // Fig. 10b both directions.
        let gpu = DeviceSpec::v100();
        let lstm = ModelId::TreeLstm.build_recursive_only(32);
        let data = ModelId::TreeLstm.dataset(10, super::super::SEED);
        let plain = cortex(&lstm, &data, &RaSchedule::default(), &gpu);
        let unrolled = cortex(
            &lstm,
            &data,
            &RaSchedule {
                unroll: Some(2),
                ..RaSchedule::default()
            },
            &gpu,
        );
        assert!(
            unrolled.profile.barriers_global > plain.profile.barriers_global,
            "unrolling TreeLSTM adds barriers (Fig. 11): {} vs {}",
            unrolled.profile.barriers_global,
            plain.profile.barriers_global
        );
        assert!(unrolled.device_ms() > plain.device_ms());

        let rnn = ModelId::TreeRnn.build_recursive_only(32);
        let data = ModelId::TreeRnn.dataset(10, super::super::SEED);
        let plain = cortex(&rnn, &data, &RaSchedule::default(), &gpu);
        let unrolled = cortex(
            &rnn,
            &data,
            &RaSchedule {
                unroll: Some(2),
                unroll_block_local: true,
                ..RaSchedule::default()
            },
            &gpu,
        );
        assert!(
            unrolled.profile.barriers_global < plain.profile.barriers_global,
            "per-node thread blocks cut global barriers: {} vs {}",
            unrolled.profile.barriers_global,
            plain.profile.barriers_global
        );
        assert!(unrolled.device_ms() < plain.device_ms());
    }

    #[test]
    fn refactoring_helps_simple_tree_gru_more() {
        let gpu = DeviceSpec::v100();
        let improvement = |id: ModelId| {
            let model = id.build_recursive_only(32);
            let data = id.dataset(10, super::super::SEED);
            let plain = cortex(&model, &data, &RaSchedule::default(), &gpu);
            let refd = cortex(&model, &data, &model.refactored_schedule(), &gpu);
            (plain.device_ms() - refd.device_ms()) / plain.device_ms()
        };
        let simple = improvement(ModelId::SimpleTreeGru);
        let full = improvement(ModelId::TreeGru);
        assert!(
            simple > 0.05,
            "SimpleTreeGRU should improve noticeably: {simple:.3}"
        );
        assert!(
            simple > full,
            "refactoring must help SimpleTreeGRU more than TreeGRU: {simple:.3} vs {full:.3}"
        );
    }
}

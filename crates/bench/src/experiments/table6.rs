//! Table 6 — time spent in runtime activities for DyNet, Cavs and Cortex
//! (TreeLSTM, GPU backend, batch size 10, hidden size 256).

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;

use crate::registry::ModelId;
use crate::runner::{baseline, cortex, Baseline, Measured};
use crate::table::{ms, Table};
use crate::Scale;

/// One framework's activity breakdown (the Table 6 columns).
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Framework name.
    pub framework: &'static str,
    /// Dynamic batching + graph construction time (ms). For Cortex this
    /// is linearization.
    pub batching_ms: f64,
    /// Memory-management (contiguity copy) time (ms).
    pub mem_mgmt_ms: f64,
    /// Device computation time (ms).
    pub compute_ms: f64,
    /// Kernel calls (excluding memory-copy kernels).
    pub kernel_calls: u64,
    /// Host API time (ms).
    pub api_ms: f64,
    /// Total execution time (ms).
    pub total_ms: f64,
}

fn breakdown(framework: &'static str, m: &Measured) -> Breakdown {
    Breakdown {
        framework,
        batching_ms: (m.profile.graph_construction_time
            + m.profile.dynamic_batching_time
            + m.profile.linearize_time)
            .as_secs_f64()
            * 1e3,
        mem_mgmt_ms: (m.breakdown.memcpy_s + m.profile.mem_mgmt_time.as_secs_f64()) * 1e3,
        compute_ms: m.breakdown.compute_s.max(m.breakdown.mem_s) * 1e3,
        kernel_calls: m.profile.launches,
        api_ms: m.breakdown.host_s * 1e3,
        total_ms: m.latency_ms,
    }
}

/// Measures the three frameworks' breakdowns.
pub fn measure(scale: Scale) -> [Breakdown; 3] {
    let gpu = DeviceSpec::v100();
    let id = ModelId::TreeLstm;
    let model = id.build(scale.hidden(256));
    let data = id.dataset(10, super::SEED);
    let dynet = baseline(Baseline::DyNet, &model, &data, &gpu);
    let cavs = baseline(Baseline::Cavs, &model, &data, &gpu);
    let ours = cortex(&model, &data, &RaSchedule::default(), &gpu);
    [
        breakdown("DyNet", &dynet),
        breakdown("Cavs", &cavs),
        breakdown("Cortex", &ours),
    ]
}

/// Regenerates Table 6.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Table 6: runtime activities, TreeLSTM, GPU, batch 10, hidden 256",
        &[
            "framework",
            "dyn.batch/graph (ms)",
            "mem mgmt (ms)",
            "compute (ms)",
            "#kernel calls",
            "host API (ms)",
            "total (ms)",
        ],
    );
    for b in measure(scale) {
        t.row_owned(vec![
            b.framework.to_string(),
            ms(b.batching_ms),
            ms(b.mem_mgmt_ms),
            ms(b.compute_ms),
            b.kernel_calls.to_string(),
            ms(b.api_ms),
            ms(b.total_ms),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_call_counts_follow_table6() {
        // Table 6: DyNet 389 calls, Cavs 122, Cortex 1 (order matters, the
        // absolute numbers depend on tree shapes).
        let [dynet, cavs, cortex] = measure(Scale::Smoke);
        assert!(
            dynet.kernel_calls > cavs.kernel_calls,
            "{dynet:?} vs {cavs:?}"
        );
        assert!(cavs.kernel_calls > cortex.kernel_calls);
        assert!(
            cortex.kernel_calls <= 4,
            "Cortex fuses to a handful of kernels"
        );
    }

    #[test]
    fn cortex_has_negligible_batching_and_memcpy_overheads() {
        let [dynet, _, cortex] = measure(Scale::Smoke);
        assert!(
            cortex.mem_mgmt_ms < 1e-6,
            "no contiguity copies: {cortex:?}"
        );
        assert!(
            cortex.batching_ms < dynet.batching_ms,
            "linearization is cheaper than graph construction + batching"
        );
    }

    #[test]
    fn totals_dominate_components() {
        for b in measure(Scale::Smoke) {
            assert!(b.total_ms >= b.compute_ms * 0.99, "{b:?}");
        }
    }
}

//! Fig. 6 — speedup over PyTorch vs batch size (GPU and Intel, hidden hs).

use cortex_backend::device::DeviceSpec;
use cortex_core::ra::RaSchedule;

use crate::registry::{ModelId, MAIN_MODELS};
use crate::runner::{baseline_multi, cortex_multi, Baseline};
use crate::table::{speedup, Table};
use crate::Scale;

/// Batch sizes sampled along the figure's x-axis.
pub const BATCH_SIZES: [usize; 4] = [1, 4, 7, 10];

/// Regenerates the Fig. 6 series.
pub fn run(scale: Scale) -> String {
    let devices = [DeviceSpec::v100(), DeviceSpec::intel_cascadelake()];
    let mut t = Table::new(
        "Fig. 6: speedup over PyTorch (hidden hs)",
        &["model", "batch", "GPU speedup", "Intel speedup"],
    );
    for id in MAIN_MODELS {
        for bs in BATCH_SIZES {
            let (gpu, intel) = measure(id, bs, scale, &devices);
            t.row_owned(vec![
                id.name().to_string(),
                bs.to_string(),
                speedup(gpu.0, gpu.1),
                speedup(intel.0, intel.1),
            ]);
        }
    }
    t.render()
}

/// Returns ((pytorch_ms, cortex_ms) on GPU, same on Intel).
pub fn measure(
    id: ModelId,
    batch_size: usize,
    scale: Scale,
    devices: &[DeviceSpec; 2],
) -> ((f64, f64), (f64, f64)) {
    let model = id.build(id.hs(scale));
    let data = id.dataset(batch_size, super::SEED);
    let cortex = cortex_multi(&model, &data, &RaSchedule::default(), devices);
    let torch = baseline_multi(Baseline::PyTorch, &model, &data, devices);
    (
        (torch[0].latency_ms, cortex[0].latency_ms),
        (torch[1].latency_ms, cortex[1].latency_ms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_grow_with_batch_size_on_gpu() {
        // The paper's key Fig. 6 shape: the PyTorch gap widens with batch
        // size (more unexploited parallelism + more kernel calls).
        let devices = [DeviceSpec::v100(), DeviceSpec::intel_cascadelake()];
        let (gpu1, _) = measure(ModelId::TreeLstm, 1, Scale::Smoke, &devices);
        let (gpu10, _) = measure(ModelId::TreeLstm, 10, Scale::Smoke, &devices);
        let s1 = gpu1.0 / gpu1.1;
        let s10 = gpu10.0 / gpu10.1;
        assert!(
            s1 > 1.0,
            "cortex must beat eager even at batch 1 ({s1:.2}x)"
        );
        assert!(
            s10 > s1,
            "speedup must grow with batch size: {s10:.2} vs {s1:.2}"
        );
    }

    #[test]
    fn gpu_speedups_exceed_cpu_speedups() {
        // Fig. 6: GPU speedups (up to ~200x) dwarf Intel ones (up to ~60x)
        // because eager execution wastes the GPU's parallelism hardest.
        let devices = [DeviceSpec::v100(), DeviceSpec::intel_cascadelake()];
        let (gpu, intel) = measure(ModelId::TreeGru, 10, Scale::Smoke, &devices);
        assert!(gpu.0 / gpu.1 > intel.0 / intel.1);
    }

    #[test]
    fn table_renders_all_series() {
        let out = run(Scale::Smoke);
        for id in MAIN_MODELS {
            assert!(out.contains(id.name()), "{out}");
        }
    }
}
